"""Capacity-aware x86 → XGW-H traffic offload (§2.2 + §4.3 closed loop).

The scheduler is the actuator behind the detector: promote decisions
become steering routes installed on an XGW-H cluster, demote decisions
withdraw them. Three invariants:

* **never over-commit the chip** — before admitting an entry the
  scheduler asks the Tofino :class:`~repro.tofino.compiler.Compiler` for
  each member pipeline's remaining SRAM/TCAM headroom
  (:class:`ChipBudget`) and refuses or evicts when the entry would not
  fit everywhere the cluster replicates it;
* **no partial migrations** — every route install/withdraw goes through
  :meth:`Controller.transaction`, the two-phase prepare/commit path, so
  a member fault or an injected ``CONTROLLER_CRASH`` mid-migration
  leaves zero partial state (the transaction rolls back or never touches
  a gateway);
* **evict coldest first** — when headroom runs out and a hotter
  candidate arrives, the offloaded entries with the lowest
  sketch-estimated rates are demoted back to x86 until the candidate
  fits.

Every action (and every refusal) is appended to a canonical decision
log; with a fixed seed the log is byte-identical run to run, which the
offload-relief bench asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from ..core.controller import Controller, RouteEntry, TransactionAborted
from ..core.journal import ControllerCrash
from ..net.addr import Prefix
from ..tables.geometry import MemoryFootprint, tcam_slices_for, VNI_BITS
from ..telemetry.stats import CounterSet
from ..telemetry.timeseries import SeriesBundle
from ..tofino.compiler import Compiler
from ..tofino.memory import SRAM_WORDS_PER_PIPELINE, TCAM_SLICES_PER_PIPELINE
from ..tables.vxlan_routing import RouteAction, Scope
from .detector import Decision, HeavyHitterDetector


@dataclass(frozen=True)
class VipKey:
    """The offload unit: one tenant VIP (VNI + inner destination IP).

    The VPC is the split unit for placement (§4.3); the VIP is the
    steering unit for offload — fine enough to move a single elephant,
    coarse enough that one entry covers a whole service endpoint.
    """

    vni: int
    dst_ip: int
    version: int = 4

    @property
    def prefix(self) -> Prefix:
        bits = 32 if self.version == 4 else 128
        return Prefix.of(self.dst_ip, bits, self.version)

    def route(self) -> RouteEntry:
        return RouteEntry(self.vni, self.prefix,
                          RouteAction(Scope.LOCAL, target="offload"))

    def label(self) -> str:
        width = 8 if self.version == 4 else 32
        return f"vni={self.vni}/ip={self.dst_ip:0{width}x}"


#: Steering-entry cost: the (VNI, host IP) key in TCAM plus one SRAM
#: action word — what the compiler charges per offloaded VIP.
def entry_footprint(version: int = 4) -> MemoryFootprint:
    key_bits = VNI_BITS + (32 if version == 4 else 128)
    return MemoryFootprint(sram_words=1, tcam_slices=tcam_slices_for(key_bits))


class ChipBudget:
    """SRAM/TCAM headroom accounting over one XGW-H cluster.

    Headroom is what the Tofino compiler reports as *unallocated* on the
    tightest pipeline of the tightest member (entries replicate to every
    member including the hot backup, so the minimum governs), minus a
    safety reserve, optionally clamped to an explicit offload-table
    budget (`sram_budget_words` / `tcam_budget_slices`) — the slice of
    the chip the operator is willing to spend on steering entries.

    >>> from repro.cluster.cluster import GatewayCluster
    >>> from repro.core.xgw_h import XgwH
    >>> cluster = GatewayCluster("A", [("gw0", XgwH(1))])
    >>> budget = ChipBudget(cluster, sram_budget_words=10, tcam_budget_slices=20)
    >>> budget.can_admit(entry_footprint())
    True
    """

    def __init__(
        self,
        cluster,
        reserve_fraction: float = 0.1,
        sram_budget_words: Optional[int] = None,
        tcam_budget_slices: Optional[int] = None,
    ):
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self.cluster = cluster
        self.reserve_fraction = reserve_fraction
        self.sram_budget_words = sram_budget_words
        self.tcam_budget_slices = tcam_budget_slices
        self.used = MemoryFootprint.zero()

    def _compiler_free(self) -> MemoryFootprint:
        """Min free words/slices across every member's pipelines, as the
        compiler's occupancy view reports them."""
        free_sram: Optional[int] = None
        free_tcam: Optional[int] = None
        for member in self.cluster.all_members():
            chip = getattr(member.gateway, "chip", None)
            if chip is None:  # pragma: no cover - non-XgwH member
                continue
            occupancy = Compiler(chip.fabric).occupancy()
            for footprint in occupancy.values():
                sram = SRAM_WORDS_PER_PIPELINE - footprint.sram_words
                tcam = TCAM_SLICES_PER_PIPELINE - footprint.tcam_slices
                free_sram = sram if free_sram is None else min(free_sram, sram)
                free_tcam = tcam if free_tcam is None else min(free_tcam, tcam)
        if free_sram is None:
            free_sram, free_tcam = SRAM_WORDS_PER_PIPELINE, TCAM_SLICES_PER_PIPELINE
        return MemoryFootprint(sram_words=free_sram, tcam_slices=free_tcam)

    def capacity(self) -> MemoryFootprint:
        """Words/slices the offload table may occupy in total."""
        free = self._compiler_free()
        sram = int(free.sram_words * (1.0 - self.reserve_fraction))
        tcam = int(free.tcam_slices * (1.0 - self.reserve_fraction))
        if self.sram_budget_words is not None:
            sram = min(sram, self.sram_budget_words)
        if self.tcam_budget_slices is not None:
            tcam = min(tcam, self.tcam_budget_slices)
        return MemoryFootprint(sram_words=sram, tcam_slices=tcam)

    def headroom(self) -> MemoryFootprint:
        cap = self.capacity()
        return MemoryFootprint(
            sram_words=cap.sram_words - self.used.sram_words,
            tcam_slices=cap.tcam_slices - self.used.tcam_slices,
        )

    def can_admit(self, footprint: MemoryFootprint) -> bool:
        head = self.headroom()
        return (footprint.sram_words <= head.sram_words
                and footprint.tcam_slices <= head.tcam_slices)

    def charge(self, footprint: MemoryFootprint) -> None:
        if not self.can_admit(footprint):
            raise ValueError("charging past chip capacity (admission bug)")
        self.used = self.used + footprint

    def release(self, footprint: MemoryFootprint) -> None:
        self.used = MemoryFootprint(
            sram_words=self.used.sram_words - footprint.sram_words,
            tcam_slices=self.used.tcam_slices - footprint.tcam_slices,
        )

    def occupancy(self) -> Dict[str, float]:
        """Fractions of the offload budget currently used."""
        cap = self.capacity()
        return {
            "sram": self.used.sram_words / cap.sram_words if cap.sram_words else 0.0,
            "tcam": self.used.tcam_slices / cap.tcam_slices if cap.tcam_slices else 0.0,
        }

    def snapshot(self) -> Dict[str, object]:
        """Canonical used/capacity view, shaped exactly like
        :meth:`repro.dpu.budget.DpuBudget.snapshot` so the cross-tier
        parity helper (:func:`~repro.offload.parity.decision_state_dump`)
        serialises every tier's budget from one code path."""
        cap = self.capacity()
        return {
            "kind": "chip",
            "used": {"sram_words": self.used.sram_words,
                     "tcam_slices": self.used.tcam_slices},
            "capacity": {"sram_words": cap.sram_words,
                         "tcam_slices": cap.tcam_slices},
        }


@dataclass
class OffloadedEntry:
    """One VIP currently steered to XGW-H."""

    key: VipKey
    footprint: MemoryFootprint
    rate_pps: float  # latest sketch-estimated rate, for eviction order
    since: float


class OffloadScheduler:
    """Migrates hot VIPs between an XGW-x86 cluster and an XGW-H cluster.

    The scheduler owns the *placement* decision; the detector owns the
    *rate* decision. ``apply`` consumes the detector's promote/demote
    candidates and turns each into one transactional route migration.
    """

    def __init__(
        self,
        controller: Controller,
        cluster_id: str,
        budget: ChipBudget,
        detector: Optional[HeavyHitterDetector] = None,
    ):
        self.controller = controller
        self.cluster_id = cluster_id
        self.budget = budget
        self.detector = detector
        self.offloaded: Dict[VipKey, OffloadedEntry] = {}
        self.decision_log: List[str] = []
        self.counters = CounterSet()
        self.series = SeriesBundle()

    # -- queries ------------------------------------------------------------

    def is_offloaded(self, key: VipKey) -> bool:
        return key in self.offloaded

    def offloaded_keys(self) -> List[VipKey]:
        return sorted(self.offloaded, key=lambda k: (k.vni, k.dst_ip, k.version))

    def decision_log_text(self) -> str:
        """The canonical, byte-stable decision log."""
        return "\n".join(self.decision_log) + ("\n" if self.decision_log else "")

    def budgets(self) -> Dict[str, ChipBudget]:
        """The budgets this actor places against, by tier/device name —
        the two-tier half of the protocol shared with ``TierPlanner``."""
        return {"chip": self.budget}

    def _log(self, now: float, verb: str, key: VipKey, rate: float,
             detail: str = "") -> None:
        head = self.budget.used
        cap = self.budget.capacity()
        line = (f"t={now:.3f} {verb} {key.label()} rate={rate:.1f}pps "
                f"sram={head.sram_words}/{cap.sram_words} "
                f"tcam={head.tcam_slices}/{cap.tcam_slices}")
        if detail:
            line += f" {detail}"
        self.decision_log.append(line)

    # -- rate refresh -------------------------------------------------------

    def refresh_rates(self, rates) -> None:
        """Update offloaded entries' estimated rates (eviction ordering).

        *rates* maps VipKey -> pps, typically from a hardware counter
        sweep (:func:`~.detector.sweep_counter_rates`)."""
        for key, entry in self.offloaded.items():
            if key in rates:
                entry.rate_pps = rates[key]

    # -- migrations ---------------------------------------------------------

    def _install(self, key: VipKey, now: float) -> bool:
        """Two-phase install of one steering route; False on abort."""
        route = key.route()
        try:
            with self.controller.transaction(self.cluster_id, time=now) as txn:
                txn.install_route(route)
        except (TransactionAborted, ControllerCrash) as exc:
            self.counters.add("migrations_aborted")
            self._log(now, "abort-promote", key, 0.0, detail=type(exc).__name__)
            if self.detector is not None:
                self.detector.mark_demoted(key)
            return False
        return True

    def _withdraw(self, key: VipKey, now: float) -> bool:
        try:
            with self.controller.transaction(self.cluster_id, time=now) as txn:
                txn.remove_route(key.vni, key.prefix)
        except (TransactionAborted, ControllerCrash) as exc:
            self.counters.add("migrations_aborted")
            self._log(now, "abort-demote", key, 0.0, detail=type(exc).__name__)
            return False
        return True

    def promote(self, key: VipKey, rate: float, now: float) -> bool:
        """Admit one VIP onto the chip, evicting colder entries if needed."""
        if key in self.offloaded:
            return True
        footprint = entry_footprint(key.version)
        # Capacity-aware admission: make room by demoting the coldest
        # offloaded entries — but only ones colder than the candidate.
        while not self.budget.can_admit(footprint):
            victim = self._coldest(max_rate=rate)
            if victim is None:
                self.counters.add("promotions_denied")
                self._log(now, "deny-promote", key, rate, detail="no-headroom")
                return False
            self.demote(victim.key, victim.rate_pps, now, reason="evicted")
        if not self._install(key, now):
            return False
        self.budget.charge(footprint)
        self.offloaded[key] = OffloadedEntry(key, footprint, rate, now)
        self.counters.add("promotions")
        self._log(now, "promote", key, rate)
        return True

    def demote(self, key: VipKey, rate: float, now: float,
               reason: str = "") -> bool:
        """Withdraw one VIP's steering route back to x86."""
        entry = self.offloaded.get(key)
        if entry is None:
            return True
        if not self._withdraw(key, now):
            return False
        del self.offloaded[key]
        self.budget.release(entry.footprint)
        if self.detector is not None:
            self.detector.mark_demoted(key)
        self.counters.add("demotions")
        self._log(now, "demote", key, rate, detail=reason)
        return True

    def _coldest(self, max_rate: float) -> Optional[OffloadedEntry]:
        """The lowest-rate offloaded entry strictly colder than *max_rate*."""
        candidates = [e for e in self.offloaded.values() if e.rate_pps < max_rate]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda e: (e.rate_pps, e.key.vni, e.key.dst_ip))

    def apply(self, decisions: Sequence[Decision], now: float) -> None:
        """Execute one interval's detector decisions (demotes first, so
        freed headroom is available to the promotes)."""
        for decision in decisions:
            if decision.kind == "demote":
                self.demote(decision.key, decision.rate_pps, now, reason="cold")
        for decision in decisions:
            if decision.kind == "promote":
                self.promote(decision.key, decision.rate_pps, now)
        self.record_telemetry(now)

    # -- telemetry ----------------------------------------------------------

    def record_telemetry(self, now: float) -> None:
        occ = self.budget.occupancy()
        self.series.record("offloaded-entries", now, float(len(self.offloaded)))
        self.series.record("offloaded-pps", now,
                           sum(e.rate_pps for e in self.offloaded.values()))
        self.series.record("chip-sram-occupancy", now, occ["sram"])
        self.series.record("chip-tcam-occupancy", now, occ["tcam"])
