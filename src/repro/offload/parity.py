"""Byte-stable placement-state dumps, shared across tiers.

Both placement actors — the two-tier :class:`~.scheduler.OffloadScheduler`
and the three-tier :class:`~repro.dpu.planner.TierPlanner` — expose the
same small protocol: ``budgets()`` (name -> budget with a canonical
``snapshot()``) and ``decision_log_text()``. This module folds the two
into one deterministic dump, so crash-recovery and determinism tests can
assert decision-log *and* budget parity across tiers from one helper
instead of re-serialising each budget kind by hand.

The dump is canonical JSON (sorted keys, no whitespace) followed by the
raw decision log; with a fixed seed it is byte-identical run to run,
which the DPU frontier bench asserts.
"""

from __future__ import annotations

import json


def budget_state(actor) -> dict:
    """Every budget snapshot of one placement actor, keyed by tier or
    device name."""
    return {name: budget.snapshot() for name, budget in actor.budgets().items()}


def decision_state_dump(actor) -> str:
    """The canonical budgets-plus-decision-log dump of one actor.

    >>> class _Budget:
    ...     def snapshot(self):
    ...         return {"kind": "chip", "used": {"sram_words": 1}}
    >>> class _Actor:
    ...     def budgets(self):
    ...         return {"chip": _Budget()}
    ...     def decision_log_text(self):
    ...         return "t=1.000 promote vni=7/ip=0a000001 rate=9.0pps\\n"
    >>> print(decision_state_dump(_Actor()), end="")
    {"chip":{"kind":"chip","used":{"sram_words":1}}}
    t=1.000 promote vni=7/ip=0a000001 rate=9.0pps
    """
    header = json.dumps(budget_state(actor), sort_keys=True,
                        separators=(",", ":"))
    return header + "\n" + actor.decision_log_text()
