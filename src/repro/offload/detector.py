"""EWMA-smoothed heavy-hitter detection with promote/demote hysteresis.

The paper's hybrid deployment only pays off if the *right* traffic sits
on each substrate — and flows churn, so the decision must be continuous.
The detector turns per-interval rate observations (x86
``IntervalReport`` per-flow rates, or hardware counter sweeps) into
promote/demote candidates:

* each interval's rates stream through a :class:`~.sketch.CountMinSketch`
  (the stand-in for per-stage counter arrays, swept and cleared each
  interval) while a cumulative :class:`~.sketch.SpaceSaving` tracker
  keeps the candidate set bounded;
* per-key rates are EWMA-smoothed so one bursty interval does not
  trigger a migration;
* **hysteresis** gates the decisions: a key is promoted only after its
  smoothed rate sits at or above ``theta_hi`` for ``promote_after``
  consecutive intervals, and demoted only after it sits below
  ``theta_lo`` for ``demote_after`` consecutive intervals. Because
  ``theta_lo < theta_hi``, a flow oscillating *around* ``theta_hi``
  migrates at most once in each direction — it never flaps between
  substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Hashable, List, Mapping, Optional

from ..sim.engine import Engine, PeriodicTask
from ..tables.counter import CounterTable
from .sketch import CountMinSketch, SpaceSaving, _key_bytes


class FlowState(Enum):
    """Where the detector believes a key's traffic currently runs."""

    COLD = "cold"  # on x86, below the promote threshold
    HOT = "hot"  # promoted to XGW-H


@dataclass(frozen=True)
class Decision:
    """One promote/demote candidate emitted by the detector."""

    kind: str  # "promote" | "demote"
    key: Hashable
    rate_pps: float  # the EWMA-smoothed rate that triggered it
    interval_index: int


@dataclass
class _KeyTrack:
    """Per-key smoothing and hysteresis state."""

    ewma: float = 0.0
    state: FlowState = FlowState.COLD
    above_hi: int = 0  # consecutive intervals at/above theta_hi
    below_lo: int = 0  # consecutive intervals below theta_lo
    last_seen: int = -1


class HeavyHitterDetector:
    """Turns interval rate observations into hysteresis-gated decisions.

    >>> det = HeavyHitterDetector(theta_hi=100.0, theta_lo=40.0,
    ...                           promote_after=2, ewma_alpha=1.0)
    >>> det.observe({"vip": 500.0})
    []
    >>> [d.kind for d in det.observe({"vip": 500.0})]
    ['promote']
    """

    def __init__(
        self,
        theta_hi: float,
        theta_lo: float,
        promote_after: int = 2,
        demote_after: int = 3,
        ewma_alpha: float = 0.3,
        sketch: Optional[CountMinSketch] = None,
        tracker: Optional[SpaceSaving] = None,
        seed: Hashable = 0,
        max_candidates: int = 32,
    ):
        if not 0.0 <= theta_lo < theta_hi:
            raise ValueError("need 0 <= theta_lo < theta_hi (hysteresis band)")
        if promote_after <= 0 or demote_after <= 0:
            raise ValueError("promote_after and demote_after must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.theta_hi = theta_hi
        self.theta_lo = theta_lo
        self.promote_after = promote_after
        self.demote_after = demote_after
        self.ewma_alpha = ewma_alpha
        self.sketch = sketch if sketch is not None else CountMinSketch(seed=seed)
        self.tracker = tracker if tracker is not None else SpaceSaving()
        self.max_candidates = max_candidates
        self.interval_index = 0
        self._tracks: Dict[Hashable, _KeyTrack] = {}

    # -- state inspection ---------------------------------------------------

    def state_of(self, key: Hashable) -> FlowState:
        track = self._tracks.get(key)
        return track.state if track is not None else FlowState.COLD

    def smoothed_rate(self, key: Hashable) -> float:
        track = self._tracks.get(key)
        return track.ewma if track is not None else 0.0

    def hot_keys(self) -> List[Hashable]:
        return sorted(
            (k for k, t in self._tracks.items() if t.state is FlowState.HOT),
            key=_key_bytes,
        )

    # -- the measurement interval ------------------------------------------

    def observe(self, rates: Mapping[Hashable, float]) -> List[Decision]:
        """Ingest one interval of (key -> pps) and emit decisions.

        The rates stream through the count-min sketch exactly as a
        counter sweep would; candidate keys are then *queried back from
        the sketch*, so the decision path exercises the estimate (with
        its documented error bounds), not the raw input.
        """
        index = self.interval_index
        self.interval_index += 1
        self.sketch.reset()
        for key, pps in rates.items():
            if pps < 0:
                raise ValueError(f"negative rate for {key!r}")
            self.sketch.update(key, pps)
            self.tracker.update(key, pps)
        # Candidates: the cumulative top-k plus everything already being
        # tracked (a promoted key must keep decaying even after it drops
        # out of the top-k).
        candidates = [key for key, _est, _err in
                      self.tracker.top(self.max_candidates)]
        seen = set(candidates)
        for key in self._tracks:
            if key not in seen:
                candidates.append(key)
        decisions: List[Decision] = []
        for key in candidates:
            rate = self.sketch.estimate(key) if key in rates else 0.0
            decision = self._advance(key, rate, index)
            if decision is not None:
                decisions.append(decision)
        # Drop fully-cold idle tracks so state stays bounded.
        for key in [k for k, t in self._tracks.items()
                    if t.state is FlowState.COLD and t.ewma < 1e-9
                    and t.above_hi == 0]:
            del self._tracks[key]
        decisions.sort(key=lambda d: (-d.rate_pps, _key_bytes(d.key)))
        return decisions

    def _advance(self, key: Hashable, rate: float, index: int) -> Optional[Decision]:
        track = self._tracks.get(key)
        if track is None:
            track = self._tracks[key] = _KeyTrack()
            track.ewma = rate  # first sample seeds the average
        else:
            track.ewma = (self.ewma_alpha * rate
                          + (1.0 - self.ewma_alpha) * track.ewma)
        track.last_seen = index
        if track.state is FlowState.COLD:
            track.above_hi = track.above_hi + 1 if track.ewma >= self.theta_hi else 0
            if track.above_hi >= self.promote_after:
                track.state = FlowState.HOT
                track.above_hi = 0
                track.below_lo = 0
                return Decision("promote", key, track.ewma, index)
        else:
            track.below_lo = track.below_lo + 1 if track.ewma < self.theta_lo else 0
            if track.below_lo >= self.demote_after:
                track.state = FlowState.COLD
                track.above_hi = 0
                track.below_lo = 0
                return Decision("demote", key, track.ewma, index)
        return None

    def mark_demoted(self, key: Hashable) -> None:
        """External demotion (scheduler eviction): reset the key COLD so
        its hysteresis restarts from scratch."""
        track = self._tracks.get(key)
        if track is not None:
            track.state = FlowState.COLD
            track.above_hi = 0
            track.below_lo = 0

    # -- engine integration -------------------------------------------------

    def attach(
        self,
        engine: Engine,
        interval: float,
        source: Callable[[], Mapping[Hashable, float]],
        sink: Callable[[List[Decision]], None],
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """Drive the detector from :meth:`Engine.schedule_every`.

        *source* yields the interval's (key -> pps) observations;
        *sink* receives the non-empty decision lists.
        """

        def tick() -> None:
            decisions = self.observe(source())
            if decisions:
                sink(decisions)

        return engine.schedule_every(interval, tick, until=until)


def sweep_counter_rates(counters: CounterTable, interval: float) -> Dict[Hashable, float]:
    """Convert a hardware :class:`CounterTable` into per-key pps and clear
    it — the control-plane sweep that feeds the XGW-H side of the
    detector, mirroring how Tofino counter arrays are read and reset."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    rates = {key: cell.packets / interval for key, cell in counters.items()}
    for key in list(rates):
        counters.reset(key)
    return rates
