"""The closed offload loop: measure → detect → migrate → measure again.

This is the hybrid-deployment control loop the paper's architecture
implies but never spells out: XGW-x86 boxes absorb the long tail while
the detector watches their per-flow interval reports; the moment a VIP's
smoothed rate crosses the promote threshold it is transactionally
steered onto the XGW-H cluster, whose counter sweeps then keep feeding
the same detector so cooled VIPs migrate back. One
:class:`~repro.sim.engine.Engine` periodic task drives the whole cycle.

Traffic accounting per interval:

* flows whose :class:`~.scheduler.VipKey` is offloaded are served by the
  XGW-H side — charged into a hardware :class:`CounterTable` (the
  per-stage counters a Tofino sweep would read) and clipped at the
  chip's packet budget;
* the rest is RSS-sprayed over the x86 cluster's cores exactly as in the
  Fig. 4/5 experiments, producing per-flow offered/processed/dropped
  attribution;
* both sides' rates merge into one observation for the detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.engine import Engine, PeriodicTask
from ..tables.counter import CounterTable
from ..workloads.flows import FlowSpec, split_flows_over_gateways
from ..x86.gateway import IntervalReport, XgwX86
from .detector import HeavyHitterDetector, sweep_counter_rates
from .scheduler import OffloadScheduler, VipKey


def vip_of(spec: FlowSpec) -> VipKey:
    """The offload steering unit a flow belongs to."""
    return VipKey(spec.vni, spec.flow.dst_ip, spec.flow.version)


@dataclass
class IntervalSnapshot:
    """One loop interval's aggregate outcome (for benches/examples)."""

    time: float
    x86_offered_pps: float
    x86_dropped_pps: float
    x86_max_core_util: float
    offloaded_pps: float
    hw_dropped_pps: float

    @property
    def x86_loss(self) -> float:
        return (self.x86_dropped_pps / self.x86_offered_pps
                if self.x86_offered_pps else 0.0)

    @property
    def total_loss(self) -> float:
        offered = self.x86_offered_pps + self.offloaded_pps
        dropped = self.x86_dropped_pps + self.hw_dropped_pps
        return dropped / offered if offered else 0.0


class OffloadLoop:
    """Wires detector + scheduler + both gateway substrates to an engine.

    *workload* is called once per interval with the current engine time
    and returns the interval's offered :class:`FlowSpec` population.
    """

    def __init__(
        self,
        engine: Engine,
        x86_gateways: Sequence[XgwX86],
        scheduler: OffloadScheduler,
        detector: HeavyHitterDetector,
        workload: Callable[[float], List[FlowSpec]],
        interval: float = 1.0,
    ):
        if not x86_gateways:
            raise ValueError("need at least one XGW-x86 box")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.x86_gateways = list(x86_gateways)
        self.scheduler = scheduler
        self.detector = detector
        self.workload = workload
        self.interval = interval
        #: Per-stage hardware counters the XGW-H side sweeps each interval.
        self.hw_counters = CounterTable("offload-hw")
        self.snapshots: List[IntervalSnapshot] = []
        #: Per-core utilisation (Fig. 4 style), "gw<i>/core-<j>" series.
        self.core_series = self.scheduler.series  # one bundle for the run

    # -- one interval -------------------------------------------------------

    def _serve_x86(self, flows: Sequence[FlowSpec]) -> List[IntervalReport]:
        buckets = split_flows_over_gateways(flows, len(self.x86_gateways))
        reports = []
        for gw, bucket in zip(self.x86_gateways, buckets):
            reports.append(gw.serve_interval([(f.flow, f.pps) for f in bucket]))
        return reports

    def _serve_hw(self, flows: Sequence[FlowSpec]) -> float:
        """Charge offloaded traffic to the chip; returns dropped pps.

        The chip's pps budget dwarfs any single x86 box (Fig. 18b), so
        drops only appear if offload overshoots the whole chip.
        """
        offered = sum(f.pps for f in flows)
        capacity = min((gw.max_pps() for gw in self._hw_gateways()),
                       default=float("inf"))
        for spec in flows:
            self.hw_counters.count_batch(vip_of(spec), int(spec.pps * self.interval))
        return max(0.0, offered - capacity)

    def _hw_gateways(self):
        cluster = self.scheduler.controller.clusters[self.scheduler.cluster_id]
        return [m.gateway for m in cluster.active_members()]

    def tick(self) -> IntervalSnapshot:
        now = self.engine.now
        flows = self.workload(now)
        offloaded = [f for f in flows if self.scheduler.is_offloaded(vip_of(f))]
        residual = [f for f in flows if not self.scheduler.is_offloaded(vip_of(f))]

        reports = self._serve_x86(residual)
        hw_dropped = self._serve_hw(offloaded)

        # Per-VIP rates: x86 attribution from the interval reports,
        # hardware attribution from the counter sweep.
        rates: Dict[VipKey, float] = {}
        flow_to_vip = {f.flow: vip_of(f) for f in residual}
        for report in reports:
            for flow, pps in report.flow_offered_pps().items():
                key = flow_to_vip[flow]
                rates[key] = rates.get(key, 0.0) + pps
        for key, pps in sweep_counter_rates(self.hw_counters, self.interval).items():
            rates[key] = rates.get(key, 0.0) + pps

        self.scheduler.refresh_rates(rates)
        decisions = self.detector.observe(rates)
        self.scheduler.apply(decisions, now)

        snapshot = IntervalSnapshot(
            time=now,
            x86_offered_pps=sum(r.offered_pps for r in reports),
            x86_dropped_pps=sum(r.dropped_pps for r in reports),
            x86_max_core_util=max(
                (u for r in reports for u in r.utilizations()), default=0.0),
            offloaded_pps=sum(f.pps for f in offloaded),
            hw_dropped_pps=hw_dropped,
        )
        self.snapshots.append(snapshot)
        series = self.scheduler.series
        series.record("x86-offered-pps", now, snapshot.x86_offered_pps)
        series.record("x86-loss", now, snapshot.x86_loss)
        series.record("x86-max-core-util", now, snapshot.x86_max_core_util)
        for gw_index, report in enumerate(reports):
            for core_index, util in enumerate(report.utilizations()):
                series.record(f"gw{gw_index}/core-{core_index}", now, util)
        # Flow-cache hit rate per box: a cheap workload-skew signal (a
        # Zipf-heavy mix caches well; a sprayed mix does not), recorded
        # alongside the core utilisations the detector already watches.
        for gw_index, gw in enumerate(self.x86_gateways):
            if gw.flow_cache is not None:
                gw.publish_cache_counters()
                series.record(f"gw{gw_index}/flowcache-hit-rate", now,
                              gw.flow_cache.hit_rate)
        return snapshot

    # -- engine integration -------------------------------------------------

    def start(self, until: Optional[float] = None) -> PeriodicTask:
        """Register the loop on the engine; returns the cancel handle."""
        return self.engine.schedule_every(self.interval, self.tick, until=until)
