"""The closed offload loop: measure → detect → migrate → measure again.

This is the hybrid-deployment control loop the paper's architecture
implies but never spells out: XGW-x86 boxes absorb the long tail while
the detector watches their per-flow interval reports; the moment a VIP's
smoothed rate crosses the promote threshold it is transactionally
steered onto the XGW-H cluster, whose counter sweeps then keep feeding
the same detector so cooled VIPs migrate back. One
:class:`~repro.sim.engine.Engine` periodic task drives the whole cycle.

The loop runs in one of two modes:

* **two-tier** — an :class:`~.scheduler.OffloadScheduler` +
  :class:`~.detector.HeavyHitterDetector` pair splits traffic between
  the chip and x86 (the original Sailfish deployment);
* **three-tier** — a ``TierPlanner`` (see :mod:`repro.dpu.planner`;
  duck-typed here, ``repro.offload`` never imports ``repro.dpu``)
  additionally steers warm stateful flows onto DPU devices. Each DPU
  serves its steered flows through its bounded session table; whatever
  it cannot serve — steering miss, session overflow, capacity punt,
  failed device — falls back to the x86 side *within the same interval*
  (nothing is silently lost), and failed devices are drained through
  controller transactions at the top of every tick.

Traffic accounting per interval:

* flows whose :class:`~.scheduler.VipKey` is offloaded are served by the
  XGW-H side — charged into a hardware :class:`CounterTable` (the
  per-stage counters a Tofino sweep would read) and clipped at the
  chip's packet budget;
* DPU-placed flows go through each device's rate model
  (``serve_interval``), whose per-VIP sweep counters attribute the
  served rates;
* the rest (plus DPU fallback) is RSS-sprayed over the x86 cluster's
  cores exactly as in the Fig. 4/5 experiments, producing per-flow
  offered/processed/dropped attribution;
* all sides' rates merge into one observation for the detector.

Telemetry is tier-labelled (``tier/chip/...``, ``tier/dpu/...``,
``tier/x86/...``, including per-tier ``cost-usd`` priced by
:class:`~repro.core.economics.TierCostModel`); the original two-tier
series names are kept as aliases so existing benches and dashboards
stay green.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.economics import TierCostModel
from ..sim.engine import Engine, PeriodicTask
from ..tables.counter import CounterTable
from ..workloads.flows import FlowSpec, split_flows_over_gateways
from ..x86.gateway import IntervalReport, XgwX86
from .detector import HeavyHitterDetector, sweep_counter_rates
from .scheduler import OffloadScheduler, VipKey


def vip_of(spec: FlowSpec) -> VipKey:
    """The offload steering unit a flow belongs to."""
    return VipKey(spec.vni, spec.flow.dst_ip, spec.flow.version)


@dataclass
class IntervalSnapshot:
    """One loop interval's aggregate outcome (for benches/examples)."""

    time: float
    x86_offered_pps: float
    x86_dropped_pps: float
    x86_max_core_util: float
    offloaded_pps: float
    hw_dropped_pps: float
    # Three-tier extras; zero in two-tier mode, so every derived figure
    # reduces to the original two-tier arithmetic there.
    dpu_offered_pps: float = 0.0
    dpu_served_pps: float = 0.0
    dpu_fallback_pps: float = 0.0

    @property
    def x86_loss(self) -> float:
        return (self.x86_dropped_pps / self.x86_offered_pps
                if self.x86_offered_pps else 0.0)

    @property
    def total_loss(self) -> float:
        # x86_offered already includes the DPU fallback re-offer, so the
        # DPU contributes only what it actually served.
        offered = self.x86_offered_pps + self.offloaded_pps + self.dpu_served_pps
        dropped = self.x86_dropped_pps + self.hw_dropped_pps
        return dropped / offered if offered else 0.0


class OffloadLoop:
    """Wires detector + placement actor + gateway substrates to an engine.

    *workload* is called once per interval with the current engine time
    and returns the interval's offered :class:`FlowSpec` population.

    Pass either ``scheduler`` + ``detector`` (two-tier) or ``planner``
    (three-tier) — never both.
    """

    def __init__(
        self,
        engine: Engine,
        x86_gateways: Sequence[XgwX86],
        scheduler: Optional[OffloadScheduler] = None,
        detector: Optional[HeavyHitterDetector] = None,
        workload: Optional[Callable[[float], List[FlowSpec]]] = None,
        interval: float = 1.0,
        planner=None,
        cost_model: Optional[TierCostModel] = None,
    ):
        if not x86_gateways:
            raise ValueError("need at least one XGW-x86 box")
        if workload is None:
            raise ValueError("workload is required")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if planner is None:
            if scheduler is None or detector is None:
                raise ValueError(
                    "need scheduler+detector (two-tier) or planner (three-tier)")
        elif scheduler is not None or detector is not None:
            raise ValueError("pass scheduler+detector or planner, not both")
        self.engine = engine
        self.x86_gateways = list(x86_gateways)
        self.scheduler = scheduler
        self.detector = detector
        self.planner = planner
        self.workload = workload
        self.interval = interval
        self._actor = planner if planner is not None else scheduler
        if cost_model is not None:
            self.cost_model = cost_model
        else:
            self.cost_model = getattr(self._actor, "cost_model", None) \
                or TierCostModel()
        #: Per-stage hardware counters the XGW-H side sweeps each interval.
        self.hw_counters = CounterTable("offload-hw")
        self.snapshots: List[IntervalSnapshot] = []
        #: Per-core utilisation (Fig. 4 style), "gw<i>/core-<j>" series.
        self.core_series = self._actor.series  # one bundle for the run

    # -- one interval -------------------------------------------------------

    def _serve_x86(self, flows: Sequence[FlowSpec]) -> List[IntervalReport]:
        buckets = split_flows_over_gateways(flows, len(self.x86_gateways))
        reports = []
        for gw, bucket in zip(self.x86_gateways, buckets):
            reports.append(gw.serve_interval([(f.flow, f.pps) for f in bucket]))
        return reports

    def _serve_hw(self, flows: Sequence[FlowSpec]) -> float:
        """Charge offloaded traffic to the chip; returns dropped pps.

        The chip's pps budget dwarfs any single x86 box (Fig. 18b), so
        drops only appear if offload overshoots the whole chip.
        """
        offered = sum(f.pps for f in flows)
        capacity = min((gw.max_pps() for gw in self._hw_gateways()),
                       default=float("inf"))
        charges: Dict[VipKey, list] = {}
        for spec in flows:
            packets = int(spec.pps * self.interval)
            acc = charges.get(vip_of(spec))
            if acc is None:
                charges[vip_of(spec)] = [packets, 0]
            else:
                acc[0] += packets
        if charges:
            self.hw_counters.count_batch_many(
                {vip: (acc[0], acc[1]) for vip, acc in charges.items()})
        return max(0.0, offered - capacity)

    def _hw_gateways(self):
        cluster = self._actor.controller.clusters[self._actor.cluster_id]
        return [m.gateway for m in cluster.active_members()]

    def _x86_rates(self, reports: Sequence[IntervalReport],
                   flows: Sequence[FlowSpec]) -> Dict[VipKey, float]:
        rates: Dict[VipKey, float] = {}
        flow_to_vip = {f.flow: vip_of(f) for f in flows}
        for report in reports:
            for flow, pps in report.flow_offered_pps().items():
                key = flow_to_vip[flow]
                rates[key] = rates.get(key, 0.0) + pps
        return rates

    def tick(self) -> IntervalSnapshot:
        if self.planner is not None:
            return self._tick_three_tier()
        return self._tick_two_tier()

    def _tick_two_tier(self) -> IntervalSnapshot:
        now = self.engine.now
        flows = self.workload(now)
        offloaded = [f for f in flows if self.scheduler.is_offloaded(vip_of(f))]
        residual = [f for f in flows if not self.scheduler.is_offloaded(vip_of(f))]

        reports = self._serve_x86(residual)
        hw_dropped = self._serve_hw(offloaded)

        # Per-VIP rates: x86 attribution from the interval reports,
        # hardware attribution from the counter sweep.
        rates = self._x86_rates(reports, residual)
        for key, pps in sweep_counter_rates(self.hw_counters, self.interval).items():
            rates[key] = rates.get(key, 0.0) + pps

        self.scheduler.refresh_rates(rates)
        decisions = self.detector.observe(rates)
        self.scheduler.apply(decisions, now)

        snapshot = IntervalSnapshot(
            time=now,
            x86_offered_pps=sum(r.offered_pps for r in reports),
            x86_dropped_pps=sum(r.dropped_pps for r in reports),
            x86_max_core_util=max(
                (u for r in reports for u in r.utilizations()), default=0.0),
            offloaded_pps=sum(f.pps for f in offloaded),
            hw_dropped_pps=hw_dropped,
        )
        self._record_interval(snapshot, reports)
        return snapshot

    def _tick_three_tier(self) -> IntervalSnapshot:
        now = self.engine.now
        # Failed devices first: their VIPs must be re-steered before this
        # interval's traffic is partitioned.
        self.planner.drain_failed(now)
        flows = self.workload(now)
        chip_flows: List[FlowSpec] = []
        dpu_flows: Dict[str, List[FlowSpec]] = {
            name: [] for name in self.planner.devices}
        x86_flows: List[FlowSpec] = []
        for spec in flows:
            tier, device = self.planner.place_of(vip_of(spec))
            if tier == "chip":
                chip_flows.append(spec)
            elif tier == "dpu":
                dpu_flows[device].append(spec)
            else:
                x86_flows.append(spec)

        hw_dropped = self._serve_hw(chip_flows)
        fallback: List[FlowSpec] = []
        dpu_offered = dpu_served = 0.0
        for name in sorted(self.planner.devices):
            report = self.planner.devices[name].serve_interval(
                dpu_flows[name], self.interval, now)
            dpu_offered += report.offered_pps
            dpu_served += report.served_pps
            fallback.extend(report.fallback_specs)
        # The DPU-miss path: whatever a device punted is re-offered to
        # x86, the universal fallback tier, inside the same interval.
        reports = self._serve_x86(x86_flows + fallback)

        rates = self._x86_rates(reports, x86_flows + fallback)
        for key, pps in sweep_counter_rates(self.hw_counters, self.interval).items():
            rates[key] = rates.get(key, 0.0) + pps
        for name in sorted(self.planner.devices):
            sweeps = sweep_counter_rates(
                self.planner.devices[name].sweep_counters, self.interval)
            for key, pps in sweeps.items():
                rates[key] = rates.get(key, 0.0) + pps

        self.planner.observe_and_apply(rates, now)

        snapshot = IntervalSnapshot(
            time=now,
            x86_offered_pps=sum(r.offered_pps for r in reports),
            x86_dropped_pps=sum(r.dropped_pps for r in reports),
            x86_max_core_util=max(
                (u for r in reports for u in r.utilizations()), default=0.0),
            offloaded_pps=sum(f.pps for f in chip_flows),
            hw_dropped_pps=hw_dropped,
            dpu_offered_pps=dpu_offered,
            dpu_served_pps=dpu_served,
            dpu_fallback_pps=sum(f.pps for f in fallback),
        )
        self._record_interval(snapshot, reports)
        return snapshot

    # -- telemetry ----------------------------------------------------------

    def _record_interval(self, snapshot: IntervalSnapshot,
                         reports: Sequence[IntervalReport]) -> None:
        self.snapshots.append(snapshot)
        now = snapshot.time
        series = self._actor.series
        # Tier-labelled series (canonical names).
        chip_served = snapshot.offloaded_pps - snapshot.hw_dropped_pps
        x86_served = snapshot.x86_offered_pps - snapshot.x86_dropped_pps
        series.record("tier/chip/offered-pps", now, snapshot.offloaded_pps)
        series.record("tier/chip/dropped-pps", now, snapshot.hw_dropped_pps)
        series.record("tier/chip/cost-usd", now, self.cost_model.cost_usd(
            "chip", chip_served * self.interval))
        series.record("tier/x86/offered-pps", now, snapshot.x86_offered_pps)
        series.record("tier/x86/dropped-pps", now, snapshot.x86_dropped_pps)
        series.record("tier/x86/max-core-util", now, snapshot.x86_max_core_util)
        series.record("tier/x86/cost-usd", now, self.cost_model.cost_usd(
            "x86", x86_served * self.interval))
        if self.planner is not None:
            series.record("tier/dpu/offered-pps", now, snapshot.dpu_offered_pps)
            series.record("tier/dpu/served-pps", now, snapshot.dpu_served_pps)
            series.record("tier/dpu/fallback-pps", now, snapshot.dpu_fallback_pps)
            series.record("tier/dpu/cost-usd", now, self.cost_model.cost_usd(
                "dpu", snapshot.dpu_served_pps * self.interval))
        # Legacy aliases (pre-tier names), kept so existing benches and
        # dashboards — bench_offload_relief in particular — stay green.
        series.record("x86-offered-pps", now, snapshot.x86_offered_pps)
        series.record("x86-loss", now, snapshot.x86_loss)
        series.record("x86-max-core-util", now, snapshot.x86_max_core_util)
        for gw_index, report in enumerate(reports):
            for core_index, util in enumerate(report.utilizations()):
                series.record(f"gw{gw_index}/core-{core_index}", now, util)
        # Flow-cache hit rate per box: a cheap workload-skew signal (a
        # Zipf-heavy mix caches well; a sprayed mix does not), recorded
        # alongside the core utilisations the detector already watches.
        for gw_index, gw in enumerate(self.x86_gateways):
            if gw.flow_cache is not None:
                gw.publish_cache_counters()
                series.record(f"gw{gw_index}/flowcache-hit-rate", now,
                              gw.flow_cache.hit_rate)

    # -- engine integration -------------------------------------------------

    def start(self, until: Optional[float] = None) -> PeriodicTask:
        """Register the loop on the engine; returns the cancel handle."""
        return self.engine.schedule_every(self.interval, self.tick, until=until)
