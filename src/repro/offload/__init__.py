"""Sketch-based heavy-hitter detection and capacity-aware traffic offload.

The decision layer of the hybrid deployment: *which* traffic runs on
XGW-H and which stays on XGW-x86. Sketches estimate per-VIP rates from
interval observations, an EWMA detector with promote/demote hysteresis
nominates migrations, and a capacity-aware scheduler executes them
transactionally against the chip's compiler-reported SRAM/TCAM headroom.
"""

from .detector import (
    Decision,
    FlowState,
    HeavyHitterDetector,
    sweep_counter_rates,
)
from .loop import IntervalSnapshot, OffloadLoop, vip_of
from .parity import budget_state, decision_state_dump
from .scheduler import (
    ChipBudget,
    OffloadedEntry,
    OffloadScheduler,
    VipKey,
    entry_footprint,
)
from .sketch import CountMinSketch, SpaceSaving

__all__ = [
    "ChipBudget",
    "CountMinSketch",
    "Decision",
    "FlowState",
    "HeavyHitterDetector",
    "IntervalSnapshot",
    "OffloadLoop",
    "OffloadScheduler",
    "OffloadedEntry",
    "SpaceSaving",
    "VipKey",
    "budget_state",
    "decision_state_dump",
    "entry_footprint",
    "sweep_counter_rates",
    "vip_of",
]
