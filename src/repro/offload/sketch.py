"""Streaming heavy-hitter detection structures (§2.2 measurement plane).

Deciding *which* traffic belongs on XGW-H needs per-flow rate estimates
at a scale where exact per-flow state is unaffordable — the paper's
production gateways carry millions of concurrent flows. Programmable
switches solve this with per-stage counter arrays swept by the control
plane; on the x86 side the same role falls to DPDK-polled SW counters.
Both are stood in for here by two classic sketches:

* :class:`CountMinSketch` — a seeded count-min sketch with optional
  conservative update. For width ``w`` and depth ``d`` the standard
  guarantees hold: estimates never under-count, and for any key the
  over-count exceeds ``ε·N`` (``ε = e/w``, ``N`` = total stream weight)
  with probability at most ``δ = e^-d``. Conservative update only
  tightens the over-count; neither bound is weakened.
* :class:`SpaceSaving` — the space-saving top-k tracker: with capacity
  ``c`` every key whose true weight exceeds ``N/c`` is guaranteed to be
  tracked, and each tracked key carries an explicit per-key error bound
  (``estimate - error <= true <= estimate``).

Hashing is derived from an explicit seed (``blake2b`` over the key's
canonical bytes, salted per row), so runs are reproducible bit for bit
regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..tables.geometry import MemoryFootprint, sram_words_for


def _key_bytes(key: Hashable) -> bytes:
    """A canonical byte encoding of *key* (stable across processes)."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode()
    if isinstance(key, int):
        return key.to_bytes((key.bit_length() + 8) // 8 or 1, "big", signed=True)
    return repr(key).encode()


class CountMinSketch:
    """A seeded count-min sketch over arbitrary hashable keys.

    >>> cms = CountMinSketch(width=64, depth=4, seed=7)
    >>> cms.update("vip-1", 100.0)
    100.0
    >>> cms.estimate("vip-1") >= 100.0
    True
    >>> cms.estimate("never-seen")
    0.0
    """

    #: SRAM bits per cell, as the chip would provision them (32-bit
    #: counters per stage-local array).
    CELL_BITS = 32

    def __init__(self, width: int = 2048, depth: int = 4, seed: Hashable = 0,
                 conservative: bool = True):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.conservative = conservative
        self._rows: List[List[float]] = [[0.0] * width for _ in range(depth)]
        self._salts = [
            hashlib.blake2b(
                f"cms|{seed!r}|{row}".encode(), digest_size=16
            ).digest()
            for row in range(depth)
        ]
        self.total = 0.0

    @property
    def epsilon(self) -> float:
        """Additive over-estimate factor: error <= epsilon * total."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Probability the epsilon bound fails for any one key."""
        return math.exp(-self.depth)

    def _indices(self, key: Hashable) -> List[int]:
        data = _key_bytes(key)
        return [
            int.from_bytes(
                hashlib.blake2b(data, digest_size=8, key=salt).digest(), "big"
            ) % self.width
            for salt in self._salts
        ]

    def update(self, key: Hashable, count: float = 1.0) -> float:
        """Add *count* for *key*; returns the new estimate."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.total += count
        indices = self._indices(key)
        if self.conservative:
            # Conservative update: raise each row only as far as the new
            # lower bound requires, never past it.
            estimate = min(row[i] for row, i in zip(self._rows, indices))
            target = estimate + count
            for row, i in zip(self._rows, indices):
                if row[i] < target:
                    row[i] = target
            return target
        for row, i in zip(self._rows, indices):
            row[i] += count
        return min(row[i] for row, i in zip(self._rows, indices))

    def estimate(self, key: Hashable) -> float:
        """The (never under-counting) estimate of *key*'s total weight."""
        return min(row[i] for row, i in zip(self._rows, self._indices(key)))

    def error_bound(self) -> float:
        """The additive bound holding per key with probability 1 - delta."""
        return self.epsilon * self.total

    def reset(self) -> None:
        """Clear all cells (the control plane's per-interval sweep)."""
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0.0
        self.total = 0.0

    def footprint(self) -> MemoryFootprint:
        """SRAM the chip would spend on this sketch's counter arrays."""
        cells = self.width * self.depth
        return MemoryFootprint(sram_words=cells * sram_words_for(self.CELL_BITS))


@dataclass
class TrackedKey:
    """One space-saving slot: estimate and its worst-case over-count."""

    key: Hashable
    count: float
    error: float
    seq: int  # insertion sequence, the deterministic tie-breaker


class SpaceSaving:
    """The space-saving top-k heavy-hitter tracker (Metwally et al.).

    Keeps at most *capacity* keys. On overflow the minimum-count slot is
    recycled: the new key inherits that count as its error bound, so
    ``count - error <= true <= count`` always holds for tracked keys.

    >>> ss = SpaceSaving(capacity=2)
    >>> for key, n in [("a", 50), ("b", 30)]:
    ...     ss.update(key, n)
    >>> [key for key, _est, _err in ss.top(2)]
    ['a', 'b']
    >>> ss.update("c", 2)  # full: recycles the min slot (b's count = error)
    >>> ss.top(2)
    [('a', 50, 0.0), ('c', 32, 30)]
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: Dict[Hashable, TrackedKey] = {}
        self._seq = 0
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._slots

    def update(self, key: Hashable, count: float = 1.0) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.total += count
        slot = self._slots.get(key)
        if slot is not None:
            slot.count += count
            return
        self._seq += 1
        if len(self._slots) < self.capacity:
            self._slots[key] = TrackedKey(key, count, 0.0, self._seq)
            return
        # Recycle the minimum slot; ties broken by insertion order then
        # canonical key bytes so eviction is deterministic.
        victim = min(
            self._slots.values(),
            key=lambda s: (s.count, s.seq, _key_bytes(s.key)),
        )
        del self._slots[victim.key]
        self._slots[key] = TrackedKey(key, victim.count + count, victim.count,
                                      self._seq)

    def estimate(self, key: Hashable) -> float:
        slot = self._slots.get(key)
        return slot.count if slot is not None else 0.0

    def top(self, k: int) -> List[Tuple[Hashable, float, float]]:
        """The *k* heaviest tracked keys as (key, estimate, error)."""
        ordered = sorted(
            self._slots.values(),
            key=lambda s: (-s.count, s.seq, _key_bytes(s.key)),
        )
        return [(s.key, s.count, s.error) for s in ordered[:k]]

    def guaranteed_threshold(self) -> float:
        """Any key with true weight above this is certainly tracked."""
        return self.total / self.capacity
