"""Counters, running statistics and time-series recording."""

from .stats import (
    CounterSet,
    PercentileSketch,
    RunningStats,
    histogram,
    jains_fairness,
    loss_rate,
    top_n_share,
    weighted_mean,
)
from .timeseries import SeriesBundle, TimeSeries
from .trace import PathTrace, TraceHop

__all__ = [
    "CounterSet",
    "RunningStats",
    "PercentileSketch",
    "jains_fairness",
    "top_n_share",
    "histogram",
    "loss_rate",
    "weighted_mean",
    "TimeSeries",
    "PathTrace",
    "TraceHop",
    "SeriesBundle",
]
