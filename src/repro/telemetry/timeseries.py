"""Time-series recording for the longitudinal experiments (Figs 4-6, 19-23)."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple


class TimeSeries:
    """An append-only (time, value) series with monotone timestamps."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"timestamps must be monotone: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def window(self, start: float, end: float) -> "TimeSeries":
        """The sub-series with timestamps in ``[start, end)``."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        out = TimeSeries(self.name)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def value_at(self, time: float) -> float:
        """Last recorded value at or before *time* (step interpolation)."""
        idx = bisect_right(self._times, time) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self._values[idx]

    def maximum(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return max(self._values)

    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty series")
        return sum(self._values) / len(self._values)

    def resample_max(self, bucket: float) -> "TimeSeries":
        """Max-downsample into fixed *bucket*-wide intervals.

        Mirrors how coarse monitoring hides sub-interval spikes: the paper
        notes CPU plots are coarse while loss happens on instantaneous
        100% spikes.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        out = TimeSeries(self.name)
        if not self._times:
            return out
        current_bucket = None
        current_max = 0.0
        for t, v in zip(self._times, self._values):
            b = int(t // bucket)
            if current_bucket is None:
                current_bucket, current_max = b, v
            elif b == current_bucket:
                current_max = max(current_max, v)
            else:
                out.record(current_bucket * bucket, current_max)
                current_bucket, current_max = b, v
        out.record(current_bucket * bucket, current_max)
        return out

    def resample_mean(self, bucket: float) -> "TimeSeries":
        """Mean-downsample into fixed *bucket*-wide intervals.

        The counterpart of :meth:`resample_max` for rate series: the
        offload detector wants the *average* per-bucket rate (a decision
        input), not the spike envelope (a loss diagnostic).

        >>> ts = TimeSeries("pps")
        >>> for i in range(4):
        ...     ts.record(i * 0.5, float(i))
        >>> list(ts.resample_mean(1.0).points())
        [(0.0, 0.5), (1.0, 2.5)]
        >>> list(ts.resample_mean(2.0).points())
        [(0.0, 1.5)]
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        out = TimeSeries(self.name)
        if not self._times:
            return out
        current_bucket = None
        total = 0.0
        count = 0
        for t, v in zip(self._times, self._values):
            b = int(t // bucket)
            if current_bucket is None:
                current_bucket, total, count = b, v, 1
            elif b == current_bucket:
                total += v
                count += 1
            else:
                out.record(current_bucket * bucket, total / count)
                current_bucket, total, count = b, v, 1
        out.record(current_bucket * bucket, total / count)
        return out

    def points(self) -> Iterable[Tuple[float, float]]:
        return zip(self._times, self._values)


class SeriesBundle:
    """A named collection of :class:`TimeSeries` (one per core/pipe/node)."""

    def __init__(self):
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        """Get (or lazily create) the series called *name*."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> TimeSeries:
        return self._series[name]

    def top_by_mean(self, n: int) -> List[TimeSeries]:
        """The *n* series with the highest mean value (Fig. 4 top-5 cores).

        Deterministic: ties (and empty series, which rank as 0.0) are
        broken by series name, so the top-5-core plots are stable run to
        run regardless of dict insertion order.
        """
        ordered = sorted(
            self._series.values(),
            key=lambda s: (-(s.mean() if len(s) else 0.0), s.name),
        )
        return ordered[:n]
