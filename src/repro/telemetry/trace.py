"""VTrace-style path tracing (§3.1).

The paper cites VTrace — Alibaba's "automatic diagnostic system for
persistent packet loss in cloud-scale overlay networks" — as one of the
proprietary protocols that pushed them to programmable ASICs. This
module provides the equivalent capability for the simulated region: a
probe packet collects a per-hop record (balancer decision, cluster and
gateway choice, every pipe traversed, table verdicts, the exact drop
point), so a persistent loss can be localised to a table on a pipe of a
gateway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dataplane.gateway_logic import DropReason


@dataclass(frozen=True)
class TraceHop:
    """One step of a traced packet's journey."""

    component: str  # "balancer", "cluster", "gateway", "pipe", "x86", ...
    node: str  # which instance
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.component}:{self.node}{suffix}"


@dataclass
class PathTrace:
    """The collected journey of one traced packet."""

    hops: List[TraceHop] = field(default_factory=list)
    outcome: str = ""
    drop_reason: str = ""

    def add(self, component: str, node: str, detail: str = "") -> None:
        self.hops.append(TraceHop(component, node, detail))

    @property
    def dropped(self) -> bool:
        return self.outcome == "drop"

    @property
    def reason(self) -> Optional[DropReason]:
        """The :class:`DropReason` behind :attr:`drop_reason`, so VTrace
        output, gateway counters and audit findings share one vocabulary
        (None when the packet was delivered or the detail is ad hoc)."""
        return DropReason.from_detail(self.drop_reason)

    def drop_location(self) -> Optional[TraceHop]:
        """Where the packet died, if it did — VTrace's core answer."""
        if not self.dropped or not self.hops:
            return None
        return self.hops[-1]

    def components(self) -> List[str]:
        return [hop.component for hop in self.hops]

    def describe(self) -> str:
        """A human-readable one-trace report."""
        lines = [f"  {i}: {hop}" for i, hop in enumerate(self.hops)]
        tail = f"outcome: {self.outcome}"
        if self.dropped:
            tail += f" — {self.drop_reason} at {self.drop_location()}"
        return "\n".join(lines + [tail])
