"""Counters and summary statistics used throughout the simulators."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple


class CounterSet:
    """A named bundle of monotonically increasing counters.

    >>> c = CounterSet()
    >>> c.add("rx_packets", 3)
    >>> c["rx_packets"]
    3
    """

    def __init__(self):
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a gauge for decrements")
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of all counters."""
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` counters, 0.0 when denominator is 0."""
        denom = self._counts.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counts.get(numerator, 0) / denom

    def merge(self, other: "CounterSet") -> None:
        """Fold *other*'s counts into this set."""
        for name, value in other._counts.items():
            self._counts[name] += value


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def coefficient_of_variation(self) -> float:
        """stddev / mean — the balance metric used for pipe/gateway spread."""
        return self.stddev / self.mean if self.mean else 0.0


class PercentileSketch:
    """Fixed-capacity reservoir for approximate percentiles.

    Deterministic given the insertion order for inputs smaller than the
    capacity; degrades to uniform reservoir sampling beyond it.
    """

    def __init__(self, capacity: int = 4096, rng=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._samples: List[float] = []
        self._seen = 0
        self._rng = rng

    def observe(self, value: float) -> None:
        self._seen += 1
        if len(self._samples) < self._capacity:
            self._samples.append(value)
        else:
            if self._rng is None:
                raise ValueError("reservoir overflow requires an rng for sampling")
            j = self._rng.randrange(self._seen)
            if j < self._capacity:
                self._samples[j] = value

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) of observed values."""
        if not self._samples:
            raise ValueError("no samples observed")
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = q / 100 * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac


def jains_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index in (0, 1]; 1.0 means perfectly balanced load."""
    if not values:
        raise ValueError("values must be non-empty")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def top_n_share(values: Sequence[float], n: int) -> float:
    """Fraction of the total contributed by the n largest values (Fig. 7)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    total = sum(values)
    if total == 0:
        return 0.0
    return sum(sorted(values, reverse=True)[:n]) / total


def histogram(values: Sequence[float], edges: Sequence[float]) -> List[int]:
    """Counts of *values* in half-open bins ``[edges[i], edges[i+1])``."""
    if len(edges) < 2 or any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("edges must be strictly increasing with >= 2 entries")
    counts = [0] * (len(edges) - 1)
    for value in values:
        for i in range(len(edges) - 1):
            if edges[i] <= value < edges[i + 1]:
                counts[i] += 1
                break
    return counts


def loss_rate(dropped: int, offered: int) -> float:
    """Packet loss rate with a safe zero-traffic case."""
    if offered < 0 or dropped < 0 or dropped > offered:
        raise ValueError("need 0 <= dropped <= offered")
    return dropped / offered if offered else 0.0


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs."""
    num = 0.0
    den = 0.0
    for value, weight in pairs:
        num += value * weight
        den += weight
    if den == 0:
        raise ValueError("total weight is zero")
    return num / den
