"""A minimal deterministic discrete-event simulation engine.

The region-scale experiments (festival weeks, table-update months) run as
event-driven simulations: producers schedule events on a shared clock, the
engine dispatches them in timestamp order. Ties are broken by insertion
sequence so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Event = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling in the past)."""


class PeriodicTask:
    """Cancellation handle for a :meth:`Engine.schedule_every` series."""

    __slots__ = ("_cancelled", "fires", "_engine", "_entry")

    def __init__(self, engine: Optional["Engine"] = None):
        self._cancelled = False
        self.fires = 0
        self._engine = engine
        self._entry: Optional[Tuple[float, int, Event]] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop the series. Idempotent — repeated calls are no-ops — and
        the already-queued tick is purged from the engine queue, so
        :meth:`Engine.pending` reflects true quiescence after a cancel."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._engine is not None and self._entry is not None:
            self._engine._discard(self._entry)
            self._entry = None


class Engine:
    """Discrete-event engine with a float clock.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(2.0, lambda: hits.append("b"))
    >>> _ = eng.schedule(1.0, lambda: hits.append("a"))
    >>> eng.run()
    >>> hits
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, at: float, event: Event) -> Tuple[float, int, Event]:
        """Schedule *event* to fire at absolute time *at*. Returns an
        opaque queue entry usable only for internal cancellation."""
        if at < self._now:
            raise SimulationError(f"cannot schedule at {at} before now={self._now}")
        entry = (at, next(self._sequence), event)
        heapq.heappush(self._queue, entry)
        return entry

    def _discard(self, entry: Tuple[float, int, Event]) -> None:
        """Drop a queued entry (used by :meth:`PeriodicTask.cancel`)."""
        try:
            self._queue.remove(entry)
        except ValueError:
            return
        heapq.heapify(self._queue)

    def schedule_in(self, delay: float, event: Event) -> None:
        """Schedule *event* to fire *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self._now + delay, event)

    def schedule_every(self, interval: float, event: Event,
                       until: Optional[float] = None) -> PeriodicTask:
        """Fire *event* periodically every *interval*, optionally *until* a
        time. Returns a :class:`PeriodicTask` that can cancel the series."""
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask(self)

        def tick() -> None:
            if task.cancelled:
                return
            task._entry = None
            task.fires += 1
            event()
            if task.cancelled:  # the event itself may cancel the series
                return
            next_at = self._now + interval
            if until is None or next_at <= until:
                task._entry = self.schedule(next_at, tick)

        first = self._now + interval
        if until is None or first <= until:
            task._entry = self.schedule(first, tick)
        return task

    def step(self) -> bool:
        """Dispatch the next event. Returns False when the queue is empty."""
        if not self._queue:
            return False
        at, _seq, event = heapq.heappop(self._queue)
        self._now = at
        event()
        self.events_processed += 1
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass *until*."""
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    return
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of events still queued — the public quiescence check
        (cancelled periodic ticks are purged, so 0 means truly idle)."""
        return len(self._queue)
