"""A minimal deterministic discrete-event simulation engine.

The region-scale experiments (festival weeks, table-update months) run as
event-driven simulations: producers schedule events on a shared clock, the
engine dispatches them in timestamp order. Ties are broken by insertion
sequence so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Event = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling in the past)."""


class PeriodicTask:
    """Cancellation handle for a :meth:`Engine.schedule_every` series."""

    __slots__ = ("_cancelled", "fires")

    def __init__(self):
        self._cancelled = False
        self.fires = 0

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop the series; the already-queued tick becomes a no-op."""
        self._cancelled = True


class Engine:
    """Discrete-event engine with a float clock.

    >>> eng = Engine()
    >>> hits = []
    >>> eng.schedule(2.0, lambda: hits.append("b"))
    >>> eng.schedule(1.0, lambda: hits.append("a"))
    >>> eng.run()
    >>> hits
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, at: float, event: Event) -> None:
        """Schedule *event* to fire at absolute time *at*."""
        if at < self._now:
            raise SimulationError(f"cannot schedule at {at} before now={self._now}")
        heapq.heappush(self._queue, (at, next(self._sequence), event))

    def schedule_in(self, delay: float, event: Event) -> None:
        """Schedule *event* to fire *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self._now + delay, event)

    def schedule_every(self, interval: float, event: Event,
                       until: Optional[float] = None) -> PeriodicTask:
        """Fire *event* periodically every *interval*, optionally *until* a
        time. Returns a :class:`PeriodicTask` that can cancel the series."""
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask()

        def tick() -> None:
            if task.cancelled:
                return
            task.fires += 1
            event()
            next_at = self._now + interval
            if until is None or next_at <= until:
                self.schedule(next_at, tick)

        first = self._now + interval
        if until is None or first <= until:
            self.schedule(first, tick)
        return task

    def step(self) -> bool:
        """Dispatch the next event. Returns False when the queue is empty."""
        if not self._queue:
            return False
        at, _seq, event = heapq.heappop(self._queue)
        self._now = at
        event()
        self.events_processed += 1
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass *until*."""
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    return
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
