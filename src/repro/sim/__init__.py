"""Deterministic simulation substrate: event engine and seeded randomness."""

from .engine import Engine, PeriodicTask, SimulationError
from .rand import (
    WeightedSampler,
    derive,
    make_rng,
    sample_without_replacement,
    shuffled,
    zipf_weights,
)

__all__ = [
    "Engine",
    "PeriodicTask",
    "SimulationError",
    "WeightedSampler",
    "derive",
    "make_rng",
    "zipf_weights",
    "sample_without_replacement",
    "shuffled",
]
