"""Deterministic simulation substrate: event engine and seeded randomness."""

from .engine import Engine, SimulationError
from .rand import (
    WeightedSampler,
    derive,
    make_rng,
    sample_without_replacement,
    shuffled,
    zipf_weights,
)

__all__ = [
    "Engine",
    "SimulationError",
    "WeightedSampler",
    "derive",
    "make_rng",
    "zipf_weights",
    "sample_without_replacement",
    "shuffled",
]
