"""Deterministic randomness helpers.

Every stochastic component in the simulator takes either a seed or an
explicit :class:`random.Random` so experiments are reproducible run to
run. :func:`derive` builds independent child streams from a parent seed
without correlated state.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed) -> random.Random:
    """Return a ``random.Random`` for *seed* (pass through existing RNGs)."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive(seed, *labels) -> random.Random:
    """Derive an independent child RNG from *seed* and a label path.

    >>> derive(1, "flows").random() == derive(1, "flows").random()
    True
    >>> derive(1, "flows").random() == derive(1, "tables").random()
    False
    """
    digest = hashlib.sha256(repr((seed, labels)).encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Normalised Zipf(alpha) weights over ranks 1..n (heavy-hitter skew)."""
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class WeightedSampler:
    """Alias-method sampler: O(1) draws from a fixed discrete distribution.

    Used on every simulated packet, so the O(n) ``random.choices`` setup
    cost per draw is unacceptable.
    """

    def __init__(self, weights: Sequence[float], rng: random.Random):
        if not weights:
            raise ValueError("weights must be non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        n = len(weights)
        scaled = [w * n / total for w in weights]
        self._prob = [0.0] * n
        self._alias = [0] * n
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        for i in large + small:
            self._prob[i] = 1.0
            self._alias[i] = i
        self._rng = rng
        self._n = n

    def sample(self) -> int:
        """Draw one index from the distribution."""
        i = self._rng.randrange(self._n)
        return i if self._rng.random() < self._prob[i] else self._alias[i]

    def sample_many(self, count: int) -> List[int]:
        """Draw *count* indices."""
        return [self.sample() for _ in range(count)]


def sample_without_replacement(items: Sequence[T], k: int, rng: random.Random) -> List[T]:
    """Uniform sample of *k* distinct items from *items*."""
    if k > len(items):
        raise ValueError("sample size exceeds population")
    return rng.sample(list(items), k)


def shuffled(items: Iterable[T], rng: random.Random) -> List[T]:
    """A shuffled copy of *items*."""
    out = list(items)
    rng.shuffle(out)
    return out
