"""The differential harness: one config in, one classified outcome out.

Every generated config must land in exactly one arm of the trichotomy:

* **rejected** — the planner/compiler refuses placement with a
  machine-diagnosable :class:`~repro.tofino.compiler.PlacementError`
  (classified ``stage[:resource]`` reason), and rolls back cleanly
  (occupancy all-zero afterwards);
* **placed** — placement succeeds, occupancy accounting matches
  ``Compiler.occupancy()`` block-for-block, the hardware gateway
  forwards byte-identically to the :class:`LinearScanOracle` on every
  sampled flow, and the audit's LPM-oracle invariant stays silent;
* anything else is a counterexample: **diverged** (semantics differ) or
  **error** (an unclassified exception escaped).

Outcomes carry a digest over every observable, so a whole corpus run is
reproducible byte-for-byte from (seed, index).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..audit.intent import IntentSnapshot
from ..audit.invariants import AuditContext, LpmOracleEquivalence, ShadowRules
from ..core.planner import PlacementPlanner
from ..dataplane.gateway_logic import ForwardAction, ForwardResult
from ..net.packet import Packet
from ..tofino.compiler import PlacementError
from ..tofino.memory import (
    SRAM_WORDS_PER_BLOCK,
    SRAM_WORDS_PER_PIPELINE,
    TCAM_SLICES_PER_BLOCK,
    TCAM_SLICES_PER_PIPELINE,
    blocks_for_footprint,
)
from ..tofino.pipeline import PipelineFabric
from ..sim.rand import derive
from ..workloads.traffic import build_vxlan_packet
from .generator import BuiltConfig, GatewayConfig
from .oracle import LinearScanOracle

STATUS_PLACED = "placed"
STATUS_REJECTED = "rejected"
STATUS_DIVERGED = "diverged"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class CaseOutcome:
    """The classified result of one config run."""

    status: str
    reason: str = ""
    flows_checked: int = 0
    digest: str = ""
    detail: str = ""

    @property
    def signature(self) -> Tuple[str, str]:
        """The (status, reason) pair the minimizer preserves."""
        return (self.status, self.reason)

    @property
    def is_counterexample(self) -> bool:
        return self.status in (STATUS_DIVERGED, STATUS_ERROR)


class _FuzzMember:
    """The minimal member shape the reused audit invariants inspect."""

    def __init__(self, gateway):
        self.name = "fuzz"
        self.gateway = gateway


def _digest(parts: List[str]) -> str:
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def compare_results(hw: ForwardResult, oracle: ForwardResult) -> Optional[str]:
    """The comparison contract; None when equivalent, else a description.

    Action always; drop detail for DROP; full wire bytes (and VNI) for
    DELIVER_NC; detail + untouched bytes for REDIRECT_X86/UPLINK. The
    hardware result's ``resolved_vni`` is not populated by the chip path
    and is deliberately not compared.
    """
    if hw.action is not oracle.action:
        return f"action {hw.action.value} != {oracle.action.value} ({hw.detail!r} vs {oracle.detail!r})"
    if hw.action is ForwardAction.DROP:
        if hw.detail != oracle.detail:
            return f"drop detail {hw.detail!r} != {oracle.detail!r}"
        return None
    if hw.detail != oracle.detail:
        return f"detail {hw.detail!r} != {oracle.detail!r}"
    if hw.packet.to_bytes() != oracle.packet.to_bytes():
        return "output bytes differ"
    if hw.action is ForwardAction.DELIVER_NC and hw.packet.vni != oracle.packet.vni:
        return f"delivered vni {hw.packet.vni} != {oracle.packet.vni}"
    return None


def sample_flows(config: GatewayConfig, built: BuiltConfig, count: int) -> List[Packet]:
    """Deterministic probe flows biased towards the installed state.

    Mixes in-subnet destinations (VM hits and misses), exact installed
    VM addresses, unknown VNIs, both address families, random far-off
    addresses and the occasional non-VXLAN packet.
    """
    rng = derive(config.seed, "fuzz-flows", config.index)
    vnis = sorted({vni for vni, _p, _a in built.routes}
                  | {vni for (vni, _ip, _v) in built.vms}) or [1]
    vm_keys = sorted(built.vms)
    flows: List[Packet] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.05:
            flows.append(build_vxlan_packet(
                rng.choice(vnis), rng.randrange(1 << 32),
                rng.randrange(1 << 32)).decap())
            continue
        vni = rng.choice(vnis) if rng.random() < 0.75 else rng.randrange(1, 130)
        pick = rng.random()
        if pick < 0.25 and vm_keys:
            vm_vni, dst, version = rng.choice(vm_keys)
            if rng.random() < 0.8:
                vni = vm_vni
        elif pick < 0.7 and built.routes:
            r_vni, prefix, _action = rng.choice(built.routes)
            if rng.random() < 0.8:
                vni = r_vni
            version = prefix.version
            span = prefix.bits - prefix.prefix_len
            dst = prefix.network + rng.randrange(min(1 << span, 1 << 16)) if span else prefix.network
        else:
            version = 4 if rng.random() < 0.8 else 6
            dst = rng.randrange(1 << (32 if version == 4 else 128))
        src = rng.randrange(1 << (32 if version == 4 else 128))
        flows.append(build_vxlan_packet(
            vni, src, dst, version=version,
            src_port=rng.randrange(1 << 16), dst_port=rng.randrange(1 << 16)))
    return flows


def _check_occupancy(planner: PlacementPlanner, built: BuiltConfig,
                     report) -> Optional[str]:
    """Cross-check Compiler.occupancy() against the placement plan."""
    occupancy = planner.compiler.occupancy()
    expect_sram = {i: 0 for i in range(4)}
    expect_tcam = {i: 0 for i in range(4)}
    per_table = {t.name: [0, 0] for t in built.logical_tables}
    for segment in report.segments:
        pipeline = segment.pipe[0]
        expect_sram[pipeline] += segment.footprint.sram_words
        expect_tcam[pipeline] += segment.footprint.tcam_slices
        s_blocks, t_blocks = blocks_for_footprint(segment.footprint)
        per_table[segment.table][0] += s_blocks
        per_table[segment.table][1] += t_blocks
    for i in range(4):
        have = occupancy[i]
        if (have.sram_words, have.tcam_slices) != (expect_sram[i], expect_tcam[i]):
            return (f"pipeline {i}: occupancy ({have.sram_words}, {have.tcam_slices})"
                    f" != planned ({expect_sram[i]}, {expect_tcam[i]})")
        if have.sram_words > SRAM_WORDS_PER_PIPELINE or have.tcam_slices > TCAM_SLICES_PER_PIPELINE:
            return f"pipeline {i}: occupancy exceeds capacity"
        if have.sram_words % SRAM_WORDS_PER_BLOCK or have.tcam_slices % TCAM_SLICES_PER_BLOCK:
            return f"pipeline {i}: occupancy not block-granular"
    for table in built.logical_tables:
        need = blocks_for_footprint(table.footprint)
        got = tuple(per_table[table.name])
        if got != need:
            return f"table {table.name}: {got} blocks placed, footprint needs {need}"
    return None


def _assert_clean_fabric(planner: PlacementPlanner) -> Optional[str]:
    for i, footprint in planner.compiler.occupancy().items():
        if footprint.sram_words or footprint.tcam_slices:
            return f"pipeline {i} still holds memory after rejected placement"
    return None


def run_case(config: GatewayConfig, flows: int = 50) -> CaseOutcome:
    """Drive one config through the full trichotomy check."""
    try:
        built = config.build()
    except Exception as exc:  # noqa: BLE001 - classified as a counterexample
        return CaseOutcome(STATUS_ERROR, reason="build",
                           detail=f"{type(exc).__name__}: {exc}")

    fabric = PipelineFabric(folded=True)
    planner = PlacementPlanner(fabric)
    try:
        report = planner.plan(built.logical_tables,
                              entry_pipeline=config.entry_pipeline)
    except PlacementError as exc:
        if not getattr(exc, "stage", None) or exc.stage == "compiler":
            return CaseOutcome(STATUS_ERROR, reason="unclassified-placement-error",
                               detail=str(exc))
        leak = _assert_clean_fabric(planner)
        if leak is not None:
            return CaseOutcome(STATUS_ERROR, reason="rollback-leak", detail=leak)
        digest = _digest([STATUS_REJECTED, exc.reason, str(exc)])
        return CaseOutcome(STATUS_REJECTED, reason=exc.reason,
                           digest=digest, detail=str(exc))
    except Exception as exc:  # noqa: BLE001
        return CaseOutcome(STATUS_ERROR, reason="plan",
                           detail=f"{type(exc).__name__}: {exc}")

    mismatch = _check_occupancy(planner, built, report)
    if mismatch is not None:
        return CaseOutcome(STATUS_ERROR, reason="occupancy-mismatch", detail=mismatch)

    oracle = LinearScanOracle(built.routes, built.vms, built.acl_rules,
                              gateway_ip=built.hw.gateway_ip)
    parts: List[str] = [STATUS_PLACED]
    packets = sample_flows(config, built, flows)
    for i, packet in enumerate(packets):
        try:
            hw_result = built.hw.forward(packet)
            oracle_result = oracle.forward(packet)
        except Exception as exc:  # noqa: BLE001
            return CaseOutcome(STATUS_ERROR, reason="forward", flows_checked=i,
                               detail=f"{type(exc).__name__}: {exc}")
        divergence = compare_results(hw_result, oracle_result)
        if divergence is not None:
            return CaseOutcome(STATUS_DIVERGED, reason="forwarding",
                               flows_checked=i,
                               detail=f"flow {i}: {divergence}")
        out_bytes = ("" if hw_result.action is ForwardAction.DROP
                     else hw_result.packet.to_bytes().hex())
        parts.append(f"{i}:{hw_result.action.value}:{hw_result.detail}:{out_bytes}")

    ctx = AuditContext(intent=IntentSnapshot({}, "fuzz"), cluster_id="fuzz",
                       seed=config.seed, samples_per_prefix=2)
    member = _FuzzMember(built.hw)
    lpm_findings = LpmOracleEquivalence().check(ctx, member)
    if lpm_findings:
        first = lpm_findings[0]
        return CaseOutcome(STATUS_DIVERGED, reason="lpm-oracle",
                           flows_checked=len(packets),
                           detail=f"{first.kind}: {first.detail}")
    for finding in ShadowRules().check(ctx, member):
        parts.append(f"shadow:{finding.kind}:{finding.key}")

    return CaseOutcome(STATUS_PLACED, flows_checked=len(packets),
                       digest=_digest(parts))
