"""The linear-scan forwarding oracle the hardware gateway is diffed against.

Re-implements the gateway program (Wong et al.'s differential-testing
shape) from first principles over *flat* structures rebuilt straight
from a config's op list: longest-prefix match is a brute-force
:func:`repro.tables.alpm.oracle_lookup` scan over the pooled composite
route list, the VM-NC map is a plain dict, and the ACL is a stable-sorted
linear first-match scan. No tries, no ALPM carving, no pipeline split —
so a divergence always implicates the optimised structures or the
pipeline program, never the oracle.

Meters and counters are intentionally absent: fuzz configs never
configure meters (unconfigured meters pass GREEN on both sides), and
counters carry no forwarding semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dataplane.gateway_logic import DropReason, ForwardAction, ForwardResult, inner_flow_key
from ..net.addr import Prefix
from ..net.packet import Packet
from ..tables.acl import AclRule, AclVerdict
from ..tables.alpm import oracle_lookup
from ..tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable

_MAX_HOPS = 8  # mirrors VxlanRoutingTable.resolve's default budget


class LinearScanOracle:
    """Reference gateway semantics over flat, scan-based structures."""

    def __init__(
        self,
        routes: List[Tuple[int, Prefix, RouteAction]],
        vms: Dict[Tuple[int, int, int], int],
        acl_rules: List[AclRule],
        gateway_ip: int,
    ):
        self.width = VxlanRoutingTable.composite_width()
        # The composite encoding scopes each route to its VNI: every
        # prefix length includes the full 24 VNI bits + 1 AF bit.
        self.composite: List[Tuple[int, int, RouteAction]] = []
        for vni, prefix, action in routes:
            af = 0 if prefix.version == 4 else 1
            addr = prefix.network << (128 - 32) if prefix.version == 4 else prefix.network
            network = (vni << 129) | (af << 128) | addr
            self.composite.append((network, 24 + 1 + prefix.prefix_len, action))
        self.vms = dict(vms)
        # Stable sort by descending priority — insertion order breaks ties,
        # exactly like AclTable's repeated insert-then-sort.
        self.acl_rules = sorted(acl_rules, key=lambda r: -r.priority)
        self.gateway_ip = gateway_ip

    # -- lookups ----------------------------------------------------------

    def _lookup(self, vni: int, address: int, version: int) -> Optional[RouteAction]:
        key = VxlanRoutingTable.composite_key(vni, address, version)
        hit = oracle_lookup(self.composite, key, self.width)
        return hit[2] if hit is not None else None

    def _resolve(self, vni: int, address: int, version: int):
        """(terminal vni, action) or a DropReason for misses/loops."""
        seen = set()
        current = vni
        hops = 0
        while True:
            if current in seen or hops > _MAX_HOPS:
                return None, DropReason.PEER_LOOP
            seen.add(current)
            action = self._lookup(current, address, version)
            if action is None:
                return None, DropReason.NO_ROUTE
            if action.scope is not Scope.PEER:
                return (current, action), None
            current = action.next_hop_vni
            hops += 1

    # -- the program -------------------------------------------------------

    def forward(self, packet: Packet) -> ForwardResult:
        """The full gateway program, in software-gateway evaluation order."""
        if not packet.is_vxlan:
            return ForwardResult(ForwardAction.DROP, packet,
                                 detail=DropReason.NOT_VXLAN.value)
        vni = packet.vni
        flow = inner_flow_key(packet)
        for rule in self.acl_rules:
            if rule.matches(vni, flow):
                if rule.verdict is AclVerdict.DENY:
                    return ForwardResult(ForwardAction.DROP, packet,
                                         detail=DropReason.ACL_DENY.value)
                break
        terminal, drop = self._resolve(vni, packet.inner_dst, packet.inner_version)
        if terminal is None:
            return ForwardResult(ForwardAction.DROP, packet, detail=drop.value)
        resolved_vni, action = terminal
        scope = action.scope
        if scope is Scope.LOCAL:
            nc_ip = self.vms.get((resolved_vni, packet.inner_dst, packet.inner_version))
            if nc_ip is None:
                return ForwardResult(ForwardAction.DROP, packet,
                                     detail=DropReason.NO_VM.value,
                                     resolved_vni=resolved_vni)
            out = packet
            if resolved_vni != vni:
                out = out.with_vni(resolved_vni)
            out = out.with_outer_src(self.gateway_ip).with_outer_dst(nc_ip)
            return ForwardResult(ForwardAction.DELIVER_NC, out, detail="local",
                                 resolved_vni=resolved_vni, nc_ip=nc_ip)
        if scope is Scope.SERVICE:
            return ForwardResult(ForwardAction.REDIRECT_X86, packet,
                                 detail=action.target or "service",
                                 resolved_vni=resolved_vni)
        return ForwardResult(ForwardAction.UPLINK, packet,
                             detail=action.target or scope.value,
                             resolved_vni=resolved_vni)
