"""Delta-debugging minimizer over a config's op list.

Classic ddmin (Zeller & Hildebrandt) on the flat op sequence: remove
chunks while the harness still reports the *same* ``(status, reason)``
signature, then sweep single ops to a fixpoint. The result is the
smallest op list (under this reduction) that still reproduces the
counterexample — small enough to read, and committed under
``tests/fuzz/corpus/`` as a permanent regression test.

The predicate is budgeted: minimization of a pathological case stops
after ``budget`` harness runs and returns the best reduction so far.

>>> from .generator import GatewayConfig
>>> bad = GatewayConfig(seed=0, index=0, ops=(
...     ("pressure", "huge", 2.5, 0.0, 0, False, None),
...     ("vm", 5, 0x0A050002, 4, 0x0A000001),
... ))
>>> result = minimize(bad)
>>> len(result.config.ops), result.config.ops[0][1]
(1, 'huge')
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .generator import GatewayConfig
from .harness import CaseOutcome, run_case


@dataclass
class MinimizationResult:
    """The reduced config plus bookkeeping about the search."""

    config: GatewayConfig
    signature: Tuple[str, str]
    original_ops: int
    tests_run: int
    exhausted_budget: bool = False

    @property
    def removed(self) -> int:
        return self.original_ops - len(self.config.ops)


def minimize(
    config: GatewayConfig,
    flows: int = 50,
    budget: int = 2000,
    interesting: Optional[Callable[[GatewayConfig], bool]] = None,
) -> MinimizationResult:
    """Shrink *config* while preserving its outcome signature.

    *interesting* overrides the default predicate (same ``(status,
    reason)`` as the unreduced config under :func:`run_case`) — tests use
    this to minimize against arbitrary properties.
    """
    tests = 0

    if interesting is None:
        target = run_case(config, flows=flows).signature
        tests += 1

        def interesting(candidate: GatewayConfig) -> bool:
            return run_case(candidate, flows=flows).signature == target
    else:
        target = ("custom", "custom")

    def check(ops: List[tuple]) -> bool:
        nonlocal tests
        if tests >= budget:
            return False
        tests += 1
        return interesting(config.with_ops(ops))

    ops = list(config.ops)
    granularity = 2
    exhausted = False
    while len(ops) >= 2 and tests < budget:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + chunk:]
            if candidate != ops and check(candidate):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(granularity * 2, len(ops))
    # Singleton sweep to a fixpoint (ddmin can leave 1-op leftovers).
    changed = True
    while changed and tests < budget:
        changed = False
        for i in range(len(ops)):
            candidate = ops[:i] + ops[i + 1:]
            if check(candidate):
                ops = candidate
                changed = True
                break
    if tests >= budget:
        exhausted = True
    return MinimizationResult(
        config=config.with_ops(ops),
        signature=target,
        original_ops=len(config.ops),
        tests_run=tests,
        exhausted_budget=exhausted,
    )
