"""Corpus runners: bounded (CI) and time-budgeted soak (local) modes.

The bounded mode walks a fixed seed set — deterministic end to end, so a
per-seed digest over every case outcome is byte-identical run to run and
asserts full reproducibility, not just "no failures". The soak mode
keeps drawing fresh (seed, index) pairs until a wall-clock budget runs
out — the ``python -m repro fuzz --soak`` workflow.

Counterexamples (diverged/error outcomes) are minimized on the spot and
written as JSON artifacts — to ``FUZZ_ARTIFACT_DIR`` when set (the CI
job uploads that directory on failure), else to the explicit
``artifact_dir``. The triage workflow is documented in DESIGN.md.

>>> report = run_bounded(seeds=[3], cases_per_seed=2, flows=5)
>>> report.cases, report.counterexamples
(2, [])
>>> report.seed_digests[3] == run_bounded([3], 2, flows=5).seed_digests[3]
True
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .generator import ConfigGenerator, GatewayConfig, config_to_json
from .harness import CaseOutcome, run_case
from .minimizer import minimize

#: The CI seed set — growing it is cheap, reordering it invalidates the
#: recorded per-seed digests.
DEFAULT_SEEDS: Tuple[int, ...] = (11, 23, 37, 41, 53)


@dataclass
class Counterexample:
    """A failing config plus its (minimized) reproducer."""

    config: GatewayConfig
    outcome: CaseOutcome
    minimized: Optional[GatewayConfig] = None

    def to_json(self) -> dict:
        data = {
            "config": config_to_json(self.config),
            "status": self.outcome.status,
            "reason": self.outcome.reason,
            "detail": self.outcome.detail,
        }
        if self.minimized is not None:
            data["minimized"] = config_to_json(self.minimized)
        return data


@dataclass
class CorpusReport:
    """Aggregate of one corpus run."""

    cases: int = 0
    status_histogram: Dict[str, int] = field(default_factory=dict)
    reason_histogram: Dict[str, int] = field(default_factory=dict)
    seed_digests: Dict[int, str] = field(default_factory=dict)
    counterexamples: List[Counterexample] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def describe(self) -> str:
        lines = [f"{self.cases} configs:"]
        for status in sorted(self.status_histogram):
            lines.append(f"  {status:10s} {self.status_histogram[status]}")
        for reason in sorted(self.reason_histogram):
            lines.append(f"    {reason:24s} {self.reason_histogram[reason]}")
        for seed, digest in sorted(self.seed_digests.items()):
            lines.append(f"  seed {seed}: {digest[:16]}")
        for path in self.artifacts:
            lines.append(f"  counterexample -> {path}")
        return "\n".join(lines)


def _artifact_dir(explicit: Optional[str]) -> Optional[str]:
    return explicit or os.environ.get("FUZZ_ARTIFACT_DIR") or None


def _record(report: CorpusReport, config: GatewayConfig, outcome: CaseOutcome,
            flows: int, artifact_dir: Optional[str], do_minimize: bool) -> str:
    """Fold one case into the report; returns the outcome digest part."""
    report.cases += 1
    report.status_histogram[outcome.status] = (
        report.status_histogram.get(outcome.status, 0) + 1)
    if outcome.reason:
        report.reason_histogram[outcome.reason] = (
            report.reason_histogram.get(outcome.reason, 0) + 1)
    if outcome.is_counterexample:
        example = Counterexample(config=config, outcome=outcome)
        if do_minimize:
            example.minimized = minimize(config, flows=flows).config
        report.counterexamples.append(example)
        directory = _artifact_dir(artifact_dir)
        if directory:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, f"fuzz-ce-{config.seed}-{config.index}.json")
            with open(path, "w") as handle:
                json.dump(example.to_json(), handle, indent=2)
            report.artifacts.append(path)
    return f"{config.index}:{outcome.status}:{outcome.reason}:{outcome.digest}"


def run_bounded(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    cases_per_seed: int = 40,
    flows: int = 50,
    artifact_dir: Optional[str] = None,
    minimize_failures: bool = True,
) -> CorpusReport:
    """The fixed-seed CI corpus: every (seed, index) pair, in order."""
    report = CorpusReport()
    for seed in seeds:
        generator = ConfigGenerator(seed)
        parts: List[str] = []
        for index in range(cases_per_seed):
            config = generator.generate(index)
            outcome = run_case(config, flows=flows)
            parts.append(_record(report, config, outcome, flows,
                                 artifact_dir, minimize_failures))
        report.seed_digests[seed] = hashlib.sha256(
            "\n".join(parts).encode()).hexdigest()
    return report


def run_soak(
    budget_seconds: float,
    flows: int = 50,
    start_seed: int = 1000,
    artifact_dir: Optional[str] = None,
    minimize_failures: bool = True,
) -> CorpusReport:
    """Unbounded local soak: new seeds until the time budget is spent."""
    report = CorpusReport()
    deadline = time.monotonic() + budget_seconds
    seed = start_seed
    while time.monotonic() < deadline:
        generator = ConfigGenerator(seed)
        parts: List[str] = []
        for index in range(20):
            if time.monotonic() >= deadline:
                break
            config = generator.generate(index)
            outcome = run_case(config, flows=flows)
            parts.append(_record(report, config, outcome, flows,
                                 artifact_dir, minimize_failures))
        report.seed_digests[seed] = hashlib.sha256(
            "\n".join(parts).encode()).hexdigest()
        seed += 1
    return report
