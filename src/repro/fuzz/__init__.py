"""Adversarial placement-compiler fuzzing (differential testing).

Seeded generator of random gateway configurations, a differential
harness asserting the placement trichotomy (classified rejection /
byte-identical forwarding + occupancy accounting / counterexample), a
delta-debugging minimizer, and bounded/soak corpus runners. See
docs/api.md for the grammar and DESIGN.md for the triage workflow.
"""

from .corpus import DEFAULT_SEEDS, CorpusReport, Counterexample, run_bounded, run_soak
from .generator import (
    FUZZ_GATEWAY_IP,
    BuiltConfig,
    ConfigGenerator,
    GatewayConfig,
    config_from_json,
    config_to_json,
)
from .harness import (
    STATUS_DIVERGED,
    STATUS_ERROR,
    STATUS_PLACED,
    STATUS_REJECTED,
    CaseOutcome,
    compare_results,
    run_case,
    sample_flows,
)
from .minimizer import MinimizationResult, minimize
from .oracle import LinearScanOracle

__all__ = [
    "BuiltConfig",
    "CaseOutcome",
    "ConfigGenerator",
    "CorpusReport",
    "Counterexample",
    "DEFAULT_SEEDS",
    "FUZZ_GATEWAY_IP",
    "GatewayConfig",
    "LinearScanOracle",
    "MinimizationResult",
    "STATUS_DIVERGED",
    "STATUS_ERROR",
    "STATUS_PLACED",
    "STATUS_REJECTED",
    "compare_results",
    "config_from_json",
    "config_to_json",
    "minimize",
    "run_bounded",
    "run_case",
    "run_soak",
    "sample_flows",
]
