"""Seeded generator of adversarial gateway configurations.

A :class:`GatewayConfig` is a flat, JSON-serialisable **op list** — the
unit the delta-debugging minimizer removes entries from — plus a handful
of layout knobs (entry pipeline, ALPM vs plain TCAM routing, parity
split, pooled vs dedicated VM-NC). :meth:`GatewayConfig.build`
materialises the ops into a hardware gateway, the flat structures the
linear-scan oracle consumes, and the logical tables the placement
planner must map onto the chip.

Op grammar (all fields JSON primitives; ``None`` means wildcard):

* ``("route", vni, network, plen, version, scope, next_hop_vni, target)``
* ``("vm", vni, ip, version, nc_ip)``
* ``("acl", priority, verdict, vni, src, dst, proto, sports, dports)``
  where ``src``/``dst`` are ``(network, plen)`` pairs and the port
  fields inclusive ``(lo, hi)`` ranges;
* ``("pressure", name, sram_frac, tcam_frac, pipe_index, spillable, dep)``
  — a synthetic occupancy load near chip limits; ``pipe_index`` 0-3
  indexes the folded path, 4-7 the *other* entry's path (deliberately
  off-path), and ``dep`` may name a real table, ``None``, or a ghost.

Seeding follows DESIGN.md's convention: every stream is derived from the
corpus seed via :func:`repro.sim.rand.derive` with a label path, so
``ConfigGenerator(seed).generate(i)`` is reproducible byte-for-byte.

>>> cfg = ConfigGenerator(7).generate(0)
>>> cfg == ConfigGenerator(7).generate(0)
True
>>> cfg == config_from_json(config_to_json(cfg))
True
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.planner import LogicalTable
from ..core.xgw_h import XgwH
from ..net.addr import Prefix
from ..sim.rand import derive
from ..tables.acl import AclRule, AclVerdict
from ..tables.alpm import AlpmTable
from ..tables.errors import DuplicateEntryError
from ..tables.geometry import MemoryFootprint, tcam_slices_for
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable
from ..tofino.memory import SRAM_WORDS_PER_PIPELINE, TCAM_SLICES_PER_PIPELINE
from ..tofino.pipeline import folded_path

#: The fixed underlay IP of the fuzzed gateway.
FUZZ_GATEWAY_IP = 0x0AFFFF01

_SCOPES = [scope.value for scope in Scope]
_V6_BASE = 0x20010DB8 << 96


def _freeze(value):
    """Recursively convert lists to tuples (canonical op form)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class GatewayConfig:
    """One generated configuration: layout knobs + an op list."""

    seed: int
    index: int
    entry_pipeline: int = 0
    alpm_routing: bool = True
    alpm_bucket_capacity: int = 8
    split_routing: bool = False
    pool_vm_nc: bool = True
    ops: Tuple[tuple, ...] = ()

    def with_ops(self, ops: Sequence[tuple]) -> "GatewayConfig":
        """The same config with a (usually reduced) op list."""
        return replace(self, ops=tuple(_freeze(op) for op in ops))

    def build(self) -> "BuiltConfig":
        """Materialise the ops into gateway + oracle inputs + layout."""
        return _build(self)


def config_to_json(config: GatewayConfig) -> dict:
    """A JSON-ready dict for corpus files and CI artifacts."""
    return {
        "seed": config.seed,
        "index": config.index,
        "entry_pipeline": config.entry_pipeline,
        "alpm_routing": config.alpm_routing,
        "alpm_bucket_capacity": config.alpm_bucket_capacity,
        "split_routing": config.split_routing,
        "pool_vm_nc": config.pool_vm_nc,
        "ops": [list(op) for op in config.ops],
    }


def config_from_json(data: dict) -> GatewayConfig:
    """Inverse of :func:`config_to_json` (lists normalised to tuples)."""
    return GatewayConfig(
        seed=data["seed"],
        index=data["index"],
        entry_pipeline=data["entry_pipeline"],
        alpm_routing=data["alpm_routing"],
        alpm_bucket_capacity=data["alpm_bucket_capacity"],
        split_routing=data["split_routing"],
        pool_vm_nc=data["pool_vm_nc"],
        ops=tuple(_freeze(op) for op in data["ops"]),
    )


# -- materialisation ----------------------------------------------------------


@dataclass
class BuiltConfig:
    """Everything the differential harness needs for one config."""

    config: GatewayConfig
    hw: XgwH
    #: Flat (vni, prefix, action) routes after last-wins dedup, in a
    #: canonical order — the oracle's ground truth.
    routes: List[Tuple[int, Prefix, RouteAction]]
    #: Flat (vni, ip, version) -> nc_ip map after last-wins dedup.
    vms: Dict[Tuple[int, int, int], int]
    #: ACL rules in installation order, exact duplicates skipped.
    acl_rules: List[AclRule]
    logical_tables: List[LogicalTable] = field(default_factory=list)


def _route_action(scope: str, next_hop_vni: Optional[int], target: Optional[str]) -> RouteAction:
    return RouteAction(
        scope=Scope(scope),
        next_hop_vni=next_hop_vni,
        target=target,
    )


def _build(config: GatewayConfig) -> BuiltConfig:
    hw = XgwH(gateway_ip=FUZZ_GATEWAY_IP)
    route_map: Dict[Tuple[int, Prefix], RouteAction] = {}
    vms: Dict[Tuple[int, int, int], int] = {}
    acl_rules: List[AclRule] = []
    pressure_ops: List[tuple] = []

    for op in config.ops:
        kind = op[0]
        if kind == "route":
            _, vni, network, plen, version, scope, next_hop, target = op
            prefix = Prefix.of(network, plen, version)
            action = _route_action(scope, next_hop, target)
            hw.install_route(vni, prefix, action, replace=True)
            route_map[(vni, prefix)] = action
        elif kind == "vm":
            _, vni, ip, version, nc_ip = op
            hw.install_vm(vni, ip, version, NcBinding(nc_ip), replace=True)
            vms[(vni, ip, version)] = nc_ip
        elif kind == "acl":
            _, priority, verdict, vni, src, dst, proto, sports, dports = op
            rule = AclRule(
                priority=priority,
                verdict=AclVerdict(verdict),
                vni=vni,
                src_net=_net_pair(src),
                dst_net=_net_pair(dst),
                proto=proto,
                src_ports=tuple(sports) if sports is not None else None,
                dst_ports=tuple(dports) if dports is not None else None,
            )
            try:
                hw.tables.acl.insert(rule)
            except DuplicateEntryError:
                continue  # the oracle mirrors the skip
            acl_rules.append(rule)
        elif kind == "pressure":
            pressure_ops.append(op)
        else:
            raise ValueError(f"unknown fuzz op kind {kind!r}")

    routes = sorted(route_map.items(), key=lambda kv: (kv[0][0], str(kv[0][1])))
    flat_routes = [(vni, prefix, action) for (vni, prefix), action in routes]
    built = BuiltConfig(
        config=config, hw=hw, routes=flat_routes, vms=vms, acl_rules=acl_rules
    )
    built.logical_tables = _logical_tables(config, built, pressure_ops)
    return built


def _net_pair(net) -> Optional[Tuple[int, int]]:
    """An op's (network, plen) pair as the ACL's (network, mask) form."""
    if net is None:
        return None
    network, plen = net
    mask = ((1 << plen) - 1) << (32 - plen) if plen else 0
    return (network & mask, mask)


def _routing_footprint(
    config: GatewayConfig, composite: List[Tuple[int, int, RouteAction]]
) -> MemoryFootprint:
    width = VxlanRoutingTable.composite_width()
    if not composite:
        return MemoryFootprint.zero()
    if config.alpm_routing:
        table = AlpmTable.build(width, composite,
                                bucket_capacity=config.alpm_bucket_capacity)
        return table.footprint()
    return MemoryFootprint(tcam_slices=len(composite) * tcam_slices_for(width))


def _logical_tables(
    config: GatewayConfig, built: BuiltConfig, pressure_ops: List[tuple]
) -> List[LogicalTable]:
    """Derive the planner's input from the installed tables + knobs."""
    path = folded_path(config.entry_pipeline)
    other_path = folded_path(2 if config.entry_pipeline == 0 else 0)
    composite = built.hw.tables.routing.to_composite_routes()
    tables: List[LogicalTable] = []

    if config.split_routing:
        even = [r for r in composite if (r[0] >> (1 + 128)) % 2 == 0]
        odd = [r for r in composite if (r[0] >> (1 + 128)) % 2 == 1]
        tables.append(LogicalTable(
            name="vxlan-routing",
            footprint=_routing_footprint(config, even),
            preferred_pipe=path[0],
        ))
        tables.append(LogicalTable(
            name="vxlan-routing-odd",
            footprint=_routing_footprint(config, odd),
            preferred_pipe=path[0],
        ))
        routing_deps: Tuple[str, ...] = ("vxlan-routing", "vxlan-routing-odd")
    else:
        tables.append(LogicalTable(
            name="vxlan-routing",
            footprint=_routing_footprint(config, composite),
            preferred_pipe=path[0],
        ))
        routing_deps = ("vxlan-routing",)

    count_v4 = sum(1 for (_v, _ip, ver) in built.vms if ver == 4)
    count_v6 = len(built.vms) - count_v4
    if config.pool_vm_nc:
        vm_words = count_v4 + count_v6  # pooled-compressed: 1 word/entry
    else:
        vm_words = 2 * count_v4 + 4 * count_v6  # dedicated per-family keys
    tables.append(LogicalTable(
        name="vm-nc",
        footprint=MemoryFootprint(sram_words=vm_words),
        preferred_pipe=path[1],
        depends_on=routing_deps,
        metadata_bits=32,
    ))

    tables.append(LogicalTable(
        name="acl",
        footprint=MemoryFootprint(
            tcam_slices=len(built.acl_rules) * tcam_slices_for(128)
        ),
        preferred_pipe=path[0],
    ))

    for op in pressure_ops:
        _, name, sram_frac, tcam_frac, pipe_index, spillable, dep = op
        pipe = path[pipe_index] if pipe_index < 4 else other_path[pipe_index - 4]
        tables.append(LogicalTable(
            name=name,
            footprint=MemoryFootprint(
                sram_words=int(round(sram_frac * SRAM_WORDS_PER_PIPELINE)),
                tcam_slices=int(round(tcam_frac * TCAM_SLICES_PER_PIPELINE)),
            ),
            preferred_pipe=pipe,
            depends_on=(dep,) if dep is not None else (),
            spillable=spillable,
        ))
    return tables


# -- generation ---------------------------------------------------------------


class ConfigGenerator:
    """Deterministic adversarial config source for one corpus seed.

    ``generate(i)`` draws only from ``derive(seed, "fuzz", i, ...)``
    streams, so the i-th config is independent of how many configs were
    generated before it.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def generate(self, index: int) -> GatewayConfig:
        rng = derive(self.seed, "fuzz", index)
        entry = rng.choice([0, 2])
        knobs = dict(
            entry_pipeline=entry,
            alpm_routing=rng.random() < 0.6,
            alpm_bucket_capacity=rng.choice([2, 4, 8, 16]),
            split_routing=rng.random() < 0.3,
            pool_vm_nc=rng.random() < 0.7,
        )
        vnis = sorted(rng.sample(range(1, 16), rng.randint(1, 6)))
        ops: List[tuple] = []
        subnets: List[Tuple[int, Prefix]] = []  # (vni, prefix) pool for ACL/flows
        for vni in vnis:
            self._tenant_ops(rng, vni, vnis, ops, subnets)
        self._acl_ops(rng, vnis, subnets, ops)
        self._pressure_ops(rng, ops)
        return GatewayConfig(seed=self.seed, index=index,
                             ops=tuple(_freeze(op) for op in ops), **knobs)

    # -- per-tenant routes and VMs ---------------------------------------

    def _tenant_ops(self, rng: random.Random, vni: int, vnis: List[int],
                    ops: List[tuple], subnets: List[Tuple[int, Prefix]]) -> None:
        for s in range(rng.randint(1, 3)):
            base = (10 << 24) | (vni << 16) | (s << 10)
            plen = rng.choice([20, 22, 24, 26])
            prefix = Prefix.of(base, plen, 4)
            scope = self._scope(rng, vni, vnis, ops, prefix)
            subnets.append((vni, prefix))
            # Sometimes nest a more-specific route with a different fate
            # inside the subnet (LPM shadowing pressure).
            if rng.random() < 0.35:
                inner = Prefix.of(base | (rng.randrange(1 << 6) << 4),
                                  min(prefix.prefix_len + rng.choice([2, 4, 6]), 32), 4)
                self._scope(rng, vni, vnis, ops, inner)
            if scope == Scope.LOCAL.value:
                for _ in range(rng.randint(0, 4)):
                    vm_ip = prefix.network + rng.randrange(2, 1 << (32 - plen))
                    ops.append(("vm", vni, vm_ip, 4,
                                (10 << 24) | rng.randrange(1, 1 << 16)))
        if rng.random() < 0.4:  # v6 subnet
            net6 = _V6_BASE | (vni << 64)
            plen6 = rng.choice([48, 56, 64])
            prefix6 = Prefix.of(net6, plen6, 6)
            subnets.append((vni, prefix6))
            ops.append(("route", vni, prefix6.network, plen6, 6,
                        Scope.LOCAL.value, None, None))
            for _ in range(rng.randint(0, 2)):
                vm6 = prefix6.network + rng.randrange(2, 1 << 20)
                ops.append(("vm", vni, vm6, 6,
                            (10 << 24) | rng.randrange(1, 1 << 16)))
        if rng.random() < 0.3:  # tenant default route
            scope = rng.choice([Scope.SERVICE.value, Scope.INTERNET.value])
            target = "snat" if scope == Scope.SERVICE.value else None
            ops.append(("route", vni, 0, 0, 4, scope, None, target))
        # VM with no covering route (reachable only via a later config op).
        if rng.random() < 0.1:
            ops.append(("vm", vni, rng.randrange(1 << 32), 4,
                        (10 << 24) | rng.randrange(1, 1 << 16)))

    def _scope(self, rng: random.Random, vni: int, vnis: List[int],
               ops: List[tuple], prefix: Prefix) -> str:
        """Append one route op for *prefix*, drawing an adversarial fate."""
        roll = rng.random()
        if roll < 0.5:
            scope, next_hop, target = Scope.LOCAL.value, None, None
        elif roll < 0.65:
            # PEER: mostly a listed VNI (self-references make loops),
            # sometimes an unknown VNI (broken chain).
            next_hop = (rng.choice(vnis) if rng.random() < 0.8
                        else rng.randrange(100, 120))
            scope, target = Scope.PEER.value, None
        elif roll < 0.8:
            scope, next_hop, target = Scope.SERVICE.value, None, rng.choice(
                ["snat", "lb", None])
        else:
            scope = rng.choice([Scope.INTERNET.value, Scope.IDC.value,
                                Scope.CROSS_REGION.value])
            next_hop, target = None, rng.choice(["uplink-a", None])
        ops.append(("route", vni, prefix.network, prefix.prefix_len,
                    prefix.version, scope, next_hop, target))
        return scope

    # -- ACL rules --------------------------------------------------------

    def _acl_ops(self, rng: random.Random, vnis: List[int],
                 subnets: List[Tuple[int, Prefix]], ops: List[tuple]) -> None:
        v4_nets = [(vni, p) for vni, p in subnets if p.version == 4]
        for _ in range(rng.randint(0, 20)):
            vni = (None if rng.random() < 0.3
                   else rng.choice(vnis + [rng.randrange(100, 120)]))

            def net():
                roll = rng.random()
                if roll < 0.45 and v4_nets:
                    _v, p = rng.choice(v4_nets)
                    plen = min(32, p.prefix_len + rng.choice([0, 0, 2, 6]))
                    return [p.network, plen]
                if roll < 0.55:
                    return [rng.randrange(1 << 32), rng.randint(0, 32)]
                return None

            def ports():
                if rng.random() < 0.5:
                    return None
                lo = rng.randrange(0, 1 << 16)
                return [lo, min(lo + rng.choice([0, 10, 1000, 65535]), 65535)]

            ops.append((
                "acl",
                rng.randint(0, 50),  # small range -> frequent priority ties
                rng.choice([AclVerdict.DENY.value, AclVerdict.PERMIT.value]),
                vni, net(), net(),
                rng.choice([None, 6, 17]),
                ports(), ports(),
            ))

    # -- occupancy pressure ----------------------------------------------

    def _pressure_ops(self, rng: random.Random, ops: List[tuple]) -> None:
        for p in range(rng.randint(0, 4)):
            roll = rng.random()
            if roll < 0.03:
                pipe_index = rng.randint(4, 7)  # off-path preferred pipe
            else:
                pipe_index = rng.randint(0, 3)
            if roll < 0.06:
                dep: Optional[str] = f"ghost-{p}"
            elif roll < 0.16:
                dep = rng.choice(["vxlan-routing", "vm-nc", "acl"])
            else:
                dep = None
            spillable = rng.random() < 0.85
            sram_frac = round(rng.uniform(0.05, 0.85), 4)
            tcam_frac = round(rng.choice([0.0, rng.uniform(0.05, 0.85)]), 4)
            if not spillable and rng.random() < 0.5:
                sram_frac = round(rng.uniform(0.9, 1.4), 4)  # cannot fit one pipe
            ops.append(("pressure", f"pressure-{p}", sram_frac, tcam_frac,
                        pipe_index, spillable, dep))
