"""Pipeline mechanics: pipes, traversal order, folding, bridging (§3.2, §4.4).

The chip has four pipelines, each with an ingress and an egress pipe.
Programs are attached per (pipeline, gress). Two traversal modes:

* **normal** — ingress pipe of the arrival pipeline, traffic manager,
  egress pipe of the departure pipeline (4 entry pipelines, full
  throughput);
* **folded** (Fig. 13) — packets enter at Ingress 0/2, leave through
  Egress 1/3 whose ports are looped back, re-enter at Ingress 1/3 and
  finally exit via Egress 0/2. Throughput halves, latency doubles, and
  every table gets twice the memory headroom.

Metadata is scoped to a single gress; a program that needs fields
downstream must bridge them (see :mod:`repro.tofino.phv`), which adds
bytes to the packet between pipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..net.packet import Packet
from .memory import NUM_PIPELINES, PipelineMemory
from .phv import Bridge, Metadata


class Gress(Enum):
    INGRESS = "ingress"
    EGRESS = "egress"


PipeRef = Tuple[int, Gress]


class Verdict(Enum):
    """What a pipe program decided for the packet."""

    CONTINUE = "continue"  # proceed to the next pipe in the path
    DROP = "drop"
    REDIRECT_X86 = "redirect-x86"  # leave the chip towards the software gateway
    FORWARD = "forward"  # done; send out the front panel


@dataclass
class PipeResult:
    """A pipe program's output."""

    verdict: Verdict = Verdict.CONTINUE
    packet: Optional[Packet] = None  # replacement packet (header rewrites)
    bridge_fields: List[str] = field(default_factory=list)  # carry to next gress
    drop_reason: str = ""


#: A pipe program: (packet, metadata, pipe_ref) -> PipeResult.
PipeProgram = Callable[[Packet, Metadata, PipeRef], PipeResult]


@dataclass
class Traversal:
    """Record of one packet's trip through the chip."""

    packet: Packet
    verdict: Verdict
    path: List[PipeRef]
    drop_reason: str = ""
    bridged_bytes: int = 0
    pipes_traversed: int = 0


class TraversalError(Exception):
    """Raised on structural misuse (bad entry pipeline, missing program)."""


def folded_path(entry_pipeline: int) -> List[PipeRef]:
    """The pipe sequence for folded mode from *entry_pipeline* (0 or 2)."""
    if entry_pipeline == 0:
        pair = (0, 1)
    elif entry_pipeline == 2:
        pair = (2, 3)
    else:
        raise TraversalError(f"folded entry must be pipeline 0 or 2, got {entry_pipeline}")
    a, b = pair
    return [
        (a, Gress.INGRESS),
        (b, Gress.EGRESS),  # loopback ports
        (b, Gress.INGRESS),
        (a, Gress.EGRESS),
    ]


def normal_path(entry_pipeline: int, exit_pipeline: Optional[int] = None) -> List[PipeRef]:
    """The pipe sequence for normal mode."""
    if not 0 <= entry_pipeline < NUM_PIPELINES:
        raise TraversalError(f"bad entry pipeline {entry_pipeline}")
    exit_p = entry_pipeline if exit_pipeline is None else exit_pipeline
    if not 0 <= exit_p < NUM_PIPELINES:
        raise TraversalError(f"bad exit pipeline {exit_p}")
    return [(entry_pipeline, Gress.INGRESS), (exit_p, Gress.EGRESS)]


class PipelineFabric:
    """Programs + memory for the four pipelines, and packet traversal.

    >>> fabric = PipelineFabric(folded=True)
    >>> fabric.entry_pipelines()
    [0, 2]
    """

    def __init__(self, folded: bool = False):
        self.folded = folded
        self._programs: Dict[PipeRef, PipeProgram] = {}
        self.memory = [PipelineMemory(i) for i in range(NUM_PIPELINES)]
        # Per-pipe packet counters, e.g. Fig. 20/21 Egress Pipe 1 vs 3.
        self.pipe_packets: Dict[PipeRef, int] = {}

    def attach(self, pipeline: int, gress: Gress, program: PipeProgram) -> None:
        """Install *program* on one pipe."""
        if not 0 <= pipeline < NUM_PIPELINES:
            raise TraversalError(f"bad pipeline {pipeline}")
        self._programs[(pipeline, gress)] = program

    def entry_pipelines(self) -> List[int]:
        """Pipelines whose front-panel ports accept traffic."""
        return [0, 2] if self.folded else list(range(NUM_PIPELINES))

    def path_for(self, entry_pipeline: int, exit_pipeline: Optional[int] = None) -> List[PipeRef]:
        if self.folded:
            return folded_path(entry_pipeline)
        return normal_path(entry_pipeline, exit_pipeline)

    def process(self, packet: Packet, entry_pipeline: int) -> Traversal:
        """Run *packet* through the pipe sequence, bridging metadata."""
        path = self.path_for(entry_pipeline)
        metadata = Metadata()
        pending_bridge: Optional[Bridge] = None
        bridged_bytes = 0
        traversed: List[PipeRef] = []
        current = packet
        for ref in path:
            program = self._programs.get(ref)
            if program is None:
                raise TraversalError(f"no program attached at pipeline {ref[0]} {ref[1].value}")
            # Gress boundary: metadata does not survive; bridges do.
            metadata = Metadata()
            if pending_bridge is not None:
                pending_bridge.restore_into(metadata)
                pending_bridge = None
            result = program(current, metadata, ref)
            traversed.append(ref)
            self.pipe_packets[ref] = self.pipe_packets.get(ref, 0) + 1
            if result.packet is not None:
                current = result.packet
            if result.verdict is Verdict.DROP:
                return Traversal(current, Verdict.DROP, traversed, result.drop_reason,
                                 bridged_bytes, len(traversed))
            if result.verdict in (Verdict.FORWARD, Verdict.REDIRECT_X86):
                return Traversal(current, result.verdict, traversed, result.drop_reason,
                                 bridged_bytes, len(traversed))
            if result.bridge_fields:
                pending_bridge = Bridge.carry(metadata, result.bridge_fields)
                bridged_bytes += pending_bridge.wire_overhead_bytes
        return Traversal(current, Verdict.FORWARD, traversed, "", bridged_bytes, len(traversed))

    def egress_pipe_share(self) -> Dict[int, int]:
        """Packets seen by each egress pipe (Fig. 20/21's balance metric)."""
        return {
            pipeline: count
            for (pipeline, gress), count in self.pipe_packets.items()
            if gress is Gress.EGRESS
        }
