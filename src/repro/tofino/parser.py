"""Programmable parser model (§3.2: "Parser/Match-Action Unit/Deparser").

A P4-style parse graph: states extract a header and branch on a field
value. The gateway's graph handles Ethernet → IPv4/IPv6 → UDP/TCP →
VXLAN → inner Ethernet → inner IP → inner L4, mirroring the parser of
the real XGW-H P4 program. The result is a header-boundary map plus the
accept/reject decision — tested for agreement with the byte-level
:class:`~repro.net.packet.Packet` codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..net.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    PROTO_TCP,
    PROTO_UDP,
    VXLAN_PORT,
)

#: Special transition key: taken when no explicit value matches.
DEFAULT = "default"
ACCEPT = "accept"
REJECT = "reject"


@dataclass(frozen=True)
class Extraction:
    """One extracted header instance."""

    header: str
    offset: int
    length: int


@dataclass
class ParseState:
    """One parser state: fixed-size extract + a select on a field.

    *selector* reads the branch value from the raw header bytes;
    *transitions* maps values (or DEFAULT) to next-state names.
    """

    name: str
    header_length: Callable[[bytes], int]
    selector: Optional[Callable[[bytes], int]] = None
    transitions: Dict[object, str] = field(default_factory=dict)


@dataclass
class ParseResult:
    """Outcome of one parse."""

    accepted: bool
    extractions: List[Extraction] = field(default_factory=list)
    reject_reason: str = ""

    def headers(self) -> List[str]:
        return [e.header for e in self.extractions]

    def find(self, header: str) -> Optional[Extraction]:
        for extraction in self.extractions:
            if extraction.header == header:
                return extraction
        return None


class ParserOverrunError(Exception):
    """Raised on a malformed parse graph (loop guard)."""


class ParseGraph:
    """A deterministic parse-graph interpreter.

    >>> graph = gateway_parse_graph()
    >>> from repro.workloads.traffic import build_vxlan_packet
    >>> result = graph.parse(build_vxlan_packet(7, 1, 2).to_bytes())
    >>> result.accepted and "vxlan" in result.headers()
    True
    """

    MAX_STATES_VISITED = 32

    def __init__(self, start: str):
        self.start = start
        self._states: Dict[str, ParseState] = {}

    def add_state(self, state: ParseState) -> None:
        self._states[state.name] = state

    def parse(self, raw: bytes) -> ParseResult:
        result = ParseResult(accepted=False)
        state_name = self.start
        offset = 0
        for _hop in range(self.MAX_STATES_VISITED):
            if state_name == ACCEPT:
                result.accepted = True
                return result
            if state_name == REJECT:
                result.reject_reason = result.reject_reason or "rejected"
                return result
            state = self._states.get(state_name)
            if state is None:
                raise ParserOverrunError(f"unknown parse state {state_name}")
            body = raw[offset:]
            try:
                length = state.header_length(body)
            except (IndexError, ValueError):
                result.reject_reason = f"truncated in {state.name}"
                return result
            if length > len(body):
                result.reject_reason = f"truncated in {state.name}"
                return result
            header_bytes = body[:length]
            result.extractions.append(Extraction(state.name, offset, length))
            offset += length
            if state.selector is None:
                state_name = state.transitions.get(DEFAULT, ACCEPT)
                continue
            try:
                key = state.selector(header_bytes)
            except (IndexError, ValueError):
                result.reject_reason = f"bad select in {state.name}"
                return result
            state_name = state.transitions.get(key, state.transitions.get(DEFAULT, REJECT))
        raise ParserOverrunError("parse graph exceeded the state budget")


def _be16(data: bytes, at: int) -> int:
    return (data[at] << 8) | data[at + 1]


def _ipv4_length(body: bytes) -> int:
    if len(body) < 1:
        raise ValueError("empty")
    if body[0] >> 4 != 4:
        raise ValueError("not v4")
    return (body[0] & 0xF) * 4


def gateway_parse_graph() -> ParseGraph:
    """The XGW-H parse graph: outer VXLAN encapsulation + inner frame."""
    graph = ParseGraph(start="ethernet")
    graph.add_state(ParseState(
        name="ethernet",
        header_length=lambda b: 14,
        selector=lambda b: _be16(b, 12),
        transitions={ETHERTYPE_IPV4: "ipv4", ETHERTYPE_IPV6: "ipv6"},
    ))
    graph.add_state(ParseState(
        name="ipv4",
        header_length=_ipv4_length,
        selector=lambda b: b[9],
        transitions={PROTO_UDP: "udp", PROTO_TCP: "tcp", DEFAULT: ACCEPT},
    ))
    graph.add_state(ParseState(
        name="ipv6",
        header_length=lambda b: 40,
        selector=lambda b: b[6],
        transitions={PROTO_UDP: "udp", PROTO_TCP: "tcp", DEFAULT: ACCEPT},
    ))
    graph.add_state(ParseState(
        name="udp",
        header_length=lambda b: 8,
        selector=lambda b: _be16(b, 2),  # destination port
        transitions={VXLAN_PORT: "vxlan", DEFAULT: ACCEPT},
    ))
    graph.add_state(ParseState(
        name="tcp",
        header_length=lambda b: max(20, (b[12] >> 4) * 4),
        transitions={DEFAULT: ACCEPT},
    ))
    graph.add_state(ParseState(
        name="vxlan",
        header_length=lambda b: 8,
        selector=lambda b: b[0] & 0x08,  # I flag
        transitions={0x08: "inner_ethernet", DEFAULT: REJECT},
    ))
    graph.add_state(ParseState(
        name="inner_ethernet",
        header_length=lambda b: 14,
        selector=lambda b: _be16(b, 12),
        transitions={ETHERTYPE_IPV4: "inner_ipv4", ETHERTYPE_IPV6: "inner_ipv6",
                     DEFAULT: REJECT},
    ))
    graph.add_state(ParseState(
        name="inner_ipv4",
        header_length=_ipv4_length,
        selector=lambda b: b[9],
        transitions={PROTO_UDP: "inner_l4", PROTO_TCP: "inner_l4", DEFAULT: ACCEPT},
    ))
    graph.add_state(ParseState(
        name="inner_ipv6",
        header_length=lambda b: 40,
        selector=lambda b: b[6],
        transitions={PROTO_UDP: "inner_l4", PROTO_TCP: "inner_l4", DEFAULT: ACCEPT},
    ))
    graph.add_state(ParseState(
        name="inner_l4",
        header_length=lambda b: 8,
        transitions={DEFAULT: ACCEPT},
    ))
    return graph
