"""The switch chip: ports, timing and rate model around the pipe fabric.

Performance constants are calibrated to the paper's Fig. 18 (see
EXPERIMENTS.md): 6.4 Tbps across 64 × 100 GbE ports, per-pipe packet
budget such that the folded chip holds line rate down to 128-byte
packets, ~1.1 µs unfolded forwarding latency (doubling to ~2.2 µs when
folded — the paper measures 2.173–2.306 µs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..net.packet import Packet
from .memory import NUM_PIPELINES, STAGES_PER_PIPELINE
from .pipeline import Gress, PipelineFabric, PipeProgram, Traversal

PORT_SPEED_BPS = 100e9
PORTS_PER_PIPELINE = 16
TOTAL_PORTS = PORTS_PER_PIPELINE * NUM_PIPELINES  # 64 x 100GbE = 6.4T

#: Ethernet preamble + inter-frame gap charged per packet on the wire.
WIRE_OVERHEAD_BYTES = 20

#: Per-pipe packet-per-second ceiling. 1.35 Gpps/pipe makes the folded
#: chip (2 entry pipes) line-rate at 128B: 3.2e12 / (8 * 148) = 2.70 Gpps.
PIPE_PPS_CAP = 1.35e9

# Latency components (ns).
PARSER_NS = 100.0
STAGE_NS = 35.0
DEPARSER_NS = 0.0
TRAFFIC_MANAGER_NS = 40.0
LOOPBACK_NS = 40.0


@dataclass(frozen=True)
class RateReport:
    """Sustained forwarding capability at one packet size (Fig. 18)."""

    packet_bytes: int
    throughput_bps: float
    packet_rate_pps: float
    line_rate: bool


class Chip:
    """A programmable switch: fabric + timing/throughput model.

    >>> chip = Chip(folded=True)
    >>> round(chip.forwarding_latency_us(), 1)
    2.2
    """

    def __init__(self, folded: bool = False):
        self.fabric = PipelineFabric(folded=folded)
        self.packets_in = 0
        self.packets_dropped = 0

    @property
    def folded(self) -> bool:
        return self.fabric.folded

    # -- programming ------------------------------------------------------

    def attach(self, pipeline: int, gress: Gress, program: PipeProgram) -> None:
        self.fabric.attach(pipeline, gress, program)

    def attach_symmetric(self, gress_programs) -> None:
        """Install the folded program layout: the dict maps
        ``(role_pipeline, gress)`` for role pipelines 0 (mirrored to 2)
        and 1 (mirrored to 3), per the folding principles of §4.4.
        """
        for (role, gress), program in gress_programs.items():
            self.attach(role, gress, program)
            self.attach(role + 2, gress, program)

    # -- data path --------------------------------------------------------

    def process(self, packet: Packet, entry_pipeline: Optional[int] = None) -> Traversal:
        """Forward one packet; entry pipeline defaults to a VNI-based pick."""
        entries = self.fabric.entry_pipelines()
        if entry_pipeline is None:
            entry_pipeline = entries[0]
        if entry_pipeline not in entries:
            raise ValueError(
                f"pipeline {entry_pipeline} is not an entry pipeline (folded={self.folded})"
            )
        self.packets_in += 1
        result = self.fabric.process(packet, entry_pipeline)
        if result.verdict.value == "drop":
            self.packets_dropped += 1
        return result

    def process_batch(self, packets: Sequence[Packet],
                      entry_pipeline: Optional[int] = None) -> List[Traversal]:
        """Forward a burst; the entry-pipeline check runs once per batch.

        Every packet still traverses the fabric individually — the chip
        is line-rate by construction, so batching here only trims the
        Python call overhead for simulation-side callers.
        """
        entries = self.fabric.entry_pipelines()
        if entry_pipeline is None:
            entry_pipeline = entries[0]
        if entry_pipeline not in entries:
            raise ValueError(
                f"pipeline {entry_pipeline} is not an entry pipeline (folded={self.folded})"
            )
        fabric_process = self.fabric.process
        results: List[Traversal] = []
        append = results.append
        dropped = 0
        for packet in packets:
            result = fabric_process(packet, entry_pipeline)
            if result.verdict.value == "drop":
                dropped += 1
            append(result)
        self.packets_in += len(results)
        self.packets_dropped += dropped
        return results

    # -- performance model --------------------------------------------------

    def pipes_per_packet(self) -> int:
        return 4 if self.folded else 2

    def forwarding_latency_ns(self, bridged_bytes: int = 0) -> float:
        """Zero-queueing latency of one packet through the chip."""
        per_gress = PARSER_NS + STAGES_PER_PIPELINE * STAGE_NS + DEPARSER_NS
        gresses = self.pipes_per_packet()
        loopbacks = 1 if self.folded else 0
        serialization = bridged_bytes * 8 / PORT_SPEED_BPS * 1e9
        return (
            gresses * per_gress
            + TRAFFIC_MANAGER_NS * (2 if self.folded else 1)
            + loopbacks * LOOPBACK_NS
            + serialization
        )

    def forwarding_latency_us(self, bridged_bytes: int = 0) -> float:
        return self.forwarding_latency_ns(bridged_bytes) / 1e3

    def max_throughput_bps(self) -> float:
        """Front-panel bandwidth: folding loops back half the ports."""
        total = TOTAL_PORTS * PORT_SPEED_BPS
        return total / 2 if self.folded else total

    def max_pps(self) -> float:
        entry_pipes = len(self.fabric.entry_pipelines())
        return entry_pipes * PIPE_PPS_CAP

    def rate_at(self, packet_bytes: int) -> RateReport:
        """Sustained rate at a fixed packet size (pressure test, Fig. 18)."""
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        wire_bits = (packet_bytes + WIRE_OVERHEAD_BYTES) * 8
        bandwidth_pps = self.max_throughput_bps() / wire_bits
        pps = min(bandwidth_pps, self.max_pps())
        return RateReport(
            packet_bytes=packet_bytes,
            throughput_bps=pps * packet_bytes * 8,
            packet_rate_pps=pps,
            line_rate=pps >= bandwidth_pps,
        )

    def min_line_rate_packet(self) -> int:
        """Smallest packet size (bytes) still forwarded at line rate."""
        # line rate <=> bandwidth_pps <= pps cap.
        size = self.max_throughput_bps() / (8 * self.max_pps()) - WIRE_OVERHEAD_BYTES
        return max(1, int(-(-size // 1)))
