"""PHV / metadata model (§3.2, §6.2 "metadata tweaks").

Metadata produced by table lookups travels in the packet header vector.
Two architectural constraints matter to Sailfish:

* the PHV has a finite bit budget ("also scarce, although not exhausted");
* metadata cannot cross from an ingress pipe to an egress pipe — it must
  be **bridged**, i.e. appended to the packet, which lengthens it on the
  wire and costs throughput. Pipeline folding raises the number of
  possible bridge points from 1 to 3 (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Total PHV capacity in bits. Tofino 1 exposes ~4 Kb of PHV containers.
PHV_BUDGET_BITS = 4096


class PhvOverflowError(Exception):
    """Raised when metadata fields exceed the PHV bit budget."""


@dataclass
class Metadata:
    """Named metadata fields with a bit budget, scoped to one gress.

    >>> md = Metadata()
    >>> md.set("next_hop_vni", 42, bits=24)
    >>> md.get("next_hop_vni")
    42
    """

    budget_bits: int = PHV_BUDGET_BITS
    _fields: Dict[str, int] = field(default_factory=dict)
    _widths: Dict[str, int] = field(default_factory=dict)

    def set(self, name: str, value: int, bits: int) -> None:
        """Write a field, charging *bits* to the budget on first write."""
        if bits <= 0:
            raise ValueError("field width must be positive")
        if value < 0 or value >= (1 << bits):
            raise ValueError(f"value {value} does not fit in {bits} bits")
        known = self._widths.get(name)
        if known is None:
            if self.used_bits() + bits > self.budget_bits:
                raise PhvOverflowError(
                    f"PHV overflow adding {name} ({bits}b) to {self.used_bits()}b used"
                )
            self._widths[name] = bits
        elif bits != known:
            raise ValueError(f"field {name} redeclared at {bits}b (was {known}b)")
        self._fields[name] = value

    def get(self, name: str, default: int = None) -> int:
        if name in self._fields:
            return self._fields[name]
        if default is not None:
            return default
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def used_bits(self) -> int:
        return sum(self._widths.values())

    def clear(self) -> None:
        self._fields.clear()
        self._widths.clear()


@dataclass
class Bridge:
    """Metadata carried across a gress boundary by appending to the packet.

    ``wire_overhead_bytes`` is what the bridge adds to every packet's
    on-wire length — the "throughput loss" the placement principles try
    to minimise.
    """

    fields: Dict[str, int] = field(default_factory=dict)
    widths: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def carry(cls, metadata: Metadata, names: "list[str]") -> "Bridge":
        """Bridge the listed *names* out of *metadata*."""
        bridge = cls()
        for name in names:
            if name not in metadata:
                raise KeyError(f"cannot bridge unset field {name}")
            bridge.fields[name] = metadata.get(name)
            bridge.widths[name] = metadata._widths[name]
        return bridge

    def restore_into(self, metadata: Metadata) -> None:
        """Unpack bridged fields into the next gress's metadata."""
        for name, value in self.fields.items():
            metadata.set(name, value, self.widths[name])

    @property
    def wire_overhead_bytes(self) -> int:
        """Bytes appended on the wire: bridged bits rounded up to bytes."""
        total_bits = sum(self.widths.values())
        return (total_bits + 7) // 8
