"""Table placement "compiler" (§3.3, §4.4).

The real Tofino compiler splits a large table across stages *within* one
pipeline but will not place across pipelines — that is Sailfish's
planner's job. This module models the part the toolchain does do:

* allocate block-granular stage memory for each table segment,
* enforce the lookup-order constraint — a table must sit at a pipe
  position no earlier than the tables it depends on (Fig. 15's
  A -> B -> C -> D order through the folded path),
* fail loudly (:class:`PlacementError`) when a pipe is out of memory,
  which is the signal that drives cross-pipeline mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..tables.geometry import MemoryFootprint
from .memory import AllocationError, blocks_for_footprint
from .pipeline import Gress, PipelineFabric, PipeRef, folded_path, normal_path


class PlacementError(Exception):
    """Raised when tables cannot be placed under the architectural rules.

    Besides the human-readable message (unchanged from earlier releases),
    the error carries machine-readable context so callers — the fuzz
    harness, the planner, operator tooling — can classify failures
    without parsing strings:

    * ``stage`` — the placement phase that failed (``"path-check"``,
      ``"order-check"``, ``"segment-alloc"``, ``"pipe-capacity"``,
      ``"plan-input"``, ``"plan-capacity"``);
    * ``table`` — the logical table involved, when known;
    * ``resource`` — the memory kind that ran short (``"sram"``,
      ``"tcam"``, ``"sram+tcam"``), or ``None`` for structural failures.

    >>> err = PlacementError("out of room", stage="pipe-capacity",
    ...                      table="acl", resource="tcam")
    >>> err.reason
    'pipe-capacity:tcam'
    >>> str(err)
    'out of room'
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str = "compiler",
        table: Optional[str] = None,
        resource: Optional[str] = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.table = table
        self.resource = resource

    @property
    def reason(self) -> str:
        """A stable classification key: ``stage`` plus the short resource."""
        return f"{self.stage}:{self.resource}" if self.resource else self.stage


def _short_resource(sram: int, tcam: int) -> Optional[str]:
    """The resource tag for a shortfall of *sram*/*tcam* blocks."""
    if sram > 0 and tcam > 0:
        return "sram+tcam"
    if sram > 0:
        return "sram"
    if tcam > 0:
        return "tcam"
    return None


@dataclass(frozen=True)
class TableSpec:
    """A logical table to place."""

    name: str
    footprint: MemoryFootprint
    depends_on: Sequence[str] = ()


@dataclass(frozen=True)
class Segment:
    """A portion of a table bound to one pipe."""

    table: str
    pipe: PipeRef
    footprint: MemoryFootprint


@dataclass
class PlacementReport:
    """Result of a successful placement."""

    segments: List[Segment]
    stage_map: Dict[str, List[PipeRef]] = field(default_factory=dict)

    def pipes_of(self, table: str) -> List[PipeRef]:
        return self.stage_map.get(table, [])


def pipe_order(folded: bool, entry_pipeline: int = 0) -> List[PipeRef]:
    """The traversal order pipes are visited in (the lookup order)."""
    if folded:
        return folded_path(entry_pipeline)
    return normal_path(entry_pipeline)


class Compiler:
    """Places table segments into a :class:`PipelineFabric`'s memory."""

    def __init__(self, fabric: PipelineFabric):
        self.fabric = fabric

    def _order_index(self, pipe: PipeRef, table: Optional[str] = None) -> int:
        entry = 0 if pipe[0] in (0, 1) else 2
        order = pipe_order(self.fabric.folded, entry)
        try:
            return order.index(pipe)
        except ValueError:
            raise PlacementError(
                f"pipe {pipe} is not on the {'folded' if self.fabric.folded else 'normal'} path",
                stage="path-check",
                table=table,
            ) from None

    def check_order(self, specs: Sequence[TableSpec], segments: Sequence[Segment]) -> None:
        """Verify every segment respects its table's dependencies."""
        by_table: Dict[str, List[int]] = {}
        for segment in segments:
            by_table.setdefault(segment.table, []).append(
                self._order_index(segment.pipe, table=segment.table)
            )
        known = {spec.name for spec in specs}
        for spec in specs:
            for dep in spec.depends_on:
                if dep not in known:
                    raise PlacementError(
                        f"{spec.name} depends on unknown table {dep}",
                        stage="order-check",
                        table=spec.name,
                    )
                if dep not in by_table or spec.name not in by_table:
                    continue
                earliest = min(by_table[spec.name])
                latest_dep = min(by_table[dep])
                if earliest < latest_dep:
                    raise PlacementError(
                        f"{spec.name} placed at pipe order {earliest}, before its "
                        f"dependency {dep} at order {latest_dep}",
                        stage="order-check",
                        table=spec.name,
                    )

    def place(self, specs: Sequence[TableSpec], segments: Sequence[Segment]) -> PlacementReport:
        """Allocate stage blocks for *segments*; all-or-nothing.

        Each segment is packed into its pipe's pipeline starting from the
        first stage with room, spilling to later stages (intra-pipeline
        table splitting, which the real compiler automates).
        """
        self.check_order(specs, segments)
        taken: List[tuple] = []  # (pipeline_memory, stage, owner, sram, tcam)
        try:
            for segment in segments:
                self._place_segment(segment, taken)
        except PlacementError:
            for memory, stage, owner, _s, _t in taken:
                memory.stages[stage].release_all(owner)
            raise
        report = PlacementReport(segments=list(segments))
        for segment in segments:
            report.stage_map.setdefault(segment.table, []).append(segment.pipe)
        return report

    def _place_segment(self, segment: Segment, taken: List[tuple]) -> None:
        pipeline_index, _gress = segment.pipe
        memory = self.fabric.memory[pipeline_index]
        sram_blocks, tcam_blocks = blocks_for_footprint(segment.footprint)
        owner = f"{segment.table}@{segment.pipe[0]}/{segment.pipe[1].value}"
        for stage in memory.stages:
            take_sram = min(sram_blocks, stage.sram_blocks_free)
            take_tcam = min(tcam_blocks, stage.tcam_blocks_free)
            if take_sram == 0 and take_tcam == 0:
                continue
            try:
                stage.allocate(owner, take_sram, take_tcam)
            except AllocationError as exc:  # pragma: no cover - guarded by mins
                raise PlacementError(
                    str(exc),
                    stage="segment-alloc",
                    table=segment.table,
                    resource=_short_resource(take_sram, take_tcam),
                ) from exc
            taken.append((memory, stage.stage_index, owner, take_sram, take_tcam))
            sram_blocks -= take_sram
            tcam_blocks -= take_tcam
            if sram_blocks == 0 and tcam_blocks == 0:
                return
        raise PlacementError(
            f"pipeline {pipeline_index} cannot hold segment of {segment.table}: "
            f"{sram_blocks} SRAM / {tcam_blocks} TCAM blocks short",
            stage="pipe-capacity",
            table=segment.table,
            resource=_short_resource(sram_blocks, tcam_blocks),
        )

    def occupancy(self) -> Dict[int, MemoryFootprint]:
        """Used words/slices per pipeline after placement."""
        return {
            memory.pipeline_index: MemoryFootprint(
                sram_words=memory.sram_words_used(),
                tcam_slices=memory.tcam_slices_used(),
            )
            for memory in self.fabric.memory
        }
