"""Per-stage SRAM/TCAM memory model of the switching ASIC (§3.2).

Geometry follows the publicly known Tofino 1 layout: 4 pipelines, 12
match-action stages per pipeline, and per stage 80 SRAM blocks of
1024 × 128-bit words plus 24 TCAM blocks of 512 × 44-bit slices. Each
stage's memory is private — "cannot access the memory resources of other
stages even in the same pipeline" — which is why placement (not just
total capacity) matters.

Physical allocation is **block-granular**, as on the real chip; the
analytic occupancy model in :mod:`repro.core.occupancy` uses raw
words/slices instead, matching how the paper reports percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..tables.geometry import MemoryFootprint

STAGES_PER_PIPELINE = 12
SRAM_BLOCKS_PER_STAGE = 80
SRAM_WORDS_PER_BLOCK = 1024
TCAM_BLOCKS_PER_STAGE = 24
TCAM_SLICES_PER_BLOCK = 512

SRAM_WORDS_PER_STAGE = SRAM_BLOCKS_PER_STAGE * SRAM_WORDS_PER_BLOCK
TCAM_SLICES_PER_STAGE = TCAM_BLOCKS_PER_STAGE * TCAM_SLICES_PER_BLOCK

#: Capacity of ONE pipeline — the denominator for every percentage in the
#: paper's Tables 2-4 and Fig. 17 (see DESIGN.md §2).
SRAM_WORDS_PER_PIPELINE = STAGES_PER_PIPELINE * SRAM_WORDS_PER_STAGE
TCAM_SLICES_PER_PIPELINE = STAGES_PER_PIPELINE * TCAM_SLICES_PER_STAGE

NUM_PIPELINES = 4


class AllocationError(Exception):
    """Raised when a stage cannot satisfy a block allocation."""


@dataclass
class StageMemory:
    """Free/used block accounting for one MAU stage."""

    stage_index: int
    sram_blocks_free: int = SRAM_BLOCKS_PER_STAGE
    tcam_blocks_free: int = TCAM_BLOCKS_PER_STAGE
    allocations: Dict[str, MemoryFootprint] = field(default_factory=dict)

    def sram_blocks_used(self) -> int:
        return SRAM_BLOCKS_PER_STAGE - self.sram_blocks_free

    def tcam_blocks_used(self) -> int:
        return TCAM_BLOCKS_PER_STAGE - self.tcam_blocks_free

    def allocate(self, owner: str, sram_blocks: int, tcam_blocks: int) -> None:
        """Reserve whole blocks for *owner* (a table name)."""
        if sram_blocks < 0 or tcam_blocks < 0:
            raise ValueError("block counts must be non-negative")
        if sram_blocks > self.sram_blocks_free or tcam_blocks > self.tcam_blocks_free:
            raise AllocationError(
                f"stage {self.stage_index}: need {sram_blocks} SRAM / {tcam_blocks} TCAM blocks, "
                f"have {self.sram_blocks_free}/{self.tcam_blocks_free}"
            )
        self.sram_blocks_free -= sram_blocks
        self.tcam_blocks_free -= tcam_blocks
        current = self.allocations.get(owner, MemoryFootprint.zero())
        self.allocations[owner] = current + MemoryFootprint(
            sram_words=sram_blocks * SRAM_WORDS_PER_BLOCK,
            tcam_slices=tcam_blocks * TCAM_SLICES_PER_BLOCK,
        )

    def release_all(self, owner: str) -> None:
        """Return every block held by *owner* in this stage."""
        footprint = self.allocations.pop(owner, None)
        if footprint is None:
            return
        self.sram_blocks_free += footprint.sram_words // SRAM_WORDS_PER_BLOCK
        self.tcam_blocks_free += footprint.tcam_slices // TCAM_SLICES_PER_BLOCK


@dataclass
class PipelineMemory:
    """The 12 stages of one pipeline."""

    pipeline_index: int
    stages: List[StageMemory] = field(default_factory=list)

    def __post_init__(self):
        if not self.stages:
            self.stages = [StageMemory(i) for i in range(STAGES_PER_PIPELINE)]

    def sram_words_used(self) -> int:
        return sum(s.sram_blocks_used() for s in self.stages) * SRAM_WORDS_PER_BLOCK

    def tcam_slices_used(self) -> int:
        return sum(s.tcam_blocks_used() for s in self.stages) * TCAM_SLICES_PER_BLOCK

    def sram_occupancy(self) -> float:
        """Fraction of this pipeline's SRAM allocated (block-granular)."""
        return self.sram_words_used() / SRAM_WORDS_PER_PIPELINE

    def tcam_occupancy(self) -> float:
        return self.tcam_slices_used() / TCAM_SLICES_PER_PIPELINE

    def release_all(self, owner: str) -> None:
        for stage in self.stages:
            stage.release_all(owner)

    def owners(self) -> List[str]:
        names = set()
        for stage in self.stages:
            names.update(stage.allocations)
        return sorted(names)


def blocks_for_footprint(footprint: MemoryFootprint) -> "tuple[int, int]":
    """Whole (SRAM, TCAM) blocks needed to hold *footprint*."""
    sram_blocks = -(-footprint.sram_words // SRAM_WORDS_PER_BLOCK) if footprint.sram_words else 0
    tcam_blocks = -(-footprint.tcam_slices // TCAM_SLICES_PER_BLOCK) if footprint.tcam_slices else 0
    return sram_blocks, tcam_blocks
