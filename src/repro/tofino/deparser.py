"""Deparser model (§3.2): reassemble the wire packet after rewrites.

The match-action pipeline edits header fields (outer destination IP, the
VNI, TTLs); the deparser re-emits the packet with those edits applied
and fixes derived fields — most importantly the IPv4 header checksum,
which hardware recomputes incrementally on every header rewrite.

Works hand in hand with :mod:`repro.tofino.parser`: the parse result's
extraction offsets tell the deparser where each header instance lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net.checksum import internet_checksum
from .parser import ParseResult


@dataclass(frozen=True)
class FieldRewrite:
    """Overwrite *length* bytes at *field_offset* within *header*."""

    header: str
    field_offset: int
    value: bytes

    @classmethod
    def be(cls, header: str, field_offset: int, value: int, length: int) -> "FieldRewrite":
        """A big-endian integer rewrite of *length* bytes."""
        return cls(header, field_offset, value.to_bytes(length, "big"))


class DeparseError(ValueError):
    """Raised when a rewrite does not fit its header."""


# Well-known field positions the gateway rewrites.
IPV4_DST = ("ipv4", 16, 4)
IPV4_SRC = ("ipv4", 12, 4)
VXLAN_VNI = ("vxlan", 4, 3)  # the top 3 bytes of the last word


def rewrite_outer_dst(dst: int) -> FieldRewrite:
    return FieldRewrite.be("ipv4", 16, dst, 4)


def rewrite_outer_src(src: int) -> FieldRewrite:
    return FieldRewrite.be("ipv4", 12, src, 4)


def rewrite_vni(vni: int) -> FieldRewrite:
    if not 0 <= vni < (1 << 24):
        raise DeparseError("VNI out of 24-bit range")
    return FieldRewrite("vxlan", 4, vni.to_bytes(3, "big"))


def deparse(raw: bytes, parsed: ParseResult, rewrites: List[FieldRewrite]) -> bytes:
    """Emit the packet with *rewrites* applied and checksums fixed.

    IPv4 headers whose bytes changed (including via an applied rewrite)
    get their header checksum recomputed, exactly as the hardware
    deparser's checksum engine does.
    """
    out = bytearray(raw)
    touched_headers = set()
    for rewrite in rewrites:
        extraction = parsed.find(rewrite.header)
        if extraction is None:
            raise DeparseError(f"header {rewrite.header} was not parsed")
        end = rewrite.field_offset + len(rewrite.value)
        if end > extraction.length:
            raise DeparseError(
                f"rewrite of {rewrite.header}+{rewrite.field_offset} "
                f"({len(rewrite.value)}B) exceeds the {extraction.length}B header"
            )
        start = extraction.offset + rewrite.field_offset
        out[start:start + len(rewrite.value)] = rewrite.value
        touched_headers.add(rewrite.header)

    for header in ("ipv4", "inner_ipv4"):
        if header not in touched_headers:
            continue
        extraction = parsed.find(header)
        if extraction is None:  # pragma: no cover - guarded above
            continue
        start, length = extraction.offset, extraction.length
        out[start + 10:start + 12] = b"\x00\x00"
        checksum = internet_checksum(bytes(out[start:start + length]))
        out[start + 10:start + 12] = checksum.to_bytes(2, "big")
    return bytes(out)
