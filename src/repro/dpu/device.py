"""The simulated DPU device: the middle tier of hierarchical co-offloading.

Gryphon's observation (PAPERS.md) is that the two-tier split leaves a
gap: the switch ASIC has tiny tables and no per-connection state, while
x86 has unbounded tables at the highest per-packet cost. A DPU sits in
between on every axis —

* **tables**: tens of thousands of exact-match flow entries, far more
  than the chip's offload budget carved out of SRAM/TCAM
  (:data:`~repro.tofino.memory.SRAM_WORDS_PER_PIPELINE` is shared with
  every other table), far fewer than an x86 dict;
* **state**: a real session table, so warm stateful traffic (SNAT
  contexts) can live below x86;
* **latency/cost**: between the ASIC's sub-microsecond pipeline and the
  x86 box's :data:`~repro.x86.gateway.FORWARDING_LATENCY_US` 40 us, at
  a per-packet cost an order of magnitude below a Xeon core
  (:class:`~repro.core.economics.TierCostModel`).

The device is controller-manageable: it carries a full
:class:`~repro.dataplane.gateway_logic.GatewayTables` bundle and the
same ``install_route``/``install_vm`` push interface as
:class:`~repro.x86.gateway.XgwX86`, so a single-device
:class:`~repro.cluster.cluster.GatewayCluster` adopted into the
controller gets transactions, consistency checks and audits for free.
Anything the device holds no state for is punted with
:data:`~repro.dataplane.gateway_logic.DropReason.DPU_TABLE_MISS` — a
drop *at the device* (per-device counter conservation holds) that the
steering layer re-offers to x86, the universal fallback tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..dataplane.gateway_logic import (
    DropReason,
    ForwardAction,
    ForwardResult,
    GatewayTables,
    count_drop,
    forward,
    inner_flow_key,
)
from ..net.addr import Prefix
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..tables.counter import CounterTable
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction
from ..telemetry.stats import CounterSet
from ..workloads.flows import FlowSpec

#: A VIP as the session table and audit see it: hashable, orderable.
VipTuple = Tuple[int, int, int]  # (vni, dst_ip, version)


@dataclass(frozen=True)
class DpuProfile:
    """Per-DPU capacity/latency/cost parameters.

    Defaults sit squarely between the chip and x86: 64 Ki exact-match
    flow entries (the chip's offload budget is typically tens to
    hundreds; x86 is unbounded), 256 Ki stateful sessions, 60 Mpps,
    12 us forwarding latency (chip ~1 us, x86 40 us).

    >>> DpuProfile().flow_table_entries
    65536
    >>> DpuProfile(flow_table_entries=0)
    Traceback (most recent call last):
        ...
    ValueError: flow_table_entries must be positive
    """

    flow_table_entries: int = 65536
    session_capacity: int = 262144
    max_pps: float = 60e6
    latency_us: float = 12.0

    def __post_init__(self):
        if self.flow_table_entries <= 0:
            raise ValueError("flow_table_entries must be positive")
        if self.session_capacity <= 0:
            raise ValueError("session_capacity must be positive")
        if self.max_pps <= 0:
            raise ValueError("max_pps must be positive")
        if self.latency_us <= 0:
            raise ValueError("latency_us must be positive")


@dataclass
class SessionContext:
    """One stateful (SNAT-style) connection context resident on a DPU."""

    flow: FlowKey
    vip: VipTuple
    created_at: float
    last_active: float
    packets: int = 0


class DpuSessionTable:
    """Bounded per-device session store, keyed by the inner 5-tuple.

    The capacity bound is what makes the DPU a *tier* and not just a
    smaller x86: when it fills, new connections miss and fall back to
    x86 instead of growing the table.

    >>> from repro.net.flow import FlowKey
    >>> table = DpuSessionTable(capacity=1)
    >>> f1 = FlowKey(1, 2, 6, 10, 20)
    >>> table.ensure(f1, (7, 2, 4), now=0.0)
    True
    >>> table.ensure(FlowKey(3, 2, 6, 10, 20), (7, 2, 4), now=0.0)
    False
    >>> table.ensure(f1, (7, 2, 4), now=1.0)  # resident flows always hit
    True
    >>> table.vips()
    [(7, 2, 4)]
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._sessions: Dict[FlowKey, SessionContext] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def ensure(self, flow: FlowKey, vip: VipTuple, now: float) -> bool:
        """Touch (or create) *flow*'s context; False when the table is
        full and the flow is new — the caller punts to x86."""
        ctx = self._sessions.get(flow)
        if ctx is not None:
            ctx.last_active = now
            ctx.packets += 1
            return True
        if len(self._sessions) >= self.capacity:
            return False
        self._sessions[flow] = SessionContext(flow, vip, now, now, packets=1)
        return True

    def items(self) -> Iterator[Tuple[FlowKey, SessionContext]]:
        return iter(self._sessions.items())

    def vips(self) -> List[VipTuple]:
        """The distinct VIPs with resident sessions, sorted."""
        return sorted({ctx.vip for ctx in self._sessions.values()})

    def count_for(self, vip: VipTuple) -> int:
        return sum(1 for ctx in self._sessions.values() if ctx.vip == vip)

    def drop_vip(self, vip: VipTuple) -> int:
        """Reap every context of one VIP (end-of-migration drain or
        audit repair); returns how many were removed."""
        stale = [flow for flow, ctx in self._sessions.items() if ctx.vip == vip]
        for flow in stale:
            del self._sessions[flow]
        return len(stale)

    def clear(self) -> int:
        removed = len(self._sessions)
        self._sessions.clear()
        return removed


@dataclass
class DpuIntervalReport:
    """One interval's rate-model outcome on one device.

    ``fallback_specs`` carries the flows the device could not serve —
    steering misses, session-table overflow, and capacity punts — which
    the loop re-offers to the x86 side; nothing is silently lost.
    """

    offered_pps: float = 0.0
    served_pps: float = 0.0
    miss_pps: float = 0.0  # no steering route / session overflow
    punt_pps: float = 0.0  # over the device's pps capacity
    fallback_specs: List[FlowSpec] = field(default_factory=list)

    @property
    def fallback_pps(self) -> float:
        return self.miss_pps + self.punt_pps


class DpuDevice:
    """One simulated DPU: tables, sessions, counters, capacity model.

    >>> dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
    >>> dev.profile.latency_us
    12.0
    >>> dev.route_count()
    0
    """

    def __init__(
        self,
        name: str,
        gateway_ip: int,
        profile: Optional[DpuProfile] = None,
        tables: Optional[GatewayTables] = None,
    ):
        self.name = name
        self.gateway_ip = gateway_ip
        self.profile = profile if profile is not None else DpuProfile()
        self.tables = tables if tables is not None else GatewayTables()
        self.sessions = DpuSessionTable(self.profile.session_capacity)
        #: x86-style accounting (``rx_packets``/``action_*``/``drop_*``)
        #: so :class:`~repro.audit.invariants.CounterConservation` holds.
        self.counters = CounterSet()
        #: Per-VIP served-packet counters the control loop sweeps each
        #: interval to attribute DPU-tier rates (the Tofino-sweep analog).
        self.sweep_counters = CounterTable(f"{name}-sweep")
        #: Set by :meth:`fail`: the device stops serving and its session
        #: state is gone. Table state is re-derivable from intent, so it
        #: survives (and is withdrawn through normal transactions).
        self.failed = False

    # -- controller push interface (same shape as XgwX86) -------------------

    def install_route(self, vni: int, prefix: Prefix, action: RouteAction,
                      replace: bool = False) -> None:
        self.tables.routing.insert(vni, prefix, action, replace=replace)

    def remove_route(self, vni: int, prefix: Prefix) -> RouteAction:
        return self.tables.routing.remove(vni, prefix)

    def install_vm(self, vni: int, vm_ip: int, version: int, binding: NcBinding,
                   replace: bool = False) -> None:
        self.tables.vm_nc.insert(vni, vm_ip, version, binding, replace=replace)

    def remove_vm(self, vni: int, vm_ip: int, version: int) -> NcBinding:
        return self.tables.vm_nc.remove(vni, vm_ip, version)

    def route_count(self) -> int:
        return len(self.tables.routing)

    def vm_count(self) -> int:
        return len(self.tables.vm_nc)

    def max_pps(self) -> float:
        return self.profile.max_pps

    # -- failure -------------------------------------------------------------

    def fail(self) -> int:
        """Device death: stop serving, lose the session state (dataplane
        state has no second copy). Returns the sessions lost."""
        self.failed = True
        for key, _cell in list(self.sweep_counters.items()):
            self.sweep_counters.reset(key)
        return self.sessions.clear()

    # -- functional path ------------------------------------------------------

    def forward(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Run the shared gateway program over the device's (partial)
        tables. Any packet the device holds no state for — no steering
        route, failed device, or a full session table meeting a new
        connection — is a ``dpu-table-miss``: dropped here, re-offered
        to x86 by the caller (:meth:`XgwX86.forward_dpu_miss`)."""
        self.counters.add("rx_packets")
        if self.failed:
            result = ForwardResult(ForwardAction.DROP, packet,
                                   detail=DropReason.DPU_TABLE_MISS.value)
        else:
            result = forward(self.tables, packet, self.gateway_ip, now)
            if (result.action is ForwardAction.DROP
                    and result.detail == DropReason.NO_ROUTE.value):
                # The full tables would have resolved it; this device
                # just doesn't hold the entry.
                result = ForwardResult(ForwardAction.DROP, packet,
                                       detail=DropReason.DPU_TABLE_MISS.value)
            elif result.action is not ForwardAction.DROP and packet.is_vxlan:
                vip = (packet.vni, packet.inner_dst, packet.inner_version)
                if not self.sessions.ensure(inner_flow_key(packet), vip, now):
                    result = ForwardResult(ForwardAction.DROP, packet,
                                           detail=DropReason.DPU_TABLE_MISS.value)
        self.counters.add(f"action_{result.action.value.replace('-', '_')}")
        if result.action is ForwardAction.DROP:
            count_drop(self.counters, result.detail)
        return result

    # -- rate model (what the offload loop drives) ----------------------------

    def serve_interval(self, flows: Sequence[FlowSpec], interval: float,
                       now: float = 0.0) -> DpuIntervalReport:
        """Offer one interval of flow rates through the device.

        Flows are served hottest-first up to the device's pps capacity;
        a flow misses when its VIP has no steering route on the device
        or the session table is full, and is punted when capacity runs
        out. Misses and punts both land in ``fallback_specs``.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        report = DpuIntervalReport(offered_pps=sum(f.pps for f in flows))
        ordered = sorted(
            flows,
            key=lambda s: (-s.pps, s.vni, s.flow.dst_ip, s.flow.src_ip,
                           s.flow.src_port, s.flow.dst_port),
        )
        remaining = self.profile.max_pps
        for spec in ordered:
            packets = int(round(spec.pps * interval))
            self.counters.add("rx_packets", packets)
            vip = (spec.vni, spec.flow.dst_ip, spec.flow.version)
            served = False
            if not self.failed and spec.pps <= remaining:
                hit = self.tables.routing.lookup(spec.vni, spec.flow.dst_ip,
                                                 spec.flow.version)
                if hit is not None and self.sessions.ensure(spec.flow, vip, now):
                    served = True
                    remaining -= spec.pps
                    report.served_pps += spec.pps
                    self.counters.add("action_deliver_nc", packets)
                    self.sweep_counters.count_batch(
                        self._steer_key(spec), packets)
            if not served:
                if self.failed or spec.pps > remaining:
                    report.punt_pps += spec.pps
                else:
                    report.miss_pps += spec.pps
                report.fallback_specs.append(spec)
                self.counters.add("action_drop", packets)
                self.counters.add(DropReason.DPU_TABLE_MISS.counter, packets)
        return report

    @staticmethod
    def _steer_key(spec: FlowSpec):
        # Local import: repro.offload must stay importable without
        # repro.dpu, never the reverse.
        from ..offload.loop import vip_of
        return vip_of(spec)
