"""repro.dpu — the middle tier of hierarchical three-tier co-offloading.

A simulated DPU device model (bounded flow/session tables, pps capacity,
latency and per-packet cost between the switch ASIC's and x86's) plus
the :class:`~repro.dpu.planner.TierPlanner` that places VIPs across
chip / DPU / x86 through controller transactions.
"""

from .budget import DpuBudget
from .device import (
    DpuDevice,
    DpuIntervalReport,
    DpuProfile,
    DpuSessionTable,
    SessionContext,
)
from .planner import (
    Tier,
    TIER_RANK,
    TierDecision,
    TierDetector,
    TierPlacement,
    TierPlanner,
    dpu_route,
)

__all__ = [
    "DpuBudget",
    "DpuDevice",
    "DpuIntervalReport",
    "DpuProfile",
    "DpuSessionTable",
    "SessionContext",
    "Tier",
    "TIER_RANK",
    "TierDecision",
    "TierDetector",
    "TierPlacement",
    "TierPlanner",
    "dpu_route",
]
