"""Three-tier placement: chip / DPU / x86 (hierarchical co-offloading).

Generalises the two-tier :class:`~repro.offload.scheduler.OffloadScheduler`
+ :class:`~repro.offload.scheduler.ChipBudget` pair: heavy stable flows
go to the switch ASIC, warm stateful sessions to a DPU, the cold and
volatile tail stays on x86. The same three invariants carry over, per
tier:

* **never over-commit a device** — chip admission goes through the
  existing :class:`~repro.offload.scheduler.ChipBudget`, DPU admission
  through one :class:`~repro.dpu.budget.DpuBudget` per device, and both
  evict coldest-first (colder than the candidate) before denying;
* **no partial migrations** — every tier move is two transactions in a
  fixed order: *withdraw from the source tier first, install on the
  target second, reap the source device's sessions last*. A
  :class:`~repro.core.controller.TransactionAborted` is absorbed (the
  planner is alive: the key simply lands on x86, the universal tier, and
  stale sessions are still reaped — zero residue). A
  :class:`~repro.core.journal.ControllerCrash` is **not** absorbed: the
  control process is dead, so nothing can reap — the source device's
  orphaned sessions are exactly the residue the
  ``tier-residue`` audit invariant detects and
  :class:`~repro.audit.repair.RepairBridge` clears after recovery.
  Route state itself is always clean: the crash gate fires before any
  gateway prepare, and uncommitted journal records are dropped on
  recovery;
* **hysteresis per boundary** — the :class:`TierDetector` runs one
  :class:`~repro.offload.detector.HeavyHitterDetector` per tier
  boundary, so a flow oscillating near either threshold migrates at
  most once in each direction across that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cluster.cluster import GatewayCluster
from ..core.controller import Controller, RouteEntry, TransactionAborted
from ..core.economics import TierCostModel
from ..offload.detector import FlowState, HeavyHitterDetector
from ..offload.scheduler import VipKey, entry_footprint
from ..offload.sketch import _key_bytes
from ..tables.vxlan_routing import RouteAction, Scope
from ..telemetry.stats import CounterSet
from ..telemetry.timeseries import SeriesBundle
from .budget import DpuBudget
from .device import DpuDevice


class Tier(Enum):
    """The three serving substrates, ordered cheapest-per-packet last."""

    X86 = "x86"
    DPU = "dpu"
    CHIP = "chip"


#: x86 < dpu < chip: placement preference order (and the order ``apply``
#: executes moves in — demotions free capacity before promotions use it).
TIER_RANK: Dict[Tier, int] = {Tier.X86: 0, Tier.DPU: 1, Tier.CHIP: 2}


def dpu_route(key: VipKey) -> RouteEntry:
    """The steering route that sends one VIP to the DPU tier (the chip
    tier uses ``target="offload"``; see :meth:`VipKey.route`)."""
    return RouteEntry(key.vni, key.prefix,
                      RouteAction(Scope.LOCAL, target="dpu"))


@dataclass(frozen=True)
class TierDecision:
    """One per-interval placement decision: move *key* to *target*."""

    key: Hashable
    target: Tier
    rate_pps: float
    interval_index: int


class TierDetector:
    """Two stacked heavy-hitter detectors, one per tier boundary.

    The *chip* detector's thresholds sit above the *dpu* detector's, so
    the hot set nests: a key the chip detector calls HOT belongs on the
    chip; else, HOT by the dpu detector means the DPU; else x86. Each
    boundary keeps the underlying detector's hysteresis, so per observe
    a key crosses each boundary at most once — and consecutive crossings
    of the same boundary alternate direction.

    >>> det = TierDetector(
    ...     chip=HeavyHitterDetector(theta_hi=1000.0, theta_lo=400.0,
    ...                              promote_after=1, ewma_alpha=1.0),
    ...     dpu=HeavyHitterDetector(theta_hi=100.0, theta_lo=40.0,
    ...                             promote_after=1, ewma_alpha=1.0))
    >>> [(d.key, d.target.value) for d in det.observe({"vip": 500.0})]
    [('vip', 'dpu')]
    >>> [(d.key, d.target.value) for d in det.observe({"vip": 5000.0})]
    [('vip', 'chip')]
    """

    def __init__(self, chip: HeavyHitterDetector, dpu: HeavyHitterDetector):
        if chip.theta_hi <= dpu.theta_hi:
            raise ValueError(
                "chip boundary must sit above the dpu boundary "
                f"(chip theta_hi={chip.theta_hi} <= dpu theta_hi={dpu.theta_hi})"
            )
        self.chip = chip
        self.dpu = dpu

    def target_tier(self, key: Hashable) -> Tier:
        """Where the stacked hysteresis states currently put *key*."""
        if self.chip.state_of(key) is FlowState.HOT:
            return Tier.CHIP
        if self.dpu.state_of(key) is FlowState.HOT:
            return Tier.DPU
        return Tier.X86

    def demotion_target(self, key: Hashable, from_tier: Tier) -> Tier:
        """Where a capacity eviction from *from_tier* should land: a
        chip victim still warm by the dpu boundary steps down one tier;
        everything else falls to x86."""
        if from_tier is Tier.CHIP and self.dpu.state_of(key) is FlowState.HOT:
            return Tier.DPU
        return Tier.X86

    def mark_placed(self, key: Hashable, tier: Tier) -> None:
        """Sync boundary states after an external placement (eviction,
        drain, denied admission): every boundary above *tier* restarts
        its hysteresis from COLD."""
        if tier is not Tier.CHIP:
            self.chip.mark_demoted(key)
        if tier is Tier.X86:
            self.dpu.mark_demoted(key)

    def observe(self, rates: Mapping[Hashable, float]) -> List[TierDecision]:
        """Ingest one interval of (key -> pps); emit at most one
        :class:`TierDecision` per key whose boundary state changed."""
        index = self.chip.interval_index
        changed: Dict[Hashable, float] = {}
        for decision in self.chip.observe(rates) + self.dpu.observe(rates):
            changed[decision.key] = max(changed.get(decision.key, 0.0),
                                        decision.rate_pps)
        decisions = [TierDecision(key, self.target_tier(key), rate, index)
                     for key, rate in changed.items()]
        decisions.sort(key=lambda d: (-d.rate_pps, _key_bytes(d.key)))
        return decisions


@dataclass
class TierPlacement:
    """One VIP currently steered off x86 (to the chip or to one DPU)."""

    key: VipKey
    tier: Tier
    device: Optional[str]  # DPU device name; None on the chip
    rate_pps: float
    since: float


class TierPlanner:
    """Places VIPs across chip / DPU / x86 through controller transactions.

    Owns one :class:`~repro.offload.scheduler.ChipBudget` (the chip
    cluster) and one :class:`~repro.dpu.budget.DpuBudget` per DPU
    device; each device is adopted into the controller as a single-member
    cluster named after it, so DPU steering routes ride the same
    two-phase transaction/journal/audit machinery as everything else.
    """

    def __init__(
        self,
        controller: Controller,
        chip_cluster_id: str,
        chip_budget,
        devices: Iterable[DpuDevice],
        detector: TierDetector,
        dpu_budgets: Optional[Dict[str, DpuBudget]] = None,
        sessions_per_vip: int = 4,
        cost_model: Optional[TierCostModel] = None,
    ):
        self.controller = controller
        self.chip_cluster_id = chip_cluster_id
        self.chip_budget = chip_budget
        self.devices: Dict[str, DpuDevice] = {d.name: d for d in devices}
        self.detector = detector
        self.dpu_budgets = dpu_budgets if dpu_budgets is not None else {
            name: DpuBudget(device) for name, device in self.devices.items()
        }
        if set(self.dpu_budgets) != set(self.devices):
            raise ValueError("dpu_budgets must cover exactly the devices")
        if sessions_per_vip <= 0:
            raise ValueError("sessions_per_vip must be positive")
        self.sessions_per_vip = sessions_per_vip
        self.cost_model = cost_model if cost_model is not None else TierCostModel()
        self.placements: Dict[VipKey, TierPlacement] = {}
        self.decision_log: List[str] = []
        self.counters = CounterSet()
        self.series = SeriesBundle()
        for name in sorted(self.devices):
            if name not in controller.clusters:
                controller.adopt_cluster(
                    name, GatewayCluster(name, [(name, self.devices[name])])
                )

    # -- queries ------------------------------------------------------------

    @property
    def cluster_id(self) -> str:
        """The chip cluster id (OffloadScheduler protocol compatibility:
        the offload loop reads ``scheduler.cluster_id`` to find the
        XGW-H members it drives)."""
        return self.chip_cluster_id

    def place_of(self, key: VipKey) -> Tuple[str, Optional[str]]:
        """``(tier-name, device-name-or-None)`` for one VIP."""
        placement = self.placements.get(key)
        if placement is None:
            return (Tier.X86.value, None)
        return (placement.tier.value, placement.device)

    def keys_on(self, tier, device: Optional[str] = None) -> List[VipKey]:
        """VIPs on *tier* (a :class:`Tier` or its string value)."""
        tier = Tier(tier) if isinstance(tier, str) else tier
        return sorted(
            (p.key for p in self.placements.values()
             if p.tier is tier and (device is None or p.device == device)),
            key=lambda k: (k.vni, k.dst_ip, k.version),
        )

    def decision_log_text(self) -> str:
        """The canonical, byte-stable decision log."""
        return "\n".join(self.decision_log) + ("\n" if self.decision_log else "")

    def budgets(self) -> Dict[str, object]:
        """Every budget this actor places against, keyed by tier/device —
        the protocol :func:`~repro.offload.parity.budget_state` walks."""
        out: Dict[str, object] = {"chip": self.chip_budget}
        for name in sorted(self.dpu_budgets):
            out[name] = self.dpu_budgets[name]
        return out

    def _log(self, now: float, verb: str, key: VipKey, rate: float,
             detail: str = "") -> None:
        line = f"t={now:.3f} {verb} {key.label()} rate={rate:.1f}pps"
        if detail:
            line += f" {detail}"
        self.decision_log.append(line)

    # -- rate refresh -------------------------------------------------------

    def refresh_rates(self, rates: Mapping[VipKey, float]) -> None:
        """Update placed entries' estimated rates (eviction ordering)."""
        for key, placement in self.placements.items():
            if key in rates:
                placement.rate_pps = rates[key]

    # -- transactional primitives ------------------------------------------
    #
    # ControllerCrash deliberately propagates out of every primitive: it
    # models the control process dying, so "catch and carry on" would be
    # a lie. TransactionAborted is a clean rollback and is absorbed.

    def _withdraw(self, placement: TierPlacement, now: float) -> bool:
        key = placement.key
        cid = (self.chip_cluster_id if placement.tier is Tier.CHIP
               else placement.device)
        try:
            with self.controller.transaction(cid, time=now) as txn:
                txn.remove_route(key.vni, key.prefix)
        except TransactionAborted as exc:
            self.counters.add("migrations_aborted")
            self._log(now, "abort-withdraw", key, placement.rate_pps,
                      f"tier={placement.tier.value} {type(exc).__name__}")
            return False
        return True

    def _release(self, placement: TierPlacement) -> None:
        if placement.tier is Tier.CHIP:
            self.chip_budget.release(entry_footprint(placement.key.version))
        else:
            self.dpu_budgets[placement.device].release(1, self.sessions_per_vip)

    def _reap(self, device_name: str, key: VipKey) -> None:
        """End-of-migration drain: drop the old device's session contexts
        for one VIP. Always the LAST step of a move — a controller crash
        before this point leaves the sessions as audit-visible residue."""
        reaped = self.devices[device_name].sessions.drop_vip(
            (key.vni, key.dst_ip, key.version))
        if reaped:
            self.counters.add("sessions_reaped", reaped)

    def _coldest(self, tier: Tier, max_rate: float) -> Optional[TierPlacement]:
        candidates = [p for p in self.placements.values()
                      if p.tier is tier and p.rate_pps < max_rate]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda p: (p.rate_pps, p.key.vni, p.key.dst_ip))

    def _device_online(self, name: str) -> bool:
        if self.devices[name].failed:
            return False
        cluster = self.controller.clusters.get(name)
        return cluster is None or bool(cluster.active_members())

    # -- admissions ---------------------------------------------------------

    def _admit_chip(self, key: VipKey, rate: float, now: float,
                    src: Tier) -> bool:
        footprint = entry_footprint(key.version)
        while not self.chip_budget.can_admit(footprint):
            victim = self._coldest(Tier.CHIP, rate)
            if victim is None or not self._evict_chip(victim, now):
                self.counters.add("promotions_denied")
                self._log(now, "deny", key, rate, "tier=chip no-headroom")
                return False
        try:
            with self.controller.transaction(self.chip_cluster_id,
                                             time=now) as txn:
                txn.install_route(key.route())
        except TransactionAborted as exc:
            self.counters.add("migrations_aborted")
            self._log(now, "abort-install", key, rate,
                      f"tier=chip {type(exc).__name__}")
            return False
        self.chip_budget.charge(footprint)
        self.placements[key] = TierPlacement(key, Tier.CHIP, None, rate, now)
        self.counters.add("promotions")
        self._log(now, "promote", key, rate, f"{src.value}->chip")
        return True

    def _admit_dpu(self, key: VipKey, rate: float, now: float,
                   src: Tier, verb: str) -> bool:
        cid = self._dpu_slot(rate, now)
        if cid is None:
            self.counters.add("promotions_denied")
            self._log(now, "deny", key, rate, "tier=dpu no-headroom")
            return False
        try:
            with self.controller.transaction(cid, time=now) as txn:
                txn.install_route(dpu_route(key))
        except TransactionAborted as exc:
            self.counters.add("migrations_aborted")
            self._log(now, "abort-install", key, rate,
                      f"tier=dpu dev={cid} {type(exc).__name__}")
            return False
        self.dpu_budgets[cid].charge(1, self.sessions_per_vip)
        self.placements[key] = TierPlacement(key, Tier.DPU, cid, rate, now)
        self.counters.add("promotions")
        self._log(now, verb, key, rate, f"{src.value}->dpu dev={cid}")
        return True

    def _dpu_slot(self, rate: float, now: float) -> Optional[str]:
        """Pick the device with the most entry headroom; evict DPU
        entries colder than the candidate (to x86 only — eviction never
        climbs tiers, which bounds the cascade) until one fits."""
        while True:
            online = [name for name in sorted(self.devices)
                      if self._device_online(name)]
            if not online:
                return None
            fits = [name for name in online
                    if self.dpu_budgets[name].can_admit(1, self.sessions_per_vip)]
            if fits:
                fits.sort(key=lambda n: (-self.dpu_budgets[n].headroom()["entries"], n))
                return fits[0]
            victim = self._coldest(Tier.DPU, rate)
            if victim is None or not self._evict_dpu(victim, now):
                return None

    def _evict_chip(self, victim: TierPlacement, now: float) -> bool:
        """Demote one chip entry to make room; a still-warm victim steps
        down to the DPU tier, otherwise it falls to x86."""
        target = self.detector.demotion_target(victim.key, Tier.CHIP)
        if not self._withdraw(victim, now):
            return False
        self._release(victim)
        del self.placements[victim.key]
        self.counters.add("evictions")
        placed = Tier.X86
        if target is Tier.DPU and self._admit_dpu(
                victim.key, victim.rate_pps, now, Tier.CHIP, verb="evict"):
            placed = Tier.DPU
        else:
            self._log(now, "evict", victim.key, victim.rate_pps, "chip->x86")
        self.detector.mark_placed(victim.key, placed)
        return True

    def _evict_dpu(self, victim: TierPlacement, now: float) -> bool:
        device = victim.device
        if not self._withdraw(victim, now):
            return False
        self._release(victim)
        del self.placements[victim.key]
        self.counters.add("evictions")
        self._log(now, "evict", victim.key, victim.rate_pps,
                  f"dpu->x86 dev={device}")
        self.detector.mark_placed(victim.key, Tier.X86)
        self._reap(device, victim.key)
        return True

    # -- migrations ---------------------------------------------------------

    def _move(self, key: VipKey, rate: float, target: Tier, now: float) -> bool:
        """One tier move: withdraw-source txn, install-target txn, reap
        source sessions — in that order (see the module docstring for the
        crash semantics this ordering buys)."""
        current = self.placements.get(key)
        src = current.tier if current is not None else Tier.X86
        if src is target:
            if current is not None:
                current.rate_pps = rate
            return True
        src_device = current.device if current is not None else None
        if current is not None:
            if not self._withdraw(current, now):
                return False  # placement unchanged; retried next interval
            self._release(current)
            del self.placements[key]
        placed, ok = Tier.X86, True
        if target is Tier.CHIP:
            ok = self._admit_chip(key, rate, now, src)
            placed = Tier.CHIP if ok else Tier.X86
        elif target is Tier.DPU:
            verb = "promote" if src is Tier.X86 else "demote"
            ok = self._admit_dpu(key, rate, now, src, verb)
            placed = Tier.DPU if ok else Tier.X86
        else:
            self.counters.add("demotions")
            self._log(now, "demote", key, rate, f"{src.value}->x86")
        self.detector.mark_placed(key, placed)
        if src_device is not None:
            self._reap(src_device, key)
        return ok

    def apply(self, decisions: Sequence[TierDecision], now: float) -> None:
        """Execute one interval's decisions, demotions first (rank
        order), hottest first within a rank — freed capacity is
        available to the promotes that follow."""
        ordered = sorted(
            decisions,
            key=lambda d: (TIER_RANK[d.target], -d.rate_pps, _key_bytes(d.key)),
        )
        for decision in ordered:
            self._move(decision.key, decision.rate_pps, decision.target, now)

    def observe_and_apply(self, rates: Mapping[Hashable, float],
                          now: float) -> List[TierDecision]:
        """One closed-loop interval: detect, refresh, place, record."""
        decisions = self.detector.observe(rates)
        self.refresh_rates(rates)
        self.apply(decisions, now)
        self.record_telemetry(now)
        return decisions

    # -- failure drain ------------------------------------------------------

    def drain_failed(self, now: float) -> int:
        """Move every VIP off failed/offline DPU devices, through normal
        transactions (the withdraw still reaches the device's tables —
        intent must not keep steering traffic at a dead device). An
        aborted withdraw is retried on the next tick."""
        drained = 0
        for name in sorted(self.devices):
            if self._device_online(name):
                continue
            stuck = sorted(
                (p for p in self.placements.values() if p.device == name),
                key=lambda p: (p.key.vni, p.key.dst_ip, p.key.version),
            )
            for placement in stuck:
                if not self._withdraw(placement, now):
                    continue
                self._release(placement)
                del self.placements[placement.key]
                self._reap(name, placement.key)
                self.detector.mark_placed(placement.key, Tier.X86)
                self.counters.add("drains")
                self._log(now, "drain", placement.key, placement.rate_pps,
                          f"dpu->x86 dev={name} device-offline")
                drained += 1
        return drained

    # -- recovery -----------------------------------------------------------

    def rebuild_from_intent(self, now: float = 0.0) -> int:
        """Repopulate placements/budgets from the controller's desired
        state — for a planner constructed over a *recovered* controller
        (fresh budgets, journal already replayed). Returns the number of
        placements rebuilt."""
        self.placements.clear()
        for (vni, prefix), action in sorted(
                self.controller.desired_routes(self.chip_cluster_id).items(),
                key=lambda item: (item[0][0], item[0][1].network)):
            if action.target == "offload":
                key = VipKey(vni, prefix.network, prefix.version)
                self.chip_budget.charge(entry_footprint(key.version))
                self.placements[key] = TierPlacement(key, Tier.CHIP, None,
                                                     0.0, now)
        for name in sorted(self.devices):
            for (vni, prefix), action in sorted(
                    self.controller.desired_routes(name).items(),
                    key=lambda item: (item[0][0], item[0][1].network)):
                if action.target == "dpu":
                    key = VipKey(vni, prefix.network, prefix.version)
                    self.dpu_budgets[name].charge(1, self.sessions_per_vip)
                    self.placements[key] = TierPlacement(key, Tier.DPU, name,
                                                         0.0, now)
        return len(self.placements)

    # -- telemetry ----------------------------------------------------------

    def record_telemetry(self, now: float) -> None:
        chip_keys = self.keys_on(Tier.CHIP)
        dpu_keys = self.keys_on(Tier.DPU)
        occ = self.chip_budget.occupancy()
        self.series.record("tier/chip/entries", now, float(len(chip_keys)))
        self.series.record("tier/chip/sram-occupancy", now, occ["sram"])
        self.series.record("tier/chip/tcam-occupancy", now, occ["tcam"])
        self.series.record("tier/dpu/entries", now, float(len(dpu_keys)))
        self.series.record(
            "tier/dpu/sessions", now,
            float(sum(len(d.sessions) for d in self.devices.values())))
        for name in sorted(self.devices):
            docc = self.dpu_budgets[name].occupancy()
            self.series.record(f"tier/dpu/{name}/entry-occupancy", now,
                               docc["entries"])
            self.series.record(f"tier/dpu/{name}/session-occupancy", now,
                               docc["sessions"])
        # Legacy two-tier aliases, so dashboards built against the
        # OffloadScheduler series keep rendering.
        self.series.record("offloaded-entries", now,
                           float(len(chip_keys) + len(dpu_keys)))
        self.series.record("offloaded-pps", now,
                           sum(p.rate_pps for p in self.placements.values()))
        self.series.record("chip-sram-occupancy", now, occ["sram"])
        self.series.record("chip-tcam-occupancy", now, occ["tcam"])
