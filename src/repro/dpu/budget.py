"""Admission accounting for one DPU device, mirroring ChipBudget.

Where :class:`~repro.offload.scheduler.ChipBudget` meters SRAM words and
TCAM slices, a DPU's scarce resources are exact-match **flow entries**
and stateful **sessions**. The shapes match on purpose: both budgets
expose ``can_admit``/``charge``/``release``/``occupancy`` and a
canonical ``snapshot()``, so the tier planner treats every tier's
capacity through one protocol and the parity helper
(:func:`~repro.offload.parity.decision_state_dump`) serialises them
identically.
"""

from __future__ import annotations

from typing import Dict, Optional

from .device import DpuDevice


class DpuBudget:
    """Entry/session headroom accounting over one DPU device.

    Capacity is the device profile's table sizes minus a safety reserve,
    optionally clamped to explicit budgets — the slice of the device the
    operator is willing to spend on steered VIPs.

    >>> from repro.dpu.device import DpuDevice
    >>> budget = DpuBudget(DpuDevice("dpu-0", 0x0A0000FE), entry_budget=2,
    ...                    session_budget=8)
    >>> budget.can_admit(entries=1, sessions=4)
    True
    >>> budget.charge(entries=1, sessions=4)
    >>> budget.can_admit(entries=1, sessions=8)
    False
    >>> budget.occupancy()["entries"]
    0.5
    """

    def __init__(
        self,
        device: DpuDevice,
        reserve_fraction: float = 0.1,
        entry_budget: Optional[int] = None,
        session_budget: Optional[int] = None,
    ):
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self.device = device
        self.reserve_fraction = reserve_fraction
        self.entry_budget = entry_budget
        self.session_budget = session_budget
        self.used_entries = 0
        self.used_sessions = 0

    def capacity(self) -> Dict[str, int]:
        """Entries/sessions the steered set may occupy in total."""
        profile = self.device.profile
        entries = int(profile.flow_table_entries * (1.0 - self.reserve_fraction))
        sessions = int(profile.session_capacity * (1.0 - self.reserve_fraction))
        if self.entry_budget is not None:
            entries = min(entries, self.entry_budget)
        if self.session_budget is not None:
            sessions = min(sessions, self.session_budget)
        return {"entries": entries, "sessions": sessions}

    def headroom(self) -> Dict[str, int]:
        cap = self.capacity()
        return {"entries": cap["entries"] - self.used_entries,
                "sessions": cap["sessions"] - self.used_sessions}

    def can_admit(self, entries: int = 1, sessions: int = 0) -> bool:
        head = self.headroom()
        return entries <= head["entries"] and sessions <= head["sessions"]

    def charge(self, entries: int = 1, sessions: int = 0) -> None:
        if not self.can_admit(entries, sessions):
            raise ValueError("charging past DPU capacity (admission bug)")
        self.used_entries += entries
        self.used_sessions += sessions

    def release(self, entries: int = 1, sessions: int = 0) -> None:
        self.used_entries -= entries
        self.used_sessions -= sessions

    def occupancy(self) -> Dict[str, float]:
        """Fractions of the device budget currently used."""
        cap = self.capacity()
        return {
            "entries": self.used_entries / cap["entries"] if cap["entries"] else 0.0,
            "sessions": self.used_sessions / cap["sessions"] if cap["sessions"] else 0.0,
        }

    def snapshot(self) -> Dict[str, object]:
        """Canonical used/capacity view (see ``ChipBudget.snapshot``)."""
        cap = self.capacity()
        return {
            "kind": "dpu",
            "device": self.device.name,
            "used": {"entries": self.used_entries,
                     "sessions": self.used_sessions},
            "capacity": dict(cap),
        }
