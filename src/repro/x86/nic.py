"""NIC model with receive-side scaling (§2.3).

The NIC spreads flows over RX queues using the Toeplitz RSS hash — the
exact mechanism that makes heavy-hitter flows stick to one unlucky core:
"flow-based hashing guarantees intra-flow in-order packet processing;
however, it also causes potential CPU core overuse if multiple
heavy-hitter flows are hashed into the same CPU core, even though the
hashing algorithm itself is perfectly random."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..net.flow import FlowKey, rss_queue


@dataclass
class Nic:
    """A multi-queue NIC: fixed bandwidth, RSS to *num_queues* RX queues."""

    bandwidth_bps: float
    num_queues: int
    _queue_cache: Dict[FlowKey, int] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.num_queues <= 0:
            raise ValueError("need at least one RX queue")

    def queue_for(self, flow: FlowKey) -> int:
        """RX queue for *flow* (Toeplitz hash, memoized per flow)."""
        queue = self._queue_cache.get(flow)
        if queue is None:
            queue = rss_queue(flow, self.num_queues)
            self._queue_cache[flow] = queue
        return queue

    def max_pps(self, packet_bytes: int, wire_overhead: int = 20) -> float:
        """Packets/s the ports can carry at one packet size."""
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        return self.bandwidth_bps / (8 * (packet_bytes + wire_overhead))
