"""The road not taken: packet-spraying / pipeline execution (§2.3).

The paper explains why XGW-x86 keeps the run-to-completion model even
though it strands capacity on heavy-hitter cores: "Changing the
run-to-completion model to a pipeline model may ameliorate the problem,
but the pipeline model on x86 CPUs also has its own problems such as
inter-core transfer performance penalty at the L3 cache" — and without
the dedicated sequence-preserving hardware of network processors,
packet-based load balancing reorders flows.

This module models that alternative so the trade-off can be measured:

* spraying balances load perfectly (no per-core hotspots), but
* every packet pays an inter-core transfer penalty, shrinking effective
  capacity, and
* packets of one flow served by different cores finish out of order with
  a probability driven by service-time jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..net.flow import FlowKey
from .cpu import DEFAULT_CORE_PPS

#: Fraction of a core consumed by cross-core packet hand-off (L3 cache
#: line transfers, software queueing) in the pipeline model.
DEFAULT_TRANSFER_PENALTY = 0.3
#: Coefficient of variation of per-packet service time across cores.
DEFAULT_SERVICE_JITTER = 0.5


@dataclass(frozen=True)
class SprayInterval:
    """One interval of the packet-spraying model."""

    offered_pps: float
    processed_pps: float
    dropped_pps: float
    reordered_fraction: float
    mean_utilization: float

    @property
    def loss_rate(self) -> float:
        return self.dropped_pps / self.offered_pps if self.offered_pps else 0.0


class PacketSprayModel:
    """A pipeline-model software gateway: packets sprayed over all cores.

    >>> model = PacketSprayModel(num_cores=8, core_pps=1000.0)
    >>> interval = model.serve([(None, 4000.0)])
    >>> interval.dropped_pps
    0.0
    """

    def __init__(
        self,
        num_cores: int = 32,
        core_pps: float = DEFAULT_CORE_PPS,
        transfer_penalty: float = DEFAULT_TRANSFER_PENALTY,
        service_jitter: float = DEFAULT_SERVICE_JITTER,
    ):
        if num_cores <= 0 or core_pps <= 0:
            raise ValueError("cores and core_pps must be positive")
        if not 0 <= transfer_penalty < 1:
            raise ValueError("transfer_penalty must be in [0, 1)")
        self.num_cores = num_cores
        self.core_pps = core_pps
        self.transfer_penalty = transfer_penalty
        self.service_jitter = service_jitter

    @property
    def effective_capacity_pps(self) -> float:
        """Aggregate capacity after the inter-core transfer tax."""
        return self.num_cores * self.core_pps * (1.0 - self.transfer_penalty)

    def reorder_probability(self, flow_pps: float) -> float:
        """Chance that consecutive packets of one flow finish out of order.

        Two consecutive packets land on different cores with probability
        ``(n-1)/n``; given jittery service times, the later packet
        overtakes with probability growing with the flow's packet spacing
        relative to the service-time spread (dense flows reorder more).
        """
        if flow_pps <= 0:
            return 0.0
        different_core = (self.num_cores - 1) / self.num_cores
        # Service-time spread vs inter-arrival gap: overtaking probability
        # saturates at 0.5 for back-to-back packets.
        gap = 1.0 / flow_pps
        service = 1.0 / (self.core_pps * (1.0 - self.transfer_penalty))
        overtake = 0.5 * (1.0 - math.exp(-self.service_jitter * service / gap))
        return different_core * overtake

    def serve(self, flows: Sequence[Tuple[object, float]]) -> SprayInterval:
        """Serve one interval: load spreads evenly, reordering measured
        per flow and weighted by its share of the traffic."""
        offered = sum(pps for _flow, pps in flows)
        capacity = self.effective_capacity_pps
        processed = min(offered, capacity)
        dropped = offered - processed
        reordered = 0.0
        if offered > 0:
            for _flow, pps in flows:
                reordered += (pps / offered) * self.reorder_probability(pps)
        mean_util = offered / (self.num_cores * self.core_pps)
        return SprayInterval(
            offered_pps=offered,
            processed_pps=processed,
            dropped_pps=dropped,
            reordered_fraction=reordered,
            mean_utilization=min(1.0, mean_util),
        )


def compare_models(
    flows: Sequence[Tuple[FlowKey, float]],
    gateway,
    spray: PacketSprayModel,
) -> dict:
    """Run the same flows through run-to-completion and spraying.

    Returns the §2.3 trade-off: RTC drops on hot cores but never
    reorders; spraying never hotspots but taxes capacity and reorders.
    """
    rtc = gateway.serve_interval(flows)
    sprayed = spray.serve(flows)
    return {
        "rtc_loss": rtc.loss_rate,
        "rtc_max_core_utilization": max(rtc.utilizations(), default=0.0),
        "rtc_reordered": 0.0,  # flow-pinned cores preserve order
        "spray_loss": sprayed.loss_rate,
        "spray_mean_utilization": sprayed.mean_utilization,
        "spray_reordered": sprayed.reordered_fraction,
        "spray_capacity_tax": spray.transfer_penalty,
    }
