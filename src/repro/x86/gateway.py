"""XGW-x86: the DPDK-style software gateway (§2.2-2.3).

Two faces:

* a **functional** gateway — full DRAM-backed tables, the shared
  forwarding program, plus stateful services (SNAT) the hardware
  cannot run;
* a **capacity model** — NIC bandwidth, RSS queueing and per-core pps
  limits, used by the longitudinal CPU-overload experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataplane.gateway_logic import ForwardAction, ForwardResult, GatewayTables, forward
from ..dataplane.services import SnatService
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..tables.snat import SnatTable
from ..telemetry.stats import CounterSet
from .cpu import CoreInterval, CpuComplex, DEFAULT_CORE_PPS
from .nic import Nic

#: Calibration for Fig. 18 / §2.3: a ~$10K box that "can maximally handle
#: 100Gbps", 32 cores. 3.2T / 100G > 20x bps; 1.8G / 25M = 72x pps; the
#: CPU becomes the bottleneck below ~480B packets ("line rate with packets
#: larger than 512B").
DEFAULT_NIC_BPS = 100e9
DEFAULT_CORES = 32
#: Measured forwarding latency of the paper's XGW-x86 (Fig. 18c).
FORWARDING_LATENCY_US = 40.0


@dataclass
class IntervalReport:
    """One sampling interval of the capacity model."""

    core_intervals: List[CoreInterval]
    offered_pps: float
    dropped_pps: float

    @property
    def loss_rate(self) -> float:
        return self.dropped_pps / self.offered_pps if self.offered_pps else 0.0

    def utilizations(self) -> List[float]:
        return [ci.utilization for ci in self.core_intervals]

    # -- per-flow attribution (offload decision input) ---------------------
    #
    # RSS pins each flow to one core; within a core, drops are
    # proportional across flows (the RX queue overflows without regard
    # to ownership), so a flow's share of its core's offered load is
    # also its share of the processed and dropped rates. This is what
    # lets the heavy-hitter detector attribute loss to specific flows
    # instead of only seeing the aggregate.

    def _per_flow(self, field_name: str) -> Dict[FlowKey, float]:
        out: Dict[FlowKey, float] = {}
        for ci in self.core_intervals:
            total = getattr(ci, field_name)
            for flow, share in ci.flow_share.items():
                out[flow] = out.get(flow, 0.0) + share * total
        return out

    def flow_offered_pps(self) -> Dict[FlowKey, float]:
        """Per-flow offered rate over the interval."""
        return self._per_flow("offered_pps")

    def flow_processed_pps(self) -> Dict[FlowKey, float]:
        """Per-flow processed rate (offered minus attributed drops)."""
        return self._per_flow("processed_pps")

    def flow_dropped_pps(self) -> Dict[FlowKey, float]:
        """Per-flow dropped rate — who is actually losing packets."""
        return self._per_flow("dropped_pps")


class XgwX86:
    """One software gateway box.

    >>> gw = XgwX86(gateway_ip=0x0A00000A)
    >>> gw.total_capacity_pps > 0
    True
    """

    def __init__(
        self,
        gateway_ip: int,
        tables: Optional[GatewayTables] = None,
        snat: Optional[SnatTable] = None,
        num_cores: int = DEFAULT_CORES,
        core_pps: float = DEFAULT_CORE_PPS,
        nic_bps: float = DEFAULT_NIC_BPS,
        burstiness: float = 0.0,
    ):
        self.gateway_ip = gateway_ip
        self.tables = tables if tables is not None else GatewayTables()
        self.cpu = CpuComplex(num_cores=num_cores, core_pps=core_pps,
                              burstiness=burstiness)
        self.nic = Nic(bandwidth_bps=nic_bps, num_queues=num_cores)
        self.snat_service = (
            SnatService(snat, self.tables, gateway_ip) if snat is not None else None
        )
        self.counters = CounterSet()

    # -- functional path ----------------------------------------------------

    def forward(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Forward one packet through the full software program."""
        self.counters.add("rx_packets")
        result = forward(self.tables, packet, self.gateway_ip, now)
        if (
            result.action is ForwardAction.REDIRECT_X86
            and self.snat_service is not None
            and result.detail == "snat"
        ):
            # We *are* the software gateway: run the service locally.
            result = self.snat_service.handle_request(packet, now)
        self.counters.add(f"action_{result.action.value.replace('-', '_')}")
        return result

    def forward_response(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Handle an Internet-side response (SNAT reverse path)."""
        if self.snat_service is None:
            return ForwardResult(ForwardAction.DROP, packet, detail="no-snat")
        self.counters.add("rx_packets")
        result = self.snat_service.handle_response(packet, now)
        self.counters.add(f"action_{result.action.value.replace('-', '_')}")
        return result

    # -- capacity model -------------------------------------------------------

    @property
    def total_capacity_pps(self) -> float:
        return self.cpu.total_capacity_pps

    def max_pps(self, packet_bytes: int) -> float:
        """Box limit at one packet size: min(NIC, CPU)."""
        return min(self.nic.max_pps(packet_bytes), self.total_capacity_pps)

    def min_line_rate_packet(self) -> int:
        """Smallest packet size forwarded at NIC line rate (Fig. 18b).

        The paper: "XGW-x86 reaches line rate with packets larger than
        512B".
        """
        size = 64
        while self.nic.max_pps(size) > self.total_capacity_pps:
            size += 1
        return size

    def serve_interval(self, flows: Sequence[Tuple[FlowKey, float]]) -> IntervalReport:
        """Offer (flow, pps) load for one interval through RSS + cores."""
        per_queue: Dict[int, List[Tuple[FlowKey, float]]] = {}
        for flow, pps in flows:
            per_queue.setdefault(self.nic.queue_for(flow), []).append((flow, pps))
        intervals = self.cpu.serve_queues(per_queue)
        offered = sum(pps for _f, pps in flows)
        dropped = sum(ci.dropped_pps for ci in intervals)
        return IntervalReport(core_intervals=intervals, offered_pps=offered, dropped_pps=dropped)
