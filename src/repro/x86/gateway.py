"""XGW-x86: the DPDK-style software gateway (§2.2-2.3).

Two faces:

* a **functional** gateway — full DRAM-backed tables, the shared
  forwarding program, plus stateful services (SNAT) the hardware
  cannot run;
* a **capacity model** — NIC bandwidth, RSS queueing and per-core pps
  limits, used by the longitudinal CPU-overload experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataplane.columnar import BatchCompiler, PacketBatch
from ..dataplane.flowcache import (
    DEFAULT_CAPACITY,
    FlowCache,
    forward_cached,
    forward_cached_batch,
)
from ..dataplane.gateway_logic import (
    DropReason,
    ForwardAction,
    ForwardResult,
    GatewayTables,
    count_drop,
    count_drops,
    forward,
)
from ..dataplane.migration import MigrationState
from ..dataplane.services import SnatService
from ..net.addr import Prefix
from ..net.flow import FlowKey
from ..net.packet import Packet
from ..tables.snat import SnatTable
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction
from ..telemetry.stats import CounterSet
from .cpu import CoreInterval, CpuComplex, DEFAULT_CORE_PPS
from .nic import Nic

#: Calibration for Fig. 18 / §2.3: a ~$10K box that "can maximally handle
#: 100Gbps", 32 cores. 3.2T / 100G > 20x bps; 1.8G / 25M = 72x pps; the
#: CPU becomes the bottleneck below ~480B packets ("line rate with packets
#: larger than 512B").
DEFAULT_NIC_BPS = 100e9
DEFAULT_CORES = 32
#: Measured forwarding latency of the paper's XGW-x86 (Fig. 18c).
FORWARDING_LATENCY_US = 40.0


@dataclass
class IntervalReport:
    """One sampling interval of the capacity model."""

    core_intervals: List[CoreInterval]
    offered_pps: float
    dropped_pps: float

    @property
    def loss_rate(self) -> float:
        return self.dropped_pps / self.offered_pps if self.offered_pps else 0.0

    def utilizations(self) -> List[float]:
        return [ci.utilization for ci in self.core_intervals]

    # -- per-flow attribution (offload decision input) ---------------------
    #
    # RSS pins each flow to one core; within a core, drops are
    # proportional across flows (the RX queue overflows without regard
    # to ownership), so a flow's share of its core's offered load is
    # also its share of the processed and dropped rates. This is what
    # lets the heavy-hitter detector attribute loss to specific flows
    # instead of only seeing the aggregate.

    def _per_flow(self, field_name: str) -> Dict[FlowKey, float]:
        out: Dict[FlowKey, float] = {}
        for ci in self.core_intervals:
            total = getattr(ci, field_name)
            for flow, share in ci.flow_share.items():
                out[flow] = out.get(flow, 0.0) + share * total
        return out

    def flow_offered_pps(self) -> Dict[FlowKey, float]:
        """Per-flow offered rate over the interval."""
        return self._per_flow("offered_pps")

    def flow_processed_pps(self) -> Dict[FlowKey, float]:
        """Per-flow processed rate (offered minus attributed drops)."""
        return self._per_flow("processed_pps")

    def flow_dropped_pps(self) -> Dict[FlowKey, float]:
        """Per-flow dropped rate — who is actually losing packets."""
        return self._per_flow("dropped_pps")


class XgwX86:
    """One software gateway box.

    >>> gw = XgwX86(gateway_ip=0x0A00000A)
    >>> gw.total_capacity_pps > 0
    True
    """

    def __init__(
        self,
        gateway_ip: int,
        tables: Optional[GatewayTables] = None,
        snat: Optional[SnatTable] = None,
        num_cores: int = DEFAULT_CORES,
        core_pps: float = DEFAULT_CORE_PPS,
        nic_bps: float = DEFAULT_NIC_BPS,
        burstiness: float = 0.0,
        cache_entries: int = DEFAULT_CAPACITY,
        columnar: bool = True,
    ):
        self.gateway_ip = gateway_ip
        self.tables = tables if tables is not None else GatewayTables()
        self.cpu = CpuComplex(num_cores=num_cores, core_pps=core_pps,
                              burstiness=burstiness)
        self.nic = Nic(bandwidth_bps=nic_bps, num_queues=num_cores)
        self.snat_service = (
            SnatService(snat, self.tables, gateway_ip) if snat is not None else None
        )
        self.counters = CounterSet()
        #: The fast path (§2.2): one resolved decision per (VNI, dst,
        #: version), generation-guarded. ``cache_entries=0`` disables it
        #: (every packet takes the full table walk — the pre-cache model).
        self.flow_cache: Optional[FlowCache] = (
            FlowCache(cache_entries) if cache_entries > 0 else None
        )
        self._published_cache_counters: Dict[str, int] = {}
        #: The columnar batch path (DESIGN §13): ``forward_batch`` compiles
        #: the placed program once per table-generation vector and executes
        #: it over struct-of-arrays bursts. ``columnar=False`` keeps the
        #: flow-cache per-packet batch loop (the differential oracle's
        #: shape, and the path cache-telemetry consumers rely on).
        self._batch_compiler: Optional[BatchCompiler] = (
            BatchCompiler(self.tables, gateway_ip, watch_snat=snat is not None)
            if columnar else None
        )
        self._compiled = None
        #: Live-migration freeze state, attached lazily by
        #: :func:`repro.dataplane.migration.ensure_migration_state`.
        self.migration: Optional[MigrationState] = None

    # -- functional path ----------------------------------------------------

    def forward(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Forward one packet, consulting the flow cache before the slow
        path (results are identical either way; only the cost differs)."""
        self.counters.add("rx_packets")
        result = (self.migration.intercept(packet, now)
                  if self.migration is not None else None)
        if result is None:
            if self.flow_cache is not None:
                result = forward_cached(self.tables, self.flow_cache, packet,
                                        self.gateway_ip, now)
            else:
                result = forward(self.tables, packet, self.gateway_ip, now)
            if (
                result.action is ForwardAction.REDIRECT_X86
                and self.snat_service is not None
                and result.detail == "snat"
            ):
                # We *are* the software gateway: run the service locally.
                result = self.snat_service.handle_request(packet, now)
        self.counters.add(f"action_{result.action.value.replace('-', '_')}")
        if result.action is ForwardAction.DROP:
            count_drop(self.counters, result.detail)
        return result

    def forward_batch(self, packets: Sequence[Packet], now: float = 0.0) -> List[ForwardResult]:
        """Forward a burst, amortising per-packet dispatch.

        Equivalent to ``[self.forward(p, now) for p in packets]``
        (including every counter), but hot locals are bound once and the
        per-action counters are tallied once per batch instead of one
        f-string per packet.
        """
        migration = self.migration
        if migration is not None and migration.frozen:
            # Freeze windows are rare and short: fall back to the
            # per-packet path so every packet consults the freeze set.
            return [self.forward(packet, now) for packet in packets]
        if self._batch_compiler is not None:
            return self._forward_batch_columnar(packets, now)
        tables = self.tables
        cache = self.flow_cache
        gateway_ip = self.gateway_ip
        snat_service = self.snat_service
        actions: Dict[ForwardAction, int] = {}
        drop_details: Dict[str, int] = {}
        if cache is not None:
            results = forward_cached_batch(tables, cache, packets, gateway_ip, now)
            for index, result in enumerate(results):
                if (
                    result.action is ForwardAction.REDIRECT_X86
                    and snat_service is not None
                    and result.detail == "snat"
                ):
                    result = snat_service.handle_request(packets[index], now)
                    results[index] = result
                actions[result.action] = actions.get(result.action, 0) + 1
                if result.action is ForwardAction.DROP:
                    drop_details[result.detail] = drop_details.get(result.detail, 0) + 1
        else:
            slow = forward
            results = []
            append = results.append
            for packet in packets:
                result = slow(tables, packet, gateway_ip, now)
                if (
                    result.action is ForwardAction.REDIRECT_X86
                    and snat_service is not None
                    and result.detail == "snat"
                ):
                    result = snat_service.handle_request(packet, now)
                actions[result.action] = actions.get(result.action, 0) + 1
                if result.action is ForwardAction.DROP:
                    drop_details[result.detail] = drop_details.get(result.detail, 0) + 1
                append(result)
        self.counters.add("rx_packets", len(results))
        for action, count in actions.items():
            self.counters.add(f"action_{action.value.replace('-', '_')}", count)
        count_drops(self.counters, drop_details)
        return results

    def _forward_batch_columnar(self, packets, now: float) -> List[ForwardResult]:
        """The compiled batch path: recompile on a generation-vector
        change (same staleness rule as the flow cache), execute over the
        struct-of-arrays burst, then settle counters in one flush."""
        compiler = self._batch_compiler
        program = self._compiled
        if program is None or program.generations != compiler.generations():
            program = self._compiled = compiler.compile()
        batch = (packets if isinstance(packets, PacketBatch)
                 else PacketBatch.from_packets(packets))
        results, tally = program.execute(batch, now)
        actions = tally.actions
        drop_details = tally.drop_details
        snat_service = self.snat_service
        if snat_service is not None and tally.snat_lanes:
            # We *are* the software gateway: run the SNAT service on the
            # admitted redirect lanes, re-attributing their tallies.
            redirect = ForwardAction.REDIRECT_X86
            drop = ForwardAction.DROP
            batch_packets = batch.packets
            for i in tally.snat_lanes:
                result = snat_service.handle_request(batch_packets[i], now)
                results[i] = result
                actions[redirect] -= 1
                action = result.action
                actions[action] = actions.get(action, 0) + 1
                if action is drop:
                    drop_details[result.detail] = drop_details.get(result.detail, 0) + 1
        add = self.counters.add
        add("rx_packets", batch.n)
        for action, count in actions.items():
            if count:
                add(f"action_{action.value.replace('-', '_')}", count)
        count_drops(self.counters, drop_details)
        return results

    def forward_dpu_miss(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Serve a packet the DPU tier punted (``DropReason.DPU_TABLE_MISS``).

        x86 is the universal fallback: it holds the full tables, so a
        steering miss or session overflow on a DPU device re-offers the
        packet here. ``dpu_fallback_packets`` tallies the punt volume
        (it is neither an ``action_*`` nor a ``drop_*`` counter, so the
        conservation identities are untouched)."""
        self.counters.add("dpu_fallback_packets")
        return self.forward(packet, now)

    def forward_response(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Handle an Internet-side response (SNAT reverse path)."""
        if self.snat_service is None:
            return ForwardResult(ForwardAction.DROP, packet,
                                 detail=DropReason.NO_SNAT.value)
        self.counters.add("rx_packets")
        result = self.snat_service.handle_response(packet, now)
        self.counters.add(f"action_{result.action.value.replace('-', '_')}")
        if result.action is ForwardAction.DROP:
            count_drop(self.counters, result.detail)
        return result

    # -- cache telemetry ------------------------------------------------------

    def publish_cache_counters(self) -> Dict[str, int]:
        """Fold the flow cache's hit/miss/evict/stale counters into this
        gateway's :class:`CounterSet` (idempotent: only deltas since the
        last publish are added) and return the current snapshot. The
        heavy-hitter machinery reads the resulting hit rate as a
        workload-skew signal."""
        if self.flow_cache is None:
            return {}
        snapshot = self.flow_cache.counters()
        for name, value in snapshot.items():
            delta = value - self._published_cache_counters.get(name, 0)
            if delta:
                self.counters.add(name, delta)
        self._published_cache_counters = snapshot
        return snapshot

    # -- table management (driven by the controller) --------------------------
    #
    # The same push interface XgwH exposes, so an XGW-x86 box can be a
    # member of a controller-managed (hybrid) cluster: transactional
    # migrations and repairs mutate these tables, which bumps the table
    # generations and invalidates the flow cache's affected entries.

    def install_route(self, vni: int, prefix: Prefix, action: RouteAction,
                      replace: bool = False) -> None:
        self.tables.routing.insert(vni, prefix, action, replace=replace)

    def remove_route(self, vni: int, prefix: Prefix) -> RouteAction:
        return self.tables.routing.remove(vni, prefix)

    def install_vm(self, vni: int, vm_ip: int, version: int, binding: NcBinding,
                   replace: bool = False) -> None:
        self.tables.vm_nc.insert(vni, vm_ip, version, binding, replace=replace)

    def remove_vm(self, vni: int, vm_ip: int, version: int) -> NcBinding:
        return self.tables.vm_nc.remove(vni, vm_ip, version)

    def route_count(self) -> int:
        return len(self.tables.routing)

    def vm_count(self) -> int:
        return len(self.tables.vm_nc)

    # -- capacity model -------------------------------------------------------

    @property
    def total_capacity_pps(self) -> float:
        return self.cpu.total_capacity_pps

    def max_pps(self, packet_bytes: int) -> float:
        """Box limit at one packet size: min(NIC, CPU)."""
        return min(self.nic.max_pps(packet_bytes), self.total_capacity_pps)

    def min_line_rate_packet(self) -> int:
        """Smallest packet size forwarded at NIC line rate (Fig. 18b).

        The paper: "XGW-x86 reaches line rate with packets larger than
        512B".

        ``nic.max_pps`` is strictly decreasing in the packet size, so the
        smallest size whose NIC rate no longer exceeds the CPU capacity
        is found by binary search (the former linear ``size += 1`` scan
        cost tens of thousands of NIC-model evaluations per call).
        """
        lo, hi = 64, 64
        capacity = self.total_capacity_pps
        if self.nic.max_pps(lo) <= capacity:
            return lo
        while self.nic.max_pps(hi) > capacity:
            lo, hi = hi, hi * 2
        # Invariant: max_pps(lo) > capacity >= max_pps(hi).
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.nic.max_pps(mid) > capacity:
                lo = mid
            else:
                hi = mid
        return hi

    def serve_interval(self, flows: Sequence[Tuple[FlowKey, float]]) -> IntervalReport:
        """Offer (flow, pps) load for one interval through RSS + cores."""
        per_queue: Dict[int, List[Tuple[FlowKey, float]]] = {}
        for flow, pps in flows:
            per_queue.setdefault(self.nic.queue_for(flow), []).append((flow, pps))
        intervals = self.cpu.serve_queues(per_queue)
        offered = sum(pps for _f, pps in flows)
        dropped = sum(ci.dropped_pps for ci in intervals)
        return IntervalReport(core_intervals=intervals, offered_pps=offered, dropped_pps=dropped)
