"""CPU core model: run-to-completion workers with overload loss (§2.3).

Each core polls one RX queue (DPDK run-to-completion). A core processes
at most ``capacity_pps`` packets per second; offered load beyond that is
dropped from the queue. Utilisation and drops are what Figs. 4, 5 and 7
plot.

Two loss mechanisms:

* **sustained overload** — mean offered load above capacity; the excess
  is dropped outright;
* **micro-bursts** — the paper notes the CPU plots are coarse and "packet
  loss will occur when CPU core utilization reaches 100% even in a very
  short moment". We model instantaneous load as lognormal around the
  interval mean; :func:`microburst_loss_fraction` is the closed-form
  expected clipped excess. It vanishes for lightly loaded cores and
  produces the ~1e-5..1e-4 region loss of Fig. 5 when one core runs hot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..net.flow import FlowKey


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def microburst_loss_fraction(mean_utilization: float, sigma: float) -> float:
    """Fraction of packets lost to instantaneous 100% spikes.

    Instantaneous utilisation U is lognormal with mean
    *mean_utilization* and log-stddev *sigma*; the lost fraction is
    ``E[(U - 1)+] / E[U]`` (the clipped excess), which has the
    Black-Scholes-style closed form used here.

    >>> microburst_loss_fraction(0.3, 0.12) < 1e-12
    True
    >>> 1e-5 < microburst_loss_fraction(0.75, 0.12) < 1e-2
    True
    """
    if mean_utilization <= 0.0:
        return 0.0
    if sigma <= 0.0:
        return max(0.0, mean_utilization - 1.0) / mean_utilization
    mu = math.log(mean_utilization) - sigma * sigma / 2.0
    d1 = (mu + sigma * sigma) / sigma  # = (ln(m) + sigma^2/2 - ln(1)) / sigma
    d2 = d1 - sigma
    excess = mean_utilization * _phi(d1) - _phi(d2)
    return max(0.0, excess) / mean_utilization

#: Paper: "~1Mpps per CPU core" with DPDK. We use the calibrated value
#: that makes a 32-core box sum to the measured 25 Mpps of Fig. 18(b).
DEFAULT_CORE_PPS = 781_250.0


@dataclass
class CoreInterval:
    """One core's accounting over a sampling interval."""

    offered_pps: float = 0.0
    processed_pps: float = 0.0
    dropped_pps: float = 0.0
    flow_share: Dict[FlowKey, float] = field(default_factory=dict)

    _util: float = 0.0

    @property
    def utilization(self) -> float:
        """Fraction of core capacity consumed (capped at 1.0)."""
        return self._util


@dataclass
class Core:
    """One polling core.

    *burstiness* is the log-stddev of instantaneous load within an
    interval (0.0 disables the micro-burst loss model).
    """

    index: int
    capacity_pps: float = DEFAULT_CORE_PPS
    burstiness: float = 0.0

    def serve(self, offered: Sequence[Tuple[FlowKey, float]]) -> CoreInterval:
        """Serve an interval of offered (flow, pps) load.

        Drops are proportional across flows when the core saturates —
        the RX queue overflows without regard to which flow a packet
        belongs to.
        """
        interval = CoreInterval()
        total = sum(pps for _flow, pps in offered)
        interval.offered_pps = total
        if total <= self.capacity_pps:
            mean_util = total / self.capacity_pps if self.capacity_pps else 0.0
            burst_loss = microburst_loss_fraction(mean_util, self.burstiness)
            interval.dropped_pps = total * burst_loss
            interval.processed_pps = total - interval.dropped_pps
            interval._util = mean_util
        else:
            interval.processed_pps = self.capacity_pps
            interval.dropped_pps = total - self.capacity_pps
            interval._util = 1.0
        for flow, pps in offered:
            interval.flow_share[flow] = pps / total if total else 0.0
        return interval


class CpuComplex:
    """All cores of one gateway box."""

    def __init__(self, num_cores: int = 32, core_pps: float = DEFAULT_CORE_PPS,
                 burstiness: float = 0.0):
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.cores = [Core(i, core_pps, burstiness) for i in range(num_cores)]

    def __len__(self) -> int:
        return len(self.cores)

    @property
    def total_capacity_pps(self) -> float:
        return sum(core.capacity_pps for core in self.cores)

    def serve_queues(
        self, per_queue: Dict[int, List[Tuple[FlowKey, float]]]
    ) -> List[CoreInterval]:
        """Serve one interval: queue *i* is pinned to core *i*."""
        results = []
        for core in self.cores:
            results.append(core.serve(per_queue.get(core.index, [])))
        return results
