"""XGW-x86 software-gateway simulator: NIC/RSS, cores, gateway box."""

from .cpu import Core, CoreInterval, CpuComplex, DEFAULT_CORE_PPS
from .gateway import (
    DEFAULT_CORES,
    DEFAULT_NIC_BPS,
    FORWARDING_LATENCY_US,
    IntervalReport,
    XgwX86,
)
from .nic import Nic
from .spray import PacketSprayModel, SprayInterval, compare_models

__all__ = [
    "Core",
    "CoreInterval",
    "CpuComplex",
    "DEFAULT_CORE_PPS",
    "DEFAULT_CORES",
    "DEFAULT_NIC_BPS",
    "FORWARDING_LATENCY_US",
    "IntervalReport",
    "XgwX86",
    "Nic",
    "PacketSprayModel",
    "SprayInterval",
    "compare_models",
]
