"""repro.shard — million-tenant sharded control plane (§7 scale goals).

Partitions the control plane by VNI range into independent shards, each
with its own journal segment stream, snapshot/compaction cadence, audit
budget and recovery path; peer-VPC chains that span shards commit
through a presumed-abort two-phase protocol over the per-shard journals.
"""

from .audit import ShardedAuditDriver
from .router import DEFAULT_VNI_SPACE, ShardError, ShardRange, ShardRouter
from .shard import ControllerShard
from .sharded import CrossShardTransaction, ShardedController

__all__ = [
    "DEFAULT_VNI_SPACE",
    "ControllerShard",
    "CrossShardTransaction",
    "ShardError",
    "ShardRange",
    "ShardRouter",
    "ShardedAuditDriver",
    "ShardedController",
]
