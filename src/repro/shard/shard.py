"""One control-plane shard: its own controller, journal and clusters.

A :class:`ControllerShard` is a full, self-contained control plane over
one VNI range — its own :class:`~repro.core.splitting.TableSplitter`
(cluster ids are namespaced by the shard id, so ``s03-A`` can never
collide with ``s07-A``), its own :class:`~repro.cluster.ecmp
.VniSteeredBalancer`, and crucially its own
:class:`~repro.core.journal.Journal` segment stream: snapshot and
compaction cadence is a per-shard decision, and recovery replays shards
independently (and in any order).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster.cluster import GatewayCluster
from ..cluster.ecmp import VniSteeredBalancer
from ..core.controller import Controller
from ..core.journal import Journal
from ..core.splitting import ClusterCapacity, TableSplitter


class ControllerShard:
    """One shard of the sharded control plane.

    >>> shard = ControllerShard("s00", ClusterCapacity(100, 100, 1e12))
    >>> shard.journal.segment_count
    1
    """

    def __init__(
        self,
        shard_id: str,
        capacity: ClusterCapacity,
        cluster_factory: Optional[Callable[[str], GatewayCluster]] = None,
        journal: Optional[Journal] = None,
        segment_bytes: int = 16384,
    ):
        self.shard_id = shard_id
        self.capacity = capacity
        self.cluster_factory = cluster_factory
        self.segment_bytes = segment_bytes
        self.journal = journal if journal is not None else Journal(
            segment_bytes=segment_bytes)
        self.controller = Controller(
            TableSplitter(capacity, cluster_prefix=shard_id),
            VniSteeredBalancer(),
            journal=self.journal,
        )
        if cluster_factory is not None:
            self.controller.set_cluster_factory(cluster_factory)

    # -- convenience passthroughs -----------------------------------------

    @property
    def clusters(self):
        return self.controller.clusters

    @property
    def counters(self):
        return self.controller.counters

    def tenant_count(self) -> int:
        return len(self.controller.plan.assignments)

    def entry_counts(self) -> dict:
        routes = sum(len(r) for r in self.controller._routes.values())
        vms = sum(len(v) for v in self.controller._vms.values())
        return {"routes": routes, "vms": vms}

    # -- durability ---------------------------------------------------------

    def snapshot(self) -> None:
        """Checkpoint this shard's intent and prune its covered segments
        — an O(shard) pause, never an O(region) one."""
        self.controller.snapshot()

    def telemetry(self) -> dict:
        """Journal/compaction counters plus shard occupancy."""
        out = self.journal.telemetry()
        out.update(self.entry_counts())
        out["tenants"] = self.tenant_count()
        out["clusters"] = len(self.controller.clusters)
        return out

    def rebuild_for_recovery(self) -> "ControllerShard":
        """A fresh shard over this shard's journal and surviving clusters
        — the gateways kept their tables; only the controller process
        died. The caller resolves in-doubt cross-shard transactions
        before invoking :meth:`~repro.core.controller.Controller.recover`.
        """
        fresh = ControllerShard(
            self.shard_id, self.capacity, self.cluster_factory,
            journal=self.journal, segment_bytes=self.segment_bytes,
        )
        fresh.controller.clusters = dict(self.controller.clusters)
        return fresh
