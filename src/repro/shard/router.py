"""VNI-range shard routing: which shard owns a tenant.

The horizontal splitter (§4.3, ``repro.core.splitting``) partitions VNIs
across *clusters* inside one control plane; the :class:`ShardRouter`
lifts the same idea one level up and partitions the VNI space across
*control planes*. The contract mirrors ``SplitPlan.cluster_of``:

* **total** — every VNI inside the configured space maps to exactly one
  shard (out-of-space VNIs are a :class:`ShardError`, never a silent
  mis-route);
* **stable** — the mapping is a pure function of ``(num_shards,
  vni_space)``; onboarding, churn and recovery never move a tenant
  between shards;
* **canonical** — equal configurations produce byte-identical
  :meth:`describe` dumps, so two controllers built from the same spec
  agree on ownership without talking to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.journal import canonical_json
from ..tables.errors import TableError

#: The VXLAN VNI field is 24 bits.
DEFAULT_VNI_SPACE = 1 << 24


class ShardError(TableError):
    """Raised on shard-routing misuse (unknown shard, VNI out of space)."""


@dataclass(frozen=True)
class ShardRange:
    """One shard's contiguous, half-open slice ``[lo, hi)`` of VNI space."""

    shard_id: str
    lo: int
    hi: int

    def __contains__(self, vni: int) -> bool:
        return self.lo <= vni < self.hi


class ShardRouter:
    """Deterministic VNI-range -> shard mapping.

    >>> router = ShardRouter(num_shards=4, vni_space=1 << 24)
    >>> router.shard_of(0), router.shard_of((1 << 24) - 1)
    ('s00', 's03')
    >>> [r.shard_id for r in router.ranges()]
    ['s00', 's01', 's02', 's03']
    """

    def __init__(self, num_shards: int, vni_space: int = DEFAULT_VNI_SPACE,
                 prefix: str = "s"):
        if num_shards < 1:
            raise ShardError("need at least one shard")
        if vni_space < num_shards:
            raise ShardError(
                f"vni_space {vni_space} cannot cover {num_shards} shards")
        self.num_shards = num_shards
        self.vni_space = vni_space
        self.prefix = prefix
        self._ranges: List[ShardRange] = []
        for i in range(num_shards):
            # Ceil-division boundaries so ranges agree exactly with the
            # multiplicative lookup in shard_of for any space/shard ratio.
            lo = -(-i * vni_space // num_shards)
            hi = -(-(i + 1) * vni_space // num_shards)
            self._ranges.append(ShardRange(f"{prefix}{i:02d}", lo, hi))
        self._by_id: Dict[str, ShardRange] = {
            r.shard_id: r for r in self._ranges
        }

    def shard_of(self, vni: int) -> str:
        """The owning shard of *vni* — total over the VNI space."""
        if not 0 <= vni < self.vni_space:
            raise ShardError(
                f"VNI {vni} outside the sharded space [0, {self.vni_space})")
        return self._ranges[vni * self.num_shards // self.vni_space].shard_id

    def shard_ids(self) -> List[str]:
        return [r.shard_id for r in self._ranges]

    def ranges(self) -> List[ShardRange]:
        return list(self._ranges)

    def range_of(self, shard_id: str) -> Tuple[int, int]:
        try:
            r = self._by_id[shard_id]
        except KeyError:
            raise ShardError(f"unknown shard {shard_id}") from None
        return (r.lo, r.hi)

    def describe(self) -> str:
        """Canonical byte-stable dump of the topology — equal configs
        produce equal bytes."""
        return canonical_json({
            "num_shards": self.num_shards,
            "vni_space": self.vni_space,
            "ranges": {r.shard_id: [r.lo, r.hi] for r in self._ranges},
        })
