"""Per-shard budgeted audit: O(shard) work per tick, region coverage.

One region-wide :class:`~repro.audit.scanner.AuditScanner` would rebuild
its unit list — and capture an intent snapshot — over the *whole* region
every cycle. The :class:`ShardedAuditDriver` instead owns one scanner
(plus, optionally, one :class:`~repro.audit.repair.RepairBridge`) per
shard and advances exactly one shard per tick, round-robin: per-tick
work is bounded by that shard's budget regardless of how many shards the
region has, and a full region sweep is simply the sum of the per-shard
cycles. Detection latency for any divergence is therefore at most one
region cycle, exactly as in the single-controller audit — the sweep is
just paid for in O(shard) instalments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..audit.findings import Finding
from ..audit.repair import RepairBridge
from ..audit.scanner import AuditConfig, AuditScanner
from ..sim.engine import Engine, PeriodicTask
from ..telemetry.stats import CounterSet
from .sharded import ShardedController


class ShardedAuditDriver:
    """Round-robin budgeted audit over every shard of a region."""

    def __init__(
        self,
        sharded: ShardedController,
        config: Optional[AuditConfig] = None,
        repair: bool = True,
    ):
        self.sharded = sharded
        self.scanners: Dict[str, AuditScanner] = {}
        self.bridges: Dict[str, RepairBridge] = {}
        for sid in sorted(sharded.shards):
            shard = sharded.shards[sid]
            scanner = AuditScanner(shard.controller, config,
                                   journal=shard.journal)
            self.scanners[sid] = scanner
            if repair:
                self.bridges[sid] = RepairBridge(shard.controller).attach(
                    scanner)
        self._order = sorted(self.scanners)
        self._index = 0
        #: audit_ticks, region_sweeps.
        self.counters = CounterSet()

    @property
    def current_shard(self) -> str:
        """The shard the next tick will audit."""
        return self._order[self._index]

    def tick(self) -> int:
        """Run one budgeted tick against the *current* shard only; the
        cursor moves to the next shard when that shard's cycle
        completes. Returns how many units ran."""
        sid = self._order[self._index]
        scanner = self.scanners[sid]
        before = scanner.cycles_completed
        ran = scanner.tick()
        if scanner.cycles_completed > before:
            self._index = (self._index + 1) % len(self._order)
            if self._index == 0:
                self.counters.add("region_sweeps")
        self.counters.add("audit_ticks")
        return ran

    def cycle_length(self) -> int:
        """Ticks one full region sweep costs right now — the sum of each
        shard's budgeted cycle length."""
        total = 0
        for sid in self._order:
            scanner = self.scanners[sid]
            units = len(scanner._build_units())
            budget = scanner.config.budget
            total += max(1, -(-units // budget))
        return total

    def full_scan(self) -> Dict[str, List[Finding]]:
        """Audit every shard to completion immediately (budgets ignored);
        findings reported per shard, repairs fire through the attached
        bridges as each shard's cycle completes."""
        out: Dict[str, List[Finding]] = {}
        for sid in self._order:
            findings = self.scanners[sid].full_scan()
            if findings:
                out[sid] = findings
        return out

    def findings_by_kind(self) -> Dict[str, int]:
        """Region-wide finding counts per kind, across all shard logs."""
        counts: Dict[str, int] = {}
        for sid in self._order:
            for kind, n in self.scanners[sid].log.by_kind().items():
                counts[kind] = counts.get(kind, 0) + n
        return counts

    def repairs_applied(self) -> int:
        return sum(b.counters["repairs_applied"]
                   for b in self.bridges.values())

    def attach(self, engine: Engine, interval: float,
               until: Optional[float] = None) -> PeriodicTask:
        """Schedule :meth:`tick` every *interval*; one shard per tick."""
        return engine.schedule_every(interval, self.tick, until=until)
