"""The sharded control plane: N independent shards + cross-shard 2PC.

``repro.core.controller.Controller`` is one object with one WAL — every
audit sweep, reconcile pass and journal replay is O(region), which caps
the reproduction far below the paper's O(10M) routes. The
:class:`ShardedController` partitions the control plane by VNI range
into N :class:`~repro.shard.shard.ControllerShard`\\ s behind a
:class:`~repro.shard.router.ShardRouter`; every single-tenant operation
— onboarding, route/VM churn, snapshots, recovery, audit, reconcile —
touches exactly one shard, so its cost is O(shard) no matter how large
the region grows.

The one operation that genuinely spans shards is a peer-VPC chain whose
endpoints live on different shards. Those go through
:meth:`ShardedController.cross_transaction`, a presumed-abort two-phase
commit over the per-shard journals:

1. **begin** — the coordinator shard (lowest participant id) journals
   ``xtxn-begin`` with the participant list;
2. **prepare** — each participant shard journals an ordinary ``txn``
   record *tagged with the xid* and pushes the batch to its members
   (per-member undo logs, exactly the single-cluster machinery);
3. **decide** — the coordinator journals ``xtxn-commit``: this single
   durable record IS the commit point;
4. **complete** — each participant journals its ``txn-commit`` marker
   and folds the ops into desired state.

A ``CONTROLLER_CRASH`` at any stage recovers to all-committed or
all-aborted: :meth:`ShardedController.recover` scans every shard for
durable decisions, resolves each in-doubt (prepared, unterminated,
xid-tagged) transaction — commit iff the coordinator's ``xtxn-commit``
exists, abort otherwise — and only then replays each shard
independently. Gateway writes pushed during a doomed prepare surface
purely as audit findings (extra-route / extra-vm) and are repaired
through the normal :class:`~repro.audit.repair.RepairBridge` path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..cluster.cluster import GatewayCluster
from ..core.controller import (
    Controller,
    RouteEntry,
    Transaction,
    TransactionAborted,
    VmEntry,
)
from ..core.journal import encode_action, encode_binding
from ..core.splitting import ClusterCapacity, TenantProfile
from ..net.addr import Prefix
from ..sim.engine import Engine, PeriodicTask
from ..tables.errors import TableError
from ..telemetry.stats import CounterSet
from .router import DEFAULT_VNI_SPACE, ShardError, ShardRouter
from .shard import ControllerShard


class CrossShardTransaction:
    """A staged batch whose ops may touch several shards.

    Ops are routed at staging time: the router names the owning shard,
    the shard's split plan names the owning cluster. Only *placed* VNIs
    can participate — a cross-shard transaction updates existing
    tenants' chains, it does not onboard.

    Each op takes an optional *owner* VNI naming whose cluster receives
    the entry (default: the entry's own VNI). A peer-VPC chain spanning
    shards needs this: a gateway resolves the whole chain locally, so
    each endpoint's cluster must hold both its own PEER hop *and* the
    remote tenant's terminal entry — four installs on two shards that
    are either all visible or none."""

    def __init__(self, sharded: "ShardedController"):
        self._sharded = sharded
        #: (shard_id, cluster_id) -> staged ops, in call order.
        self.ops: Dict[Tuple[str, str], List[dict]] = {}

    def _stage(self, owner: int, op: dict) -> None:
        shard_id = self._sharded.router.shard_of(owner)
        plan = self._sharded.shards[shard_id].controller.plan
        if owner not in plan.assignments:
            raise ShardError(f"VNI {owner} is not placed on shard {shard_id}")
        cluster_id = plan.assignments[owner]
        op["cluster"] = cluster_id
        self.ops.setdefault((shard_id, cluster_id), []).append(op)

    def install_route(self, route: RouteEntry,
                      owner: Optional[int] = None) -> None:
        self._stage(owner if owner is not None else route.vni,
                    {"op": "install-route", "vni": route.vni,
                     "prefix": str(route.prefix),
                     "action": encode_action(route.action)})

    def remove_route(self, vni: int, prefix: Prefix,
                     owner: Optional[int] = None) -> None:
        self._stage(owner if owner is not None else vni,
                    {"op": "remove-route", "vni": vni,
                     "prefix": str(prefix)})

    def install_vm(self, vm: VmEntry, owner: Optional[int] = None) -> None:
        self._stage(owner if owner is not None else vm.vni,
                    {"op": "install-vm", "vni": vm.vni,
                     "vm_ip": vm.vm_ip, "vm_version": vm.version,
                     "binding": encode_binding(vm.binding)})

    def remove_vm(self, vni: int, vm_ip: int, version: int,
                  owner: Optional[int] = None) -> None:
        self._stage(owner if owner is not None else vni,
                    {"op": "remove-vm", "vni": vni, "vm_ip": vm_ip,
                     "vm_version": version})

    def shard_ids(self) -> List[str]:
        return sorted({sid for sid, _cid in self.ops})


class ShardedController:
    """N :class:`ControllerShard`\\ s behind one facade.

    >>> # assembled via ShardedController.build; see tests/shard/.
    """

    def __init__(self, router: ShardRouter,
                 shards: Dict[str, ControllerShard]):
        if set(shards) != set(router.shard_ids()):
            raise ShardError("shards must cover exactly the router's ids")
        self.router = router
        self.shards = shards
        #: xtxns_committed, xtxns_aborted, xtxn_resolved_commit,
        #: xtxn_resolved_abort, recoveries.
        self.counters = CounterSet()
        #: Fault hook fired at each 2PC stage boundary — op is one of
        #: "xtxn-begin" | "xtxn-prepare" | "xtxn-decide" |
        #: "xtxn-complete", the second argument the shard it fires on.
        self.crash_gate: Optional[Callable[[str, str], None]] = None

    @classmethod
    def build(
        cls,
        num_shards: int,
        capacity: ClusterCapacity,
        cluster_factory: Optional[Callable[[str], GatewayCluster]] = None,
        vni_space: int = DEFAULT_VNI_SPACE,
        segment_bytes: int = 16384,
    ) -> "ShardedController":
        """Assemble a fresh region: router + one shard per range."""
        router = ShardRouter(num_shards, vni_space)
        shards = {
            shard_id: ControllerShard(shard_id, capacity, cluster_factory,
                                      segment_bytes=segment_bytes)
            for shard_id in router.shard_ids()
        }
        return cls(router, shards)

    # -- routing -----------------------------------------------------------

    def shard_for(self, vni: int) -> ControllerShard:
        return self.shards[self.router.shard_of(vni)]

    def cluster_of(self, vni: int) -> str:
        """The owning cluster of a placed VNI (shard-local id)."""
        plan = self.shard_for(vni).controller.plan
        if vni not in plan.assignments:
            raise ShardError(f"VNI {vni} is not placed")
        return plan.assignments[vni]

    # -- single-shard operations (O(shard) by construction) ----------------

    def add_tenant(self, profile: TenantProfile, routes, vms,
                   time: float = 0.0) -> str:
        """Place a tenant on its owning shard; returns the cluster id."""
        return self.shard_for(profile.vni).controller.add_tenant(
            profile, routes, vms, time=time)

    def remove_tenant(self, vni: int, time: float = 0.0) -> int:
        return self.shard_for(vni).controller.remove_tenant(vni, time=time)

    def install_route(self, route: RouteEntry, time: float = 0.0) -> None:
        self.shard_for(route.vni).controller.install_route(
            self.cluster_of(route.vni), route, time=time)

    def remove_route(self, vni: int, prefix: Prefix,
                     time: float = 0.0) -> None:
        self.shard_for(vni).controller.remove_route(
            self.cluster_of(vni), vni, prefix, time=time)

    def install_vm(self, vm: VmEntry, time: float = 0.0) -> None:
        self.shard_for(vm.vni).controller.install_vm(
            self.cluster_of(vm.vni), vm, time=time)

    def remove_vm(self, vni: int, vm_ip: int, version: int,
                  time: float = 0.0) -> None:
        self.shard_for(vni).controller.remove_vm(
            self.cluster_of(vni), vni, vm_ip, version, time=time)

    @contextmanager
    def transaction(self, vni: int, time: float = 0.0) -> Iterator[Transaction]:
        """A single-shard two-phase batch against *vni*'s owning cluster
        — the common case; peer chains that stay on one shard never pay
        the cross-shard protocol."""
        ctl = self.shard_for(vni).controller
        with ctl.transaction(self.cluster_of(vni), time=time) as txn:
            yield txn

    # -- cross-shard transactions ------------------------------------------

    def _crash_point(self, stage: str, shard_id: str) -> None:
        if self.crash_gate is not None:
            self.crash_gate(stage, shard_id)

    @contextmanager
    def cross_transaction(self, time: float = 0.0) -> Iterator[CrossShardTransaction]:
        """Stage a batch spanning shards and push it through the 2PC on
        clean exit. Raising inside the block discards the batch."""
        xtxn = CrossShardTransaction(self)
        yield xtxn
        self._commit_cross(xtxn, time)

    def _commit_cross(self, xtxn: CrossShardTransaction, time: float) -> None:
        if not xtxn.ops:
            return
        participants = sorted(xtxn.ops)
        shard_ids = sorted({sid for sid, _cid in participants})
        if len(shard_ids) == 1 and len(participants) == 1:
            # Degenerate single-cluster batch: the plain transaction
            # machinery gives the same guarantees without the marker
            # traffic.
            (sid, cid), = participants
            ctl = self.shards[sid].controller
            with ctl.transaction(cid, time=time) as txn:
                txn.ops.extend(xtxn.ops[(sid, cid)])
            return
        coordinator = self.shards[shard_ids[0]]
        # Deterministic and globally unique: the coordinator's journal
        # position at begin time, namespaced by its shard id.
        xid = f"{coordinator.shard_id}:{coordinator.journal.next_seq}"
        # Validate removals against desired state before anything is
        # journalled anywhere.
        for (sid, cid), ops in xtxn.ops.items():
            ctl = self.shards[sid].controller
            for op in ops:
                if op["op"].startswith("remove-") and \
                        ctl._stage_prev(cid, op) is None:
                    raise TableError(
                        f"cross-shard transaction removes unknown entry: {op}")
        # Stage 0 — begin: the coordinator durably names the participants.
        coordinator.controller._journal_append("xtxn-begin", {
            "xid": xid,
            "participants": [[sid, cid] for sid, cid in participants],
        })
        self._crash_point("xtxn-begin", coordinator.shard_id)
        # Stage 1 — prepare each participant: journal the xid-tagged txn
        # record, then apply the batch to every member with undo logs.
        prepared: List[Tuple[ControllerShard, str, object, list]] = []
        failure: Optional[TableError] = None
        for (sid, cid) in participants:
            shard = self.shards[sid]
            ctl = shard.controller
            record = ctl._journal_append("txn", {
                "cluster": cid, "xid": xid, "ops": list(xtxn.ops[(sid, cid)]),
            })
            member_undos: list = []
            prepared.append((shard, cid, record, member_undos))
            try:
                for member in ctl.clusters[cid].all_members():
                    undo: list = []
                    member_undos.append((member, undo))
                    for op in xtxn.ops[(sid, cid)]:
                        ctl._apply_op_to_gateway(member.gateway, op, undo)
            except TableError as exc:
                failure = exc
                break
            self._crash_point("xtxn-prepare", sid)
        if failure is not None:
            self._abort_cross(coordinator, xid, prepared)
            raise TransactionAborted(
                f"cross-shard transaction {xid} aborted: {failure}"
            ) from failure
        # Stage 2 — decide: one durable record is the commit point.
        self._crash_point("xtxn-decide", coordinator.shard_id)
        coordinator.controller._journal_append("xtxn-commit", {"xid": xid})
        # Stage 3 — complete: every participant marks its prepare
        # committed and folds the ops into desired state. A crash in
        # here leaves in-doubt prepares that recovery resolves as
        # committed (the decision is already durable).
        for (shard, cid, record, _undos) in prepared:
            self._crash_point("xtxn-complete", shard.shard_id)
            ctl = shard.controller
            ctl._journal_append("txn-commit", {"txn_seq": record.seq})
            for op in xtxn.ops[(shard.shard_id, cid)]:
                ctl._apply_committed_op(cid, op)
            ctl.counters.add("txns_committed")
            ctl.version += 1
            ctl._record_size(cid, time)
        self.counters.add("xtxns_committed")

    def _abort_cross(self, coordinator: ControllerShard, xid: str,
                     prepared: List[Tuple[ControllerShard, str, object, list]]) -> None:
        """Unwind every member that saw any part of the batch, journal
        the abort markers, and record the coordinator's durable abort."""
        for shard, _cid, record, member_undos in reversed(prepared):
            ctl = shard.controller
            for _member, undo in reversed(member_undos):
                for action in reversed(undo):
                    try:
                        action()
                    except TableError:
                        ctl.counters.add("txn_rollback_failures")
            ctl._journal_append("txn-abort", {"txn_seq": record.seq})
            ctl.counters.add("txns_aborted")
        coordinator.controller._journal_append("xtxn-abort", {"xid": xid})
        self.counters.add("xtxns_aborted")

    # -- durability and recovery -------------------------------------------

    def snapshot(self, shard_id: Optional[str] = None) -> None:
        """Checkpoint one shard (or, shard by shard, all of them). Each
        call pauses only its shard — compaction cadence is per shard."""
        targets = [shard_id] if shard_id is not None else sorted(self.shards)
        for sid in targets:
            self.shards[sid].snapshot()

    def in_doubt(self) -> Dict[str, list]:
        """Prepared-but-undecided cross-shard records per shard — empty
        everywhere except in the window between a crash and recovery."""
        out: Dict[str, list] = {}
        for sid in sorted(self.shards):
            records = [r for r in self.shards[sid].journal.in_doubt()
                       if r.payload.get("xid") is not None]
            if records:
                out[sid] = records
        return out

    @classmethod
    def recover_from(cls, crashed: "ShardedController") -> Tuple["ShardedController", int]:
        """Stand up a fresh sharded controller over the survivors: the
        per-shard journals and the gateways (which kept their tables)
        outlive the controller process. Returns ``(recovered, writes)``."""
        shards = {sid: shard.rebuild_for_recovery()
                  for sid, shard in crashed.shards.items()}
        fresh = cls(crashed.router, shards)
        writes = fresh.recover()
        return fresh, writes

    def recover(self) -> int:
        """Resolve in-doubt cross-shard transactions, then replay every
        shard independently (each shard is a self-contained snapshot +
        tail; order does not matter). Returns total gateway writes."""
        decisions: Dict[str, str] = {}
        for sid in sorted(self.shards):
            decisions.update(self.shards[sid].journal.decisions())
        for sid in sorted(self.shards):
            journal = self.shards[sid].journal
            for record in journal.in_doubt():
                xid = record.payload.get("xid")
                if xid is None:
                    # A plain single-shard prepare that never committed:
                    # materialize() already skips it.
                    continue
                if decisions.get(xid) == "commit":
                    journal.append("txn-commit", {"txn_seq": record.seq})
                    self.counters.add("xtxn_resolved_commit")
                else:
                    # Presumed abort: no durable xtxn-commit, no commit.
                    journal.append("txn-abort", {"txn_seq": record.seq})
                    self.counters.add("xtxn_resolved_abort")
        writes = 0
        for sid in sorted(self.shards):
            shard = self.shards[sid]
            writes += shard.controller.recover(shard.journal)
        self.counters.add("recoveries")
        return writes

    # -- inspection --------------------------------------------------------

    @property
    def version(self) -> int:
        return sum(s.controller.version for s in self.shards.values())

    def intent_snapshot(self) -> Dict[str, dict]:
        """Per-shard intent views (each comparable to that shard's
        ``journal.materialize()``)."""
        return {sid: self.shards[sid].controller.intent_snapshot()
                for sid in sorted(self.shards)}

    def consistency_check(self) -> Dict[str, list]:
        """Region-wide check, reported per shard (callers wanting O(shard)
        work per tick use :meth:`reconcile_loop` or the audit driver)."""
        out: Dict[str, list] = {}
        for sid in sorted(self.shards):
            ctl = self.shards[sid].controller
            findings: list = []
            for cid in sorted(ctl.clusters):
                findings.extend(ctl.consistency_check(cid))
            if findings:
                out[sid] = findings
        return out

    def shard_status(self) -> List[dict]:
        """One operator-facing row per shard: VNI range, occupancy, and
        journal/compaction telemetry."""
        rows = []
        for sid in sorted(self.shards):
            lo, hi = self.router.range_of(sid)
            row = {"shard": sid, "vni_lo": lo, "vni_hi": hi}
            row.update(self.shards[sid].telemetry())
            rows.append(row)
        return rows

    # -- background loops --------------------------------------------------

    def reconcile_loop(
        self,
        engine: Engine,
        interval: float,
        max_retries: int = 3,
        backoff: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """The §6.1 cycle, sharded: each tick reconciles exactly one
        shard (round-robin), so per-tick work is O(shard) and a full
        region pass costs ``len(shards)`` ticks."""
        if backoff is None:
            backoff = interval / 4.0
        order = sorted(self.shards)
        cursor = {"i": 0}

        def tick() -> None:
            sid = order[cursor["i"] % len(order)]
            cursor["i"] += 1
            ctl = self.shards[sid].controller
            ctl.counters.add("reconcile_ticks")
            for cid in sorted(ctl.clusters):
                ctl._reconcile_cluster(engine, cid, max_retries, backoff)

        return engine.schedule_every(interval, tick, until=until)
