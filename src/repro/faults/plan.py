"""Deterministic fault plans (§6.1's failure modes, made injectable).

The paper's control plane exists because "table entry inconsistency
between the controller and the gateways may occur ... due to
software/hardware bugs, misconfiguration or insufficient gateway
memory". A :class:`FaultPlan` is the seeded, declarative description of
*which* of those failures happen *when*: every decision is derived from
``repro.sim.rand.derive(seed, "faults", spec_index, kind)``, so the same
seed and the same operation sequence always produce the same injected
faults — fault runs are replayable bit for bit.

Seeding convention: a plan never touches global randomness. Each spec
owns one child RNG; probability draws consume it only when the spec's
static predicates (kind/cluster/node/write-index) already match, so
adding an unrelated spec does not shift another spec's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from fnmatch import fnmatchcase
from typing import List, Optional, Sequence, Tuple

from ..sim.rand import derive
from ..telemetry.stats import CounterSet


class FaultKind(Enum):
    """Every failure mode the injection layer can produce."""

    #: A route install is silently lost before reaching the table.
    DROP_ROUTE_WRITE = "drop-route-write"
    #: A route install lands, but with a corrupted action.
    CORRUPT_ROUTE_WRITE = "corrupt-route-write"
    #: A VM-NC install is silently lost.
    DROP_VM_WRITE = "drop-vm-write"
    #: A VM-NC install lands with a corrupted NC binding.
    CORRUPT_VM_WRITE = "corrupt-vm-write"
    #: A route install raises (insufficient gateway memory / agent error).
    FAIL_ROUTE_WRITE = "fail-route-write"
    #: A VM-NC install raises.
    FAIL_VM_WRITE = "fail-vm-write"
    #: A tenant onboard stops replicating after its first N writes.
    PARTIAL_ONBOARD = "partial-onboard"
    #: A member goes offline at a scheduled time and stays down.
    MEMBER_CRASH = "member-crash"
    #: A member goes offline at a scheduled time and returns later.
    MEMBER_FLAP = "member-flap"
    #: A DPU device dies at a scheduled time: the member goes offline
    #: AND its on-device session table is wiped (dataplane state is
    #: lost, unlike a plain member crash). The tier planner must drain
    #: the device's placements to x86 through ``Controller.transaction``.
    DPU_DEVICE_FAIL = "dpu-device-fail"
    #: The hot backup stops receiving replication (stale standby state).
    STALE_BACKUP = "stale-backup"
    #: The controller dies between the journal append and the cluster
    #: push (raised as :class:`repro.core.journal.ControllerCrash`).
    CONTROLLER_CRASH = "controller-crash"
    #: A resident flow-cache entry is corrupted in place. Its generation
    #: vector stays current, so the cache's own staleness guard cannot
    #: see it — only an audit recompute against the live tables can.
    POISON_FLOW_CACHE = "poison-flow-cache"
    #: A live endpoint migration stalls at a named phase (the hypervisor
    #: copy runs long, an agent hangs). The migrator keeps buffering
    #: through the stall, so a long one overruns the blackout budget and
    #: must roll back to the source binding.
    MIGRATION_STALL = "migration-stall"


#: Kinds evaluated on every gateway write.
WRITE_KINDS = {
    FaultKind.DROP_ROUTE_WRITE,
    FaultKind.CORRUPT_ROUTE_WRITE,
    FaultKind.DROP_VM_WRITE,
    FaultKind.CORRUPT_VM_WRITE,
    FaultKind.FAIL_ROUTE_WRITE,
    FaultKind.FAIL_VM_WRITE,
    FaultKind.PARTIAL_ONBOARD,
    FaultKind.STALE_BACKUP,
}

#: Kinds fired from the event engine at a scheduled time.
SCHEDULED_KINDS = {FaultKind.MEMBER_CRASH, FaultKind.MEMBER_FLAP,
                   FaultKind.DPU_DEVICE_FAIL}

#: Kinds evaluated on every *controller* mutation (not per gateway write).
MUTATION_KINDS = {FaultKind.CONTROLLER_CRASH}

#: Kinds applied on demand to a member's resident flow cache
#: (:meth:`repro.faults.FaultInjector.poison_caches`).
CACHE_KINDS = {FaultKind.POISON_FLOW_CACHE}

#: Kinds evaluated at named migration phases
#: (:meth:`repro.faults.FaultInjector.arm_migrator`).
PHASE_KINDS = {FaultKind.MIGRATION_STALL}

_ROUTE_KINDS = {
    FaultKind.DROP_ROUTE_WRITE,
    FaultKind.CORRUPT_ROUTE_WRITE,
    FaultKind.FAIL_ROUTE_WRITE,
}
_VM_KINDS = {
    FaultKind.DROP_VM_WRITE,
    FaultKind.CORRUPT_VM_WRITE,
    FaultKind.FAIL_VM_WRITE,
}


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what kind, where, and when it fires.

    Targeting is by ``fnmatch`` pattern over the cluster id and member
    name (``"*"`` matches everything). Timing is one of:

    * ``at_writes`` — explicit global write indices (0-based, counted
      over every armed gateway write in arrival order);
    * ``probability`` — an independent seeded coin per matching write;
    * ``after_onboard_writes`` — for :data:`FaultKind.PARTIAL_ONBOARD`,
      the number of writes of the current onboard that succeed before
      the rest are dropped;
    * ``after_write`` — for :data:`FaultKind.STALE_BACKUP`, the global
      write index from which backup replication is lost (default 0);
    * ``at_time`` — for crash/flap, the engine time of the outage
      (``down_for`` sets the flap's downtime);
    * ``at_mutations`` — for :data:`FaultKind.CONTROLLER_CRASH`, the
      0-based indices of the controller mutations (installs, removes,
      tenant ops, transactions — counted in arrival order) at which the
      controller dies;
    * ``at_op`` — for :data:`FaultKind.CONTROLLER_CRASH`, an ``fnmatch``
      pattern over the mutation op name ("install-route", "txn",
      "xtxn-decide", "xtxn-*", ...). Combined with ``cluster`` (which,
      for sharded 2PC stages, matches the *shard id*) this targets the
      coordinator or any participant at an exact protocol stage —
      usually alongside ``max_fires=1``.

    ``max_fires`` bounds how often the spec fires (e.g. "the first two
    install attempts fail, the third succeeds" for retry testing).

    Write faults are counted over *every* armed gateway write — installs
    and removes both advance the global write index.
    """

    kind: FaultKind
    cluster: str = "*"
    node: str = "*"
    probability: Optional[float] = None
    at_writes: Tuple[int, ...] = ()
    after_onboard_writes: Optional[int] = None
    after_write: Optional[int] = None
    at_time: Optional[float] = None
    down_for: float = 0.0
    max_fires: Optional[int] = None
    at_mutations: Tuple[int, ...] = ()
    at_op: Optional[str] = None
    #: For :data:`FaultKind.MIGRATION_STALL`: the migration phase the
    #: stall hits ("pre-copy" | "commit" | "replay") and how long the
    #: phase hangs before proceeding.
    at_phase: Optional[str] = None
    stall_for: float = 0.0

    def __post_init__(self):
        if self.kind in PHASE_KINDS:
            if self.at_phase is None:
                raise ValueError(f"{self.kind.value} requires at_phase")
            if self.stall_for <= 0:
                raise ValueError(f"{self.kind.value} requires a positive stall_for")
        if self.kind in SCHEDULED_KINDS:
            if self.at_time is None:
                raise ValueError(f"{self.kind.value} requires at_time")
            if self.kind is FaultKind.MEMBER_FLAP and self.down_for <= 0:
                raise ValueError("member-flap requires a positive down_for")
        elif self.kind is FaultKind.PARTIAL_ONBOARD:
            if self.after_onboard_writes is None:
                raise ValueError("partial-onboard requires after_onboard_writes")
        elif self.kind in MUTATION_KINDS:
            if (not self.at_mutations and self.probability is None
                    and self.max_fires is None and self.at_op is None):
                raise ValueError(
                    f"{self.kind.value} requires at_mutations, at_op, "
                    "probability or max_fires (it would otherwise kill "
                    "every mutation)")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} not in [0, 1]")


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired, for the audit log."""

    kind: FaultKind
    cluster: str
    node: str
    write_index: Optional[int] = None  # None for scheduled faults
    time: Optional[float] = None  # None for write faults
    detail: str = ""


class FaultPlan:
    """A seeded schedule of faults plus the record of what fired.

    >>> plan = FaultPlan(seed=7, specs=[
    ...     FaultSpec(FaultKind.DROP_ROUTE_WRITE, at_writes=(0,))])
    >>> plan.decide_write("route", "A", "gw0", is_backup=False)
    <FaultKind.DROP_ROUTE_WRITE: 'drop-route-write'>
    >>> plan.decide_write("route", "A", "gw0", is_backup=False) is None
    True
    """

    def __init__(self, seed=0, specs: Sequence[FaultSpec] = ()):
        self.seed = seed
        self.specs: List[FaultSpec] = list(specs)
        self.counters = CounterSet()
        self.log: List[InjectedFault] = []
        self._rngs = [
            derive(seed, "faults", i, spec.kind.value)
            for i, spec in enumerate(self.specs)
        ]
        self._fires = [0] * len(self.specs)
        self.write_index = 0
        self.mutation_index = 0
        self._onboard_vni: Optional[int] = None
        self._onboard_writes = 0

    # -- onboard windows (for PARTIAL_ONBOARD) ----------------------------

    def begin_onboard(self, vni: int) -> None:
        self._onboard_vni = vni
        self._onboard_writes = 0

    def end_onboard(self) -> None:
        self._onboard_vni = None
        self._onboard_writes = 0

    # -- write-path decisions ---------------------------------------------

    def _spec_matches_write(self, index: int, spec: FaultSpec, op: str,
                            cluster: str, node: str, is_backup: bool,
                            write_index: int) -> bool:
        kind = spec.kind
        if kind not in WRITE_KINDS:
            return False
        if kind in _ROUTE_KINDS and op != "route":
            return False
        if kind in _VM_KINDS and op != "vm":
            return False
        if kind is FaultKind.STALE_BACKUP:
            if not is_backup or write_index < (spec.after_write or 0):
                return False
        if kind is FaultKind.PARTIAL_ONBOARD:
            if self._onboard_vni is None:
                return False
            if self._onboard_writes <= spec.after_onboard_writes:
                return False
        if not fnmatchcase(cluster, spec.cluster) or not fnmatchcase(node, spec.node):
            return False
        if spec.at_writes and write_index not in spec.at_writes:
            return False
        if spec.max_fires is not None and self._fires[index] >= spec.max_fires:
            return False
        if spec.probability is not None:
            # The draw happens only once all static predicates matched, so
            # unrelated specs never perturb this spec's stream.
            if self._rngs[index].random() >= spec.probability:
                return False
        return True

    def decide_write(self, op: str, cluster: str, node: str,
                     is_backup: bool) -> Optional[FaultKind]:
        """Decide the fate of one gateway write (*op* is "route" | "vm").

        Returns the fault kind to apply, or None for a clean write. The
        first matching spec (declaration order) wins. Every call advances
        the global write index, so plans address operations positionally.
        """
        write_index = self.write_index
        self.write_index += 1
        if self._onboard_vni is not None:
            self._onboard_writes += 1
        for i, spec in enumerate(self.specs):
            if self._spec_matches_write(i, spec, op, cluster, node, is_backup,
                                        write_index):
                self._fires[i] += 1
                self.record(InjectedFault(
                    spec.kind, cluster, node, write_index=write_index,
                    detail=f"{op}-write",
                ))
                return spec.kind
        return None

    # -- controller-mutation decisions ------------------------------------

    def decide_mutation(self, op: str, cluster: str) -> Optional[FaultKind]:
        """Decide the fate of one controller mutation (*op* is the journal
        op name — "install-route", "txn", "add-tenant", ...).

        Every call advances the global mutation index, so plans address
        mutations positionally via ``at_mutations``. The first matching
        spec wins.
        """
        index = self.mutation_index
        self.mutation_index += 1
        for i, spec in enumerate(self.specs):
            if spec.kind not in MUTATION_KINDS:
                continue
            if not fnmatchcase(cluster, spec.cluster):
                continue
            if spec.at_mutations and index not in spec.at_mutations:
                continue
            if spec.at_op is not None and not fnmatchcase(op, spec.at_op):
                continue
            if spec.max_fires is not None and self._fires[i] >= spec.max_fires:
                continue
            if spec.probability is not None:
                if self._rngs[i].random() >= spec.probability:
                    continue
            self._fires[i] += 1
            self.record(InjectedFault(
                spec.kind, cluster, "-", write_index=index, detail=op,
            ))
            return spec.kind
        return None

    # -- migration-phase decisions -----------------------------------------

    def decide_phase(self, phase: str, cluster: str) -> Optional[float]:
        """Decide whether a migration *phase* on *cluster* stalls.

        Returns the stall duration (engine seconds) when a
        :data:`FaultKind.MIGRATION_STALL` spec fires, else None. The
        first matching spec wins.
        """
        for i, spec in enumerate(self.specs):
            if spec.kind not in PHASE_KINDS:
                continue
            if spec.at_phase != phase:
                continue
            if not fnmatchcase(cluster, spec.cluster):
                continue
            if spec.max_fires is not None and self._fires[i] >= spec.max_fires:
                continue
            if spec.probability is not None:
                if self._rngs[i].random() >= spec.probability:
                    continue
            self._fires[i] += 1
            self.record(InjectedFault(
                spec.kind, cluster, "-", detail=f"{phase}+{spec.stall_for}",
            ))
            return spec.stall_for
        return None

    # -- scheduled faults ---------------------------------------------------

    def scheduled_specs(self) -> List[Tuple[int, FaultSpec]]:
        """The crash/flap specs, with their declaration indices."""
        return [(i, s) for i, s in enumerate(self.specs) if s.kind in SCHEDULED_KINDS]

    def cache_specs(self) -> List[Tuple[int, FaultSpec]]:
        """The flow-cache poison specs, with their declaration indices."""
        return [(i, s) for i, s in enumerate(self.specs) if s.kind in CACHE_KINDS]

    def can_fire(self, index: int) -> bool:
        """Whether spec *index* is still under its ``max_fires`` bound."""
        spec = self.specs[index]
        return spec.max_fires is None or self._fires[index] < spec.max_fires

    def mark_fired(self, index: int) -> None:
        self._fires[index] += 1

    # -- accounting -------------------------------------------------------

    def record(self, fault: InjectedFault) -> None:
        self.log.append(fault)
        self.counters.add(f"injected.{fault.kind.value}")

    def injected(self, kind: FaultKind) -> int:
        """How many times *kind* actually fired."""
        return self.counters[f"injected.{kind.value}"]
