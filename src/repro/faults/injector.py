"""The fault injector: arms gateways, controllers and engines with a plan.

Injection sits between the controller's replication path and the
gateway tables: every armed member's gateway is replaced by a
:class:`FaultyGateway` proxy that consults the :class:`FaultPlan` on
each ``install_route``/``install_vm`` and drops, corrupts or rejects the
write accordingly. Reads (consistency checks, probes, forwarding) pass
through untouched, so the *detection* machinery sees exactly what a
buggy gateway agent would have left behind.

Scheduled faults (member crash/flap) register on the simulation engine
and go through the cluster's normal health path: the member is taken
offline/online and, when a :class:`~repro.cluster.health.HealthMonitor`
is attached, a ``NODE_DOWN`` observation is fed to it so the §6.1
disaster-recovery reactions fire.
"""

from __future__ import annotations

from dataclasses import replace
from fnmatch import fnmatchcase
from typing import Dict, Optional

from ..cluster.cluster import GatewayCluster
from ..cluster.health import HealthMonitor, Signal
from ..core.journal import ControllerCrash
from ..sim.engine import Engine
from ..tables.errors import TableError
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction
from .plan import FaultKind, FaultPlan, InjectedFault

_DROP_KINDS = {
    FaultKind.DROP_ROUTE_WRITE,
    FaultKind.DROP_VM_WRITE,
    FaultKind.PARTIAL_ONBOARD,
    FaultKind.STALE_BACKUP,
}
_FAIL_KINDS = {FaultKind.FAIL_ROUTE_WRITE, FaultKind.FAIL_VM_WRITE}


def corrupt_route_action(action: RouteAction) -> RouteAction:
    """A deterministically-wrong variant of *action* (bit-rot stand-in)."""
    return replace(action, target=f"{action.target or ''}!corrupt")


def corrupt_binding(binding: NcBinding) -> NcBinding:
    """Mis-point the VM at a neighbouring NC (same family, wrong host)."""
    return NcBinding(nc_ip=binding.nc_ip ^ 0x2, nc_version=binding.nc_version)


class FaultyGateway:
    """A transparent gateway proxy that misapplies writes per the plan.

    Only the mutation paths are overridden; every other attribute —
    ``tables``, ``split_vm_nc``, ``forward`` — delegates to the wrapped
    gateway, so consistency checks and probes observe the real state.
    """

    def __init__(self, inner, plan: FaultPlan, cluster_id: str, node: str,
                 is_backup: bool = False):
        self._inner = inner
        self._plan = plan
        self._cluster_id = cluster_id
        self._node = node
        self._is_backup = is_backup

    @property
    def wrapped(self):
        """The real gateway underneath."""
        return self._inner

    def install_route(self, vni, prefix, action, replace=False) -> None:
        kind = self._plan.decide_write("route", self._cluster_id, self._node,
                                       self._is_backup)
        if kind in _DROP_KINDS:
            return
        if kind in _FAIL_KINDS:
            raise TableError(
                f"injected {kind.value} on {self._node}: vni={vni} {prefix}"
            )
        if kind is FaultKind.CORRUPT_ROUTE_WRITE:
            action = corrupt_route_action(action)
        self._inner.install_route(vni, prefix, action, replace=replace)

    def install_vm(self, vni, vm_ip, version, binding, replace=False) -> None:
        kind = self._plan.decide_write("vm", self._cluster_id, self._node,
                                       self._is_backup)
        if kind in _DROP_KINDS:
            return
        if kind in _FAIL_KINDS:
            raise TableError(
                f"injected {kind.value} on {self._node}: vni={vni} vm={vm_ip:#x}"
            )
        if kind is FaultKind.CORRUPT_VM_WRITE:
            binding = corrupt_binding(binding)
        self._inner.install_vm(vni, vm_ip, version, binding, replace=replace)

    def remove_route(self, vni, prefix):
        """Delete-path faults: a DROP or CORRUPT kind misapplies the
        delete, so the entry survives on the gateway ("extra-route")."""
        kind = self._plan.decide_write("route", self._cluster_id, self._node,
                                       self._is_backup)
        if kind in _DROP_KINDS or kind is FaultKind.CORRUPT_ROUTE_WRITE:
            return None
        if kind in _FAIL_KINDS:
            raise TableError(
                f"injected {kind.value} on {self._node}: remove vni={vni} {prefix}"
            )
        return self._inner.remove_route(vni, prefix)

    def remove_vm(self, vni, vm_ip, version):
        kind = self._plan.decide_write("vm", self._cluster_id, self._node,
                                       self._is_backup)
        if kind in _DROP_KINDS or kind is FaultKind.CORRUPT_VM_WRITE:
            return None
        if kind in _FAIL_KINDS:
            raise TableError(
                f"injected {kind.value} on {self._node}: remove vni={vni} vm={vm_ip:#x}"
            )
        return self._inner.remove_vm(vni, vm_ip, version)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FaultInjector:
    """Wires a :class:`FaultPlan` into clusters, a controller and an engine.

    >>> from repro.faults import FaultPlan
    >>> injector = FaultInjector(FaultPlan(seed=1))
    >>> injector.plan.seed
    1
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    # -- write-path arming -------------------------------------------------

    def arm_cluster(self, cluster: GatewayCluster,
                    cluster_id: Optional[str] = None) -> GatewayCluster:
        """Wrap every member gateway (and the hot backup's) in the proxy."""
        cid = cluster_id if cluster_id is not None else cluster.cluster_id
        for member in cluster.members():
            if not isinstance(member.gateway, FaultyGateway):
                member.gateway = FaultyGateway(
                    member.gateway, self.plan, cid, member.name, is_backup=False
                )
        if cluster.backup is not None:
            for member in cluster.backup.members():
                if not isinstance(member.gateway, FaultyGateway):
                    member.gateway = FaultyGateway(
                        member.gateway, self.plan, cid, member.name, is_backup=True
                    )
        return cluster

    def arm_controller(self, controller) -> None:
        """Arm all of a controller's clusters, present and future.

        Existing clusters are wrapped in place; the cluster factory is
        wrapped so clusters allocated later are armed on creation;
        ``add_tenant`` is bracketed so the plan can delimit onboard
        windows for :data:`FaultKind.PARTIAL_ONBOARD`; and the
        controller's crash gate is armed so
        :data:`FaultKind.CONTROLLER_CRASH` specs can kill it between a
        journal append and the cluster push.
        """
        for cid, cluster in controller.clusters.items():
            self.arm_cluster(cluster, cid)
        factory = controller._cluster_factory
        if factory is not None:
            def arming_factory(cluster_id, _factory=factory):
                return self.arm_cluster(_factory(cluster_id), cluster_id)

            controller.set_cluster_factory(arming_factory)
        original_add = controller.add_tenant

        def add_tenant(profile, routes, vms, time=0.0):
            self.plan.begin_onboard(profile.vni)
            try:
                return original_add(profile, routes, vms, time=time)
            finally:
                self.plan.end_onboard()

        controller.add_tenant = add_tenant

        def crash_gate(op, cluster_id):
            kind = self.plan.decide_mutation(op, cluster_id)
            if kind is FaultKind.CONTROLLER_CRASH:
                raise ControllerCrash(
                    f"injected controller-crash during {op} on {cluster_id}"
                )

        controller.crash_gate = crash_gate

    def arm_sharded(self, sharded) -> None:
        """Arm a :class:`~repro.shard.ShardedController`: every shard's
        controller (write faults, per-shard mutation crashes) plus the
        sharded 2PC stage gate.

        The 2PC stages route through ``decide_mutation`` with the stage
        name as the op and the *shard id* as the cluster, so a spec like
        ``FaultSpec(CONTROLLER_CRASH, cluster="s01", at_op="xtxn-prepare",
        max_fires=1)`` kills a participant between prepares, and
        ``at_op="xtxn-decide"`` kills the coordinator just before the
        commit point becomes durable.
        """
        for sid in sorted(sharded.shards):
            self.arm_controller(sharded.shards[sid].controller)

        def crash_gate(stage, shard_id):
            kind = self.plan.decide_mutation(stage, shard_id)
            if kind is FaultKind.CONTROLLER_CRASH:
                raise ControllerCrash(
                    f"injected controller-crash at {stage} on {shard_id}"
                )

        sharded.crash_gate = crash_gate

    def arm_migrator(self, migrator) -> None:
        """Arm an :class:`~repro.migration.EndpointMigrator`'s phase gate
        so :data:`FaultKind.MIGRATION_STALL` specs can hang its phases."""
        migrator.fault_gate = self.plan.decide_phase

    # -- flow-cache poisoning ----------------------------------------------

    def poison_caches(self, clusters: Dict[str, GatewayCluster]) -> int:
        """Apply the plan's :data:`FaultKind.POISON_FLOW_CACHE` specs.

        For each matching member carrying a non-empty flow cache, the
        oldest resident DELIVER_NC entry is corrupted in place: its NC IP
        is mis-pointed (same perturbation as :func:`corrupt_binding`) and
        its prebuilt rewrite template is invalidated so hits really do
        deliver to the wrong host. The entry's generation vector is left
        untouched — the cache's own staleness guard stays green, which is
        exactly the corruption class only an audit recompute can catch.
        Returns how many entries were poisoned.
        """
        poisoned = 0
        for index, spec in self.plan.cache_specs():
            for cid in sorted(clusters):
                if not fnmatchcase(cid, spec.cluster):
                    continue
                for member in clusters[cid].all_members():
                    if not self.plan.can_fire(index):
                        break
                    if not fnmatchcase(member.name, spec.node):
                        continue
                    cache = getattr(member.gateway, "flow_cache", None)
                    if cache is None:
                        continue
                    target = next(((key, entry) for key, entry in cache.items()
                                   if entry.nc_ip is not None), None)
                    if target is None:
                        continue
                    key, entry = target
                    entry.nc_ip ^= 0x2
                    entry.outer_in = None  # hits now rebuild from the bad NC IP
                    self.plan.mark_fired(index)
                    self.plan.record(InjectedFault(
                        spec.kind, cid, member.name,
                        detail=f"key={key}",
                    ))
                    poisoned += 1
        return poisoned

    # -- scheduled faults ---------------------------------------------------

    def schedule(self, engine: Engine, clusters: Dict[str, GatewayCluster],
                 monitor: Optional[HealthMonitor] = None) -> int:
        """Register the plan's crash/flap specs on *engine*; returns how
        many outages were scheduled."""
        scheduled = 0
        for index, spec in self.plan.scheduled_specs():
            for cid in sorted(clusters):
                if not fnmatchcase(cid, spec.cluster):
                    continue
                cluster = clusters[cid]
                for member in cluster.members():
                    if not fnmatchcase(member.name, spec.node):
                        continue
                    self._schedule_outage(engine, index, spec, cluster, cid,
                                          member.name, monitor)
                    scheduled += 1
        return scheduled

    def _schedule_outage(self, engine, index, spec, cluster, cid, name, monitor):
        def down():
            cluster.take_offline(name)
            detail = "offline"
            if spec.kind is FaultKind.DPU_DEVICE_FAIL:
                # Device death loses the on-device session state too; the
                # planner's drain then moves the steering to x86.
                member = cluster.find_member(name)
                device = getattr(member.gateway, "wrapped", member.gateway)
                if hasattr(device, "fail"):
                    device.fail()
                    detail = "offline+sessions-lost"
            self.plan.mark_fired(index)
            self.plan.record(InjectedFault(
                spec.kind, cid, name, time=engine.now, detail=detail,
            ))
            if monitor is not None:
                monitor.observe(f"{cid}/{name}", Signal.NODE_DOWN, 1.0,
                                time=engine.now)

        engine.schedule(spec.at_time, down)
        if spec.kind is FaultKind.MEMBER_FLAP:
            def up():
                cluster.bring_online(name)
                self.plan.record(InjectedFault(
                    spec.kind, cid, name, time=engine.now, detail="online",
                ))

            engine.schedule(spec.at_time + spec.down_for, up)
