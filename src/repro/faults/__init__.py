"""Deterministic fault injection for the control plane (§6.1 scenarios).

``repro.faults`` makes the failures the paper's consistency machinery
exists to heal — lost or corrupted table writes, partial tenant
onboards, member crash/flap, stale hot backups — reproducible: a seeded
:class:`FaultPlan` declares the schedule, a :class:`FaultInjector` arms
it onto gateways/controllers/engines, and any existing test or benchmark
runs under the fault schedule without code changes.
"""

from ..core.journal import ControllerCrash
from .injector import (
    FaultInjector,
    FaultyGateway,
    corrupt_binding,
    corrupt_route_action,
)
from .plan import (
    CACHE_KINDS,
    MUTATION_KINDS,
    PHASE_KINDS,
    SCHEDULED_KINDS,
    WRITE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "FaultInjector",
    "FaultyGateway",
    "ControllerCrash",
    "corrupt_route_action",
    "corrupt_binding",
    "WRITE_KINDS",
    "SCHEDULED_KINDS",
    "MUTATION_KINDS",
    "CACHE_KINDS",
    "PHASE_KINDS",
]
