"""Freeze-window packet buffering for live endpoint migration (§DESIGN 11).

While an endpoint moves between hosts there is a short blackout in
which neither the source nor the destination binding may receive
traffic: the source VM is checkpointed, the destination not yet
committed.  Instead of dropping that window's packets, each gateway
carries a :class:`MigrationState` — a set of frozen endpoint keys, a
bounded :class:`MigrationBuffer` parking their packets, and the shadow
(destination) bindings pre-copied before the commit.

The buffer is *capacity*- and *time*-bounded.  Overflow and
past-deadline arrivals are dropped under the dedicated
:class:`~repro.dataplane.gateway_logic.DropReason` members
``MIGRATION_BUFFER_OVERFLOW`` and ``MIGRATION_BLACKOUT``, so counter
conservation still accounts every packet.

>>> from repro.net.packet import Packet
>>> state = MigrationState(capacity=2)
>>> key = (100, 0x0a000001, 4)
>>> state.freeze(key, "m1", now=0.0, deadline=1.0)
>>> state.is_frozen(key)
True
>>> state.abort("m1")
[]
>>> state.is_frozen(key)
False
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.packet import Packet
from .gateway_logic import DropReason, ForwardAction, ForwardResult

#: A frozen endpoint key: ``(vni, inner_dst_ip, ip_version)`` — the same
#: shape the flow cache uses, so one lookup covers both.
EndpointKey = Tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class FrozenEndpoint:
    """One endpoint inside its freeze window."""

    migration_id: str
    opened_at: float
    deadline: float


@dataclass(frozen=True, slots=True)
class ShadowBinding:
    """A pre-copied destination binding, inactive until commit."""

    migration_id: str
    nc_ip: int


@dataclass(slots=True)
class BufferedPacket:
    """One packet parked during a freeze window."""

    migration_id: str
    key: EndpointKey
    packet: Packet
    buffered_at: float


@dataclass
class MigrationBuffer:
    """FIFO packet buffer shared by all freeze windows on one gateway.

    The capacity bound is *total* across concurrent migrations — the
    buffer models finite gateway queue memory, not a per-endpoint
    allowance.
    """

    capacity: int = 256
    _packets: List[BufferedPacket] = field(default_factory=list)
    buffered: int = 0
    overflowed: int = 0
    replayed: int = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def full(self) -> bool:
        return len(self._packets) >= self.capacity

    def push(self, item: BufferedPacket) -> bool:
        """Park one packet; False (and an overflow tally) when full."""
        if self.full:
            self.overflowed += 1
            return False
        self._packets.append(item)
        self.buffered += 1
        return True

    def drain(self, migration_id: str) -> List[BufferedPacket]:
        """Remove and return this migration's packets, FIFO order."""
        mine = [p for p in self._packets if p.migration_id == migration_id]
        if mine:
            self._packets = [p for p in self._packets
                             if p.migration_id != migration_id]
        return mine


class MigrationState:
    """Per-gateway migration bookkeeping: freezes, buffer, shadows."""

    def __init__(self, capacity: int = 256):
        self.buffer = MigrationBuffer(capacity=capacity)
        self.frozen: Dict[EndpointKey, FrozenEndpoint] = {}
        self.shadows: Dict[EndpointKey, ShadowBinding] = {}

    # -- freeze window -------------------------------------------------

    def freeze(self, key: EndpointKey, migration_id: str,
               now: float, deadline: float) -> None:
        self.frozen[key] = FrozenEndpoint(migration_id, now, deadline)

    def unfreeze(self, key: EndpointKey) -> None:
        self.frozen.pop(key, None)

    def is_frozen(self, key: EndpointKey) -> bool:
        return key in self.frozen

    def active(self) -> bool:
        """True while any endpoint is frozen or shadowed (fast-path gate)."""
        return bool(self.frozen or self.shadows)

    # -- shadow bindings ----------------------------------------------

    def install_shadow(self, key: EndpointKey, migration_id: str,
                       nc_ip: int) -> None:
        self.shadows[key] = ShadowBinding(migration_id, nc_ip)

    def clear_shadow(self, key: EndpointKey) -> None:
        self.shadows.pop(key, None)

    # -- packet interception ------------------------------------------

    def intercept(self, packet: Packet, now: float) -> Optional[ForwardResult]:
        """Consult the freeze set for one packet.

        Returns ``None`` when the packet's endpoint is not frozen (the
        normal program runs), a ``BUFFERED`` result when it was parked,
        or a ``DROP`` result when the buffer is full or the freeze
        deadline has passed.
        """
        if not self.frozen or not packet.is_vxlan:
            return None
        key = (packet.vni, packet.inner_dst, packet.inner_version)
        entry = self.frozen.get(key)
        if entry is None:
            return None
        if now > entry.deadline:
            return ForwardResult(ForwardAction.DROP, packet,
                                 detail=DropReason.MIGRATION_BLACKOUT.value)
        if not self.buffer.push(BufferedPacket(entry.migration_id, key,
                                               packet, now)):
            return ForwardResult(
                ForwardAction.DROP, packet,
                detail=DropReason.MIGRATION_BUFFER_OVERFLOW.value)
        return ForwardResult(ForwardAction.BUFFERED, packet,
                             detail="migration-freeze")

    # -- teardown ------------------------------------------------------

    def drain(self, migration_id: str) -> List[BufferedPacket]:
        """The migration's buffered packets, for replay after commit."""
        drained = self.buffer.drain(migration_id)
        self.buffer.replayed += len(drained)
        return drained

    def abort(self, migration_id: str) -> List[BufferedPacket]:
        """Tear down every trace of one migration; returns its buffered
        packets so the caller can replay them through the source path."""
        for key in [k for k, f in self.frozen.items()
                    if f.migration_id == migration_id]:
            del self.frozen[key]
        for key in [k for k, s in self.shadows.items()
                    if s.migration_id == migration_id]:
            del self.shadows[key]
        drained = self.buffer.drain(migration_id)
        self.buffer.replayed += len(drained)
        return drained


def ensure_migration_state(gateway, capacity: int = 256) -> MigrationState:
    """The gateway's :class:`MigrationState`, created on first use.

    Unwraps fault-injection proxies so the state lives on the inner
    gateway object — ``forward`` reads ``self.migration`` there.
    """
    inner = getattr(gateway, "wrapped", gateway)
    state = getattr(inner, "migration", None)
    if state is None:
        state = MigrationState(capacity=capacity)
        inner.migration = state
    return state
