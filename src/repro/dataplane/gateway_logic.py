"""The gateway forwarding semantics, shared by XGW-H and XGW-x86 (§2.1).

Both gateway kinds run the same logical program (Fig. 2):

1. look up the VXLAN routing table with (VNI, inner dst IP), following
   PEER next-hop VNIs until a terminal scope;
2. for LOCAL scope, look up the VM-NC mapping table and rewrite the
   outer destination IP to the hosting server (NC);
3. for SERVICE scope (e.g. SNAT), redirect to the software gateway;
4. for INTERNET / IDC / CROSS_REGION, hand the packet to the uplink.

ACLs, meters and counters run around the routing steps. The hardware
gateway executes this same logic split across pipes (see
:mod:`repro.dataplane.pipeline_program`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..net.flow import FlowKey
from ..net.packet import Packet
from ..tables.acl import AclTable, AclVerdict
from ..tables.errors import MissingEntryError
from ..tables.counter import CounterTable
from ..tables.meter import MeterColor, MeterTable
from ..tables.vm_nc import VmNcTable
from ..tables.vxlan_routing import RoutingLoopError, Scope, VxlanRoutingTable


class ForwardAction(Enum):
    """Terminal outcome of the gateway program for one packet."""

    DELIVER_NC = "deliver-nc"  # rewritten towards the destination VM's server
    REDIRECT_X86 = "redirect-x86"  # needs a software-gateway service
    UPLINK = "uplink"  # leaves the region (Internet / IDC / cross-region)
    DROP = "drop"
    BUFFERED = "buffered"  # parked in a MigrationBuffer during a freeze window


class DropReason(Enum):
    """The one vocabulary for every drop in the region.

    The enum values are the exact strings carried in
    :attr:`ForwardResult.detail`,
    :attr:`~repro.telemetry.trace.PathTrace.drop_reason` and per-reason
    ``drop_<reason>`` counters, so VTrace output, gateway counters and
    audit findings all name a loss identically.

    >>> DropReason.NO_ROUTE.value
    'no-route'
    >>> DropReason.from_detail("no-route") is DropReason.NO_ROUTE
    True
    >>> DropReason.from_detail("mystery") is None
    True
    """

    # Gateway program (hardware and software path alike).
    NOT_VXLAN = "not-vxlan"
    ACL_DENY = "acl-deny"
    METER_RED = "meter-red"
    NO_ROUTE = "no-route"
    PEER_LOOP = "peer-loop"
    NO_VM = "no-vm"
    REDIRECT_RATE_LIMITED = "redirect-rate-limited"
    # SNAT service path (XGW-x86 only).
    NO_SNAT = "no-snat"
    SNAT_NOT_VXLAN = "snat-not-vxlan"
    SNAT_V6_UNSUPPORTED = "snat-v6-unsupported"
    SNAT_POOL_EXHAUSTED = "snat-pool-exhausted"
    SNAT_BAD_RESPONSE = "snat-bad-response"
    SNAT_NO_SESSION = "snat-no-session"
    SNAT_LOST_CONTEXT = "snat-lost-context"
    SNAT_NO_VM = "snat-no-vm"
    # Region-level steering.
    UNASSIGNED_VNI = "unassigned-vni"
    NO_OWNER = "no-owner"
    # Live endpoint migration (freeze window, §DESIGN 11).
    MIGRATION_BUFFER_OVERFLOW = "migration-buffer-overflow"
    MIGRATION_BLACKOUT = "migration-blackout"
    # DPU tier (§DESIGN 12): the device holds no state for the packet —
    # a steering miss or a full session table. Counted as a drop *at the
    # DPU* (so per-device conservation holds); the steering layer
    # re-offers the packet to x86, the universal fallback tier.
    DPU_TABLE_MISS = "dpu-table-miss"

    @classmethod
    def from_detail(cls, detail: str) -> Optional["DropReason"]:
        """The enum member for a drop detail string, or None when the
        detail is not a known drop reason (e.g. a route target)."""
        return _DETAIL_TO_REASON.get(detail)

    @property
    def counter(self) -> str:
        """The per-reason counter name (``drop_<reason>`` with dashes
        folded to underscores, matching the ``action_*`` convention)."""
        return _REASON_COUNTERS[self]


_DETAIL_TO_REASON = {reason.value: reason for reason in DropReason}
_REASON_COUNTERS = {
    reason: f"drop_{reason.value.replace('-', '_')}" for reason in DropReason
}


def count_drop(counters, detail: str) -> None:
    """Charge one drop with *detail* to its per-reason counter (unknown
    details fall into ``drop_other`` so conservation still holds)."""
    reason = _DETAIL_TO_REASON.get(detail)
    counters.add(_REASON_COUNTERS[reason] if reason is not None else "drop_other")


def count_drops(counters, details) -> None:
    """Charge a whole burst's ``{detail: count}`` drop histogram in one
    flush — the batch analogue of :func:`count_drop`, with identical
    final counter state (including the ``drop_other`` fallback).

    >>> from repro.telemetry.stats import CounterSet
    >>> counters = CounterSet()
    >>> count_drops(counters, {"no-route": 3, "mystery": 1})
    >>> counters["drop_no_route"], counters["drop_other"]
    (3, 1)
    """
    reason_of = _DETAIL_TO_REASON.get
    for detail, count in details.items():
        reason = reason_of(detail)
        counters.add(
            _REASON_COUNTERS[reason] if reason is not None else "drop_other", count
        )


#: Interned ``("vni", <vni>)`` counter/meter keys. The forwarding program
#: charges two table keys per packet; building the tuple twice per packet
#: is measurable at Mpps, so the keys are allocated once per VNI instead.
_VNI_KEYS: dict = {}


def vni_key(vni: int) -> tuple:
    """The interned counter/meter key for one VNI."""
    key = _VNI_KEYS.get(vni)
    if key is None:
        key = _VNI_KEYS[vni] = ("vni", vni)
    return key


@dataclass(frozen=True, slots=True)
class ForwardResult:
    """Outcome + (possibly rewritten) packet + diagnostic detail."""

    action: ForwardAction
    packet: Packet
    detail: str = ""
    resolved_vni: Optional[int] = None
    nc_ip: Optional[int] = None


@dataclass
class GatewayTables:
    """The table bundle one gateway forwards with."""

    routing: VxlanRoutingTable = field(default_factory=VxlanRoutingTable)
    vm_nc: VmNcTable = field(default_factory=VmNcTable)
    acl: AclTable = field(default_factory=AclTable)
    meters: MeterTable = field(default_factory=MeterTable)
    counters: CounterTable = field(default_factory=CounterTable)


def inner_flow_key(packet: Packet) -> FlowKey:
    """The inner 5-tuple as a :class:`FlowKey`."""
    src, dst, proto, sport, dport = packet.inner.five_tuple()
    return FlowKey(src, dst, proto, sport, dport, version=packet.inner_version)


def forward(
    tables: GatewayTables,
    packet: Packet,
    gateway_ip: int,
    now: float = 0.0,
) -> ForwardResult:
    """Run the full gateway program on one VXLAN packet.

    >>> # see examples/quickstart.py for an end-to-end walkthrough
    """
    if not packet.is_vxlan:
        return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.NOT_VXLAN.value)

    vni = packet.vni
    key = vni_key(vni)
    size = packet.wire_length()
    flow = inner_flow_key(packet)
    tables.counters.count(key, size)

    if tables.acl.evaluate(vni, flow) is AclVerdict.DENY:
        return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.ACL_DENY.value)

    if tables.meters.charge(key, now, size) is MeterColor.RED:
        return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.METER_RED.value)

    try:
        resolution = tables.routing.resolve(vni, packet.inner_dst, packet.inner_version)
    except MissingEntryError:
        return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.NO_ROUTE.value)
    except RoutingLoopError:
        return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.PEER_LOOP.value)

    scope = resolution.action.scope
    if scope is Scope.LOCAL:
        binding = tables.vm_nc.lookup(resolution.vni, packet.inner_dst, packet.inner_version)
        if binding is None:
            return ForwardResult(
                ForwardAction.DROP, packet, detail=DropReason.NO_VM.value, resolved_vni=resolution.vni
            )
        out = packet
        if resolution.vni != vni:
            out = out.with_vni(resolution.vni)
        out = out.with_outer_src(gateway_ip).with_outer_dst(binding.nc_ip)
        return ForwardResult(
            ForwardAction.DELIVER_NC,
            out,
            detail="local",
            resolved_vni=resolution.vni,
            nc_ip=binding.nc_ip,
        )

    if scope is Scope.SERVICE:
        return ForwardResult(
            ForwardAction.REDIRECT_X86,
            packet,
            detail=resolution.action.target or "service",
            resolved_vni=resolution.vni,
        )

    # INTERNET / IDC / CROSS_REGION all leave through an uplink.
    return ForwardResult(
        ForwardAction.UPLINK,
        packet,
        detail=resolution.action.target or scope.value,
        resolved_vni=resolution.vni,
    )
