"""Stateful services on the software gateway — SNAT (§4.2, Fig. 11).

The switch cannot hold the O(100M)-entry SNAT session table, so XGW-H
tags SNAT-bound traffic (SERVICE scope) and redirects it to XGW-x86.
This module implements both directions:

* **request** (red arrow in Fig. 11): VM -> Internet. The VXLAN tunnel
  is removed, the inner source IP/port are rewritten to an allocated
  public IP/port, and the packet leaves as plain IP.
* **response** (blue arrow): Internet -> public IP. The session is found
  by reverse lookup, the original VM addressing restored, the packet
  re-encapsulated toward the VM's NC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..net.flow import FlowKey
from ..net.headers import Ethernet, HeaderError
from ..net.packet import InnerFrame, Packet
from ..tables.errors import TableFullError
from ..tables.snat import SnatSession, SnatTable
from .gateway_logic import (
    DropReason,
    ForwardAction,
    ForwardResult,
    GatewayTables,
    inner_flow_key,
)


@dataclass
class _SessionContext:
    """What the response path needs that the 5-tuple alone cannot supply."""

    vni: int
    inner_eth: Ethernet


class SnatService:
    """SNAT request/response handling bound to one gateway's tables."""

    def __init__(self, snat: SnatTable, tables: GatewayTables, gateway_ip: int):
        self.snat = snat
        self.tables = tables
        self.gateway_ip = gateway_ip
        self._contexts: Dict[FlowKey, _SessionContext] = {}
        self.requests = 0
        self.responses = 0
        self.failures = 0

    def handle_request(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """VM -> Internet: decap, translate source, emit plain IP."""
        if not packet.is_vxlan:
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_NOT_VXLAN.value)
        flow = inner_flow_key(packet)
        if flow.version != 4:
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_V6_UNSUPPORTED.value)
        try:
            session = self.snat.translate(flow, now)
        except TableFullError:
            self.failures += 1
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_POOL_EXHAUSTED.value)
        self._contexts.setdefault(
            flow, _SessionContext(vni=packet.vni, inner_eth=packet.inner.eth)
        )
        plain = packet.decap()
        plain = replace(
            plain,
            ip=plain.ip.replace_src(session.public_ip),
            l4=plain.l4.replace_src_port(session.public_port) if plain.l4 is not None else None,
        )
        self.requests += 1
        return ForwardResult(ForwardAction.UPLINK, plain, detail="snat-request")

    def handle_response(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """Internet -> VM: reverse-translate and re-encapsulate to the NC."""
        if packet.is_vxlan or packet.l4 is None:
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_BAD_RESPONSE.value)
        session = self.snat.reverse(
            public_ip=packet.ip.dst,
            public_port=packet.l4.dst_port,
            remote_ip=packet.ip.src,
            remote_port=packet.l4.src_port,
            proto=packet.ip.proto,
        )
        if session is None:
            self.failures += 1
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_NO_SESSION.value)
        session.touch(now)
        context = self._contexts.get(session.flow)
        if context is None:
            self.failures += 1
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_LOST_CONTEXT.value)

        binding = self.tables.vm_nc.lookup(context.vni, session.flow.src_ip, 4)
        if binding is None:
            self.failures += 1
            return ForwardResult(ForwardAction.DROP, packet, detail=DropReason.SNAT_NO_VM.value)

        restored_l4 = None
        if packet.l4 is not None:
            # Restore the VM's original destination port on the way back.
            if hasattr(packet.l4, "dst_port"):
                restored_l4 = type(packet.l4)(
                    src_port=packet.l4.src_port,
                    dst_port=session.flow.src_port,
                )
        inner_ip = packet.ip.replace_dst(session.flow.src_ip)
        # Swap the original inner Ethernet for the return direction.
        inner_eth = Ethernet(
            dst=context.inner_eth.src,
            src=context.inner_eth.dst,
            ethertype=context.inner_eth.ethertype,
        )
        inner = InnerFrame(eth=inner_eth, ip=inner_ip, l4=restored_l4, payload=packet.payload)
        encapped = Packet.vxlan_encap(
            inner,
            outer_eth=packet.eth,
            outer_src=self.gateway_ip,
            outer_dst=binding.nc_ip,
            vni=context.vni,
        )
        self.responses += 1
        return ForwardResult(
            ForwardAction.DELIVER_NC,
            encapped,
            detail="snat-response",
            resolved_vni=context.vni,
            nc_ip=binding.nc_ip,
        )

    def rewrite_endpoint(self, old_ip: int, new_ip: int):
        """Migrate every session (and its response-path context) of
        inner source *old_ip* to *new_ip*, keeping the public tuples.
        Returns the ``(old_flow, new_flow)`` pairs; all-or-nothing."""
        pairs = self.snat.rewrite_source(old_ip, new_ip)
        for old_flow, new_flow in pairs:
            context = self._contexts.pop(old_flow, None)
            if context is not None:
                self._contexts[new_flow] = context
        return pairs

    def expire(self, now: float) -> int:
        """Expire idle sessions and their contexts; returns the count."""
        before = set(self._contexts)
        count = self.snat.expire_idle(now)
        for flow in before:
            if self.snat.lookup(flow) is None:
                self._contexts.pop(flow, None)
        return count
