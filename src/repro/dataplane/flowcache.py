"""Flow-cache fast path: cache the terminal decision, not the walk.

A production DPDK gateway survives at ~1 Mpps/core only because it does
*not* run the full table program per packet: the first packet of a flow
walks ACL + meters + VXLAN routing (with PEER chains) + VM-NC, and the
terminal decision is cached so every later packet is one exact-match
lookup plus the per-packet stateful work. This module gives the
simulated XGW-x86 the same split.

**What is cached** — the resolved terminal decision for a
``(VNI, inner dst IP, IP version)`` key: the forward action, resolved
VNI, NC IP and the outer-header rewrite recipe. Negative decisions
(``no-route``, ``peer-loop``, ``no-vm``) are cached too; they are just
as deterministic given the table state.

**What must never be cached** — anything per-packet stateful or
per-flow dependent:

* counters and meters charge every packet (a meter can flip a cached
  flow to ``meter-red`` at any time);
* ACL verdicts depend on the full 5-tuple, not the cache key, so rules
  are still evaluated per packet — *except* when the ACL table was empty
  with a PERMIT default at capture time, which the entry records as
  ``acl_bypass`` (and the ACL generation guard keeps honest);
* SNAT state (the XGW-x86 service layer re-runs on every redirect hit).

**Generation-based invalidation** — every mutable table the decision
reads (:class:`~repro.tables.vxlan_routing.VxlanRoutingTable`,
:class:`~repro.tables.vm_nc.VmNcTable`,
:class:`~repro.tables.acl.AclTable`) carries a monotonically increasing
``generation`` bumped on every insert/remove. An entry captures the
three-tuple *generation vector* at resolution time and is valid only
while the live vector is identical. Any mutation — controller repairs,
transactional migrations, offload steering — silently invalidates every
older entry with no invalidation plumbing, and correctness survives
arbitrary update interleavings (property-tested against a never-cached
oracle).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..net.headers import VXLAN
from ..net.packet import Packet, _ip_len, _l4_len
from ..tables.acl import AclVerdict
from ..tables.meter import MeterColor
from .gateway_logic import (
    ForwardAction,
    ForwardResult,
    GatewayTables,
    forward,
    inner_flow_key,
    vni_key,
)

#: Default entry bound: roughly one DPDK box's flow-cache budget.
DEFAULT_CAPACITY = 65536

#: Slow-path details that depend on per-packet state and so must never
#: produce a cache entry.
_UNCACHEABLE_DETAILS = frozenset({"acl-deny", "meter-red"})

#: Fixed wire bytes of a VXLAN packet outside the two IP headers, the
#: inner L4 and the inner payload: outer Ethernet + outer UDP + VXLAN
#: header + inner Ethernet. Used to inline
#: :meth:`~repro.net.packet.Packet.wire_length` in the batch hit loop.
_VXLAN_FIXED_LEN = 14 + 8 + 8 + 14


class CacheEntry:
    """One cached terminal decision (``__slots__``: allocated per miss,
    compared per hit)."""

    __slots__ = ("action", "detail", "resolved_vni", "nc_ip", "rewrite_vni",
                 "generations", "acl_bypass", "outer_in", "outer_out",
                 "vx_flags", "vx_out")

    def __init__(self, action: ForwardAction, detail: str,
                 resolved_vni: Optional[int], nc_ip: Optional[int],
                 rewrite_vni: Optional[int],
                 generations: Tuple[int, int, int], acl_bypass: bool,
                 outer_in=None, outer_out=None, vx_flags=None, vx_out=None):
        self.action = action
        self.detail = detail
        self.resolved_vni = resolved_vni
        self.nc_ip = nc_ip
        #: VNI to write into the outgoing packet, or None when unchanged.
        self.rewrite_vni = rewrite_vni
        #: (routing, vm_nc, acl) generations captured at resolution time.
        self.generations = generations
        #: True when the ACL table provably permits every flow (empty +
        #: PERMIT default at capture; guarded by the ACL generation).
        self.acl_bypass = acl_bypass
        #: Rewrite template (DELIVER_NC only): the outer IP header seen at
        #: capture and its rewritten form, plus the rewritten VXLAN header
        #: guarded by the captured flags. A hit whose outer header equals
        #: the template's input reuses the prebuilt immutable headers
        #: instead of re-deriving them — the DPDK trick of storing the
        #: rewrite *result*, not the rewrite *procedure*.
        self.outer_in = outer_in
        self.outer_out = outer_out
        self.vx_flags = vx_flags
        self.vx_out = vx_out


class FlowCache:
    """Exact-match, LRU-bounded cache of terminal forwarding decisions.

    >>> cache = FlowCache(capacity=2)
    >>> cache.capacity
    2
    >>> cache.hit_rate
    0.0
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- core ---------------------------------------------------------------

    def lookup(self, key: tuple, generations: Tuple[int, int, int]) -> Optional[CacheEntry]:
        """The live entry for *key*, or None on miss/stale (stale entries
        are dropped so the following insert re-captures them)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.generations != generations:
            del self._entries[key]
            self.stale += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(self, key: tuple, entry: CacheEntry) -> None:
        entries = self._entries
        entries[key] = entry
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def items(self):
        """Readback of ``(key, entry)`` pairs in LRU order (oldest first)
        — the audit's coherence sweep recomputes each cached decision
        against the live tables without disturbing recency or counters."""
        return list(self._entries.items())

    # -- telemetry ----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction — high values signal a skewed (cache-
        friendly) workload, which the heavy-hitter detector reads as
        corroboration that a small hot set dominates."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """Snapshot of the cache's telemetry counters."""
        return {
            "flowcache_hits": self.hits,
            "flowcache_misses": self.misses,
            "flowcache_evictions": self.evictions,
            "flowcache_stale": self.stale,
        }


def _capture(result: ForwardResult, packet: Packet,
             tables: GatewayTables,
             generations: Tuple[int, int, int]) -> Optional[CacheEntry]:
    """Build the cache entry for a slow-path result, or None when the
    result depended on per-packet state (ACL/meter verdicts)."""
    if result.detail in _UNCACHEABLE_DETAILS:
        return None
    rewrite_vni = None
    outer_in = outer_out = vx_flags = vx_out = None
    if result.action is ForwardAction.DELIVER_NC:
        if result.resolved_vni != packet.vni:
            rewrite_vni = result.resolved_vni
        # The slow path just derived the rewritten headers — keep them as
        # the entry's rewrite template.
        outer_in = packet.ip
        outer_out = result.packet.ip
        vx_flags = packet.vxlan.flags
        vx_out = result.packet.vxlan
    acl = tables.acl
    acl_bypass = len(acl) == 0 and acl.default_verdict is AclVerdict.PERMIT
    return CacheEntry(result.action, result.detail, result.resolved_vni,
                      result.nc_ip, rewrite_vni, generations, acl_bypass,
                      outer_in, outer_out, vx_flags, vx_out)


def forward_cached(
    tables: GatewayTables,
    cache: FlowCache,
    packet: Packet,
    gateway_ip: int,
    now: float = 0.0,
) -> ForwardResult:
    """The fast path: one cache lookup instead of the full table walk.

    Byte-identical to :func:`~repro.dataplane.gateway_logic.forward` for
    every packet (differentially tested): counters and meters still
    charge per packet, ACLs still evaluate per packet unless provably
    pass-all, and a hit only replays the cached rewrite recipe.
    """
    if not packet.is_vxlan:
        return ForwardResult(ForwardAction.DROP, packet, detail="not-vxlan")
    vni = packet.vni
    generations = (tables.routing.generation, tables.vm_nc.generation,
                   tables.acl.generation)
    key = (vni, packet.inner_dst, packet.inner_version)
    entry = cache.lookup(key, generations)
    if entry is None:
        result = forward(tables, packet, gateway_ip, now)
        captured = _capture(result, packet, tables, generations)
        if captured is not None:
            cache.insert(key, captured)
        return result

    # Per-packet stateful work, in slow-path order: counter, ACL, meter.
    kvni = vni_key(vni)
    size = packet.wire_length()
    tables.counters.count(kvni, size)
    if not entry.acl_bypass and (
            tables.acl.evaluate(vni, inner_flow_key(packet)) is AclVerdict.DENY):
        return ForwardResult(ForwardAction.DROP, packet, detail="acl-deny")
    if tables.meters.charge(kvni, now, size) is MeterColor.RED:
        return ForwardResult(ForwardAction.DROP, packet, detail="meter-red")

    action = entry.action
    if action is ForwardAction.DELIVER_NC:
        out = packet.rewritten(gateway_ip, entry.nc_ip, vni=entry.rewrite_vni)
        return ForwardResult(action, out, detail=entry.detail,
                             resolved_vni=entry.resolved_vni, nc_ip=entry.nc_ip)
    return ForwardResult(action, packet, detail=entry.detail,
                         resolved_vni=entry.resolved_vni, nc_ip=entry.nc_ip)


def forward_cached_batch(
    tables: GatewayTables,
    cache: FlowCache,
    packets,
    gateway_ip: int,
    now: float = 0.0,
) -> list:
    """Batched fast path: ``[forward_cached(...) for p in packets]`` with
    the per-packet dispatch amortised across the burst.

    Safe amortisations (final table/counter state is identical to the
    per-packet loop — differentially tested):

    * the generation vector is read once — nothing inside the burst
      mutates the control-plane tables, so it cannot change mid-batch;
    * per-VNI counter charges accumulate locally and settle through
      :meth:`~repro.tables.counter.CounterTable.count_batch`;
    * when the meter table is empty, per-packet charges (each a dict
      miss passing GREEN) collapse into one
      :meth:`~repro.tables.meter.MeterTable.pass_unmetered` update —
      with any meter configured, charges stay strictly per packet;
    * cache hit/miss/stale tallies are folded in once at the end.
    """
    generations = (tables.routing.generation, tables.vm_nc.generation,
                   tables.acl.generation)
    entries = cache._entries
    entries_get = entries.get
    move_to_end = entries.move_to_end
    acl = tables.acl
    acl_evaluate = acl.evaluate
    meters = tables.meters
    meter_per_packet = len(meters) > 0
    meters_charge = meters.charge
    deliver = ForwardAction.DELIVER_NC
    drop = ForwardAction.DROP
    red = MeterColor.RED
    deny = AclVerdict.DENY
    hits = misses = stale = unmetered_green = 0
    counts: dict = {}  # vni -> [packets, bytes], flushed per batch
    results = []
    append = results.append
    for packet in packets:
        vxlan = packet.vxlan
        if vxlan is None:
            append(ForwardResult(drop, packet, detail="not-vxlan"))
            continue
        vni = vxlan.vni
        inner = packet.inner
        inner_ip = inner.ip
        key = (vni, inner_ip.dst, inner_ip.version)
        entry = entries_get(key)
        if entry is None or entry.generations != generations:
            if entry is not None:
                del entries[key]
                stale += 1
            misses += 1
            result = forward(tables, packet, gateway_ip, now)
            captured = _capture(result, packet, tables, generations)
            if captured is not None:
                cache.insert(key, captured)
            append(result)
            continue
        move_to_end(key)
        hits += 1
        # == packet.wire_length(), with the VXLAN-invariant parts folded.
        size = (_VXLAN_FIXED_LEN + _ip_len(packet.ip) + _ip_len(inner_ip)
                + _l4_len(inner.l4) + len(inner.payload))
        acc = counts.get(vni)
        if acc is None:
            counts[vni] = [1, size]
        else:
            acc[0] += 1
            acc[1] += size
        if not entry.acl_bypass and (
                acl_evaluate(vni, inner_flow_key(packet)) is deny):
            append(ForwardResult(drop, packet, detail="acl-deny"))
            continue
        if meter_per_packet:
            if meters_charge(vni_key(vni), now, size) is red:
                append(ForwardResult(drop, packet, detail="meter-red"))
                continue
        else:
            unmetered_green += 1
        action = entry.action
        if action is deliver:
            # Rewrite via the entry's template: equal input headers yield
            # equal (immutable, shareable) output headers.
            pip = packet.ip
            if pip is entry.outer_in or pip == entry.outer_in:
                new_ip = entry.outer_out
            else:
                new_ip = pip.replace_src_dst(gateway_ip, entry.nc_ip)
            if entry.rewrite_vni is None:
                vx = vxlan
            elif vxlan.flags == entry.vx_flags:
                vx = entry.vx_out
            else:
                vx = VXLAN(vni=entry.rewrite_vni, flags=vxlan.flags)
            out = Packet(eth=packet.eth, ip=new_ip, l4=packet.l4,
                         vxlan=vx, inner=inner, payload=packet.payload)
            append(ForwardResult(action, out, detail=entry.detail,
                                 resolved_vni=entry.resolved_vni,
                                 nc_ip=entry.nc_ip))
        else:
            append(ForwardResult(action, packet, detail=entry.detail,
                                 resolved_vni=entry.resolved_vni,
                                 nc_ip=entry.nc_ip))
    cache.hits += hits
    cache.misses += misses
    cache.stale += stale
    counters_batch = tables.counters.count_batch
    for vni, (n, total) in counts.items():
        counters_batch(vni_key(vni), n, total)
    if unmetered_green:
        meters.pass_unmetered(unmetered_green)
    return results
