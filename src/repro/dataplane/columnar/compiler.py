"""BatchCompiler: lower the placed gateway program to columnar steps.

The scalar data plane interprets one packet at a time: every packet
re-walks ACL rules, meter buckets, the VXLAN routing table (with PEER
chains) and the VM-NC mapping. This module compiles a gateway's table
bundle into a :class:`CompiledProgram` — a flat sequence of match-action
stages executed over a whole :class:`~repro.dataplane.columnar.batch.
PacketBatch` — the "Packet Transactions" guarded pipeline lowered to
array operations instead of ALUs:

1. **classify** — the ACL table becomes a :class:`CompiledAcl`: on the
   numpy backend each rule is one predicate mask ANDed from per-column
   compares (128-bit addresses split into two uint64 half-compares) and
   applied first-match over the still-undecided lanes; the pure-python
   backend runs the same first-match scan per lane.
2. **meter** — per-key token buckets charge their lanes as one run in
   lane order (bucket state depends only on its own ordered charge
   sequence); VNIs with no bucket settle GREEN in a single update.
3. **decide** — terminal decisions (routing resolution incl. PEER
   chains + VM-NC lookup) are computed once per unique
   ``(VNI, inner dst, version)`` key and memoized for the program's
   lifetime; the memo is discarded with the program when any table
   generation moves.
4. **assemble** — decisions scatter-gather back into per-lane
   :class:`~repro.dataplane.gateway_logic.ForwardResult` objects, with
   DELIVER rewrites replayed from a captured header template
   (identical input headers yield identical — shared, immutable —
   output headers, the flow cache's rewrite-result trick).

Per-packet verdicts (ACL deny, meter red) are never memoized; counters
and meters settle to byte-identical state vs the scalar oracle
(property-tested in ``tests/dataplane/test_columnar_differential.py``).

>>> from repro.dataplane.gateway_logic import GatewayTables
>>> from repro.dataplane.columnar.backend import resolve_backend
>>> from repro.dataplane.columnar.batch import PacketBatch
>>> from repro.workloads.traffic import build_vxlan_packet
>>> tables = GatewayTables()
>>> program = BatchCompiler(tables, gateway_ip=0x0A0000FE).compile()
>>> batch = PacketBatch.from_packets(
...     [build_vxlan_packet(vni=9, src_ip=1, dst_ip=2)],
...     resolve_backend("python"))
>>> results, tally = program.execute(batch)
>>> results[0].detail, tally.drop_details
('no-route', {'no-route': 1})
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...net.headers import VXLAN
from ...net.packet import Packet
from ...tables.acl import AclVerdict
from ...tables.errors import MissingEntryError
from ...tables.meter import MeterColor
from ...tables.vxlan_routing import RoutingLoopError, Scope
from ..gateway_logic import ForwardAction, ForwardResult, GatewayTables, vni_key
from .batch import PacketBatch

_DROP = ForwardAction.DROP
_DELIVER = ForwardAction.DELIVER_NC
_REDIRECT = ForwardAction.REDIRECT_X86
_UPLINK = ForwardAction.UPLINK

_MASK64 = (1 << 64) - 1

#: Per-lane fate codes assigned by the per-packet stages. 0 keeps the
#: lane on its key decision; the rest are per-packet drops that must
#: never be memoized.
_FATE_PASS = 0
_FATE_NOT_VXLAN = 1
_FATE_ACL_DENY = 2
_FATE_METER_RED = 3
_FATE_REDIRECT_LIMITED = 4

_FATE_DETAILS = {
    _FATE_NOT_VXLAN: "not-vxlan",
    _FATE_ACL_DENY: "acl-deny",
    _FATE_METER_RED: "meter-red",
    _FATE_REDIRECT_LIMITED: "redirect-rate-limited",
}

#: Bridge overhead of the folded XGW-H program, derived from the same
#: field widths :class:`~repro.dataplane.pipeline_program.XgwHProgram`
#: declares (resolved_vni 24b + scope 3b, then + nc_ip 32b), rounded up
#: to bytes exactly as :attr:`repro.tofino.phv.Bridge.wire_overhead_bytes`.
_BRIDGE1_BYTES = (24 + 3 + 7) // 8
_BRIDGE23_BYTES = (24 + 3 + 32 + 7) // 8


class KeyDecision:
    """The memoized terminal decision for one (VNI, dst, version) key.

    Mirrors :class:`~repro.dataplane.flowcache.CacheEntry`, with the
    rewrite template captured lazily on the first :meth:`build` and a
    prototype (packet, result) pair so replayed bursts of interned
    packets reuse the frozen result object instead of re-allocating it.
    """

    __slots__ = ("action", "detail", "resolved_vni", "nc_ip", "rewrite_vni",
                 "outer_in", "outer_out", "vx_flags", "vx_out",
                 "proto_packet", "proto_result")

    def __init__(self):
        self.action: Optional[ForwardAction] = None
        self.detail = ""
        self.resolved_vni: Optional[int] = None
        self.nc_ip: Optional[int] = None
        self.rewrite_vni: Optional[int] = None
        self.outer_in = None
        self.outer_out = None
        self.vx_flags: Optional[int] = None
        self.vx_out = None
        self.proto_packet: Optional[Packet] = None
        self.proto_result: Optional[ForwardResult] = None

    def build(self, packet: Packet, gateway_ip: int, hw: bool) -> ForwardResult:
        """The ForwardResult for *packet* under this decision.

        *hw* selects the XGW-H result shape (no ``resolved_vni``,
        DELIVER detail fixed to ``"local"``) vs the XGW-x86 one.
        """
        action = self.action
        if action is _DELIVER:
            pip = packet.ip
            outer_in = self.outer_in
            if pip is outer_in or pip == outer_in:
                new_ip = self.outer_out
            else:
                new_ip = pip.replace_src_dst(gateway_ip, self.nc_ip)
                if outer_in is None:
                    self.outer_in = pip
                    self.outer_out = new_ip
            vxlan = packet.vxlan
            if self.rewrite_vni is not None:
                flags = vxlan.flags
                if flags == self.vx_flags:
                    vxlan = self.vx_out
                else:
                    new_vx = VXLAN(vni=self.rewrite_vni, flags=flags)
                    if self.vx_flags is None:
                        self.vx_flags = flags
                        self.vx_out = new_vx
                    vxlan = new_vx
            out = Packet(eth=packet.eth, ip=new_ip, l4=packet.l4,
                         vxlan=vxlan, inner=packet.inner,
                         payload=packet.payload)
            if hw:
                result = ForwardResult(action, out, detail="local",
                                       nc_ip=self.nc_ip)
            else:
                result = ForwardResult(action, out, detail=self.detail,
                                       resolved_vni=self.resolved_vni,
                                       nc_ip=self.nc_ip)
        elif hw:
            result = ForwardResult(action, packet, detail=self.detail)
        else:
            result = ForwardResult(action, packet, detail=self.detail,
                                   resolved_vni=self.resolved_vni,
                                   nc_ip=self.nc_ip)
        if self.proto_packet is None:
            self.proto_packet = packet
            self.proto_result = result
        return result


class CompiledAcl:
    """The ACL table lowered to first-match predicate masks.

    On a vectorized backend each rule becomes one boolean mask built
    from per-column compares; DENY masks accumulate, every matched lane
    leaves the undecided set (first-match). The pure-python backend
    runs the identical first-match scan lane by lane. Both return
    ``(deny_lanes, matched)`` with *matched* equal to the number of
    lanes any rule claimed — the table's ``matched`` telemetry.
    """

    __slots__ = ("rules", "default_deny")

    def __init__(self, rules, default_deny: bool):
        self.rules = rules
        self.default_deny = default_deny

    def classify(self, batch: PacketBatch) -> Tuple[List[int], int]:
        if batch.backend.vectorized:
            return self._classify_vector(batch)
        return self._classify_lanes(batch)

    def _classify_vector(self, batch: PacketBatch) -> Tuple[List[int], int]:
        np = batch.backend.np
        u64 = np.uint64
        undecided = batch.vxlan_mask.copy()
        deny = None
        for rule in self.rules:
            m = undecided
            if rule.vni is not None:
                m = m & (batch.vni_col == rule.vni)
            net = rule.src_net
            if net is not None:
                network, mask = net
                # (addr & mask) == network decomposes exactly into the
                # two uint64 halves (bitwise AND has no carries).
                m = (m
                     & ((batch.src_hi & u64((mask >> 64) & _MASK64))
                        == u64((network >> 64) & _MASK64))
                     & ((batch.src_lo & u64(mask & _MASK64))
                        == u64(network & _MASK64)))
            net = rule.dst_net
            if net is not None:
                network, mask = net
                m = (m
                     & ((batch.dst_hi & u64((mask >> 64) & _MASK64))
                        == u64((network >> 64) & _MASK64))
                     & ((batch.dst_lo & u64(mask & _MASK64))
                        == u64(network & _MASK64)))
            if rule.proto is not None:
                m = m & (batch.proto_col == rule.proto)
            ports = rule.src_ports
            if ports is not None:
                m = m & (batch.sport_col >= ports[0]) & (batch.sport_col <= ports[1])
            ports = rule.dst_ports
            if ports is not None:
                m = m & (batch.dport_col >= ports[0]) & (batch.dport_col <= ports[1])
            if rule.verdict is AclVerdict.DENY:
                deny = m if deny is None else (deny | m)
            undecided = undecided & ~m
            if not undecided.any():
                break
        matched = batch.vxlan_count - int(np.count_nonzero(undecided))
        if self.default_deny:
            deny = undecided if deny is None else (deny | undecided)
        if deny is None or not deny.any():
            return [], matched
        return np.nonzero(deny)[0].tolist(), matched

    def _classify_lanes(self, batch: PacketBatch) -> Tuple[List[int], int]:
        deny_lanes: List[int] = []
        deny_append = deny_lanes.append
        matched = 0
        keys = batch.keys
        src = batch.src_list
        dst = batch.dst_list
        proto = batch.proto_list
        sport = batch.sport_list
        dport = batch.dport_list
        rules = self.rules
        default_deny = self.default_deny
        deny_verdict = AclVerdict.DENY
        for i, key in enumerate(keys):
            if key is None:
                continue
            vni = key[0]
            for rule in rules:
                if rule.vni is not None and rule.vni != vni:
                    continue
                net = rule.src_net
                if net is not None and (src[i] & net[1]) != net[0]:
                    continue
                net = rule.dst_net
                if net is not None and (dst[i] & net[1]) != net[0]:
                    continue
                if rule.proto is not None and rule.proto != proto[i]:
                    continue
                ports = rule.src_ports
                if ports is not None and not (ports[0] <= sport[i] <= ports[1]):
                    continue
                ports = rule.dst_ports
                if ports is not None and not (ports[0] <= dport[i] <= ports[1]):
                    continue
                matched += 1
                if rule.verdict is deny_verdict:
                    deny_append(i)
                break
            else:
                if default_deny:
                    deny_append(i)
        return deny_lanes, matched


class BatchTally:
    """Burst-level bookkeeping the gateway wrapper applies in one flush:
    per-action counts, per-reason drop counts, the lanes needing SNAT
    service (x86), and the hw profile's pipe/bridge aggregates."""

    __slots__ = ("actions", "drop_details", "snat_lanes",
                 "pipe_packets", "bridged_bytes")

    def __init__(self):
        self.actions: Dict[ForwardAction, int] = {}
        self.drop_details: Dict[str, int] = {}
        self.snat_lanes: List[int] = []
        self.pipe_packets: Optional[dict] = None
        self.bridged_bytes = 0


class CompiledProgram:
    """One gateway's placed program, compiled for whole-burst execution.

    Valid only while :attr:`generations` equals the live table
    generation vector — the owner recompiles (dropping the key memo and
    rewrite templates) whenever any guarded table mutates, exactly like
    a stale flow-cache entry.
    """

    __slots__ = ("tables", "gateway_ip", "generations", "classifier",
                 "split_vm_nc", "hw", "watch_snat", "memo")

    def __init__(self, tables: GatewayTables, gateway_ip: int,
                 generations: tuple, classifier: Optional[CompiledAcl],
                 split_vm_nc=None, watch_snat: bool = False):
        self.tables = tables
        self.gateway_ip = gateway_ip
        self.generations = generations
        self.classifier = classifier
        self.split_vm_nc = split_vm_nc
        self.hw = split_vm_nc is not None
        self.watch_snat = watch_snat
        self.memo: Dict[tuple, KeyDecision] = {}

    # -- decide (once per unique key) -----------------------------------

    def _resolve_keys(self, keys: List[tuple]) -> None:
        """Memoize decisions for *keys* via the bulk table helpers."""
        tables = self.tables
        memo = self.memo
        local: List[tuple] = []
        for key, res in zip(keys, tables.routing.resolve_many(keys)):
            d = KeyDecision()
            memo[key] = d
            if isinstance(res, MissingEntryError):
                d.action = _DROP
                d.detail = "no-route"
                continue
            if isinstance(res, RoutingLoopError):
                d.action = _DROP
                d.detail = "peer-loop"
                continue
            scope = res.action.scope
            if scope is Scope.LOCAL:
                local.append((key, res, d))
            elif scope is Scope.SERVICE:
                d.action = _REDIRECT
                d.detail = res.action.target or "service"
                d.resolved_vni = res.vni
            else:
                d.action = _UPLINK
                d.detail = res.action.target or scope.value
                d.resolved_vni = res.vni
        if not local:
            return
        if self.hw:
            split = self.split_vm_nc
            bindings = [split.lookup(res.vni, key[1], key[2])
                        for key, res, _d in local]
        else:
            bindings = tables.vm_nc.lookup_many(
                [(res.vni, key[1], key[2]) for key, res, _d in local])
        for (key, res, d), binding in zip(local, bindings):
            if binding is None:
                d.action = _DROP
                d.detail = "no-vm"
                d.resolved_vni = res.vni
            else:
                d.action = _DELIVER
                d.detail = "local"
                d.resolved_vni = res.vni
                d.nc_ip = binding.nc_ip
                if res.vni != key[0]:
                    d.rewrite_vni = res.vni

    # -- execute --------------------------------------------------------

    def execute(self, batch: PacketBatch, now: float = 0.0
                ) -> Tuple[List[ForwardResult], BatchTally]:
        """Run the compiled stages over *batch*; returns the per-lane
        results plus the burst tally. Table state afterwards is
        byte-identical to the scalar per-packet walk."""
        tables = self.tables
        n = batch.n
        packets = batch.packets
        sizes = batch.sizes
        unique_keys, inverse, uniq_counts, uniq_bytes, per_vni = batch.key_index()
        memo = self.memo
        fresh = [key for key in unique_keys if key not in memo]
        if fresh:
            self._resolve_keys(fresh)
        decs = [memo[key] for key in unique_keys]

        hw = self.hw
        nonvxlan = batch.nonvxlan_lanes
        fate: Optional[bytearray] = None
        if nonvxlan:
            fate = bytearray(n)
            for i in nonvxlan:
                fate[i] = _FATE_NOT_VXLAN

        # Per-uniq / per-VNI kill tallies from the per-packet stages.
        denied_by_uniq: Dict[int, int] = {}
        denied_bytes: Dict[int, int] = {}
        denied_by_vni: Dict[int, int] = {}
        red_by_uniq: Dict[int, int] = {}
        red_bytes: Dict[int, int] = {}
        limited_by_uniq: Dict[int, int] = {}
        n_denied = n_red = n_limited = 0

        # Stage: ingress tenant counters. The x86 program counts every
        # VXLAN packet before the ACL; the hw program only counts
        # delivered packets at egress (Table D, settled further down).
        if not hw and per_vni:
            tables.counters.count_batch_many(
                {vni_key(vni): (acc[0], acc[1]) for vni, acc in per_vni.items()})

        # Stage: ACL classify (per packet — full 5-tuple, never memoized).
        # The scalar program consults the ACL on every VXLAN packet, so
        # the lookup telemetry charges even on the pass-all fast path.
        if batch.vxlan_count:
            tables.acl.lookups += batch.vxlan_count
        classifier = self.classifier
        if classifier is not None and batch.vxlan_count:
            deny_lanes, matched = classifier.classify(batch)
            acl = tables.acl
            acl.matched += matched
            if deny_lanes:
                if fate is None:
                    fate = bytearray(n)
                n_denied = len(deny_lanes)
                keys = batch.keys
                for i in deny_lanes:
                    fate[i] = _FATE_ACL_DENY
                    u = inverse[i]
                    size = sizes[i]
                    denied_by_uniq[u] = denied_by_uniq.get(u, 0) + 1
                    denied_bytes[u] = denied_bytes.get(u, 0) + size
                    vni = keys[i][0]
                    denied_by_vni[vni] = denied_by_vni.get(vni, 0) + 1

        # Stage: per-VNI meters, charged as per-key runs in lane order.
        meters = tables.meters
        if len(meters) == 0:
            meters.pass_unmetered(batch.vxlan_count - n_denied)
        else:
            greens = 0
            for vni, lanes in batch.lanes_by_vni().items():
                key = vni_key(vni)
                if not meters.has_meter(key):
                    greens += per_vni[vni][0] - denied_by_vni.get(vni, 0)
                    continue
                if fate is None:
                    run_lanes = lanes
                else:
                    run_lanes = [i for i in lanes if not fate[i]]
                colors = meters.charge_run(key, now, [sizes[i] for i in run_lanes])
                if colors is None:
                    continue
                red = MeterColor.RED
                for i, color in zip(run_lanes, colors):
                    if color is red:
                        if fate is None:
                            fate = bytearray(n)
                        fate[i] = _FATE_METER_RED
                        u = inverse[i]
                        red_by_uniq[u] = red_by_uniq.get(u, 0) + 1
                        red_bytes[u] = red_bytes.get(u, 0) + sizes[i]
                        n_red += 1
            if greens:
                meters.pass_unmetered(greens)

        # Stage (hw only): §4.2 overload-protection meter on the
        # redirect path, charged for admitted SERVICE lanes in lane
        # order (the same order the scalar pipeline charges them).
        if hw:
            service = {u for u, d in enumerate(decs) if d.action is _REDIRECT}
            if service:
                if fate is None:
                    service_lanes = [i for i in range(n) if inverse[i] in service]
                else:
                    service_lanes = [i for i in range(n)
                                     if not fate[i] and inverse[i] in service]
                colors = meters.charge_run(
                    "redirect-x86", now, [sizes[i] for i in service_lanes])
                if colors is not None:
                    red = MeterColor.RED
                    for i, color in zip(service_lanes, colors):
                        if color is red:
                            if fate is None:
                                fate = bytearray(n)
                            fate[i] = _FATE_REDIRECT_LIMITED
                            u = inverse[i]
                            limited_by_uniq[u] = limited_by_uniq.get(u, 0) + 1
                            n_limited += 1

        # Stage: assemble — scatter-gather decisions back into per-lane
        # results. The all-pass shape (steady-state replay) runs without
        # any fate checks.
        gateway_ip = self.gateway_ip
        results: List[Optional[ForwardResult]] = [None] * n
        if fate is None:
            for i, p in enumerate(packets):
                d = decs[inverse[i]]
                results[i] = (d.proto_result if p is d.proto_packet
                              else d.build(p, gateway_ip, hw))
        else:
            details = _FATE_DETAILS
            for i, p in enumerate(packets):
                f = fate[i]
                if f == _FATE_PASS:
                    d = decs[inverse[i]]
                    results[i] = (d.proto_result if p is d.proto_packet
                                  else d.build(p, gateway_ip, hw))
                else:
                    results[i] = ForwardResult(_DROP, p, detail=details[f])

        # Stage: tally.
        tally = BatchTally()
        actions = tally.actions
        drop_details = tally.drop_details
        for u, d in enumerate(decs):
            admitted = (uniq_counts[u] - denied_by_uniq.get(u, 0)
                        - red_by_uniq.get(u, 0) - limited_by_uniq.get(u, 0))
            if not admitted:
                continue
            action = d.action
            actions[action] = actions.get(action, 0) + admitted
            if action is _DROP:
                drop_details[d.detail] = drop_details.get(d.detail, 0) + admitted
        for count, detail in ((len(nonvxlan), "not-vxlan"),
                              (n_denied, "acl-deny"),
                              (n_red, "meter-red"),
                              (n_limited, "redirect-rate-limited")):
            if count:
                actions[_DROP] = actions.get(_DROP, 0) + count
                drop_details[detail] = drop_details.get(detail, 0) + count

        if self.watch_snat:
            watch = {u for u, d in enumerate(decs)
                     if d.action is _REDIRECT and d.detail == "snat"}
            if watch:
                if fate is None:
                    tally.snat_lanes = [i for i in range(n) if inverse[i] in watch]
                else:
                    tally.snat_lanes = [i for i in range(n)
                                        if not fate[i] and inverse[i] in watch]

        if hw:
            self._tally_fabric(tally, decs, unique_keys, uniq_counts, uniq_bytes,
                               denied_by_uniq, denied_bytes,
                               red_by_uniq, red_bytes, limited_by_uniq,
                               len(nonvxlan))
        return results, tally

    def _tally_fabric(self, tally: BatchTally, decs, unique_keys, uniq_counts,
                      uniq_bytes, denied_by_uniq, denied_bytes,
                      red_by_uniq, red_bytes, limited_by_uniq,
                      nonvxlan_count: int) -> None:
        """Aggregate the folded-chip bookkeeping (per-pipe packet counts,
        bridge bytes, the egress Table D counters) for the hw profile —
        identical totals to per-packet fabric traversals."""
        from ...tofino.pipeline import Gress

        ingress = Gress.INGRESS
        egress = Gress.EGRESS
        pipe: Dict[tuple, int] = {}
        bridged = 0
        egress_charges: Dict[tuple, list] = {}
        for u, d in enumerate(decs):
            key = unique_keys[u]
            entry = 0 if key[1] % 2 == 0 else 2
            total = uniq_counts[u]
            ref = (entry, ingress)
            pipe[ref] = pipe.get(ref, 0) + total
            admitted = (total - denied_by_uniq.get(u, 0)
                        - red_by_uniq.get(u, 0) - limited_by_uniq.get(u, 0))
            if not admitted:
                continue
            action = d.action
            if action is _DELIVER or (action is _DROP and d.detail == "no-vm"):
                ref = (entry + 1, egress)
                pipe[ref] = pipe.get(ref, 0) + admitted
                bridged += admitted * _BRIDGE1_BYTES
                if action is _DELIVER:
                    ref = (entry + 1, ingress)
                    pipe[ref] = pipe.get(ref, 0) + admitted
                    ref = (entry, egress)
                    pipe[ref] = pipe.get(ref, 0) + admitted
                    bridged += admitted * 2 * _BRIDGE23_BYTES
                    # Table D (egress counters): delivered packets only,
                    # keyed by the packet's original VNI; the rewrite
                    # preserves the wire length.
                    ckey = vni_key(key[0])
                    admitted_bytes = (uniq_bytes[u] - denied_bytes.get(u, 0)
                                      - red_bytes.get(u, 0))
                    acc = egress_charges.get(ckey)
                    if acc is None:
                        egress_charges[ckey] = [admitted, admitted_bytes]
                    else:
                        acc[0] += admitted
                        acc[1] += admitted_bytes
        if nonvxlan_count:
            ref = (0, ingress)
            pipe[ref] = pipe.get(ref, 0) + nonvxlan_count
        if egress_charges:
            self.tables.counters.count_batch_many(
                {k: (acc[0], acc[1]) for k, acc in egress_charges.items()})
        tally.pipe_packets = pipe
        tally.bridged_bytes = bridged


class BatchCompiler:
    """Compiles one gateway's table bundle into a CompiledProgram.

    Pass *split_vm_nc* for the XGW-H profile (parity-split VM-NC halves,
    redirect-path metering, folded-chip bookkeeping); leave it None for
    XGW-x86. *watch_snat* makes the program report admitted SNAT
    redirect lanes so the x86 wrapper can run the service layer on them.
    """

    def __init__(self, tables: GatewayTables, gateway_ip: int,
                 split_vm_nc=None, watch_snat: bool = False):
        self.tables = tables
        self.gateway_ip = gateway_ip
        self.split_vm_nc = split_vm_nc
        self.watch_snat = watch_snat

    def generations(self) -> tuple:
        """The live generation vector guarding compiled programs — the
        same tables the flow cache guards, with the hw profile reading
        both parity halves of the split VM-NC table."""
        tables = self.tables
        if self.split_vm_nc is None:
            return (tables.routing.generation, tables.vm_nc.generation,
                    tables.acl.generation)
        halves = self.split_vm_nc.halves
        return (tables.routing.generation, halves[0].generation,
                halves[1].generation, tables.acl.generation)

    def compile(self) -> CompiledProgram:
        """Lower the current table state into an executable program."""
        acl = self.tables.acl
        if len(acl) == 0 and acl.default_verdict is AclVerdict.PERMIT:
            # Provably pass-all; the ACL generation guard keeps it honest.
            classifier = None
        else:
            classifier = CompiledAcl(acl.rules(),
                                     acl.default_verdict is AclVerdict.DENY)
        return CompiledProgram(self.tables, self.gateway_ip,
                               self.generations(), classifier,
                               self.split_vm_nc, self.watch_snat)
