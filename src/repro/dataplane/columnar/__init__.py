"""Columnar batch data plane: struct-of-arrays bursts + compiled programs.

See DESIGN.md §13. Entry points:

* :class:`~repro.dataplane.columnar.batch.PacketBatch` — one burst in
  struct-of-arrays form;
* :class:`~repro.dataplane.columnar.compiler.BatchCompiler` — lowers a
  gateway's placed program into a :class:`~repro.dataplane.columnar.
  compiler.CompiledProgram` executed over whole batches;
* :func:`~repro.dataplane.columnar.backend.resolve_backend` — numpy or
  pure-python column storage (numpy is the optional ``fast`` extra).
"""

from .backend import (
    BACKEND_ENV,
    NumpyBackend,
    PythonBackend,
    numpy_available,
    resolve_backend,
)
from .batch import PacketBatch
from .compiler import BatchCompiler, BatchTally, CompiledAcl, CompiledProgram, KeyDecision

__all__ = [
    "BACKEND_ENV",
    "BatchCompiler",
    "BatchTally",
    "CompiledAcl",
    "CompiledProgram",
    "KeyDecision",
    "NumpyBackend",
    "PacketBatch",
    "PythonBackend",
    "numpy_available",
    "resolve_backend",
]
