"""Column backends for the batch data plane: numpy or pure-python.

The columnar executor stores packet fields in struct-of-arrays columns
(:mod:`repro.dataplane.columnar.batch`). Two interchangeable backends
provide the storage:

* ``numpy`` — 64-bit numpy arrays; the compiled ACL classifier runs as
  vectorized predicate masks over whole columns;
* ``python`` — the stdlib :mod:`array` module; no third-party
  dependency, same semantics, with the ACL classifier falling back to a
  per-lane scan.

numpy is an *optional* extra (``pip install repro[fast]``). Selection
order: an explicit ``backend=`` argument, then the
``REPRO_COLUMNAR_BACKEND`` environment variable (``numpy`` or
``python``), then numpy when importable, else pure python.

>>> b = resolve_backend("python")
>>> b.name
'python'
>>> list(b.u64([1, 2, 3]))
[1, 2, 3]
"""

from __future__ import annotations

import os
from array import array
from typing import Optional

#: Environment override consumed by :func:`resolve_backend`.
BACKEND_ENV = "REPRO_COLUMNAR_BACKEND"

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class PythonBackend:
    """Pure-python columns backed by :mod:`array` (no dependencies)."""

    name = "python"
    #: The ACL classifier cannot mask whole columns without numpy.
    vectorized = False
    np = None

    @staticmethod
    def u64(values) -> array:
        """An unsigned 64-bit column."""
        return array("Q", values)

    @staticmethod
    def i64(values) -> array:
        """A signed 64-bit column."""
        return array("q", values)

    @staticmethod
    def lane_index(values) -> array:
        """A lane-index column (signed; -1 marks "no entry")."""
        return array("l", values)


class NumpyBackend:
    """numpy-backed columns; enables the vectorized ACL classifier."""

    name = "numpy"
    vectorized = True

    def __init__(self):
        if _np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not installed "
                "(install the 'fast' extra or use REPRO_COLUMNAR_BACKEND=python)"
            )
        self.np = _np

    def u64(self, values):
        return self.np.array(values, dtype=self.np.uint64)

    def i64(self, values):
        return self.np.array(values, dtype=self.np.int64)

    def lane_index(self, values):
        return self.np.array(values, dtype=self.np.int64)


def numpy_available() -> bool:
    """True when the numpy backend can be constructed."""
    return _np is not None


def resolve_backend(name: Optional[str] = None):
    """The backend instance for *name* (or the environment/default pick).

    >>> resolve_backend("python").vectorized
    False
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV)
    if name is None:
        return NumpyBackend() if _np is not None else PythonBackend()
    if name == "numpy":
        return NumpyBackend()
    if name == "python":
        return PythonBackend()
    raise ValueError(f"unknown columnar backend {name!r} (numpy|python)")
