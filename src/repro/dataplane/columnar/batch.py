"""Struct-of-arrays packet bursts for the columnar data plane.

A :class:`PacketBatch` shreds a burst of :class:`~repro.net.packet.Packet`
objects into parallel columns — VNI, inner src/dst (as 64-bit halves),
protocol, ports, IP version and wire length — once, so the compiled
program (:mod:`repro.dataplane.columnar.compiler`) can run match-action
steps over whole arrays instead of interpreting one packet at a time.

The batch also carries burst-level aggregates that are *program
independent* (they depend only on the packets): the unique
``(VNI, inner dst, version)`` key set with per-lane inverse indices, and
per-VNI packet/byte totals. These are computed lazily and cached, so a
replayed batch (the steady-state benchmark shape) pays for them once.

A batch must be treated as frozen after construction: the executor
scatter-gathers results by lane index and caches aggregates keyed on
the packet list.

>>> from repro.workloads.traffic import build_vxlan_packet
>>> from repro.dataplane.columnar.backend import resolve_backend
>>> pkts = [build_vxlan_packet(vni=7, src_ip=1, dst_ip=2)]
>>> batch = PacketBatch.from_packets(pkts, resolve_backend("python"))
>>> batch.n, batch.vxlan_count, batch.keys[0]
(1, 1, (7, 2, 4))
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...net.headers import ETH_LEN, UDP_LEN, VXLAN_LEN
from ...net.packet import Packet, _ip_len, _l4_len
from .backend import resolve_backend

#: Fixed wire bytes of a VXLAN packet outside the two IP headers, the
#: inner L4 and the inner payload: outer Ethernet + outer UDP + VXLAN
#: header + inner Ethernet (mirrors ``Packet.wire_length`` exactly).
_VXLAN_FIXED_LEN = ETH_LEN + UDP_LEN + VXLAN_LEN + ETH_LEN

_MASK64 = (1 << 64) - 1


class PacketBatch:
    """One burst of packets in struct-of-arrays form."""

    __slots__ = (
        "packets", "n", "backend", "keys", "sizes",
        "vxlan_count", "nonvxlan_lanes",
        # numpy columns (vectorized backends only; None otherwise)
        "vni_col", "src_hi", "src_lo", "dst_hi", "dst_lo",
        "proto_col", "sport_col", "dport_col", "vxlan_mask",
        # python lists (scalar ACL fallback; None on vectorized backends)
        "src_list", "dst_list", "proto_list", "sport_list", "dport_list",
        # lazy burst aggregates
        "_key_index", "_lanes_by_vni",
    )

    def __init__(self):
        raise TypeError("use PacketBatch.from_packets()")

    @classmethod
    def from_packets(cls, packets: Sequence[Packet], backend=None) -> "PacketBatch":
        """Shred *packets* into columns under *backend* (default resolved
        per :func:`repro.dataplane.columnar.backend.resolve_backend`)."""
        if backend is None:
            backend = resolve_backend()
        self = object.__new__(cls)
        packets = list(packets)
        self.packets = packets
        self.n = len(packets)
        self.backend = backend
        keys: List[Optional[tuple]] = []
        sizes: List[int] = []
        nonvxlan: List[int] = []
        vnis: List[int] = []
        srcs: List[int] = []
        dsts: List[int] = []
        protos: List[int] = []
        sports: List[int] = []
        dports: List[int] = []
        is_vx: List[bool] = []
        keys_append = keys.append
        sizes_append = sizes.append
        for i, p in enumerate(packets):
            vx = p.vxlan
            if vx is None:
                keys_append(None)
                sizes_append(0)
                nonvxlan.append(i)
                vnis.append(0)
                srcs.append(0)
                dsts.append(0)
                protos.append(0)
                sports.append(0)
                dports.append(0)
                is_vx.append(False)
                continue
            inner = p.inner
            iip = inner.ip
            l4 = inner.l4
            vni = vx.vni
            dst = iip.dst
            keys_append((vni, dst, iip.version))
            sizes_append(_VXLAN_FIXED_LEN + _ip_len(p.ip) + _ip_len(iip)
                         + _l4_len(l4) + len(inner.payload))
            vnis.append(vni)
            srcs.append(iip.src)
            dsts.append(dst)
            protos.append(iip.proto)
            sports.append(l4.src_port if l4 is not None else 0)
            dports.append(l4.dst_port if l4 is not None else 0)
            is_vx.append(True)
        self.keys = keys
        self.sizes = sizes
        self.nonvxlan_lanes = nonvxlan
        self.vxlan_count = self.n - len(nonvxlan)
        if backend.vectorized:
            np = backend.np
            self.vni_col = backend.i64(vnis)
            self.src_hi = backend.u64([s >> 64 for s in srcs])
            self.src_lo = backend.u64([s & _MASK64 for s in srcs])
            self.dst_hi = backend.u64([d >> 64 for d in dsts])
            self.dst_lo = backend.u64([d & _MASK64 for d in dsts])
            self.proto_col = backend.i64(protos)
            self.sport_col = backend.i64(sports)
            self.dport_col = backend.i64(dports)
            self.vxlan_mask = np.array(is_vx, dtype=bool)
            self.src_list = self.dst_list = None
            self.proto_list = self.sport_list = self.dport_list = None
        else:
            self.vni_col = self.src_hi = self.src_lo = None
            self.dst_hi = self.dst_lo = None
            self.proto_col = self.sport_col = self.dport_col = None
            self.vxlan_mask = None
            self.src_list = srcs
            self.dst_list = dsts
            self.proto_list = protos
            self.sport_list = sports
            self.dport_list = dports
        self._key_index = None
        self._lanes_by_vni = None
        return self

    # -- burst aggregates (lazy, program independent) -----------------------

    def key_index(self):
        """``(unique_keys, inverse, uniq_counts, uniq_bytes, per_vni)``.

        *unique_keys* lists the distinct ``(vni, dst, version)`` keys in
        first-touch lane order; *inverse* maps each lane to its unique
        index (-1 for non-VXLAN lanes); *uniq_counts*/*uniq_bytes* hold
        per-unique lane counts and byte sums; *per_vni* maps each VNI to
        ``[packets, bytes]`` aggregates in first-touch order (the same
        cell-creation order a per-packet counter walk would produce).
        """
        index = self._key_index
        if index is None:
            from array import array

            seen: dict = {}
            unique_keys: List[tuple] = []
            inverse = array("l")
            inv_append = inverse.append
            uniq_counts: List[int] = []
            uniq_bytes: List[int] = []
            per_vni: dict = {}
            sizes = self.sizes
            for i, key in enumerate(self.keys):
                if key is None:
                    inv_append(-1)
                    continue
                u = seen.get(key)
                size = sizes[i]
                if u is None:
                    u = seen[key] = len(unique_keys)
                    unique_keys.append(key)
                    uniq_counts.append(1)
                    uniq_bytes.append(size)
                else:
                    uniq_counts[u] += 1
                    uniq_bytes[u] += size
                inv_append(u)
                vni = key[0]
                acc = per_vni.get(vni)
                if acc is None:
                    per_vni[vni] = [1, size]
                else:
                    acc[0] += 1
                    acc[1] += size
            index = self._key_index = (
                unique_keys, inverse, uniq_counts, uniq_bytes, per_vni
            )
        return index

    def lanes_by_vni(self) -> dict:
        """VXLAN lanes grouped by VNI, each group in lane order (the
        order a per-packet meter walk would charge them)."""
        groups = self._lanes_by_vni
        if groups is None:
            groups = {}
            for i, key in enumerate(self.keys):
                if key is None:
                    continue
                vni = key[0]
                lanes = groups.get(vni)
                if lanes is None:
                    groups[vni] = [i]
                else:
                    lanes.append(i)
            self._lanes_by_vni = groups
        return groups
