"""The XGW-H gateway program laid out over the folded pipeline (§4.4).

Table placement follows the paper's folding principles (Fig. 13/15):

* **Ingress 0/2** — parser checks, tenant ACL + meters, then the VXLAN
  routing table (Table A); resolved VNI and scope are bridged onward.
  ACL and metering run *before* routing so every admitted packet —
  local, service-redirect or uplink — passes tenant policy exactly like
  the software gateway's program (the early SERVICE/uplink exits leave
  from this pipe and would otherwise bypass Table C entirely).
* **Egress 1/3** (loopback pipes) — VM-NC mapping table (Table B), with
  entries *split between pipelines* by VNI parity (Fig. 14): pipe 1
  holds even-VNI entries, pipe 3 odd-VNI entries; the load balancer
  steers traffic to entry pipeline 0 or 2 accordingly.
* **Ingress 1/3** — bridge relay (metadata carried across the fold).
* **Egress 0/2** — final header rewrite + counters (Table D).

Metadata crossing a gress boundary is bridged explicitly; the traversal
records the bridge bytes so the throughput cost is observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..net.packet import Packet
from ..tables.acl import AclVerdict
from ..tables.errors import MissingEntryError
from ..tables.meter import MeterColor
from ..tables.vm_nc import VmNcTable
from ..tables.vxlan_routing import RoutingLoopError, Scope
from ..tofino.phv import Metadata
from ..tofino.pipeline import Gress, PipeRef, PipeResult, Verdict
from .gateway_logic import GatewayTables, inner_flow_key, vni_key

_SCOPE_CODE = {scope: i for i, scope in enumerate(Scope)}
_CODE_SCOPE = {i: scope for scope, i in _SCOPE_CODE.items()}


def parity_pipeline(inner_dst_ip: int) -> int:
    """Entry pipeline under the parity split: even inner dst IP -> 0,
    odd -> 2.

    The split key must survive PEER-VPC resolution (the VNI changes along
    the chain, the inner destination IP does not), which is why we use
    the paper's "parity of ... inner Dst IP" option.
    """
    return 0 if inner_dst_ip % 2 == 0 else 2


# Backwards-compatible alias used by steering call sites.
vni_parity_pipeline = parity_pipeline


@dataclass
class SplitVmNc:
    """The VM-NC table split between the two loopback pipes (Fig. 14),
    keyed by the parity of the VM (inner destination) IP."""

    halves: Dict[int, VmNcTable]

    @classmethod
    def empty(cls) -> "SplitVmNc":
        return cls(halves={0: VmNcTable(name="vm-nc-even"), 1: VmNcTable(name="vm-nc-odd")})

    def half_for_ip(self, vm_ip: int) -> VmNcTable:
        return self.halves[vm_ip % 2]

    def half_for_pipe(self, pipeline: int) -> VmNcTable:
        """Pipe 1 serves even IPs (entry 0), pipe 3 odd IPs (entry 2)."""
        if pipeline in (0, 1):
            return self.halves[0]
        return self.halves[1]

    def insert(self, vni: int, vm_ip: int, version: int, binding, replace: bool = False) -> None:
        self.half_for_ip(vm_ip).insert(vni, vm_ip, version, binding, replace)

    def remove(self, vni: int, vm_ip: int, version: int):
        return self.half_for_ip(vm_ip).remove(vni, vm_ip, version)

    def lookup(self, vni: int, vm_ip: int, version: int):
        return self.half_for_ip(vm_ip).lookup(vni, vm_ip, version)

    def __len__(self) -> int:
        return sum(len(t) for t in self.halves.values())

    def items(self):
        """Readback across both halves (even pipe first, then odd), so
        the audit can diff a split table against intent like a flat one."""
        for parity in (0, 1):
            yield from self.halves[parity].items()


class XgwHProgram:
    """Builds the four pipe programs from one table bundle.

    *clock* supplies the data-plane time used by meters (defaults to a
    zero clock; the region simulator installs a real one).
    """

    def __init__(self, tables: GatewayTables, split_vm_nc: SplitVmNc, gateway_ip: int,
                 clock=None):
        self.tables = tables
        self.vm_nc = split_vm_nc
        self.gateway_ip = gateway_ip
        self._clock = clock if clock is not None else (lambda: 0.0)

    # -- pipe programs ------------------------------------------------------

    def ingress_entry(self, packet: Packet, md: Metadata, ref: PipeRef) -> PipeResult:
        """Ingress 0/2: validate, ACL + meter, VXLAN routing (Table A).

        The evaluation order mirrors
        :func:`repro.dataplane.gateway_logic.forward` exactly — tenant
        ACL, then the per-VNI meter, then routing — so drop precedence
        (acl-deny over no-route) and SERVICE/uplink admission match the
        software gateway byte-for-byte.
        """
        if not packet.is_vxlan:
            return PipeResult(Verdict.DROP, drop_reason="not-vxlan")
        flow = inner_flow_key(packet)
        if self.tables.acl.evaluate(packet.vni, flow) is AclVerdict.DENY:
            return PipeResult(Verdict.DROP, drop_reason="acl-deny")
        color = self.tables.meters.charge(
            vni_key(packet.vni), self._clock(), packet.wire_length()
        )
        if color is MeterColor.RED:
            return PipeResult(Verdict.DROP, drop_reason="meter-red")
        try:
            resolution = self.tables.routing.resolve(
                packet.vni, packet.inner_dst, packet.inner_version
            )
        except MissingEntryError:
            return PipeResult(Verdict.DROP, drop_reason="no-route")
        except RoutingLoopError:
            return PipeResult(Verdict.DROP, drop_reason="peer-loop")
        scope = resolution.action.scope
        md.set("resolved_vni", resolution.vni, bits=24)
        md.set("scope", _SCOPE_CODE[scope], bits=3)
        if scope is Scope.SERVICE:
            # §4.2: "rate limiting is necessary at XGW-H before forwarding
            # the traffic to XGW-x86 for overload protection".
            color = self.tables.meters.charge(
                "redirect-x86", self._clock(), packet.wire_length()
            )
            if color is MeterColor.RED:
                return PipeResult(Verdict.DROP, drop_reason="redirect-rate-limited")
            # Hand off to the software gateway without touching VM-NC.
            return PipeResult(
                Verdict.REDIRECT_X86, drop_reason=resolution.action.target or "service"
            )
        if scope is not Scope.LOCAL:
            # Uplink traffic leaves without an NC rewrite.
            return PipeResult(
                Verdict.FORWARD, drop_reason=resolution.action.target or scope.value
            )
        return PipeResult(Verdict.CONTINUE, bridge_fields=["resolved_vni", "scope"])

    def egress_loopback(self, packet: Packet, md: Metadata, ref: PipeRef) -> PipeResult:
        """Egress 1/3: VM-NC lookup (Table B, parity half of this pipe)."""
        resolved_vni = md.get("resolved_vni")
        half = self.vm_nc.half_for_pipe(ref[0])
        binding = half.lookup(resolved_vni, packet.inner_dst, packet.inner_version)
        if binding is None:
            return PipeResult(Verdict.DROP, drop_reason="no-vm")
        md.set("nc_ip", binding.nc_ip, bits=32)
        return PipeResult(Verdict.CONTINUE, bridge_fields=["resolved_vni", "scope", "nc_ip"])

    def ingress_loopback(self, packet: Packet, md: Metadata, ref: PipeRef) -> PipeResult:
        """Ingress 1/3: bridge relay.

        Tenant ACL + metering moved to :meth:`ingress_entry` so that the
        early SERVICE/uplink exits cannot bypass them; this pipe now only
        carries the bridged metadata across the fold towards the final
        rewrite.
        """
        return PipeResult(Verdict.CONTINUE, bridge_fields=["resolved_vni", "scope", "nc_ip"])

    def egress_exit(self, packet: Packet, md: Metadata, ref: PipeRef) -> PipeResult:
        """Egress 0/2: final rewrite + counters (Table D)."""
        resolved_vni = md.get("resolved_vni")
        nc_ip = md.get("nc_ip")
        out = packet
        if resolved_vni != packet.vni:
            out = out.with_vni(resolved_vni)
        out = out.with_outer_src(self.gateway_ip).with_outer_dst(nc_ip)
        self.tables.counters.count(vni_key(packet.vni), out.wire_length())
        return PipeResult(Verdict.FORWARD, packet=out)

    # -- installation ---------------------------------------------------------

    def programs(self) -> Dict[Tuple[int, Gress], "PipeProgramType"]:
        """The role-pipe program map for :meth:`Chip.attach_symmetric`."""
        return {
            (0, Gress.INGRESS): self.ingress_entry,
            (1, Gress.EGRESS): self.egress_loopback,
            (1, Gress.INGRESS): self.ingress_loopback,
            (0, Gress.EGRESS): self.egress_exit,
        }


def scope_from_code(code: int) -> Scope:
    """Reverse of the metadata scope encoding."""
    return _CODE_SCOPE[code]
