"""Gateway forwarding semantics shared by hardware and software gateways."""

from .gateway_logic import (
    ForwardAction,
    ForwardResult,
    GatewayTables,
    forward,
    inner_flow_key,
)
from .pipeline_program import (
    SplitVmNc,
    XgwHProgram,
    parity_pipeline,
    scope_from_code,
    vni_parity_pipeline,
)
from .services import SnatService

__all__ = [
    "ForwardAction",
    "ForwardResult",
    "GatewayTables",
    "forward",
    "inner_flow_key",
    "SplitVmNc",
    "XgwHProgram",
    "scope_from_code",
    "parity_pipeline",
    "vni_parity_pipeline",
    "SnatService",
]
