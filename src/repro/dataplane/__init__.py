"""Gateway forwarding semantics shared by hardware and software gateways."""

from .flowcache import CacheEntry, FlowCache, forward_cached, forward_cached_batch
from .gateway_logic import (
    ForwardAction,
    ForwardResult,
    GatewayTables,
    forward,
    inner_flow_key,
    vni_key,
)
from .pipeline_program import (
    SplitVmNc,
    XgwHProgram,
    parity_pipeline,
    scope_from_code,
    vni_parity_pipeline,
)
from .services import SnatService

__all__ = [
    "CacheEntry",
    "FlowCache",
    "ForwardAction",
    "ForwardResult",
    "GatewayTables",
    "forward",
    "forward_cached",
    "forward_cached_batch",
    "inner_flow_key",
    "vni_key",
    "SplitVmNc",
    "XgwHProgram",
    "scope_from_code",
    "parity_pipeline",
    "vni_parity_pipeline",
    "SnatService",
]
