"""Gateway forwarding semantics shared by hardware and software gateways."""

from .flowcache import CacheEntry, FlowCache, forward_cached, forward_cached_batch
from .gateway_logic import (
    DropReason,
    ForwardAction,
    ForwardResult,
    GatewayTables,
    count_drop,
    forward,
    inner_flow_key,
    vni_key,
)
from .migration import (
    BufferedPacket,
    MigrationBuffer,
    MigrationState,
    ensure_migration_state,
)
from .pipeline_program import (
    SplitVmNc,
    XgwHProgram,
    parity_pipeline,
    scope_from_code,
    vni_parity_pipeline,
)
from .services import SnatService

__all__ = [
    "BufferedPacket",
    "CacheEntry",
    "DropReason",
    "FlowCache",
    "ForwardAction",
    "ForwardResult",
    "GatewayTables",
    "MigrationBuffer",
    "MigrationState",
    "count_drop",
    "ensure_migration_state",
    "forward",
    "forward_cached",
    "forward_cached_batch",
    "inner_flow_key",
    "vni_key",
    "SplitVmNc",
    "XgwHProgram",
    "scope_from_code",
    "parity_pipeline",
    "vni_parity_pipeline",
    "SnatService",
]
