"""repro — a reproduction of Sailfish (SIGCOMM 2021).

Sailfish is Alibaba Cloud's multi-tenant multi-service cloud gateway
built on programmable switches. This package implements the paper's
contribution — hardware/software table sharing, horizontal table
splitting among clusters, and pipeline-aware single-node table
compression — together with every substrate it depends on: a Tofino-like
pipeline/memory simulator, an XGW-x86 software-gateway simulator, the
VXLAN packet model, the forwarding tables (LPM, TCAM, ALPM, pooled,
compressed), region-level clustering, and synthetic workload generators.

Quickstart::

    from repro import OccupancyModel, CompressionPlan
    model = OccupancyModel.paper_scale()
    plan = CompressionPlan.full()
    report = plan.apply(model)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

from .core import (
    CompressionPlan,
    CompressionStep,
    OccupancyModel,
    RegionSpec,
    Sailfish,
    SharingPolicy,
    TableSplitter,
)

__all__ = [
    "Sailfish",
    "RegionSpec",
    "CompressionPlan",
    "CompressionStep",
    "OccupancyModel",
    "SharingPolicy",
    "TableSplitter",
    "__version__",
]
