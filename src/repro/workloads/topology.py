"""Synthetic region topology: VPCs, subnets, VMs, NCs, peerings.

Stands in for the paper's production inventory ("a single cloud region
can host millions of VPCs and millions of VMs ... a top customer can
purchase millions of VMs even in a single VPC"): VPC sizes follow a
Zipf distribution so a few tenants dominate, and VPC pairs peer with a
configurable probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.addr import Prefix
from ..sim.rand import derive, zipf_weights
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction, Scope

#: First tenant VNI; VNIs below this are reserved for services.
BASE_VNI = 1000
#: The special VNI tag marking SNAT-bound (Internet) traffic (§4.2).
SNAT_SERVICE_TARGET = "snat"


@dataclass(frozen=True)
class VmRecord:
    """One VM: overlay address + hosting NC."""

    vni: int
    ip: int
    version: int
    nc_ip: int

    def binding(self) -> NcBinding:
        return NcBinding(nc_ip=self.nc_ip)


@dataclass
class VpcRecord:
    """One VPC: subnets, VMs and peer VPCs."""

    vni: int
    subnets: List[Prefix] = field(default_factory=list)
    vms: List[VmRecord] = field(default_factory=list)
    peers: List[int] = field(default_factory=list)

    @property
    def route_count(self) -> int:
        # One LOCAL route per subnet + peer routes toward each peer subnet.
        return len(self.subnets)


@dataclass
class RegionTopology:
    """Everything the controller installs for a region."""

    vpcs: Dict[int, VpcRecord] = field(default_factory=dict)
    ncs: List[int] = field(default_factory=list)

    @property
    def total_vms(self) -> int:
        return sum(len(v.vms) for v in self.vpcs.values())

    def vnis(self) -> List[int]:
        return sorted(self.vpcs)

    def route_entries(self, vni: int) -> Iterator[Tuple[int, Prefix, RouteAction]]:
        """All routing entries for one VPC: LOCAL subnets, PEER subnets,
        and the SNAT default for Internet-bound traffic."""
        vpc = self.vpcs[vni]
        for subnet in vpc.subnets:
            yield vni, subnet, RouteAction(Scope.LOCAL)
        for peer_vni in vpc.peers:
            for subnet in self.vpcs[peer_vni].subnets:
                yield vni, subnet, RouteAction(Scope.PEER, next_hop_vni=peer_vni)
        # IPv4 Internet access needs SNAT (few public IPs, many VMs);
        # IPv6 VMs hold globally routable addresses and exit directly.
        yield vni, Prefix.parse("0.0.0.0/0"), RouteAction(
            Scope.SERVICE, target=SNAT_SERVICE_TARGET
        )
        yield vni, Prefix.parse("::/0"), RouteAction(Scope.INTERNET, target="v6-uplink")

    def vm_entries(self, vni: int) -> Iterator[VmRecord]:
        yield from self.vpcs[vni].vms

    def total_routes(self) -> int:
        return sum(
            len(list(self.route_entries(vni))) for vni in self.vpcs
        )


def _subnet_for(index: int, version: int) -> Prefix:
    """Deterministic non-overlapping tenant subnets."""
    if version == 4:
        # 172.16.0.0/12 carved into /24s: 2^12 x 2^8 subnets is plenty
        # for simulation scale (indices wrap within the /12).
        base = (172 << 24) | (16 << 16)
        return Prefix(base + ((index & 0xFFFFF) << 8), 24, 4)
    base6 = 0xFD00 << 112
    return Prefix(base6 | (index << 64), 64, 6)


def generate_topology(
    num_vpcs: int,
    total_vms: int,
    seed,
    subnets_per_vpc: int = 2,
    vm_size_alpha: float = 1.2,
    peering_fraction: float = 0.3,
    ipv6_fraction: float = 0.25,
    num_ncs: int = 256,
    subnet_base_index: int = 0,
) -> RegionTopology:
    """Build a Zipf-skewed region.

    *peering_fraction* of VPCs get one peer each; VM counts per VPC are
    Zipf(*vm_size_alpha*) so top customers dominate (§3.3).
    *subnet_base_index* offsets the tenant address plan so that multiple
    regions get disjoint CIDRs (required for cross-region connections).
    """
    if num_vpcs <= 0 or total_vms < 0:
        raise ValueError("need a positive number of VPCs")
    rng = derive(seed, "topology")
    topo = RegionTopology()
    topo.ncs = [(10 << 24) | (1 << 16) | (i >> 8 << 8) | (i & 0xFF) for i in range(num_ncs)]

    weights = zipf_weights(num_vpcs, vm_size_alpha)
    vm_counts = [round(w * total_vms) for w in weights]

    subnet_index = subnet_base_index
    for i in range(num_vpcs):
        vni = BASE_VNI + i
        vpc = VpcRecord(vni=vni)
        for s in range(subnets_per_vpc):
            want_v6 = rng.random() < ipv6_fraction and s > 0
            vpc.subnets.append(_subnet_for(subnet_index, 6 if want_v6 else 4))
            subnet_index += 1
        # Place VMs inside the v4 subnets (v6 VMs allowed in v6 subnets).
        for v in range(max(1, vm_counts[i])):
            subnet = vpc.subnets[v % len(vpc.subnets)]
            host = 2 + (v // len(vpc.subnets)) % 250
            vm_ip = subnet.network + host
            nc_ip = topo.ncs[rng.randrange(len(topo.ncs))]
            vpc.vms.append(VmRecord(vni=vni, ip=vm_ip, version=subnet.version, nc_ip=nc_ip))
        topo.vpcs[vni] = vpc

    # Peerings between consecutive tenants (deterministic given the rng).
    vnis = topo.vnis()
    for vni in vnis:
        if rng.random() < peering_fraction and len(vnis) > 1:
            peer = vnis[(vnis.index(vni) + 1) % len(vnis)]
            if peer != vni and peer not in topo.vpcs[vni].peers:
                topo.vpcs[vni].peers.append(peer)
                topo.vpcs[peer].peers.append(vni)
    return topo
