"""Flow-level workload generators: heavy hitters and festival load curves.

The CPU-overload story (Figs. 4-7) is driven by two production facts the
paper states: flow rates are Zipf-skewed ("a single flow ... can even
reach tens of Gbps") and load peaks during shopping festivals. Both are
generated here with seeded randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..net.flow import FlowKey
from ..sim.rand import derive, make_rng, zipf_weights


@dataclass(frozen=True)
class FlowSpec:
    """One flow with its offered rate and owning tenant."""

    flow: FlowKey
    pps: float
    vni: int


def heavy_hitter_flows(
    num_flows: int,
    total_pps: float,
    seed,
    alpha: float = 1.1,
    vnis: Optional[Sequence[int]] = None,
    version: int = 4,
    max_pps: Optional[float] = None,
) -> List[FlowSpec]:
    """Zipf(alpha)-skewed flows summing to *total_pps*.

    With alpha ~ 1.1 over ~100 flows the top-1/2 flows carry the bulk of
    the traffic, matching Fig. 7's overload scenes.

    *max_pps* caps any single flow's rate (physically: a flow cannot
    exceed its sender's link — the paper's elephants reach "tens of
    Gbps", i.e. a few Mpps, not a whole region). Capped excess is
    redistributed over the uncapped tail, preserving ``total_pps``.
    """
    if num_flows <= 0:
        raise ValueError("num_flows must be positive")
    rng = derive(seed, "flows")
    weights = zipf_weights(num_flows, alpha)
    if max_pps is not None and total_pps > 0:
        if max_pps * num_flows < total_pps:
            raise ValueError("max_pps too small: total load infeasible")
        cap = max_pps / total_pps
        # Waterfill: clip heavy ranks to the cap, re-normalise the rest.
        for _ in range(num_flows):
            clipped = sum(min(w, cap) for w in weights)
            free = sum(w for w in weights if w < cap)
            if clipped >= 1.0 - 1e-12 or free == 0.0:
                break
            scale = (1.0 - sum(cap for w in weights if w >= cap)) / free
            new_weights = [cap if w >= cap else w * scale for w in weights]
            if new_weights == weights:
                break
            weights = new_weights
        total_weight = sum(weights)
        weights = [w / total_weight for w in weights]
    vni_pool = list(vnis) if vnis else [1000]
    specs = []
    for rank, weight in enumerate(weights):
        flow = FlowKey(
            src_ip=rng.randrange(1 << 32) if version == 4 else rng.randrange(1 << 128),
            dst_ip=rng.randrange(1 << 32) if version == 4 else rng.randrange(1 << 128),
            proto=6,
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice((80, 443, 8080, 3306)),
            version=version,
        )
        specs.append(FlowSpec(flow=flow, pps=weight * total_pps, vni=rng.choice(vni_pool)))
    return specs


def diurnal_multiplier(hour_of_day: float, trough: float = 0.55) -> float:
    """A smooth day/night load curve in [trough, 1.0], peaking at 21:00."""
    if not 0.0 <= hour_of_day < 24.0:
        raise ValueError("hour_of_day must be in [0, 24)")
    phase = (hour_of_day - 21.0) / 24.0 * 2.0 * math.pi
    mid = (1.0 + trough) / 2.0
    amplitude = (1.0 - trough) / 2.0
    return mid + amplitude * math.cos(phase)


def festival_series(
    days: int,
    samples_per_day: int,
    base_pps: float,
    seed,
    festival_day: Optional[int] = None,
    festival_boost: float = 2.5,
    jitter: float = 0.05,
) -> List[Tuple[float, float]]:
    """(time_days, offered_pps) samples for a (festival) week (Figs. 5, 19).

    Load follows a diurnal curve with multiplicative noise; on the
    festival day the level rises by *festival_boost* (the "Double 11"
    midnight surge).
    """
    if days <= 0 or samples_per_day <= 0:
        raise ValueError("days and samples_per_day must be positive")
    rng = derive(seed, "festival")
    samples = []
    for day in range(days):
        for s in range(samples_per_day):
            t = day + s / samples_per_day
            hour = (s / samples_per_day) * 24.0
            level = base_pps * diurnal_multiplier(hour)
            if festival_day is not None and day == festival_day:
                level *= festival_boost
            level *= 1.0 + rng.uniform(-jitter, jitter)
            samples.append((t, level))
    return samples


def split_flows_over_gateways(
    flows: Sequence[FlowSpec], num_gateways: int
) -> List[List[FlowSpec]]:
    """ECMP-style flow distribution over gateways (Fig. 6's balance).

    Uses the flow hash, as the upstream balancer does, so per-gateway
    load is balanced in aggregate but individual heavy flows stay whole.
    """
    from ..net.flow import toeplitz_hash

    if num_gateways <= 0:
        raise ValueError("num_gateways must be positive")
    buckets: List[List[FlowSpec]] = [[] for _ in range(num_gateways)]
    for spec in flows:
        buckets[toeplitz_hash(spec.flow.to_rss_input()) % num_gateways].append(spec)
    return buckets
