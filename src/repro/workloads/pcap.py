"""Export generated traffic as pcap files.

The packet model is byte-accurate, so synthetic workloads can be written
to classic libpcap files and inspected with external tools (tcpdump,
Wireshark) — handy for eyeballing the VXLAN encapsulation and for
feeding other simulators. Pure stdlib, classic pcap format (magic
0xa1b2c3d4, LINKTYPE_ETHERNET).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, List, Tuple

from ..net.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
DEFAULT_SNAPLEN = 65535


def write_pcap(
    stream: BinaryIO,
    packets: Iterable[Tuple[float, Packet]],
    snaplen: int = DEFAULT_SNAPLEN,
) -> int:
    """Write (timestamp_seconds, packet) pairs to *stream*; returns count.

    >>> import io
    >>> from repro.workloads.traffic import build_vxlan_packet
    >>> buf = io.BytesIO()
    >>> write_pcap(buf, [(0.0, build_vxlan_packet(7, 1, 2))])
    1
    """
    stream.write(
        struct.pack(
            "!IHHiIII",
            PCAP_MAGIC,
            PCAP_VERSION[0],
            PCAP_VERSION[1],
            0,  # thiszone
            0,  # sigfigs
            snaplen,
            LINKTYPE_ETHERNET,
        )
    )
    count = 0
    for timestamp, packet in packets:
        raw = packet.to_bytes()[:snaplen]
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1e6))
        stream.write(struct.pack("!IIII", seconds, micros, len(raw), len(raw)))
        stream.write(raw)
        count += 1
    return count


def read_pcap(stream: BinaryIO) -> List[Tuple[float, bytes]]:
    """Read a classic pcap back into (timestamp, raw frame) pairs."""
    header = stream.read(24)
    if len(header) < 24:
        raise ValueError("truncated pcap header")
    magic = struct.unpack("!I", header[:4])[0]
    if magic == PCAP_MAGIC:
        endian = "!"
    elif magic == 0xD4C3B2A1:
        endian = "<"
    else:
        raise ValueError(f"not a pcap file (magic {magic:#x})")
    out: List[Tuple[float, bytes]] = []
    while True:
        record = stream.read(16)
        if not record:
            break
        if len(record) < 16:
            raise ValueError("truncated pcap record header")
        seconds, micros, caplen, _origlen = struct.unpack(endian + "IIII", record)
        data = stream.read(caplen)
        if len(data) < caplen:
            raise ValueError("truncated pcap record body")
        out.append((seconds + micros / 1e6, data))
    return out


def export_sample(path: str, samples, interval: float = 1e-5) -> int:
    """Write an iterable of :class:`TrafficSample` to a pcap at *path*."""
    with open(path, "wb") as handle:
        return write_pcap(
            handle,
            ((i * interval, sample.packet) for i, sample in enumerate(samples)),
        )


def replay_pcap(path: str, forward) -> Tuple[int, int]:
    """Replay a pcap through a forwarding function.

    *forward* receives each decoded :class:`Packet` and returns a
    :class:`~repro.dataplane.gateway_logic.ForwardResult`-like object with
    an ``action``. Frames that do not decode are skipped. Returns
    ``(forwarded, skipped)``.
    """
    from ..net.headers import HeaderError

    forwarded = skipped = 0
    with open(path, "rb") as handle:
        for _timestamp, raw in read_pcap(handle):
            try:
                packet = Packet.from_bytes(raw)
            except HeaderError:
                skipped += 1
                continue
            forward(packet)
            forwarded += 1
    return forwarded, skipped
