"""Synthetic workloads: topologies, flows, packets, updates, datasets."""

from .datasets import CPU_VS_PORT_TREND, TrendPoint, growth_factors, moores_law_factor
from .flows import (
    FlowSpec,
    diurnal_multiplier,
    festival_series,
    heavy_hitter_flows,
    split_flows_over_gateways,
)
from .topology import (
    BASE_VNI,
    RegionTopology,
    SNAT_SERVICE_TARGET,
    VmRecord,
    VpcRecord,
    generate_topology,
)
from .traffic import (
    GATEWAY_UNDERLAY_IP,
    RegionTrafficGenerator,
    TrafficSample,
    build_vxlan_packet,
    inner_flow,
)
from .updates import (
    UpdateEvent,
    UpdateKind,
    entry_count_series,
    generate_update_events,
    sudden_events,
    update_rate_per_day,
)

__all__ = [
    "CPU_VS_PORT_TREND",
    "TrendPoint",
    "growth_factors",
    "moores_law_factor",
    "FlowSpec",
    "heavy_hitter_flows",
    "diurnal_multiplier",
    "festival_series",
    "split_flows_over_gateways",
    "BASE_VNI",
    "SNAT_SERVICE_TARGET",
    "RegionTopology",
    "VpcRecord",
    "VmRecord",
    "generate_topology",
    "RegionTrafficGenerator",
    "TrafficSample",
    "build_vxlan_packet",
    "inner_flow",
    "GATEWAY_UNDERLAY_IP",
    "UpdateEvent",
    "UpdateKind",
    "generate_update_events",
    "entry_count_series",
    "sudden_events",
    "update_rate_per_day",
]
