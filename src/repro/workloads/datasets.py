"""Embedded historical datasets (Fig. 8).

Fig. 8 plots Intel i7 single-/multi-core Geekbench scores against ToR
switch port speeds from 2010 to 2020. The series below are transcribed
from the figure's stated trend: port speed 10 -> 400 GbE (40x),
multi-core ~4x, single-core ~2.5x over the decade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TrendPoint:
    year: int
    single_core: float  # Geekbench-style score
    multi_core: float
    port_speed_gbps: float
    switch_example: str = ""


#: One point every two years, matching the figure's markers.
CPU_VS_PORT_TREND: Tuple[TrendPoint, ...] = (
    TrendPoint(2010, 560, 2100, 10, "Sun 10GbE Switch 72p"),
    TrendPoint(2012, 700, 2800, 40, ""),
    TrendPoint(2014, 850, 3600, 40, ""),
    TrendPoint(2016, 1000, 4700, 100, "Mellanox SN2410"),
    TrendPoint(2018, 1150, 6200, 100, "Wedge 100BF-65X"),
    TrendPoint(2020, 1400, 8400, 400, "Cisco Nexus 9364D-GX2A"),
)


def growth_factors() -> Tuple[float, float, float]:
    """(single-core, multi-core, port-speed) growth 2010 -> 2020.

    >>> single, multi, port = growth_factors()
    >>> port / single > 10  # ports outran single cores by over an order
    True
    """
    first, last = CPU_VS_PORT_TREND[0], CPU_VS_PORT_TREND[-1]
    return (
        last.single_core / first.single_core,
        last.multi_core / first.multi_core,
        last.port_speed_gbps / first.port_speed_gbps,
    )


def years() -> List[int]:
    return [p.year for p in CPU_VS_PORT_TREND]


def series(name: str) -> List[float]:
    """One named series: 'single', 'multi' or 'port'."""
    attr = {
        "single": "single_core",
        "multi": "multi_core",
        "port": "port_speed_gbps",
    }.get(name)
    if attr is None:
        raise ValueError(f"unknown series {name!r}")
    return [getattr(p, attr) for p in CPU_VS_PORT_TREND]


def moores_law_factor(years_elapsed: float, doubling_years: float = 2.0) -> float:
    """Transistor-count growth for comparison against the series."""
    if years_elapsed < 0:
        raise ValueError("years_elapsed must be non-negative")
    return 2.0 ** (years_elapsed / doubling_years)
