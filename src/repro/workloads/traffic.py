"""Packet-level traffic generation over a region topology.

Builds byte-accurate VXLAN packets for the seven canonical traffic
routes of Table 1, and samples destination entries under the measured
80/20 popularity rule ("5% of the table entries carry 95% of the
traffic") that justifies hardware/software table sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..net.flow import FlowKey
from ..net.headers import ETHERTYPE_IPV4, ETHERTYPE_IPV6, Ethernet, IPv4, IPv6, PROTO_UDP, UDP
from ..net.packet import InnerFrame, Packet
from ..sim.rand import WeightedSampler, derive
from .topology import RegionTopology, VmRecord

GATEWAY_UNDERLAY_IP = (10 << 24) | 254
VSWITCH_UNDERLAY_IP = (10 << 24) | (9 << 16) | 1


def build_vxlan_packet(
    vni: int,
    src_ip: int,
    dst_ip: int,
    version: int = 4,
    src_port: int = 49152,
    dst_port: int = 80,
    payload: bytes = b"",
    outer_src: int = VSWITCH_UNDERLAY_IP,
    outer_dst: int = GATEWAY_UNDERLAY_IP,
) -> Packet:
    """A VXLAN-encapsulated packet as the gateway receives it."""
    if version == 4:
        inner_ip = IPv4(src=src_ip, dst=dst_ip, proto=PROTO_UDP)
        ethertype = ETHERTYPE_IPV4
    else:
        inner_ip = IPv6(src=src_ip, dst=dst_ip, next_header=PROTO_UDP)
        ethertype = ETHERTYPE_IPV6
    inner = InnerFrame(
        eth=Ethernet(dst=0x02AA00000002, src=0x02AA00000001, ethertype=ethertype),
        ip=inner_ip,
        l4=UDP(src_port=src_port, dst_port=dst_port),
        payload=payload,
    )
    return Packet.vxlan_encap(
        inner,
        outer_eth=Ethernet(dst=0x02BB00000002, src=0x02BB00000001, ethertype=ETHERTYPE_IPV4),
        outer_src=outer_src,
        outer_dst=outer_dst,
        vni=vni,
    )


@dataclass(frozen=True)
class TrafficSample:
    """One generated packet plus its ground truth for assertions."""

    packet: Packet
    src_vm: VmRecord
    dst_vm: Optional[VmRecord]  # None for Internet-bound traffic
    route: str  # Table 1 route label


class RegionTrafficGenerator:
    """Samples realistic packets from a topology.

    Destination VMs are drawn from an 80/20 popularity distribution: a
    ``hot_fraction`` of VMs receives ``hot_share`` of the traffic.

    >>> # full usage in examples/festival_region.py
    """

    def __init__(
        self,
        topology: RegionTopology,
        seed,
        hot_fraction: float = 0.05,
        hot_share: float = 0.95,
        internet_share: float = 0.05,
    ):
        if not 0 < hot_fraction < 1 or not 0 < hot_share <= 1:
            raise ValueError("hot fractions must be in (0, 1)")
        self.topology = topology
        self.rng = derive(seed, "traffic")
        self.internet_share = internet_share
        self._vms: List[VmRecord] = [
            vm for vpc in topology.vpcs.values() for vm in vpc.vms
        ]
        if not self._vms:
            raise ValueError("topology has no VMs")
        hot_count = max(1, round(len(self._vms) * hot_fraction))
        cold_count = len(self._vms) - hot_count
        weights = []
        for i in range(len(self._vms)):
            if i < hot_count:
                weights.append(hot_share / hot_count)
            else:
                weights.append((1.0 - hot_share) / max(1, cold_count))
        self._sampler = WeightedSampler(weights, self.rng)
        self.hot_count = hot_count

    def sample_vm(self) -> VmRecord:
        return self._vms[self._sampler.sample()]

    def is_hot(self, vm: VmRecord) -> bool:
        """Whether a VM is in the hot set (for sharing-policy checks)."""
        return self._vms.index(vm) < self.hot_count

    def sample_packet(self) -> TrafficSample:
        """One packet: mostly VM-VM (same or peer VPC), some Internet."""
        src = self.sample_vm()
        if self.rng.random() < self.internet_share:
            # VM -> Internet: v4 goes through the 0/0 SERVICE (SNAT) entry,
            # v6 exits directly through the ::/0 INTERNET route.
            dst_ip = self.rng.randrange(1 << (32 if src.version == 4 else 128))
            packet = build_vxlan_packet(
                vni=src.vni, src_ip=src.ip, dst_ip=dst_ip, version=src.version
            )
            return TrafficSample(packet=packet, src_vm=src, dst_vm=None, route="VM-Internet")
        vpc = self.topology.vpcs[src.vni]
        if vpc.peers and self.rng.random() < 0.3:
            peer_vpc = self.topology.vpcs[self.rng.choice(vpc.peers)]
            dst = peer_vpc.vms[self.rng.randrange(len(peer_vpc.vms))]
            route = "VM-VM (different VPCs)"
        else:
            dst = self.sample_vm()
            # Stay within the source tenant for same-VPC traffic.
            if dst.vni != src.vni:
                dst = vpc.vms[self.rng.randrange(len(vpc.vms))]
            route = "VM-VM (same VPC)"
        if dst.version != src.version:
            dst = src  # fall back to a self-flow rather than mixing families
        packet = build_vxlan_packet(
            vni=src.vni, src_ip=src.ip, dst_ip=dst.ip, version=src.version
        )
        return TrafficSample(packet=packet, src_vm=src, dst_vm=dst, route=route)

    def packets(self, count: int) -> Iterator[TrafficSample]:
        for _ in range(count):
            yield self.sample_packet()


def inner_flow(sample: TrafficSample) -> FlowKey:
    """The inner 5-tuple of a generated sample."""
    src, dst, proto, sport, dport = sample.packet.inner.five_tuple()
    return FlowKey(src, dst, proto, sport, dport, version=sample.packet.inner_version)
