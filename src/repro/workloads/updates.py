"""Table-update event streams (Fig. 23, §5.2).

"For most of the time, the table is updated very slowly with sudden
increases of table entries occurring infrequently. The sudden increases
are mainly ascribed to the arrival of top customers who purchase a large
number of VMs or conduct a batch of route updates all at once."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

from ..sim.rand import derive
from ..telemetry.timeseries import TimeSeries


class UpdateKind(Enum):
    REGULAR = "regular"  # organic adds/removes
    SUDDEN = "sudden"  # top-customer batch


@dataclass(frozen=True)
class UpdateEvent:
    """One table mutation batch."""

    time_days: float
    kind: UpdateKind
    delta_entries: int  # signed


def generate_update_events(
    days: int,
    seed,
    regular_per_day: float = 24.0,
    regular_mean_delta: float = 40.0,
    sudden_probability_per_day: float = 0.1,
    sudden_mean_delta: float = 50_000.0,
    removal_fraction: float = 0.35,
) -> List[UpdateEvent]:
    """A month of updates: Poisson regular churn + rare large batches."""
    if days <= 0:
        raise ValueError("days must be positive")
    rng = derive(seed, "updates")
    events: List[UpdateEvent] = []
    for day in range(days):
        # Regular churn: small adds, occasionally removals.
        count = max(0, round(rng.gauss(regular_per_day, regular_per_day ** 0.5)))
        for _ in range(count):
            t = day + rng.random()
            delta = max(1, round(rng.expovariate(1.0 / regular_mean_delta)))
            if rng.random() < removal_fraction:
                delta = -delta
            events.append(UpdateEvent(t, UpdateKind.REGULAR, delta))
        # Sudden batch: an informed-ahead-of-time top customer onboarding.
        if rng.random() < sudden_probability_per_day:
            t = day + rng.random()
            delta = max(1, round(rng.expovariate(1.0 / sudden_mean_delta)))
            events.append(UpdateEvent(t, UpdateKind.SUDDEN, delta))
    events.sort(key=lambda e: e.time_days)
    return events


def entry_count_series(
    events: Sequence[UpdateEvent], initial_entries: int, name: str = "entries"
) -> TimeSeries:
    """Integrate events into the Fig. 23 table-size curve."""
    series = TimeSeries(name)
    current = initial_entries
    series.record(0.0, current)
    for event in events:
        current = max(0, current + event.delta_entries)
        series.record(event.time_days, current)
    return series


def sudden_events(events: Sequence[UpdateEvent]) -> List[UpdateEvent]:
    return [e for e in events if e.kind is UpdateKind.SUDDEN]


def update_rate_per_day(events: Sequence[UpdateEvent], days: int) -> float:
    """Mean mutations per day — the paper: "regular table updates occur
    at a relatively low frequency"."""
    if days <= 0:
        raise ValueError("days must be positive")
    return len(events) / days
