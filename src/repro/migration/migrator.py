"""The endpoint migration protocol (DESIGN §11).

Four phases, engine-driven, every one of which either completes or
rolls back to the source binding:

1. **pre-copy** — the destination binding is installed on every member
   as an inactive *shadow* (:class:`~repro.dataplane.migration.ShadowBinding`),
   and the endpoint key is frozen: arriving packets park in the
   gateway's bounded :class:`~repro.dataplane.migration.MigrationBuffer`
   instead of chasing a binding that is about to move.
2. **freeze window** — the blackout. Bounded two ways: the buffer
   capacity (overflow drops under ``migration-buffer-overflow``) and the
   blackout budget (arrivals after the deadline drop under
   ``migration-blackout``).
3. **commit** — one :meth:`Controller.transaction` atomically flips the
   VM-NC binding on every member (bumping the VM table generation, so
   flow-cache entries die), and rewrites the endpoint's SNAT sessions as
   a staged side effect — same public tuple, so established connections
   survive. A ``CONTROLLER_CRASH`` here kills the controller before any
   member saw the flip; the freeze/shadow state left on the gateways is
   the ``MigrationResidue`` the audit detects and repairs.
4. **replay** — the buffer drains through the committed path (or back
   through the intact source binding on rollback), the endpoint
   unfreezes, and the shadow is discarded.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..cluster.cluster import NodeState
from ..core.controller import Controller, TransactionAborted, VmEntry
from ..core.journal import ControllerCrash, canonical_json
from ..dataplane.gateway_logic import ForwardAction
from ..dataplane.migration import EndpointKey, MigrationState, ensure_migration_state
from ..sim.engine import Engine
from ..tables.vm_nc import NcBinding
from ..telemetry.stats import CounterSet


class MigrationStatus:
    """The migration state machine's states (plain strings, log-stable)."""

    PENDING = "pending"
    FROZEN = "frozen"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled-back"
    CRASHED = "crashed"


@dataclass(frozen=True)
class MigrationEvent:
    """One protocol step, for the byte-stable event log."""

    migration_id: str
    phase: str
    time: float
    detail: str = ""

    def to_payload(self) -> dict:
        return {"migration": self.migration_id, "phase": self.phase,
                "time": self.time, "detail": self.detail}


@dataclass
class MigrationRecord:
    """Everything the migrator tracks about one endpoint move."""

    migration_id: str
    vni: int
    vm_ip: int
    version: int
    old_binding: NcBinding
    new_binding: NcBinding
    new_vm_ip: Optional[int]
    started_at: float
    deadline: float
    status: str = MigrationStatus.PENDING
    reason: str = ""
    #: Phases that already consumed their one stall decision.
    stalled_phases: Set[str] = field(default_factory=set)
    #: Per-member buffer-overflow tallies at freeze time.
    overflow_baseline: Dict[str, int] = field(default_factory=dict)
    replayed: int = 0
    replay_lost: int = 0
    replay_latencies: List[float] = field(default_factory=list)

    @property
    def key(self) -> EndpointKey:
        return (self.vni, self.vm_ip, self.version)

    @property
    def added_p99_latency(self) -> float:
        """The p99 of the latency the freeze window added to replayed
        packets (0 when nothing was buffered)."""
        if not self.replay_latencies:
            return 0.0
        ordered = sorted(self.replay_latencies)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[index]


class EndpointMigrator:
    """Drives live endpoint migrations against one cluster.

    *blackout_budget* bounds the freeze window in engine seconds;
    *copy_time* models the hypervisor's checkpoint/copy between freeze
    and commit; *buffer_capacity* sizes each member's
    :class:`MigrationBuffer`. With *abort_on_overflow* (default), a
    freeze window that overflowed its buffer rolls back instead of
    committing — the paper's bar is zero *connection* loss, and a
    migration that already dropped packets of the frozen flows cannot
    claim it.
    """

    def __init__(
        self,
        controller: Controller,
        cluster_id: str,
        engine: Engine,
        blackout_budget: float = 1.0,
        copy_time: float = 0.5,
        buffer_capacity: int = 256,
        abort_on_overflow: bool = True,
    ):
        if copy_time > blackout_budget:
            raise ValueError("copy_time exceeds the blackout budget: "
                             "every migration would roll back")
        self.controller = controller
        self.cluster_id = cluster_id
        self.engine = engine
        self.blackout_budget = blackout_budget
        self.copy_time = copy_time
        self.buffer_capacity = buffer_capacity
        self.abort_on_overflow = abort_on_overflow
        self.records: Dict[str, MigrationRecord] = {}
        self.events: List[MigrationEvent] = []
        self.counters = CounterSet()
        #: Armed by :meth:`FaultInjector.arm_migrator`:
        #: ``fault_gate(phase, cluster_id) -> Optional[stall_seconds]``.
        self.fault_gate: Optional[Callable[[str, str], Optional[float]]] = None
        self._sequence = 0

    # -- public API ----------------------------------------------------

    def migrate_vm(
        self,
        vni: int,
        vm_ip: int,
        version: int,
        new_binding: NcBinding,
        new_vm_ip: Optional[int] = None,
        start: Optional[float] = None,
    ) -> str:
        """Schedule one VM's migration to *new_binding*; returns its id.

        The move begins at *start* (default: now). *new_vm_ip* re-keys
        the endpoint (a re-addressing move); SNAT sessions are rewritten
        inside the commit transaction so their public tuples survive.
        """
        old_binding = self._desired_binding(vni, vm_ip, version)
        if old_binding is None:
            raise ValueError(f"vm ({vni}, {vm_ip:#x}, v{version}) is not "
                             f"in {self.cluster_id}'s desired state")
        migration_id = f"mig-{self._sequence:04d}"
        self._sequence += 1
        at = self.engine.now if start is None else start
        record = MigrationRecord(
            migration_id, vni, vm_ip, version, old_binding, new_binding,
            new_vm_ip, started_at=at, deadline=at + self.blackout_budget,
        )
        self.records[migration_id] = record
        self.engine.schedule(at, lambda: self._begin(migration_id))
        return migration_id

    def drain_nc(self, nc_ip: int, dest_nc_ip: int,
                 start: Optional[float] = None) -> List[str]:
        """Migrate every VM hosted on *nc_ip* to *dest_nc_ip* (the batch
        variant: draining a whole NC for maintenance).

        Migrations are staggered one full window apart so the shared
        per-gateway buffer serves one freeze at a time.
        """
        at = self.engine.now if start is None else start
        spacing = self.copy_time + self.blackout_budget
        ids = []
        for index, entry in enumerate(e for e in
                                      self.controller.vm_entries(self.cluster_id)
                                      if e.binding.nc_ip == nc_ip):
            ids.append(self.migrate_vm(
                entry.vni, entry.vm_ip, entry.version,
                NcBinding(nc_ip=dest_nc_ip,
                          nc_version=entry.binding.nc_version),
                start=at + index * spacing,
            ))
        return ids

    def summary(self) -> Dict[str, int]:
        """Migration counts by terminal/live status."""
        out: Dict[str, int] = {}
        for record in self.records.values():
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def dump_events(self) -> bytes:
        """The journal-framed event log (``seq|migration|phase|payload|crc``
        lines over canonical JSON). Byte-stable: the same seeded run
        always produces identical bytes — the replayability property the
        bench pins."""
        lines = []
        for seq, event in enumerate(self.events):
            body = (f"{seq}|{event.migration_id}|{event.phase}|"
                    f"{canonical_json(event.to_payload())}")
            crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
            lines.append(f"{body}|{crc:08x}\n")
        return "".join(lines).encode("utf-8")

    # -- internals -----------------------------------------------------

    def _desired_binding(self, vni: int, vm_ip: int,
                         version: int) -> Optional[NcBinding]:
        for entry in self.controller.vm_entries(self.cluster_id):
            if (entry.vni, entry.vm_ip, entry.version) == (vni, vm_ip, version):
                return entry.binding
        return None

    def _log(self, migration_id: str, phase: str, detail: str = "") -> None:
        self.events.append(MigrationEvent(migration_id, phase,
                                          self.engine.now, detail))

    def _members(self):
        return self.controller.clusters[self.cluster_id].all_members()

    def _states(self) -> List[Tuple[str, MigrationState]]:
        return [(m.name, ensure_migration_state(m.gateway, self.buffer_capacity))
                for m in self._members()]

    def _stall(self, record: MigrationRecord, phase: str,
               resume: Callable[[], None]) -> bool:
        """Consult the fault gate once per phase; True when stalled (the
        phase re-runs after the stall)."""
        if self.fault_gate is None or phase in record.stalled_phases:
            return False
        stall = self.fault_gate(phase, self.cluster_id)
        if stall is None:
            return False
        record.stalled_phases.add(phase)
        self._log(record.migration_id, "stalled", f"{phase}+{stall:g}s")
        self.counters.add("stalls")
        self.engine.schedule_in(stall, resume)
        return True

    def _begin(self, migration_id: str) -> None:
        """Phase 1+2: install shadows, open the freeze window."""
        record = self.records[migration_id]
        if self._stall(record, "pre-copy",
                       lambda: self._begin(migration_id)):
            # The whole window shifts with a pre-copy stall: nothing is
            # frozen yet, so flows keep forwarding on the source binding.
            return
        record.started_at = self.engine.now
        record.deadline = self.engine.now + self.blackout_budget
        self.controller.active_migrations.add(migration_id)
        for name, state in self._states():
            state.install_shadow(record.key, migration_id,
                                 record.new_binding.nc_ip)
            record.overflow_baseline[name] = state.buffer.overflowed
            state.freeze(record.key, migration_id, self.engine.now,
                         record.deadline)
        record.status = MigrationStatus.FROZEN
        self._log(migration_id, "pre-copy",
                  f"vni={record.vni} vm={record.vm_ip:#x} "
                  f"nc={record.old_binding.nc_ip:#x}->{record.new_binding.nc_ip:#x}")
        self._log(migration_id, "freeze",
                  f"deadline={record.deadline:g}")
        self.counters.add("started")
        self.engine.schedule_in(self.copy_time,
                                lambda: self._commit(migration_id))

    def _overflowed(self, record: MigrationRecord) -> int:
        total = 0
        for name, state in self._states():
            total += state.buffer.overflowed - \
                record.overflow_baseline.get(name, 0)
        return total

    def _commit(self, migration_id: str) -> None:
        """Phase 3: the atomic flip, inside the abort envelope."""
        record = self.records[migration_id]
        if self.engine.now > record.deadline:
            self._rollback(migration_id, "blackout-budget-exceeded")
            return
        if self._stall(record, "commit",
                       lambda: self._commit(migration_id)):
            return
        if self.abort_on_overflow and self._overflowed(record):
            self._rollback(migration_id, "buffer-overflow")
            return
        target_ip = record.new_vm_ip if record.new_vm_ip is not None \
            else record.vm_ip
        try:
            with self.controller.transaction(self.cluster_id,
                                             time=self.engine.now) as txn:
                if record.new_vm_ip is not None:
                    txn.remove_vm(record.vni, record.vm_ip, record.version)
                txn.install_vm(VmEntry(record.vni, target_ip, record.version,
                                       record.new_binding))
                for member in self._members():
                    service = getattr(member.gateway, "snat_service", None)
                    if service is None or record.new_vm_ip is None:
                        continue
                    txn.stage_side_effect(
                        f"snat-rewrite:{member.name}",
                        lambda s=service: s.rewrite_endpoint(
                            record.vm_ip, record.new_vm_ip),
                        lambda s=service: s.rewrite_endpoint(
                            record.new_vm_ip, record.vm_ip),
                    )
        except ControllerCrash as crash:
            # The controller died between the journal append and the
            # first member push: no member saw the flip, and nobody is
            # left to unfreeze — the residue on the gateways is exactly
            # what the MigrationResidue invariant exists to find.
            record.status = MigrationStatus.CRASHED
            record.reason = str(crash)
            self._log(migration_id, "crashed", record.reason)
            self.counters.add("crashed")
            return
        except TransactionAborted as abort:
            self._rollback(migration_id, f"txn-aborted: {abort}")
            return
        self._log(migration_id, "commit",
                  f"binding flipped to {record.new_binding.nc_ip:#x}")
        self._replay(migration_id, committed=True)

    def _replay(self, migration_id: str, committed: bool) -> None:
        """Phase 4: drain buffers through the surviving path, unfreeze."""
        record = self.records[migration_id]
        if committed and self._stall(record, "replay",
                                     lambda: self._replay(migration_id, True)):
            return
        fallback = None
        for member in self._members():
            if member.state is NodeState.ACTIVE:
                fallback = member
                break
        # Tear down every member's freeze *before* forwarding anything:
        # a packet replayed through a sibling that is still frozen would
        # be intercepted and buffered a second time.
        drained = [(member, ensure_migration_state(
                        member.gateway, self.buffer_capacity).abort(migration_id))
                   for member in self._members()]
        for member, buffered in drained:
            if not buffered:
                continue
            # Replay through the member that buffered, unless it died
            # during the freeze (member crash fault) — then any active
            # sibling holds the same committed tables.
            target = member if member.state is NodeState.ACTIVE else fallback
            if target is None:
                record.replay_lost += len(buffered)
                continue
            for item in buffered:
                packet = item.packet
                if committed and record.new_vm_ip is not None:
                    packet = dc_replace(
                        packet,
                        inner=dc_replace(
                            packet.inner,
                            ip=packet.inner.ip.replace_dst(record.new_vm_ip)),
                    )
                result = target.gateway.forward(packet, self.engine.now)
                record.replayed += 1
                record.replay_latencies.append(
                    self.engine.now - item.buffered_at)
                if result.action is ForwardAction.DROP:
                    record.replay_lost += 1
        self.controller.active_migrations.discard(migration_id)
        if committed:
            record.status = MigrationStatus.COMMITTED
            self.counters.add("committed")
        self._log(migration_id, "replay",
                  f"replayed={record.replayed} lost={record.replay_lost}")
        if committed:
            self._log(migration_id, "committed", "")

    def _rollback(self, migration_id: str, reason: str) -> None:
        """Abort back to the source binding: no table was flipped, so
        draining the buffer through any member completes the in-flight
        flows on the old path — zero connection loss, just no move."""
        record = self.records[migration_id]
        record.reason = reason
        self._log(migration_id, "rollback", reason)
        self._replay(migration_id, committed=False)
        record.status = MigrationStatus.ROLLED_BACK
        self.counters.add("rolled_back")
        self._log(migration_id, "rolled-back", reason)
