"""Hitless live endpoint migration (DESIGN §11).

``repro.migration`` moves a VM — or a whole NC's worth of VMs — between
hosts while flows are in flight, extending the drain/readmit discipline
of :class:`~repro.cluster.upgrade.UpgradeOrchestrator` from gateways
down to endpoints: pre-copy the destination binding as an inactive
shadow, freeze the endpoint behind a bounded gateway buffer, commit the
binding flip (and the SNAT session rewrite) in one controller
transaction, then replay the buffered packets through the new path.
Every phase either completes or rolls back to the source binding.
"""

from .migrator import (
    EndpointMigrator,
    MigrationEvent,
    MigrationRecord,
    MigrationStatus,
)

__all__ = [
    "EndpointMigrator",
    "MigrationEvent",
    "MigrationRecord",
    "MigrationStatus",
]
