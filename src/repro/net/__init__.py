"""Network primitives: addresses, headers, packets, flows, checksums."""

from .addr import IPAddress, Prefix, format_ip, mask_for, network_of, parse_ip
from .checksum import internet_checksum, verify_checksum
from .flow import FlowKey, rss_queue, symmetric_flow_hash, toeplitz_hash
from .headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    PROTO_TCP,
    PROTO_UDP,
    VXLAN_PORT,
    Ethernet,
    HeaderError,
    IPv4,
    IPv6,
    TCP,
    UDP,
    VXLAN,
    format_mac,
    parse_mac,
)
from .packet import InnerFrame, Packet

__all__ = [
    "IPAddress",
    "Prefix",
    "parse_ip",
    "format_ip",
    "mask_for",
    "network_of",
    "internet_checksum",
    "verify_checksum",
    "FlowKey",
    "toeplitz_hash",
    "rss_queue",
    "symmetric_flow_hash",
    "Ethernet",
    "IPv4",
    "IPv6",
    "UDP",
    "TCP",
    "VXLAN",
    "HeaderError",
    "parse_mac",
    "format_mac",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "PROTO_TCP",
    "PROTO_UDP",
    "VXLAN_PORT",
    "InnerFrame",
    "Packet",
]
