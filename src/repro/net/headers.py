"""Wire-format header codecs for the protocols the gateway handles.

Each header is a small dataclass with ``pack()``/``unpack()`` implementing
the real wire format, so the simulated data plane operates on byte-accurate
packets (VXLAN per RFC 7348). Only the fields the gateway touches are
modelled as attributes; everything else is carried verbatim.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

from .checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD

PROTO_TCP = 6
PROTO_UDP = 17

VXLAN_PORT = 4789
VXLAN_FLAG_VNI_VALID = 0x08

ETH_LEN = 14
IPV4_MIN_LEN = 20
IPV6_LEN = 40
UDP_LEN = 8
TCP_MIN_LEN = 20
VXLAN_LEN = 8


class HeaderError(ValueError):
    """Raised when bytes cannot be decoded as the expected header."""


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise HeaderError(f"bad MAC address: {text!r}")
    return int("".join(parts), 16)


def format_mac(value: int) -> str:
    """Format a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    raw = value.to_bytes(6, "big")
    return ":".join(f"{b:02x}" for b in raw)


@dataclass(frozen=True)
class Ethernet:
    """Ethernet II header."""

    dst: int
    src: int
    ethertype: int

    def pack(self) -> bytes:
        return self.dst.to_bytes(6, "big") + self.src.to_bytes(6, "big") + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["Ethernet", bytes]:
        if len(raw) < ETH_LEN:
            raise HeaderError("truncated Ethernet header")
        dst = int.from_bytes(raw[0:6], "big")
        src = int.from_bytes(raw[6:12], "big")
        (ethertype,) = struct.unpack("!H", raw[12:14])
        return cls(dst, src, ethertype), raw[ETH_LEN:]


@dataclass(frozen=True)
class IPv4:
    """IPv4 header (no options)."""

    src: int
    dst: int
    proto: int
    ttl: int = 64
    tos: int = 0
    ident: int = 0
    flags: int = 0
    total_length: int = 0  # filled by pack() from payload_len when zero

    version: int = field(default=4, init=False, repr=False)

    def pack(self, payload_len: int) -> bytes:
        total = self.total_length or (IPV4_MIN_LEN + payload_len)
        head = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.tos,
            total,
            self.ident,
            self.flags << 13,
            self.ttl,
            self.proto,
            0,
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        csum = internet_checksum(head)
        return head[:10] + struct.pack("!H", csum) + head[12:]

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["IPv4", bytes]:
        if len(raw) < IPV4_MIN_LEN:
            raise HeaderError("truncated IPv4 header")
        ver_ihl = raw[0]
        if ver_ihl >> 4 != 4:
            raise HeaderError(f"not IPv4 (version={ver_ihl >> 4})")
        ihl = (ver_ihl & 0xF) * 4
        if ihl < IPV4_MIN_LEN or len(raw) < ihl:
            raise HeaderError("bad IPv4 IHL")
        tos = raw[1]
        (total,) = struct.unpack("!H", raw[2:4])
        (ident,) = struct.unpack("!H", raw[4:6])
        (frag,) = struct.unpack("!H", raw[6:8])
        ttl, proto = raw[8], raw[9]
        src = int.from_bytes(raw[12:16], "big")
        dst = int.from_bytes(raw[16:20], "big")
        hdr = cls(
            src=src,
            dst=dst,
            proto=proto,
            ttl=ttl,
            tos=tos,
            ident=ident,
            flags=frag >> 13,
            total_length=total,
        )
        return hdr, raw[ihl:]

    def replace_dst(self, dst: int) -> "IPv4":
        return IPv4(self.src, dst, self.proto, self.ttl, self.tos, self.ident, self.flags)

    def replace_src(self, src: int) -> "IPv4":
        return IPv4(src, self.dst, self.proto, self.ttl, self.tos, self.ident, self.flags)

    def replace_src_dst(self, src: int, dst: int) -> "IPv4":
        """Fused src+dst rewrite: one header allocation instead of two."""
        return IPv4(src, dst, self.proto, self.ttl, self.tos, self.ident, self.flags)

    def decrement_ttl(self) -> "IPv4":
        if self.ttl <= 0:
            raise HeaderError("TTL exceeded")
        return IPv4(self.src, self.dst, self.proto, self.ttl - 1, self.tos, self.ident, self.flags)


@dataclass(frozen=True)
class IPv6:
    """IPv6 fixed header."""

    src: int
    dst: int
    next_header: int
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0  # filled by pack() when zero

    version: int = field(default=6, init=False, repr=False)

    def pack(self, payload_len: int) -> bytes:
        plen = self.payload_length or payload_len
        first = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        return (
            struct.pack("!IHBB", first, plen, self.next_header, self.hop_limit)
            + self.src.to_bytes(16, "big")
            + self.dst.to_bytes(16, "big")
        )

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["IPv6", bytes]:
        if len(raw) < IPV6_LEN:
            raise HeaderError("truncated IPv6 header")
        (first,) = struct.unpack("!I", raw[0:4])
        if first >> 28 != 6:
            raise HeaderError(f"not IPv6 (version={first >> 28})")
        (plen,) = struct.unpack("!H", raw[4:6])
        next_header, hop_limit = raw[6], raw[7]
        src = int.from_bytes(raw[8:24], "big")
        dst = int.from_bytes(raw[24:40], "big")
        hdr = cls(
            src=src,
            dst=dst,
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(first >> 20) & 0xFF,
            flow_label=first & 0xFFFFF,
            payload_length=plen,
        )
        return hdr, raw[IPV6_LEN:]

    @property
    def proto(self) -> int:
        """Alias matching :class:`IPv4` for uniform handling."""
        return self.next_header

    def replace_dst(self, dst: int) -> "IPv6":
        return IPv6(self.src, dst, self.next_header, self.hop_limit, self.traffic_class, self.flow_label)

    def replace_src(self, src: int) -> "IPv6":
        return IPv6(src, self.dst, self.next_header, self.hop_limit, self.traffic_class, self.flow_label)

    def replace_src_dst(self, src: int, dst: int) -> "IPv6":
        """Fused src+dst rewrite: one header allocation instead of two."""
        return IPv6(src, dst, self.next_header, self.hop_limit, self.traffic_class, self.flow_label)

    def decrement_ttl(self) -> "IPv6":
        if self.hop_limit <= 0:
            raise HeaderError("hop limit exceeded")
        return IPv6(self.src, self.dst, self.next_header, self.hop_limit - 1, self.traffic_class, self.flow_label)


@dataclass(frozen=True)
class UDP:
    """UDP header (checksum optional in the simulator: 0 when unset)."""

    src_port: int
    dst_port: int
    length: int = 0  # filled by pack() when zero
    checksum: int = 0

    def pack(self, payload_len: int) -> bytes:
        length = self.length or (UDP_LEN + payload_len)
        return struct.pack("!HHHH", self.src_port, self.dst_port, length, self.checksum)

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["UDP", bytes]:
        if len(raw) < UDP_LEN:
            raise HeaderError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", raw[:UDP_LEN])
        return cls(src_port, dst_port, length, checksum), raw[UDP_LEN:]

    def replace_src_port(self, port: int) -> "UDP":
        return UDP(port, self.dst_port, 0, 0)


@dataclass(frozen=True)
class TCP:
    """TCP header (no options)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0

    def pack(self, payload_len: int = 0) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x1FF)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            self.checksum,
            0,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["TCP", bytes]:
        if len(raw) < TCP_MIN_LEN:
            raise HeaderError("truncated TCP header")
        src_port, dst_port, seq, ack, offset_flags, window, checksum, _urg = struct.unpack(
            "!HHIIHHHH", raw[:TCP_MIN_LEN]
        )
        data_offset = (offset_flags >> 12) * 4
        if data_offset < TCP_MIN_LEN or len(raw) < data_offset:
            raise HeaderError("bad TCP data offset")
        hdr = cls(src_port, dst_port, seq, ack, offset_flags & 0x1FF, window, checksum)
        return hdr, raw[data_offset:]

    def replace_src_port(self, port: int) -> "TCP":
        return TCP(port, self.dst_port, self.seq, self.ack, self.flags, self.window, 0)


@dataclass(frozen=True)
class VXLAN:
    """VXLAN header per RFC 7348: flags byte, 24-bit VNI, reserved fields."""

    vni: int
    flags: int = VXLAN_FLAG_VNI_VALID

    def pack(self) -> bytes:
        if not 0 <= self.vni < (1 << 24):
            raise HeaderError(f"VNI {self.vni} out of 24-bit range")
        return struct.pack("!BBHI", self.flags, 0, 0, self.vni << 8)

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["VXLAN", bytes]:
        if len(raw) < VXLAN_LEN:
            raise HeaderError("truncated VXLAN header")
        flags = raw[0]
        (word,) = struct.unpack("!I", raw[4:8])
        if not flags & VXLAN_FLAG_VNI_VALID:
            raise HeaderError("VXLAN I-flag not set")
        return cls(vni=word >> 8, flags=flags), raw[VXLAN_LEN:]
