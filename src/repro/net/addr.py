"""IP address and prefix primitives.

All addresses are stored as plain Python integers for speed: forwarding
tables in this project perform millions of lookups, and constructing
:mod:`ipaddress` objects per packet is an order of magnitude slower than
integer arithmetic. The classes here are thin, immutable wrappers used at
API boundaries; hot paths pass the raw ``int`` around.

Conventions
-----------
* IPv4 addresses are ints in ``[0, 2**32)``, IPv6 in ``[0, 2**128)``.
* A *version* is the literal ``4`` or ``6``.
* A prefix is ``(address, prefix_len)`` with the host bits zeroed.
"""

from __future__ import annotations

import ipaddress
from typing import Iterator, Tuple, Union

IPV4_BITS = 32
IPV6_BITS = 128

_V4_MAX = (1 << IPV4_BITS) - 1
_V6_MAX = (1 << IPV6_BITS) - 1


def bits_for_version(version: int) -> int:
    """Return the address width in bits for IP *version* (4 or 6)."""
    if version == 4:
        return IPV4_BITS
    if version == 6:
        return IPV6_BITS
    raise ValueError(f"unknown IP version: {version!r}")


def parse_ip(text: str) -> Tuple[int, int]:
    """Parse dotted-quad or colon-hex *text* into ``(value, version)``."""
    addr = ipaddress.ip_address(text)
    return int(addr), addr.version


def format_ip(value: int, version: int) -> str:
    """Format integer *value* as the canonical textual IP address."""
    if version == 4:
        return str(ipaddress.IPv4Address(value))
    if version == 6:
        return str(ipaddress.IPv6Address(value))
    raise ValueError(f"unknown IP version: {version!r}")


def mask_for(prefix_len: int, version: int) -> int:
    """Return the network mask integer for *prefix_len* bits."""
    bits = bits_for_version(version)
    if not 0 <= prefix_len <= bits:
        raise ValueError(f"prefix length {prefix_len} out of range for IPv{version}")
    if prefix_len == 0:
        return 0
    return ((1 << prefix_len) - 1) << (bits - prefix_len)


def network_of(value: int, prefix_len: int, version: int) -> int:
    """Zero the host bits of *value* under *prefix_len*."""
    return value & mask_for(prefix_len, version)


def ip_in_prefix(value: int, net: int, prefix_len: int, version: int) -> bool:
    """True when address *value* falls inside ``net/prefix_len``."""
    return (value & mask_for(prefix_len, version)) == net


class IPAddress:
    """An immutable IP address (either family), int-backed.

    >>> IPAddress.parse("192.168.10.2").version
    4
    >>> int(IPAddress.parse("::1"))
    1
    """

    __slots__ = ("value", "version")

    def __init__(self, value: int, version: int):
        bits = bits_for_version(version)
        if not 0 <= value < (1 << bits):
            raise ValueError(f"address {value:#x} out of range for IPv{version}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "version", version)

    def __setattr__(self, name, val):  # pragma: no cover - immutability guard
        raise AttributeError("IPAddress is immutable")

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        value, version = parse_ip(text)
        return cls(value, version)

    @classmethod
    def v4(cls, text_or_int: Union[str, int]) -> "IPAddress":
        if isinstance(text_or_int, str):
            return cls.parse(text_or_int)
        return cls(text_or_int, 4)

    @classmethod
    def v6(cls, text_or_int: Union[str, int]) -> "IPAddress":
        if isinstance(text_or_int, str):
            return cls.parse(text_or_int)
        return cls(text_or_int, 6)

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, IPAddress):
            return self.value == other.value and self.version == other.version
        return NotImplemented

    def __lt__(self, other: "IPAddress") -> bool:
        return (self.version, self.value) < (other.version, other.value)

    def __hash__(self) -> int:
        return hash((self.version, self.value))

    def __str__(self) -> str:
        return format_ip(self.value, self.version)

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"

    @property
    def bits(self) -> int:
        return bits_for_version(self.version)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(self.bits // 8, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IPAddress":
        if len(raw) == 4:
            return cls(int.from_bytes(raw, "big"), 4)
        if len(raw) == 16:
            return cls(int.from_bytes(raw, "big"), 6)
        raise ValueError(f"expected 4 or 16 bytes, got {len(raw)}")


class Prefix:
    """An immutable IP prefix ``network/len`` (either family).

    Host bits must be zero; use :meth:`of` to normalise an arbitrary
    address into its covering prefix.

    >>> str(Prefix.parse("192.168.10.0/24"))
    '192.168.10.0/24'
    >>> Prefix.parse("10.0.0.0/8").contains_ip(IPAddress.parse("10.1.2.3").value)
    True
    """

    __slots__ = ("network", "prefix_len", "version")

    def __init__(self, network: int, prefix_len: int, version: int):
        bits = bits_for_version(version)
        if not 0 <= prefix_len <= bits:
            raise ValueError(f"prefix length {prefix_len} out of range for IPv{version}")
        if network & ~mask_for(prefix_len, version):
            raise ValueError("host bits set in prefix network address")
        if not 0 <= network < (1 << bits):
            raise ValueError("network address out of range")
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "prefix_len", prefix_len)
        object.__setattr__(self, "version", version)

    def __setattr__(self, name, val):  # pragma: no cover - immutability guard
        raise AttributeError("Prefix is immutable")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        net = ipaddress.ip_network(text, strict=True)
        return cls(int(net.network_address), net.prefixlen, net.version)

    @classmethod
    def of(cls, value: int, prefix_len: int, version: int) -> "Prefix":
        """Build the prefix covering *value*, zeroing host bits."""
        return cls(network_of(value, prefix_len, version), prefix_len, version)

    @classmethod
    def host(cls, addr: IPAddress) -> "Prefix":
        """The /32 or /128 prefix for a single host."""
        return cls(addr.value, addr.bits, addr.version)

    @property
    def bits(self) -> int:
        return bits_for_version(self.version)

    @property
    def mask(self) -> int:
        return mask_for(self.prefix_len, self.version)

    def contains_ip(self, value: int) -> bool:
        """True when integer address *value* is inside this prefix."""
        return (value & self.mask) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when *other* is equal to or more specific than this prefix."""
        return (
            other.version == self.version
            and other.prefix_len >= self.prefix_len
            and (other.network & self.mask) == self.network
        )

    def key_bits(self) -> Tuple[int, int]:
        """The left-aligned key bits and their count, for trie insertion."""
        return self.network >> (self.bits - self.prefix_len) if self.prefix_len else 0, self.prefix_len

    def hosts(self, limit: int = 1 << 20) -> Iterator[int]:
        """Iterate host addresses in the prefix (bounded by *limit*)."""
        size = 1 << (self.bits - self.prefix_len)
        for offset in range(min(size, limit)):
            yield self.network + offset

    def __eq__(self, other) -> bool:
        if isinstance(other, Prefix):
            return (
                self.network == other.network
                and self.prefix_len == other.prefix_len
                and self.version == other.version
            )
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        return (self.version, self.network, self.prefix_len) < (
            other.version,
            other.network,
            other.prefix_len,
        )

    def __hash__(self) -> int:
        return hash((self.version, self.network, self.prefix_len))

    def __str__(self) -> str:
        return f"{format_ip(self.network, self.version)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"
