"""Flow identification and RSS hashing.

``FlowKey`` is the canonical 5-tuple used by the software-gateway
simulator; :func:`toeplitz_hash` is the real Toeplitz RSS hash (with the
standard Microsoft verification key) that NICs use to spread flows over
RX queues, so the balls-into-bins behaviour in the Fig. 4/7 experiments
matches what DPDK hardware actually does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# The de-facto standard 40-byte RSS key from the Microsoft RSS verification
# suite; DPDK and most NIC drivers ship it as the default.
MSFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


@dataclass(frozen=True, order=True)
class FlowKey:
    """A transport 5-tuple identifying a flow."""

    src_ip: int
    dst_ip: int
    proto: int
    src_port: int
    dst_port: int
    version: int = 4

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(
            self.dst_ip, self.src_ip, self.proto, self.dst_port, self.src_port, self.version
        )

    def to_rss_input(self) -> bytes:
        """The byte string hashed by RSS for this flow (addresses + ports)."""
        width = 4 if self.version == 4 else 16
        return (
            self.src_ip.to_bytes(width, "big")
            + self.dst_ip.to_bytes(width, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
        )


def toeplitz_hash(data: bytes, key: bytes = MSFT_RSS_KEY) -> int:
    """Compute the 32-bit Toeplitz hash of *data* under *key*.

    Verified against the canonical Microsoft RSS test vectors in the test
    suite.
    """
    if len(key) < len(data) + 4:
        raise ValueError("RSS key too short for input")
    result = 0
    # Sliding 32-bit window over the key, shifted one bit per input bit.
    window = int.from_bytes(key[:4], "big")
    key_bits = int.from_bytes(key, "big")
    total_key_bits = len(key) * 8
    bit_index = 0
    for byte in data:
        for bit in range(8):
            if byte & (0x80 >> bit):
                shift = total_key_bits - 32 - bit_index
                window = (key_bits >> shift) & 0xFFFFFFFF
                result ^= window
            bit_index += 1
    return result


def rss_queue(flow: FlowKey, num_queues: int, key: bytes = MSFT_RSS_KEY) -> int:
    """Map *flow* to an RX queue index the way an RSS-enabled NIC does.

    Real NICs use an indirection table indexed by the low 7 bits of the
    Toeplitz hash; with the default identity-modulo table that reduces to
    ``hash % num_queues``, which is what we model.
    """
    if num_queues <= 0:
        raise ValueError("num_queues must be positive")
    return toeplitz_hash(flow.to_rss_input(), key) % num_queues


def symmetric_flow_hash(flow: FlowKey) -> int:
    """A direction-independent 64-bit flow hash (for connection tables)."""
    a = (flow.src_ip, flow.src_port)
    b = (flow.dst_ip, flow.dst_port)
    lo, hi = (a, b) if a <= b else (b, a)
    return hash((lo, hi, flow.proto, flow.version)) & 0xFFFFFFFFFFFFFFFF
