"""Internet checksum (RFC 1071) used by the IPv4/UDP/TCP header codecs."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement internet checksum of *data*.

    Odd-length input is zero-padded on the right, per RFC 1071.

    >>> internet_checksum(bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")) == 0
    True
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when *data* (including its embedded checksum field) sums to zero."""
    return internet_checksum(data) == 0


def pseudo_header_v4(src: int, dst: int, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header bytes used by UDP/TCP checksums."""
    return (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + b"\x00"
        + bytes([proto])
        + length.to_bytes(2, "big")
    )


def pseudo_header_v6(src: int, dst: int, proto: int, length: int) -> bytes:
    """IPv6 pseudo-header bytes used by UDP/TCP checksums."""
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + length.to_bytes(4, "big")
        + b"\x00\x00\x00"
        + bytes([proto])
    )
