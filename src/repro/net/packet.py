"""Packet model: plain and VXLAN-encapsulated packets.

The simulator mostly moves :class:`Packet` objects around in structured
form (decoded headers + payload) and only serialises to bytes at the
"wire" boundaries, mirroring how a real pipeline keeps parsed header
vectors. Round-tripping through :meth:`Packet.to_bytes` and
:meth:`Packet.from_bytes` is byte-exact and covered by property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from .headers import (
    ETH_LEN,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IPV4_MIN_LEN,
    IPV6_LEN,
    PROTO_TCP,
    PROTO_UDP,
    TCP_MIN_LEN,
    UDP_LEN,
    VXLAN_LEN,
    VXLAN_PORT,
    Ethernet,
    HeaderError,
    IPv4,
    IPv6,
    TCP,
    UDP,
    VXLAN,
)

IPHeader = Union[IPv4, IPv6]
L4Header = Union[UDP, TCP]


def _ip_len(ip: IPHeader) -> int:
    return IPV4_MIN_LEN if ip.version == 4 else IPV6_LEN


def _l4_len(l4: Optional[L4Header]) -> int:
    if l4 is None:
        return 0
    return UDP_LEN if isinstance(l4, UDP) else TCP_MIN_LEN


def _ethertype_for(ip: IPHeader) -> int:
    return ETHERTYPE_IPV4 if isinstance(ip, IPv4) else ETHERTYPE_IPV6


def _pack_ip_and_l4(ip: IPHeader, l4: Optional[L4Header], payload: bytes) -> bytes:
    if l4 is None:
        body = payload
    elif isinstance(l4, UDP):
        body = l4.pack(len(payload)) + payload
    else:
        body = l4.pack(len(payload)) + payload
    return ip.pack(len(body)) + body


def _unpack_l4(ip: IPHeader, raw: bytes):
    proto = ip.proto
    if proto == PROTO_UDP:
        return UDP.unpack(raw)
    if proto == PROTO_TCP:
        return TCP.unpack(raw)
    return None, raw


@dataclass(frozen=True)
class InnerFrame:
    """The frame carried inside a VXLAN tunnel: Ethernet + IP + L4 + payload."""

    eth: Ethernet
    ip: IPHeader
    l4: Optional[L4Header]
    payload: bytes = b""

    def pack(self) -> bytes:
        return self.eth.pack() + _pack_ip_and_l4(self.ip, self.l4, self.payload)

    @classmethod
    def unpack(cls, raw: bytes) -> "InnerFrame":
        eth, rest = Ethernet.unpack(raw)
        if eth.ethertype == ETHERTYPE_IPV4:
            ip, rest = IPv4.unpack(rest)
        elif eth.ethertype == ETHERTYPE_IPV6:
            ip, rest = IPv6.unpack(rest)
        else:
            raise HeaderError(f"inner frame ethertype {eth.ethertype:#x} unsupported")
        l4, rest = _unpack_l4(ip, rest)
        return cls(eth, ip, l4, rest)

    @property
    def version(self) -> int:
        return self.ip.version

    def wire_length(self) -> int:
        """Serialized length in bytes, without building the bytes."""
        return ETH_LEN + _ip_len(self.ip) + _l4_len(self.l4) + len(self.payload)

    def five_tuple(self):
        """(src ip, dst ip, proto, src port, dst port) of the inner frame."""
        src_port = self.l4.src_port if self.l4 is not None else 0
        dst_port = self.l4.dst_port if self.l4 is not None else 0
        return (self.ip.src, self.ip.dst, self.ip.proto, src_port, dst_port)


@dataclass(frozen=True)
class Packet:
    """A packet as seen by the gateway.

    For VXLAN traffic, ``vxlan`` and ``inner`` are set and the outer L4 is a
    UDP header with destination port 4789. Plain packets carry ``payload``
    directly and have ``vxlan is None``.
    """

    eth: Ethernet
    ip: IPHeader
    l4: Optional[L4Header] = None
    vxlan: Optional[VXLAN] = None
    inner: Optional[InnerFrame] = None
    payload: bytes = b""

    def __post_init__(self):
        if (self.vxlan is None) != (self.inner is None):
            raise ValueError("vxlan and inner must be set together")
        if self.vxlan is not None and not isinstance(self.l4, UDP):
            raise ValueError("VXLAN packets require an outer UDP header")

    # -- constructors ---------------------------------------------------

    @classmethod
    def vxlan_encap(
        cls,
        inner: InnerFrame,
        outer_eth: Ethernet,
        outer_src: int,
        outer_dst: int,
        vni: int,
        outer_version: int = 4,
        src_port: int = 0xC000,
    ) -> "Packet":
        """Encapsulate *inner* into a VXLAN tunnel towards *outer_dst*."""
        if outer_version == 4:
            ip: IPHeader = IPv4(src=outer_src, dst=outer_dst, proto=PROTO_UDP)
        else:
            ip = IPv6(src=outer_src, dst=outer_dst, next_header=PROTO_UDP)
        return cls(
            eth=outer_eth,
            ip=ip,
            l4=UDP(src_port=src_port, dst_port=VXLAN_PORT),
            vxlan=VXLAN(vni=vni),
            inner=inner,
        )

    # -- accessors ------------------------------------------------------

    @property
    def is_vxlan(self) -> bool:
        return self.vxlan is not None

    @property
    def vni(self) -> int:
        if self.vxlan is None:
            raise HeaderError("not a VXLAN packet")
        return self.vxlan.vni

    @property
    def inner_dst(self) -> int:
        if self.inner is None:
            raise HeaderError("not a VXLAN packet")
        return self.inner.ip.dst

    @property
    def inner_version(self) -> int:
        if self.inner is None:
            raise HeaderError("not a VXLAN packet")
        return self.inner.ip.version

    def wire_length(self) -> int:
        """Total serialized length in bytes.

        Computed arithmetically — every header the simulator emits has a
        fixed wire size — so the per-packet counter/meter charges on the
        forwarding fast path do not have to serialise the packet. Always
        equals ``len(self.to_bytes())`` (property-tested).
        """
        if self.vxlan is not None:
            body = VXLAN_LEN + self.inner.wire_length()
        else:
            body = len(self.payload)
        return ETH_LEN + _ip_len(self.ip) + _l4_len(self.l4) + body

    # -- rewriting ------------------------------------------------------

    def with_outer_dst(self, dst: int) -> "Packet":
        """New packet with the outer destination IP rewritten (NC delivery)."""
        return replace(self, ip=self.ip.replace_dst(dst))

    def with_outer_src(self, src: int) -> "Packet":
        return replace(self, ip=self.ip.replace_src(src))

    def with_vni(self, vni: int) -> "Packet":
        """New packet with the VXLAN VNI rewritten (peer-VPC hops)."""
        if self.vxlan is None:
            raise HeaderError("not a VXLAN packet")
        return replace(self, vxlan=VXLAN(vni=vni, flags=self.vxlan.flags))

    def rewritten(self, outer_src: int, outer_dst: int,
                  vni: Optional[int] = None) -> "Packet":
        """Apply a cached rewrite recipe in one copy.

        Equivalent to ``with_vni(vni).with_outer_src(outer_src)
        .with_outer_dst(outer_dst)`` but allocates a single new Packet —
        the flow-cache fast path applies one of these per hit (hence the
        direct construction; ``dataclasses.replace`` costs several times
        a plain ``__init__`` call).
        """
        ip = self.ip.replace_src_dst(outer_src, outer_dst)
        vxlan = self.vxlan
        if vni is not None:
            if vxlan is None:
                raise HeaderError("not a VXLAN packet")
            vxlan = VXLAN(vni=vni, flags=vxlan.flags)
        return Packet(eth=self.eth, ip=ip, l4=self.l4, vxlan=vxlan,
                      inner=self.inner, payload=self.payload)

    def decap(self) -> "Packet":
        """Strip the VXLAN tunnel, returning the inner frame as a packet."""
        if self.inner is None:
            raise HeaderError("not a VXLAN packet")
        return Packet(
            eth=self.inner.eth,
            ip=self.inner.ip,
            l4=self.inner.l4,
            payload=self.inner.payload,
        )

    # -- serialisation --------------------------------------------------

    def to_bytes(self) -> bytes:
        if self.vxlan is not None:
            body = self.vxlan.pack() + self.inner.pack()
        else:
            body = self.payload
        return self.eth.pack() + _pack_ip_and_l4(self.ip, self.l4, body)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Packet":
        eth, rest = Ethernet.unpack(raw)
        if eth.ethertype == ETHERTYPE_IPV4:
            ip, rest = IPv4.unpack(rest)
        elif eth.ethertype == ETHERTYPE_IPV6:
            ip, rest = IPv6.unpack(rest)
        else:
            raise HeaderError(f"ethertype {eth.ethertype:#x} unsupported")
        l4, rest = _unpack_l4(ip, rest)
        if isinstance(l4, UDP) and l4.dst_port == VXLAN_PORT:
            vxlan, rest = VXLAN.unpack(rest)
            inner = InnerFrame.unpack(rest)
            return cls(eth=eth, ip=ip, l4=l4, vxlan=vxlan, inner=inner)
        return cls(eth=eth, ip=ip, l4=l4, payload=rest)
