"""Hitless rolling drain/upgrade of a gateway cluster (§6.1's planned
maintenance, made zero-loss).

The paper's operational bar is that a region keeps forwarding while
tables churn and members rotate. The :class:`UpgradeOrchestrator`
executes that bar for planned work: one member at a time it

1. **drains** — removes the member from the steering
   :class:`~repro.cluster.ecmp.ResilientEcmpGroup` (HRW hashing means
   only that member's flows move; flows pinned to survivors stay put),
2. **waits** for in-flight flows on the simulation engine
   (``drain_wait``),
3. **upgrades** — takes the member offline and runs the caller's
   ``upgrade_fn`` (software swap, reboot, table wipe ...),
4. **resyncs** its tables from the controller's latest snapshot +
   journal tail (:meth:`~repro.core.controller.Controller.resync_member`),
5. **probes** the resynced member through the controller's probe gate,
   and only on a clean sweep
6. **readmits** it to the steering group and moves to the next member.

A failed probe halts the roll with the suspect member still drained —
traffic never reaches a gateway that has not proven its tables — and the
event log closes with a terminal ``halted`` event (the abort-side mirror
of ``complete``). Telemetry (``drains_started``, ``resyncs``,
``probes_failed``, ``halts``, ``readmits``) reconciles 1:1 with the
event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..sim.engine import Engine
from ..telemetry.stats import CounterSet
from .cluster import Member
from .ecmp import ResilientEcmpGroup


class UpgradeError(RuntimeError):
    """Raised on orchestration misuse (unknown member, roll in progress)."""


@dataclass(frozen=True)
class UpgradeEvent:
    """One step of the rolling upgrade, for the audit log."""

    member: str
    action: str  # "drain" | "upgrade" | "resync" | "probe-failed" | "halted" | "readmit" | "complete"
    time: float
    detail: str = ""


class UpgradeOrchestrator:
    """Rolls a cluster through drain → upgrade → resync → probe → readmit.

    *group* is the live steering set (member names) the data path picks
    from; *controller* supplies resync and the probe gate; *engine*
    provides the clock the drain wait runs on.

    >>> # driven end to end in tests/cluster/test_upgrade.py and
    >>> # examples/hitless_upgrade.py
    """

    def __init__(
        self,
        controller,
        cluster_id: str,
        group: ResilientEcmpGroup,
        engine: Engine,
        drain_wait: float = 1.0,
        upgrade_fn: Optional[Callable[[Member], None]] = None,
    ):
        if drain_wait < 0:
            raise UpgradeError("drain_wait must be non-negative")
        self.controller = controller
        self.cluster_id = cluster_id
        self.group = group
        self.engine = engine
        self.drain_wait = drain_wait
        self.upgrade_fn = upgrade_fn
        self.counters = CounterSet()
        self.events: List[UpgradeEvent] = []
        self.rolling = False
        self.aborted = False
        self.done = False

    # -- public API --------------------------------------------------------

    def roll(self, members: Optional[Sequence[str]] = None,
             start: Optional[float] = None) -> List[str]:
        """Schedule a full one-member-at-a-time pass.

        *members* defaults to every name currently in the steering group
        (in group order); *start* defaults to the engine's current time.
        Returns the roll order. The engine must then be run to execute it.
        """
        if self.rolling:
            raise UpgradeError("a roll is already in progress")
        names = list(members) if members is not None else [str(h) for h in self.group.next_hops]
        if not names:
            raise UpgradeError("nothing to roll: no members given or steered")
        cluster = self.controller.clusters[self.cluster_id]
        for name in names:
            cluster.find_member(name)  # raises ClusterError on unknown names
        self.rolling = True
        self.aborted = False
        self.done = False
        self._schedule_member(names, 0, self.engine.now if start is None else start)
        return names

    def summary(self) -> dict:
        """Counters + outcome, for demos and logs."""
        snap = self.counters.snapshot()
        snap["aborted"] = int(self.aborted)
        snap["complete"] = int(self.done)
        return snap

    # -- the per-member state machine -------------------------------------

    def _log(self, member: str, action: str, detail: str = "") -> None:
        self.events.append(UpgradeEvent(member, action, self.engine.now, detail))

    def _schedule_member(self, names: Sequence[str], index: int, at: float) -> None:
        if index >= len(names):
            self.rolling = False
            self.done = True
            self._log("-", "complete", f"{len(names)} members rolled")
            return
        name = names[index]

        def drain() -> None:
            # New flows stop hashing to this member; established flows on
            # the survivors are untouched (HRW property).
            self.group.remove(name)
            self.counters.add("drains_started")
            self._log(name, "drain")
            self.engine.schedule_in(self.drain_wait, finish)

        def finish() -> None:
            cluster = self.controller.clusters[self.cluster_id]
            member = cluster.find_member(name)
            cluster.take_offline(name)
            if self.upgrade_fn is not None:
                self.upgrade_fn(member)
            self._log(name, "upgrade")
            writes = self.controller.resync_member(self.cluster_id, name)
            self.counters.add("resyncs")
            self._log(name, "resync", f"{writes} writes")
            report = self.controller.probe(self.cluster_id, members=[name])
            if not report.ok:
                # Leave the member drained and halt: a gateway that fails
                # its probes must never take user traffic.
                self.counters.add("probes_failed")
                self.rolling = False
                self.aborted = True
                detail = report.failures[0] if report.failures else "no probes sent"
                self._log(name, "probe-failed", detail)
                # A roll that stops early still terminates its event log:
                # "halted" is the abort-side terminal marker, mirroring
                # "complete", so log consumers never have to infer the
                # outcome from the absence of further events.
                self.counters.add("halts")
                remaining = len(names) - index
                self._log("-", "halted",
                          f"{index}/{len(names)} members rolled, "
                          f"{remaining} abandoned, {name} left drained")
                return
            cluster.bring_online(name)
            self.group.add(name)
            self.counters.add("readmits")
            self._log(name, "readmit", f"probe {report.passed}/{report.sent}")
            self._schedule_member(names, index + 1, self.engine.now)

        self.engine.schedule(at, drain)
