"""ECMP load balancer in front of gateway clusters (§2.3, §4.3).

Commercial load balancers cap the ECMP next-hop set (Juniper security
devices: 16; generally < 64), which bounds how many gateways can sit
behind one balancer — one of the scale-out pain points that pushed
Sailfish towards fewer, faster nodes.

Two steering modes:

* ``flow`` — classic 5-tuple hash over the next-hop set;
* ``vni`` — Sailfish's table-splitting mode: an explicit VNI -> cluster
  map managed by the controller, with flow-hash only *within* the
  chosen cluster's nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Sequence, TypeVar

from ..net.flow import FlowKey, toeplitz_hash

T = TypeVar("T")

#: Paper: "commercial load balancers are generally limited to allowing
#: fewer than 64 possible next-hops".
DEFAULT_MAX_NEXT_HOPS = 64
JUNIPER_MAX_NEXT_HOPS = 16


class NextHopLimitError(Exception):
    """Raised when the ECMP set would exceed the device limit."""


@dataclass
class EcmpGroup(Generic[T]):
    """One ECMP next-hop set with a hardware size limit."""

    max_next_hops: int = DEFAULT_MAX_NEXT_HOPS
    next_hops: List[T] = field(default_factory=list)

    def add(self, hop: T) -> None:
        if len(self.next_hops) >= self.max_next_hops:
            raise NextHopLimitError(
                f"ECMP set full ({self.max_next_hops} next-hops)"
            )
        self.next_hops.append(hop)

    def remove(self, hop: T) -> None:
        self.next_hops.remove(hop)

    def __len__(self) -> int:
        return len(self.next_hops)

    def pick(self, flow: FlowKey) -> T:
        """Flow-hash steering (resilient modulo)."""
        if not self.next_hops:
            raise NextHopLimitError("ECMP set is empty")
        index = toeplitz_hash(flow.to_rss_input()) % len(self.next_hops)
        return self.next_hops[index]


def _hrw_weight(flow_bytes: bytes, hop) -> int:
    """Deterministic 64-bit rendezvous weight for (flow, hop)."""
    import hashlib

    digest = hashlib.sha256(flow_bytes + repr(hop).encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ResilientEcmpGroup(Generic[T]):
    """ECMP with highest-random-weight (rendezvous) hashing.

    Plain modulo hashing remaps ~(n-1)/n of flows when a next-hop set
    changes — every remapped flow lands on a gateway without its
    connection state. HRW only moves the failed member's flows, which is
    why production balancers prefer resilient hashing for stateful
    next-hops.
    """

    max_next_hops: int = DEFAULT_MAX_NEXT_HOPS
    next_hops: List[T] = field(default_factory=list)

    def add(self, hop: T) -> None:
        if len(self.next_hops) >= self.max_next_hops:
            raise NextHopLimitError(f"ECMP set full ({self.max_next_hops} next-hops)")
        self.next_hops.append(hop)

    def remove(self, hop: T) -> None:
        self.next_hops.remove(hop)

    def __len__(self) -> int:
        return len(self.next_hops)

    def pick(self, flow: FlowKey) -> T:
        """Highest-random-weight choice over the current members."""
        if not self.next_hops:
            raise NextHopLimitError("ECMP set is empty")
        flow_bytes = flow.to_rss_input()
        return max(self.next_hops, key=lambda hop: _hrw_weight(flow_bytes, hop))


def flow_churn(before, after, flows: "list[FlowKey]") -> float:
    """Fraction of *flows* whose next-hop changed between two groups."""
    if not flows:
        raise ValueError("flows must be non-empty")
    moved = sum(1 for flow in flows if before.pick(flow) != after.pick(flow))
    return moved / len(flows)


class VniSteeredBalancer(Generic[T]):
    """The Sailfish balancer: VNI -> cluster, flow-hash within the cluster.

    >>> lb = VniSteeredBalancer()
    >>> lb.register_cluster("A", ["gw1", "gw2"])
    >>> lb.assign_vni(7, "A")
    >>> lb.cluster_for_vni(7)
    'A'
    """

    def __init__(self, max_next_hops: int = DEFAULT_MAX_NEXT_HOPS):
        self.max_next_hops = max_next_hops
        self._clusters: Dict[str, EcmpGroup[T]] = {}
        self._vni_map: Dict[int, str] = {}

    def register_cluster(self, cluster_id: str, nodes: Sequence[T]) -> None:
        group: EcmpGroup[T] = EcmpGroup(max_next_hops=self.max_next_hops)
        for node in nodes:
            group.add(node)
        self._clusters[cluster_id] = group

    def unregister_cluster(self, cluster_id: str) -> None:
        self._clusters.pop(cluster_id, None)
        stale = [vni for vni, cid in self._vni_map.items() if cid == cluster_id]
        for vni in stale:
            del self._vni_map[vni]

    def assign_vni(self, vni: int, cluster_id: str) -> None:
        """Install the controller's VNI -> cluster decision."""
        if cluster_id not in self._clusters:
            raise KeyError(f"unknown cluster {cluster_id}")
        self._vni_map[vni] = cluster_id

    def release_vni(self, vni: int) -> Optional[str]:
        """Withdraw a VNI's steering entry (tenant offboarded); returns the
        cluster it pointed at, or None if the VNI was not steered."""
        return self._vni_map.pop(vni, None)

    def cluster_for_vni(self, vni: int) -> Optional[str]:
        return self._vni_map.get(vni)

    def clusters(self) -> List[str]:
        return sorted(self._clusters)

    def nodes_of(self, cluster_id: str) -> List[T]:
        return list(self._clusters[cluster_id].next_hops)

    def steer(self, vni: int, flow: FlowKey) -> T:
        """Pick the node for a packet: VNI map then intra-cluster hash."""
        cluster_id = self._vni_map.get(vni)
        if cluster_id is None:
            raise KeyError(f"no cluster assigned for VNI {vni}")
        return self._clusters[cluster_id].pick(flow)

    def rebalance_vni(self, vni: int, to_cluster: str) -> None:
        """Tractable load balancing: move one tenant's traffic precisely."""
        self.assign_vni(vni, to_cluster)
