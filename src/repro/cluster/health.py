"""Water levels and health monitoring (§6.1 "Cluster management").

The operators "periodically monitor the table water level, traffic rate
and packet loss rate" against safe thresholds; crossing one alerts the
controller (close sales, add clusters, isolate ports). During shopping
festivals the safe water level is deliberately raised to cut alert
noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional


class Signal(Enum):
    TABLE_WATER_LEVEL = "table-water-level"
    TRAFFIC_RATE = "traffic-rate"
    PACKET_LOSS = "packet-loss"
    PORT_JITTER = "port-jitter"
    NODE_DOWN = "node-down"


@dataclass(frozen=True)
class Alert:
    """One threshold crossing reported to the controller."""

    signal: Signal
    subject: str  # cluster/node/port identifier
    value: float
    threshold: float
    time: float


@dataclass
class WaterLevel:
    """A monitored value with a safe threshold."""

    signal: Signal
    threshold: float
    festival_threshold: Optional[float] = None

    def effective_threshold(self, festival: bool) -> float:
        if festival and self.festival_threshold is not None:
            return self.festival_threshold
        return self.threshold

    def breached(self, value: float, festival: bool = False) -> bool:
        return value >= self.effective_threshold(festival)


class HealthMonitor:
    """Evaluates water levels and collects alerts.

    >>> monitor = HealthMonitor()
    >>> monitor.set_level(Signal.TABLE_WATER_LEVEL, threshold=0.85)
    >>> monitor.observe("cluster-A", Signal.TABLE_WATER_LEVEL, 0.9, time=1.0)
    >>> len(monitor.alerts)
    1
    """

    def __init__(self, festival_mode: bool = False):
        self.festival_mode = festival_mode
        self._levels: Dict[Signal, WaterLevel] = {}
        self.alerts: List[Alert] = []
        self._handlers: List[Callable[[Alert], None]] = []

    def set_level(self, signal: Signal, threshold: float,
                  festival_threshold: Optional[float] = None) -> None:
        self._levels[signal] = WaterLevel(signal, threshold, festival_threshold)

    def on_alert(self, handler: Callable[[Alert], None]) -> None:
        """Register a controller callback."""
        self._handlers.append(handler)

    def observe(self, subject: str, signal: Signal, value: float, time: float) -> Optional[Alert]:
        """Feed one sample; returns the alert if the level was breached."""
        level = self._levels.get(signal)
        if level is None or not level.breached(value, self.festival_mode):
            return None
        alert = Alert(
            signal=signal,
            subject=subject,
            value=value,
            threshold=level.effective_threshold(self.festival_mode),
            time=time,
        )
        self.alerts.append(alert)
        for handler in self._handlers:
            handler(alert)
        return alert

    def alerts_for(self, subject: str) -> List[Alert]:
        return [a for a in self.alerts if a.subject == subject]
