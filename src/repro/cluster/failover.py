"""Disaster recovery at cluster, node and port level (§6.1).

* **Cluster**: every main cluster has a 1:1 hot-standby backup with the
  same configuration; on anomaly the upstream routes flip to the backup.
* **Node**: a failing gateway is taken offline and its share spreads
  over the survivors; if a cluster runs out of members, globally
  reserved cold-standby gateways are attached.
* **Port**: a port with jitter/persistent loss is isolated and its
  traffic migrated by the upstream device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, TypeVar

from .cluster import ClusterError, GatewayCluster
from .ecmp import VniSteeredBalancer
from .health import Alert, Signal

G = TypeVar("G")


@dataclass
class RecoveryEvent:
    """One recovery action taken, for the audit log."""

    level: str  # "cluster" | "node" | "port"
    subject: str
    action: str
    time: float


class DisasterRecovery(Generic[G]):
    """Executes the three-level recovery policy against a balancer.

    >>> # wired up in repro.core.sailfish; see tests/cluster/test_failover.py
    """

    def __init__(
        self,
        balancer: VniSteeredBalancer,
        clusters: Dict[str, GatewayCluster[G]],
        cold_standby: Optional[List[G]] = None,
    ):
        self.balancer = balancer
        self.clusters = clusters
        self.cold_standby: List[G] = list(cold_standby or [])
        self.events: List[RecoveryEvent] = []
        self.active_backups: Dict[str, GatewayCluster[G]] = {}

    # -- cluster level -------------------------------------------------------

    def fail_over_cluster(self, cluster_id: str, time: float = 0.0) -> GatewayCluster[G]:
        """Reroute a failed main cluster's traffic to its hot backup."""
        main = self.clusters.get(cluster_id)
        if main is None:
            raise ClusterError(f"unknown cluster {cluster_id}")
        if main.backup is None:
            raise ClusterError(f"cluster {cluster_id} has no backup")
        backup = main.backup
        node_names = [m.name for m in backup.active_members()]
        # Re-point the balancer's next-hops at the backup members; VNI
        # assignments are untouched (same cluster_id, new nodes).
        self.balancer.register_cluster(cluster_id, node_names)
        self.active_backups[cluster_id] = backup
        self.events.append(RecoveryEvent("cluster", cluster_id, "switch-to-backup", time))
        return backup

    def serving_cluster(self, cluster_id: str) -> GatewayCluster[G]:
        """The cluster currently carrying *cluster_id*'s traffic."""
        return self.active_backups.get(cluster_id, self.clusters[cluster_id])

    # -- node level ------------------------------------------------------------

    def fail_node(self, cluster_id: str, node_name: str, time: float = 0.0) -> None:
        """Take a node offline; pull cold standby if the cluster drains."""
        cluster = self.serving_cluster(cluster_id)
        cluster.take_offline(node_name)
        self.events.append(RecoveryEvent("node", f"{cluster_id}/{node_name}", "offline", time))
        if not cluster.active_members():
            if not self.cold_standby:
                raise ClusterError(
                    f"cluster {cluster_id} drained and no cold standby remains"
                )
            standby = self.cold_standby.pop(0)
            standby_name = f"standby-{len(cluster.members())}"
            cluster.add_node(standby_name, standby)
            self.events.append(
                RecoveryEvent("node", f"{cluster_id}/{standby_name}", "cold-standby-attached", time)
            )

    # -- port level ---------------------------------------------------------------

    def isolate_port(self, cluster_id: str, node_name: str, port: int, time: float = 0.0) -> None:
        cluster = self.serving_cluster(cluster_id)
        cluster.isolate_port(node_name, port)
        self.events.append(
            RecoveryEvent("port", f"{cluster_id}/{node_name}:{port}", "isolated", time)
        )

    # -- controller hook --------------------------------------------------------------

    def alert_handler(self) -> Callable[[Alert], None]:
        """A HealthMonitor callback implementing the §6.1 reactions."""

        def handle(alert: Alert) -> None:
            if alert.signal is Signal.PACKET_LOSS and alert.subject in self.clusters:
                self.fail_over_cluster(alert.subject, time=alert.time)
            elif alert.signal is Signal.NODE_DOWN and "/" in alert.subject:
                cluster_id, node = alert.subject.split("/", 1)
                if cluster_id in self.clusters:
                    self.fail_node(cluster_id, node, time=alert.time)
            elif alert.signal is Signal.PORT_JITTER and ":" in alert.subject:
                where, port = alert.subject.rsplit(":", 1)
                cluster_id, node = where.split("/", 1)
                self.isolate_port(cluster_id, node, int(port), time=alert.time)

        return handle
