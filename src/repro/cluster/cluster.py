"""Gateway clusters (§4.3): replicated nodes sharing one table shard.

"Within a cluster, multiple XGW-H devices maintain the same table
entries, share the traffic load and backup for each other." The cluster
replicates installs to every member (and its hot-standby backup cluster,
which keeps identical configuration), spreads flows over active members,
and absorbs single-node failures by re-spreading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Generic, List, Optional, Protocol, TypeVar

from ..net.flow import FlowKey, toeplitz_hash
from ..net.packet import Packet


class GatewayNode(Protocol):
    """What a cluster needs from a member gateway."""

    def forward(self, packet: Packet):  # pragma: no cover - protocol
        ...


G = TypeVar("G", bound=GatewayNode)


class NodeState(Enum):
    ACTIVE = "active"
    OFFLINE = "offline"


class ClusterError(Exception):
    """Raised on structural misuse (no active nodes, unknown member)."""


@dataclass
class Member(Generic[G]):
    """One gateway with its operational state and port health."""

    name: str
    gateway: G
    state: NodeState = NodeState.ACTIVE
    num_ports: int = 32
    isolated_ports: set = field(default_factory=set)

    @property
    def healthy_ports(self) -> int:
        return self.num_ports - len(self.isolated_ports)


class GatewayCluster(Generic[G]):
    """A cluster of identically configured gateways.

    >>> from repro.core.xgw_h import XgwH
    >>> cluster = GatewayCluster("A", [("gw0", XgwH(1)), ("gw1", XgwH(2))])
    >>> len(cluster.active_members())
    2
    """

    def __init__(self, cluster_id: str, nodes, backup: Optional["GatewayCluster[G]"] = None):
        self.cluster_id = cluster_id
        self._members: Dict[str, Member[G]] = {}
        for name, gateway in nodes:
            if name in self._members:
                raise ClusterError(f"duplicate node name {name}")
            self._members[name] = Member(name=name, gateway=gateway)
        if not self._members:
            raise ClusterError("a cluster needs at least one node")
        self.backup = backup
        self.packets = 0

    # -- membership ---------------------------------------------------------

    def members(self) -> List[Member[G]]:
        return [self._members[name] for name in sorted(self._members)]

    def active_members(self) -> List[Member[G]]:
        return [m for m in self.members() if m.state is NodeState.ACTIVE]

    def all_members(self, include_backup: bool = True) -> List[Member[G]]:
        """Members plus the hot backup's members (one level deep) — the
        full set that must hold identical tables."""
        out = self.members()
        if include_backup and self.backup is not None:
            out += self.backup.members()
        return out

    def find_member(self, name: str) -> Member[G]:
        """Look up a member by name, searching the hot backup too."""
        for member in self.all_members():
            if member.name == name:
                return member
        raise ClusterError(f"unknown node {name}")

    def member(self, name: str) -> Member[G]:
        try:
            return self._members[name]
        except KeyError:
            raise ClusterError(f"unknown node {name}") from None

    def take_offline(self, name: str) -> None:
        """Node-level failover: the rest of the cluster absorbs the load."""
        self.member(name).state = NodeState.OFFLINE

    def bring_online(self, name: str) -> None:
        self.member(name).state = NodeState.ACTIVE

    def add_node(self, name: str, gateway: G) -> None:
        """Attach a (cold-standby) gateway to the cluster."""
        if name in self._members:
            raise ClusterError(f"duplicate node name {name}")
        self._members[name] = Member(name=name, gateway=gateway)

    def isolate_port(self, name: str, port: int) -> None:
        """Port-level failover: migrate one jittery port's traffic away."""
        member = self.member(name)
        if not 0 <= port < member.num_ports:
            raise ClusterError(f"node {name} has no port {port}")
        member.isolated_ports.add(port)

    # -- table replication ----------------------------------------------------

    def for_each_gateway(self, apply_fn, include_backup: bool = True) -> None:
        """Run *apply_fn(gateway)* on every member (and the hot backup)."""
        for member in self.members():
            apply_fn(member.gateway)
        if include_backup and self.backup is not None:
            self.backup.for_each_gateway(apply_fn, include_backup=False)

    # -- data path --------------------------------------------------------------

    def pick_member(self, flow: FlowKey) -> Member[G]:
        """Flow-hash over active members (ECMP within the cluster)."""
        active = self.active_members()
        if not active:
            raise ClusterError(f"cluster {self.cluster_id} has no active nodes")
        index = toeplitz_hash(flow.to_rss_input()) % len(active)
        return active[index]

    def forward(self, flow: FlowKey, packet: Packet):
        """Steer one packet to a member and forward it."""
        self.packets += 1
        return self.pick_member(flow).gateway.forward(packet)

    def load_share(self) -> Dict[str, float]:
        """Fraction of flows each active member receives (uniform hash)."""
        active = self.active_members()
        if not active:
            return {}
        share = 1.0 / len(active)
        return {m.name: share for m in active}
