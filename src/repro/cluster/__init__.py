"""Region-level clustering: ECMP steering, clusters, failover, health."""

from .cluster import ClusterError, GatewayCluster, Member, NodeState
from .ecmp import (
    DEFAULT_MAX_NEXT_HOPS,
    EcmpGroup,
    JUNIPER_MAX_NEXT_HOPS,
    NextHopLimitError,
    ResilientEcmpGroup,
    VniSteeredBalancer,
    flow_churn,
)
from .failover import DisasterRecovery, RecoveryEvent
from .health import Alert, HealthMonitor, Signal, WaterLevel
from .upgrade import UpgradeError, UpgradeEvent, UpgradeOrchestrator

__all__ = [
    "ClusterError",
    "GatewayCluster",
    "Member",
    "NodeState",
    "EcmpGroup",
    "ResilientEcmpGroup",
    "flow_churn",
    "VniSteeredBalancer",
    "NextHopLimitError",
    "DEFAULT_MAX_NEXT_HOPS",
    "JUNIPER_MAX_NEXT_HOPS",
    "DisasterRecovery",
    "RecoveryEvent",
    "Alert",
    "HealthMonitor",
    "Signal",
    "WaterLevel",
    "UpgradeError",
    "UpgradeEvent",
    "UpgradeOrchestrator",
]
