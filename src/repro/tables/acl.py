"""ACL table — a QoS/SLA service table (§3.3 "diverse cloud services").

Priority-ordered 5-tuple rules with ternary IP fields and port ranges,
evaluated first-match, as installed per tenant SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..net.flow import FlowKey
from .errors import DuplicateEntryError, MissingEntryError, TableFullError
from .geometry import MemoryFootprint, tcam_slices_for


class AclVerdict(Enum):
    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class AclRule:
    """One ACL rule; None fields are wildcards, port fields are ranges."""

    priority: int
    verdict: AclVerdict
    vni: Optional[int] = None
    src_net: Optional[Tuple[int, int]] = None  # (network, mask)
    dst_net: Optional[Tuple[int, int]] = None
    proto: Optional[int] = None
    src_ports: Optional[Tuple[int, int]] = None  # inclusive range
    dst_ports: Optional[Tuple[int, int]] = None

    def matches(self, vni: int, flow: FlowKey) -> bool:
        if self.vni is not None and self.vni != vni:
            return False
        if self.src_net is not None and (flow.src_ip & self.src_net[1]) != self.src_net[0]:
            return False
        if self.dst_net is not None and (flow.dst_ip & self.dst_net[1]) != self.dst_net[0]:
            return False
        if self.proto is not None and self.proto != flow.proto:
            return False
        if self.src_ports is not None and not (
            self.src_ports[0] <= flow.src_port <= self.src_ports[1]
        ):
            return False
        if self.dst_ports is not None and not (
            self.dst_ports[0] <= flow.dst_port <= self.dst_ports[1]
        ):
            return False
        return True

    def covers(self, other: "AclRule") -> bool:
        """True when every flow matching *other* also matches this rule
        (field-wise superset: wildcards cover everything, networks cover
        sub-networks, ranges cover sub-ranges)."""
        return (
            _field_covers_exact(self.vni, other.vni)
            and _net_covers(self.src_net, other.src_net)
            and _net_covers(self.dst_net, other.dst_net)
            and _field_covers_exact(self.proto, other.proto)
            and _range_covers(self.src_ports, other.src_ports)
            and _range_covers(self.dst_ports, other.dst_ports)
        )


def _field_covers_exact(mine: Optional[int], theirs: Optional[int]) -> bool:
    return mine is None or mine == theirs


def _net_covers(mine: Optional[Tuple[int, int]], theirs: Optional[Tuple[int, int]]) -> bool:
    if mine is None:
        return True
    if theirs is None:
        return False
    # My care-bits must be a subset of theirs and agree on them.
    return (mine[1] & theirs[1]) == mine[1] and (theirs[0] & mine[1]) == mine[0]


def _range_covers(mine: Optional[Tuple[int, int]], theirs: Optional[Tuple[int, int]]) -> bool:
    if mine is None:
        return True
    if theirs is None:
        return False
    return mine[0] <= theirs[0] and theirs[1] <= mine[1]


class AclTable:
    """First-match ACL with a default verdict and TCAM accounting.

    ACL keys on the switch burn TCAM: VNI + src/dst IP + proto + ports.
    """

    #: VNI 24 + 2×32 IPv4 + proto 8 + 2×16 ports = 128 key bits.
    KEY_BITS = 24 + 32 + 32 + 8 + 16 + 16

    def __init__(
        self,
        default_verdict: AclVerdict = AclVerdict.PERMIT,
        capacity_rules: Optional[int] = None,
        name: str = "acl",
    ):
        self.name = name
        self.default_verdict = default_verdict
        self.capacity_rules = capacity_rules
        self._rules: List[AclRule] = []
        self.lookups = 0
        self.matched = 0
        #: Monotonic mutation counter consumed by the flow cache's
        #: generation-vector staleness check.
        self.generation = 0

    def __len__(self) -> int:
        return len(self._rules)

    def insert(self, rule: AclRule) -> None:
        """Install *rule*, keeping rules sorted by descending priority."""
        if any(r == rule for r in self._rules):
            raise DuplicateEntryError(repr(rule))
        if self.capacity_rules is not None and len(self._rules) >= self.capacity_rules:
            raise TableFullError(f"{self.name}: rule capacity reached")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)
        self.generation += 1

    def remove(self, rule: AclRule) -> None:
        try:
            self._rules.remove(rule)
        except ValueError:
            raise MissingEntryError(repr(rule)) from None
        self.generation += 1

    def evaluate(self, vni: int, flow: FlowKey) -> AclVerdict:
        """First matching rule's verdict, else the default."""
        self.lookups += 1
        for rule in self._rules:
            if rule.matches(vni, flow):
                self.matched += 1
                return rule.verdict
        return self.default_verdict

    def rules(self) -> List[AclRule]:
        """The installed rules in evaluation (scan) order."""
        return list(self._rules)

    def shadowed_rules(self) -> List[Tuple[AclRule, AclRule]]:
        """Rules that can never fire, as ``(shadowed, shadowing)`` pairs.

        A rule is shadowed when an earlier-scanned rule covers its whole
        match region, so first-match always stops at the earlier one. A
        shadowed rule with the *same* verdict is merely dead weight; with
        a *different* verdict it silently inverts the tenant's intended
        policy — the audit reports the two cases separately.
        """
        shadowed: List[Tuple[AclRule, AclRule]] = []
        for i, rule in enumerate(self._rules):
            for earlier in self._rules[:i]:
                if earlier.covers(rule):
                    shadowed.append((rule, earlier))
                    break
        return shadowed

    def footprint(self) -> MemoryFootprint:
        return MemoryFootprint(
            tcam_slices=len(self._rules) * tcam_slices_for(self.KEY_BITS)
        )
