"""ACL table — a QoS/SLA service table (§3.3 "diverse cloud services").

Priority-ordered 5-tuple rules with ternary IP fields and port ranges,
evaluated first-match, as installed per tenant SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..net.flow import FlowKey
from .errors import DuplicateEntryError, MissingEntryError, TableFullError
from .geometry import MemoryFootprint, tcam_slices_for


class AclVerdict(Enum):
    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class AclRule:
    """One ACL rule; None fields are wildcards, port fields are ranges."""

    priority: int
    verdict: AclVerdict
    vni: Optional[int] = None
    src_net: Optional[Tuple[int, int]] = None  # (network, mask)
    dst_net: Optional[Tuple[int, int]] = None
    proto: Optional[int] = None
    src_ports: Optional[Tuple[int, int]] = None  # inclusive range
    dst_ports: Optional[Tuple[int, int]] = None

    def matches(self, vni: int, flow: FlowKey) -> bool:
        if self.vni is not None and self.vni != vni:
            return False
        if self.src_net is not None and (flow.src_ip & self.src_net[1]) != self.src_net[0]:
            return False
        if self.dst_net is not None and (flow.dst_ip & self.dst_net[1]) != self.dst_net[0]:
            return False
        if self.proto is not None and self.proto != flow.proto:
            return False
        if self.src_ports is not None and not (
            self.src_ports[0] <= flow.src_port <= self.src_ports[1]
        ):
            return False
        if self.dst_ports is not None and not (
            self.dst_ports[0] <= flow.dst_port <= self.dst_ports[1]
        ):
            return False
        return True


class AclTable:
    """First-match ACL with a default verdict and TCAM accounting.

    ACL keys on the switch burn TCAM: VNI + src/dst IP + proto + ports.
    """

    #: VNI 24 + 2×32 IPv4 + proto 8 + 2×16 ports = 128 key bits.
    KEY_BITS = 24 + 32 + 32 + 8 + 16 + 16

    def __init__(
        self,
        default_verdict: AclVerdict = AclVerdict.PERMIT,
        capacity_rules: Optional[int] = None,
        name: str = "acl",
    ):
        self.name = name
        self.default_verdict = default_verdict
        self.capacity_rules = capacity_rules
        self._rules: List[AclRule] = []
        self.lookups = 0
        self.matched = 0
        #: Monotonic mutation counter consumed by the flow cache's
        #: generation-vector staleness check.
        self.generation = 0

    def __len__(self) -> int:
        return len(self._rules)

    def insert(self, rule: AclRule) -> None:
        """Install *rule*, keeping rules sorted by descending priority."""
        if any(r == rule for r in self._rules):
            raise DuplicateEntryError(repr(rule))
        if self.capacity_rules is not None and len(self._rules) >= self.capacity_rules:
            raise TableFullError(f"{self.name}: rule capacity reached")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)
        self.generation += 1

    def remove(self, rule: AclRule) -> None:
        try:
            self._rules.remove(rule)
        except ValueError:
            raise MissingEntryError(repr(rule)) from None
        self.generation += 1

    def evaluate(self, vni: int, flow: FlowKey) -> AclVerdict:
        """First matching rule's verdict, else the default."""
        self.lookups += 1
        for rule in self._rules:
            if rule.matches(vni, flow):
                self.matched += 1
                return rule.verdict
        return self.default_verdict

    def footprint(self) -> MemoryFootprint:
        return MemoryFootprint(
            tcam_slices=len(self._rules) * tcam_slices_for(self.KEY_BITS)
        )
