"""Forwarding tables: LPM/TCAM/ALPM structures and the gateway's tables."""

from .acl import AclRule, AclTable, AclVerdict
from .alpm import AlpmStats, AlpmTable, DEFAULT_BUCKET_CAPACITY, Partition
from .bittrie import GenericLpmTrie
from .compress import CompressedExactMap, digest32
from .counter import CounterCell, CounterTable
from .cuckoo import CuckooTable, achievable_load_factor
from .errors import (
    DuplicateEntryError,
    MissingEntryError,
    TableError,
    TableFullError,
)
from .exact import ExactTable
from .geometry import (
    IPV4_BITS,
    IPV6_BITS,
    MemoryFootprint,
    SRAM_WORD_BITS,
    TCAM_SLICE_BITS,
    VNI_BITS,
    exact_entry_words,
    sram_words_for,
    tcam_slices_for,
)
from .lpm import LpmTrie
from .meter import MeterColor, MeterTable, TokenBucket
from .pooled import PooledExactTable, PooledLpmTable
from .snat import SnatSession, SnatTable
from .tcam import Tcam, TcamEntry, prefix_to_match_mask
from .vm_nc import NcBinding, VmNcTable
from .vxlan_routing import (
    Resolution,
    RouteAction,
    RoutingLoopError,
    Scope,
    VxlanRoutingTable,
)

__all__ = [
    "AclRule",
    "AclTable",
    "AclVerdict",
    "AlpmStats",
    "AlpmTable",
    "DEFAULT_BUCKET_CAPACITY",
    "Partition",
    "GenericLpmTrie",
    "CompressedExactMap",
    "digest32",
    "CounterCell",
    "CuckooTable",
    "achievable_load_factor",
    "CounterTable",
    "TableError",
    "TableFullError",
    "DuplicateEntryError",
    "MissingEntryError",
    "ExactTable",
    "MemoryFootprint",
    "SRAM_WORD_BITS",
    "TCAM_SLICE_BITS",
    "VNI_BITS",
    "IPV4_BITS",
    "IPV6_BITS",
    "exact_entry_words",
    "sram_words_for",
    "tcam_slices_for",
    "LpmTrie",
    "MeterColor",
    "MeterTable",
    "TokenBucket",
    "PooledExactTable",
    "PooledLpmTable",
    "SnatSession",
    "SnatTable",
    "Tcam",
    "TcamEntry",
    "prefix_to_match_mask",
    "NcBinding",
    "VmNcTable",
    "Resolution",
    "RouteAction",
    "RoutingLoopError",
    "Scope",
    "VxlanRoutingTable",
]
