"""IPv4/IPv6 table pooling (§4.4).

Dedicated per-family tables waste memory when the v4/v6 traffic ratio
drifts, so Sailfish pools them: one table, one memory budget, any family
mix. Two alignment strategies, chosen per match kind:

* **expand** (LPM tables): IPv4 keys are widened to 128 bits so every
  entry costs the same TCAM slices; an address-family bit keeps the two
  spaces disjoint.
* **compress** (exact-match tables): IPv6 keys are hashed to 32-bit
  digests (:class:`~repro.tables.compress.CompressedExactMap` semantics)
  so every entry costs one SRAM word; conflicts go to a small full-key
  conflict table.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, Tuple, TypeVar

from ..net.addr import Prefix
from .compress import CompressedExactMap, digest32
from .errors import DuplicateEntryError, MissingEntryError, TableFullError
from .exact import DEFAULT_FILL_FACTOR
from .geometry import (
    IPV6_BITS,
    MemoryFootprint,
    VNI_BITS,
    exact_entry_words,
    tcam_slices_for,
)
from .lpm import LpmTrie

V = TypeVar("V")

#: Key width charged for every pooled-LPM entry: AF bit + 128-bit address.
POOLED_LPM_KEY_BITS = 1 + IPV6_BITS


class PooledLpmTable(Generic[V]):
    """A dual-stack LPM sharing one entry budget (expand strategy).

    Functionally: per-family longest-prefix match. Physically: every
    entry, v4 or v6, costs ``tcam_slices_for(extra_bits + 129)`` slices,
    so the v4/v6 ratio can shift arbitrarily within ``capacity_entries``.
    """

    def __init__(
        self,
        capacity_entries: Optional[int] = None,
        extra_key_bits: int = VNI_BITS,
        name: str = "pooled-lpm",
    ):
        self.name = name
        self.capacity_entries = capacity_entries
        self.extra_key_bits = extra_key_bits
        self.slices_per_entry = tcam_slices_for(extra_key_bits + POOLED_LPM_KEY_BITS)
        self._tries = {4: LpmTrie(4), 6: LpmTrie(6)}

    def __len__(self) -> int:
        return len(self._tries[4]) + len(self._tries[6])

    def count(self, version: int) -> int:
        """Entries of one family."""
        return len(self._tries[version])

    def insert(self, prefix: Prefix, value: V, replace: bool = False) -> None:
        """Insert in either family against the shared budget."""
        trie = self._tries[prefix.version]
        is_new = prefix not in trie
        if is_new and self.capacity_entries is not None and len(self) >= self.capacity_entries:
            raise TableFullError(f"{self.name}: pooled capacity {self.capacity_entries} reached")
        trie.insert(prefix, value, replace=replace)

    def remove(self, prefix: Prefix) -> V:
        return self._tries[prefix.version].remove(prefix)

    def lookup(self, address: int, version: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match within the *version* family."""
        return self._tries[version].lookup(address)

    @property
    def load(self) -> float:
        if not self.capacity_entries:
            return 0.0
        return len(self) / self.capacity_entries

    def footprint(self) -> MemoryFootprint:
        """Uniform TCAM cost: both families at expanded width."""
        return MemoryFootprint(tcam_slices=len(self) * self.slices_per_entry)


class PooledExactTable(Generic[V]):
    """A dual-stack exact-match table (compress strategy).

    Keys are ``(vni, address)``. IPv4 addresses are stored natively; IPv6
    addresses are stored as 32-bit digests with an address-family label
    and a conflict table for digest collisions — all charged to one
    budget at one SRAM word per entry.
    """

    def __init__(
        self,
        capacity_entries: Optional[int] = None,
        value_bits: int = 32,
        fill_factor: float = DEFAULT_FILL_FACTOR,
        name: str = "pooled-exact",
    ):
        if not 0 < fill_factor <= 1.0:
            raise ValueError("fill_factor must be in (0, 1]")
        self.name = name
        self.capacity_entries = capacity_entries
        self.fill_factor = fill_factor
        # label (1b) + VNI + 32b key + value, padded to a cuckoo way.
        self.words_per_entry = exact_entry_words(1 + VNI_BITS + 32, value_bits)
        self._v4: dict = {}
        self._v6: dict = {}  # vni -> CompressedExactMap
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._v4) + sum(len(m) for m in self._v6.values())

    def conflict_entries(self) -> int:
        """IPv6 digest-conflict entries across all VNIs."""
        return sum(m.conflict_entries for m in self._v6.values())

    def _check_capacity(self) -> None:
        if self.capacity_entries is not None and len(self) >= self.capacity_entries:
            raise TableFullError(f"{self.name}: pooled capacity {self.capacity_entries} reached")

    def insert(self, vni: int, address: int, version: int, value: V, replace: bool = False) -> None:
        """Insert ``(vni, address)`` -> *value* in either family."""
        if version == 4:
            key = (vni, address)
            if key in self._v4 and not replace:
                raise DuplicateEntryError(repr(key))
            if key not in self._v4:
                self._check_capacity()
            self._v4[key] = value
        elif version == 6:
            per_vni = self._v6.get(vni)
            if per_vni is None:
                per_vni = self._v6[vni] = CompressedExactMap(key_bits=IPV6_BITS)
            if per_vni.lookup(address) is None:
                self._check_capacity()
            per_vni.insert(address, value, replace=replace)
        else:
            raise ValueError(f"unknown IP version {version}")

    def remove(self, vni: int, address: int, version: int) -> V:
        if version == 4:
            try:
                return self._v4.pop((vni, address))
            except KeyError:
                raise MissingEntryError(repr((vni, address))) from None
        per_vni = self._v6.get(vni)
        if per_vni is None:
            raise MissingEntryError(repr((vni, address)))
        return per_vni.remove(address)

    def lookup(self, vni: int, address: int, version: int) -> Optional[V]:
        """Exact match; IPv6 goes digest-first through the conflict logic."""
        self.lookups += 1
        if version == 4:
            value = self._v4.get((vni, address))
        else:
            per_vni = self._v6.get(vni)
            value = per_vni.lookup(address) if per_vni is not None else None
        if value is not None:
            self.hits += 1
        return value

    def digest_of(self, address: int) -> int:
        """The 32-bit digest an IPv6 key is stored under (for inspection)."""
        return digest32(address, IPV6_BITS)

    def items(self) -> Iterator[Tuple[int, int, int, V]]:
        """Control-plane readback: every ``(vni, address, version, value)``.

        The audit sweep diffs this against controller intent; IPv6 keys
        come back at full width (the digest is only the physical-cost
        model — conflict handling keeps the full key available, exactly
        as the chip's control plane can read back installed entries).
        """
        for (vni, address), value in self._v4.items():
            yield vni, address, 4, value
        for vni, per_vni in self._v6.items():
            for address, value in per_vni.items():
                yield vni, address, 6, value

    @property
    def load(self) -> float:
        if not self.capacity_entries:
            return 0.0
        return len(self) / self.capacity_entries

    def footprint(self) -> MemoryFootprint:
        """One-word entries plus fill-factor slack; conflict entries extra."""
        import math

        physical = math.ceil(len(self) / self.fill_factor)
        # Conflict entries hold full 128-bit keys -> 2-word ways.
        conflict_words = self.conflict_entries() * exact_entry_words(VNI_BITS + IPV6_BITS, 32)
        return MemoryFootprint(sram_words=physical * self.words_per_entry + conflict_words)
