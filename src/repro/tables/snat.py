"""Stateful SNAT session table (§4.2, Fig. 11).

Customers with many VMs but few public IPs reach the Internet through
SNAT at the gateway: the inner 5-tuple is mapped to a (public IP, source
port) pair. Entry count scales with *sessions* — O(100M) in the paper —
which is why this table lives on XGW-x86, never on the switch.

Implements the full session lifecycle: allocation from a public-IP/port
pool, forward and reverse translation, idle expiry, and pool exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..net.flow import FlowKey
from .errors import TableError, TableFullError

EPHEMERAL_LOW = 1024
EPHEMERAL_HIGH = 65535


@dataclass
class SnatSession:
    """One active translation."""

    flow: FlowKey
    public_ip: int
    public_port: int
    created_at: float
    last_active: float

    def touch(self, now: float) -> None:
        self.last_active = now


@dataclass
class _PortPool:
    """Free source ports for one public IP (LIFO reuse)."""

    free: List[int] = field(default_factory=list)

    @classmethod
    def full_range(cls, low: int = EPHEMERAL_LOW, high: int = EPHEMERAL_HIGH) -> "_PortPool":
        return cls(free=list(range(high, low - 1, -1)))

    def allocate(self) -> Optional[int]:
        return self.free.pop() if self.free else None

    def release(self, port: int) -> None:
        self.free.append(port)

    def available(self) -> int:
        return len(self.free)


class SnatTable:
    """The SNAT session table with its public-IP pool.

    >>> table = SnatTable(public_ips=[0x01020304])
    >>> flow = FlowKey(src_ip=0x0A000001, dst_ip=0x08080808, proto=6,
    ...                src_port=5555, dst_port=80)
    >>> session = table.translate(flow, now=0.0)
    >>> table.reverse(session.public_ip, session.public_port, 0x08080808, 80, 6).flow == flow
    True
    """

    def __init__(
        self,
        public_ips: Sequence[int],
        capacity_sessions: Optional[int] = None,
        idle_timeout: float = 300.0,
    ):
        if not public_ips:
            raise ValueError("SNAT needs at least one public IP")
        self.idle_timeout = idle_timeout
        self.capacity_sessions = capacity_sessions
        self._pools: Dict[int, _PortPool] = {
            ip: _PortPool.full_range() for ip in public_ips
        }
        self._by_flow: Dict[FlowKey, SnatSession] = {}
        # (public_ip, public_port, remote_ip, remote_port, proto) -> session
        self._by_public: Dict[Tuple[int, int, int, int, int], SnatSession] = {}
        self.allocated = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._by_flow)

    def translate(self, flow: FlowKey, now: float) -> SnatSession:
        """Find or create the session for an outbound *flow*."""
        session = self._by_flow.get(flow)
        if session is not None:
            session.touch(now)
            return session
        if self.capacity_sessions is not None and len(self._by_flow) >= self.capacity_sessions:
            raise TableFullError("SNAT session capacity reached")
        # Spread new sessions over public IPs by flow hash; fall back to
        # scanning when the hashed pool is drained.
        ips = sorted(self._pools)
        start = hash(flow) % len(ips)
        for offset in range(len(ips)):
            ip = ips[(start + offset) % len(ips)]
            port = self._pools[ip].allocate()
            if port is not None:
                session = SnatSession(flow, ip, port, created_at=now, last_active=now)
                self._by_flow[flow] = session
                self._by_public[(ip, port, flow.dst_ip, flow.dst_port, flow.proto)] = session
                self.allocated += 1
                return session
        raise TableFullError("SNAT public IP/port pool exhausted")

    def reverse(
        self, public_ip: int, public_port: int, remote_ip: int, remote_port: int, proto: int
    ) -> Optional[SnatSession]:
        """Match an inbound (response) packet back to its session."""
        return self._by_public.get((public_ip, public_port, remote_ip, remote_port, proto))

    def lookup(self, flow: FlowKey) -> Optional[SnatSession]:
        """Peek at an existing session without creating one."""
        return self._by_flow.get(flow)

    def release(self, flow: FlowKey) -> None:
        """Tear down one session, returning its port to the pool."""
        session = self._by_flow.pop(flow, None)
        if session is None:
            return
        del self._by_public[
            (session.public_ip, session.public_port, flow.dst_ip, flow.dst_port, flow.proto)
        ]
        self._pools[session.public_ip].release(session.public_port)

    def expire_idle(self, now: float) -> int:
        """Drop sessions idle longer than *idle_timeout*; returns the count."""
        stale = [
            flow
            for flow, session in self._by_flow.items()
            if now - session.last_active > self.idle_timeout
        ]
        for flow in stale:
            self.release(flow)
        self.expired += len(stale)
        return len(stale)

    def available_ports(self) -> int:
        """Total unallocated (IP, port) pairs."""
        return sum(pool.available() for pool in self._pools.values())

    # -- readback (audit + migration) ---------------------------------

    def items(self) -> Iterator[Tuple[FlowKey, SnatSession]]:
        """Every (flow, session) pair in deterministic (flow) order —
        parity with :meth:`VmNcTable.items`, so audit invariants and the
        endpoint migrator can enumerate sessions reproducibly.

        >>> table = SnatTable(public_ips=[0x01020304])
        >>> f = lambda p: FlowKey(0x0A000001, 0x08080808, 6, p, 80)
        >>> _ = table.translate(f(7000), 0.0); _ = table.translate(f(5000), 0.0)
        >>> [flow.src_port for flow, _s in table.items()]
        [5000, 7000]
        """
        for flow in sorted(self._by_flow):
            yield flow, self._by_flow[flow]

    def sessions_for_ip(self, src_ip: int) -> List[SnatSession]:
        """The sessions whose inner source is *src_ip*, flow-ordered."""
        return [s for f, s in self.items() if f.src_ip == src_ip]

    def rewrite_source(self, old_ip: int, new_ip: int) -> List[Tuple[FlowKey, FlowKey]]:
        """Re-key every session of inner source *old_ip* to *new_ip*,
        preserving the allocated (public IP, public port) — the remote
        peer keeps talking to the same public tuple, so established
        connections survive an endpoint re-addressing.

        All-or-nothing: raises :class:`TableError` (mutating nothing) if
        any rewritten flow would collide with an existing session.
        Returns the ``(old_flow, new_flow)`` pairs, flow-ordered.

        >>> table = SnatTable(public_ips=[0x01020304])
        >>> flow = FlowKey(0x0A000001, 0x08080808, 6, 5555, 80)
        >>> s = table.translate(flow, 0.0)
        >>> pairs = table.rewrite_source(0x0A000001, 0x0A000002)
        >>> table.lookup(pairs[0][1]) is s
        True
        >>> s.public_port == table.reverse(s.public_ip, s.public_port,
        ...                                0x08080808, 80, 6).public_port
        True
        """
        if old_ip == new_ip:
            return []
        moves = [(flow, replace(flow, src_ip=new_ip))
                 for flow, _s in self.items() if flow.src_ip == old_ip]
        moving = {old for old, _new in moves}
        for _old, new_flow in moves:
            if new_flow in self._by_flow and new_flow not in moving:
                raise TableError(f"SNAT rewrite collision on {new_flow}")
        for old_flow, new_flow in moves:
            session = self._by_flow.pop(old_flow)
            session.flow = new_flow
            self._by_flow[new_flow] = session
        return moves
