"""Exact-match table with a hardware capacity model.

Functionally a hash map; additionally models what the Tofino charges for
it: each entry occupies a whole cuckoo way (power-of-two SRAM words, see
:mod:`repro.tables.geometry`) and the table cannot be filled past a
``fill_factor`` of its physical slots — cuckoo/hash tables stall on
insertion well before 100 % utilisation.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

from .errors import DuplicateEntryError, MissingEntryError, TableFullError
from .geometry import MemoryFootprint, exact_entry_words

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Default achievable load factor for a 4-way cuckoo hash table.
DEFAULT_FILL_FACTOR = 0.95


class ExactTable(Generic[K, V]):
    """An exact-match table with modelled SRAM cost.

    Parameters
    ----------
    key_bits:
        Width of the match key (drives words-per-entry).
    value_bits:
        Width of the stored action data.
    capacity:
        Maximum number of entries (already net of fill factor), or None
        for unbounded (the x86 gateway's DRAM tables).
    fill_factor:
        Fraction of physical slots usable before insertion fails; only
        affects the reported footprint of *physical* slots backing the
        logical capacity.
    """

    def __init__(
        self,
        key_bits: int,
        value_bits: int = 0,
        capacity: Optional[int] = None,
        fill_factor: float = DEFAULT_FILL_FACTOR,
        name: str = "exact",
    ):
        if not 0 < fill_factor <= 1.0:
            raise ValueError("fill_factor must be in (0, 1]")
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.name = name
        self.key_bits = key_bits
        self.value_bits = value_bits
        self.capacity = capacity
        self.fill_factor = fill_factor
        self.words_per_entry = exact_entry_words(key_bits, value_bits)
        self._entries: Dict[K, V] = {}
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def insert(self, key: K, value: V, replace: bool = False) -> None:
        """Insert *key* -> *value*; raises :class:`TableFullError` at capacity."""
        if key in self._entries:
            if not replace:
                raise DuplicateEntryError(repr(key))
            self._entries[key] = value
            return
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise TableFullError(
                f"{self.name}: capacity {self.capacity} reached"
            )
        self._entries[key] = value

    def remove(self, key: K) -> V:
        """Remove and return the value stored at *key*."""
        try:
            return self._entries.pop(key)
        except KeyError:
            raise MissingEntryError(repr(key)) from None

    def lookup(self, key: K) -> Optional[V]:
        """Match *key*; returns the value or None. Updates hit statistics."""
        self.lookups += 1
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
        return value

    def get(self, key: K) -> V:
        """Fetch the value at *key*, raising if absent (no stats update)."""
        try:
            return self._entries[key]
        except KeyError:
            raise MissingEntryError(repr(key)) from None

    def items(self) -> Iterator[Tuple[K, V]]:
        return iter(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    @property
    def load(self) -> float:
        """Occupied fraction of the logical capacity (the "water level")."""
        if self.capacity is None or self.capacity == 0:
            return 0.0
        return len(self._entries) / self.capacity

    def footprint(self) -> MemoryFootprint:
        """Physical SRAM demand of the *current* entries (with fill slack)."""
        physical_entries = math.ceil(len(self._entries) / self.fill_factor)
        return MemoryFootprint(sram_words=physical_entries * self.words_per_entry)

    def capacity_footprint(self) -> MemoryFootprint:
        """Physical SRAM demand if the table were provisioned to capacity."""
        if self.capacity is None:
            raise ValueError("unbounded table has no capacity footprint")
        physical_entries = math.ceil(self.capacity / self.fill_factor)
        return MemoryFootprint(sram_words=physical_entries * self.words_per_entry)
