"""IP longest-prefix-match table, typed over :class:`~repro.net.addr.Prefix`.

A thin wrapper around :class:`repro.tables.bittrie.GenericLpmTrie` for one
IP version. This is the reference LPM used (a) by the software gateway,
(b) as the correctness oracle for the TCAM and ALPM implementations.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from ..net.addr import Prefix, bits_for_version
from .bittrie import GenericLpmTrie

V = TypeVar("V")


class LpmTrie(Generic[V]):
    """Prefix -> value LPM for a single IP version.

    >>> trie = LpmTrie(4)
    >>> trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
    >>> trie.insert(Prefix.parse("10.1.0.0/16"), "fine")
    >>> trie.lookup(int(__import__("ipaddress").ip_address("10.1.2.3")))[1]
    'fine'
    """

    def __init__(self, version: int):
        self.version = version
        self.bits = bits_for_version(version)
        self._trie: GenericLpmTrie[V] = GenericLpmTrie(self.bits)

    def __len__(self) -> int:
        return len(self._trie)

    def _check_version(self, prefix: Prefix) -> None:
        if prefix.version != self.version:
            raise ValueError(f"IPv{prefix.version} prefix in IPv{self.version} trie")

    def insert(self, prefix: Prefix, value: V, replace: bool = False) -> None:
        """Insert *prefix* -> *value*; raises on duplicates unless *replace*."""
        self._check_version(prefix)
        self._trie.insert(prefix.network, prefix.prefix_len, value, replace)

    def remove(self, prefix: Prefix) -> V:
        """Remove *prefix*, returning its value."""
        self._check_version(prefix)
        return self._trie.remove(prefix.network, prefix.prefix_len)

    def get(self, prefix: Prefix) -> V:
        """Exact fetch of the value stored at *prefix*."""
        self._check_version(prefix)
        return self._trie.get(prefix.network, prefix.prefix_len)

    def __contains__(self, prefix: Prefix) -> bool:
        if prefix.version != self.version:
            return False
        return self._trie.contains(prefix.network, prefix.prefix_len)

    def lookup(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for integer *address*."""
        hit = self._trie.lookup(address)
        if hit is None:
            return None
        network, length, value = hit
        return Prefix(network, length, self.version), value

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All (prefix, value) pairs in trie order."""
        for network, length, value in self._trie.items():
            yield Prefix(network, length, self.version), value

    def covering_entries(self, prefix: Prefix) -> List[Tuple[Prefix, V]]:
        """Stored prefixes covering *prefix* from above (and itself),
        shortest first."""
        self._check_version(prefix)
        return [
            (Prefix(network, length, self.version), value)
            for network, length, value in self._trie.covering_entries(
                prefix.network, prefix.prefix_len
            )
        ]
