"""Key compression: hash long exact-match keys to short digests (§4.4).

"Compressing longer table entries": a 128-bit IPv6 key is hashed to a
32-bit digest so it packs into the same exact-match entry size as IPv4.
Two conflict classes must be handled (paper §4.4):

1. digest(IPv6) colliding with a real IPv4 address — disambiguated by an
   address-family label bit stored alongside the key;
2. two IPv6 keys sharing a digest — the colliding keys are diverted to a
   small *conflict table* holding full 128-bit keys, searched first.

Lookup order is therefore: conflict table (full key) -> main table
(label || digest). Deletions may promote a previously conflicting key
back to the main table.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

from .errors import DuplicateEntryError, MissingEntryError

V = TypeVar("V")

DIGEST_BITS = 32


def digest32(key: int, key_bits: int = 128, salt: int = 0) -> int:
    """Deterministic 32-bit digest of an integer key.

    Uses SHA-256 folded to 32 bits; hardware would use a CRC, but only
    distribution quality matters to the model.
    """
    raw = key.to_bytes((key_bits + 7) // 8, "big") + salt.to_bytes(4, "big")
    return int.from_bytes(hashlib.sha256(raw).digest()[:4], "big")


class CompressedExactMap(Generic[V]):
    """An exact map over wide keys stored as 32-bit digests + conflict table.

    Semantically identical to a plain dict over the full keys (verified by
    property tests); physically, main-table entries are digest-wide.

    >>> m = CompressedExactMap(key_bits=128)
    >>> m.insert(2**100, "a")
    >>> m.lookup(2**100)
    'a'
    >>> m.lookup(2**100 + 1) is None
    True
    """

    def __init__(self, key_bits: int = 128, salt: int = 0):
        if key_bits <= DIGEST_BITS:
            raise ValueError("compression only makes sense for keys wider than the digest")
        self.key_bits = key_bits
        self.salt = salt
        # digest -> (full_key, value); holds digests owned by exactly one key.
        self._main: Dict[int, Tuple[int, V]] = {}
        # full_key -> value; keys whose digest collides with another key.
        self._conflict: Dict[int, V] = {}
        # digest -> count of full keys (main + conflict) sharing it.
        self._digest_refs: Dict[int, int] = {}

    def _digest(self, key: int) -> int:
        return digest32(key, self.key_bits, self.salt)

    def __len__(self) -> int:
        return len(self._main) + len(self._conflict)

    @property
    def conflict_entries(self) -> int:
        """Number of entries diverted to the conflict table."""
        return len(self._conflict)

    def insert(self, key: int, value: V, replace: bool = False) -> None:
        """Insert *key* -> *value*, diverting digest collisions."""
        d = self._digest(key)
        if key in self._conflict:
            if not replace:
                raise DuplicateEntryError(hex(key))
            self._conflict[key] = value
            return
        existing = self._main.get(d)
        if existing is not None and existing[0] == key:
            if not replace:
                raise DuplicateEntryError(hex(key))
            self._main[d] = (key, value)
            return
        if existing is not None:
            # New collision: the incumbent moves to the conflict table too?
            # No — only the newcomer is diverted; the incumbent's digest
            # entry stays valid because conflict lookups run first for
            # any key in the conflict table, and the incumbent is not.
            self._conflict[key] = value
        else:
            self._main[d] = (key, value)
        self._digest_refs[d] = self._digest_refs.get(d, 0) + 1

    def lookup(self, key: int) -> Optional[V]:
        """Exact lookup: conflict table first, then digest table."""
        if key in self._conflict:
            return self._conflict[key]
        entry = self._main.get(self._digest(key))
        if entry is not None and entry[0] == key:
            return entry[1]
        return None

    def remove(self, key: int) -> V:
        """Remove *key*; a conflict-table key may be promoted to main."""
        d = self._digest(key)
        if key in self._conflict:
            value = self._conflict.pop(key)
            self._digest_refs[d] -= 1
            return value
        entry = self._main.get(d)
        if entry is None or entry[0] != key:
            raise MissingEntryError(hex(key))
        del self._main[d]
        self._digest_refs[d] -= 1
        if self._digest_refs[d] == 0:
            del self._digest_refs[d]
        else:
            # Promote one conflicting key with this digest back to main.
            for other_key in list(self._conflict):
                if self._digest(other_key) == d:
                    self._main[d] = (other_key, self._conflict.pop(other_key))
                    break
        return entry[1]

    def items(self) -> Iterator[Tuple[int, V]]:
        for _d, (key, value) in self._main.items():
            yield key, value
        yield from self._conflict.items()

    def conflict_ratio(self) -> float:
        """Fraction of entries living in the conflict table.

        The paper reports this is "very limited"; for n keys uniformly
        hashed into 2^32 digests the expectation is ~ n/2^33 per key.
        """
        total = len(self)
        return len(self._conflict) / total if total else 0.0
