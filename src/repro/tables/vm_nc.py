"""The VM-NC mapping table (§2.1, Fig. 2).

Maps ``(VNI, VM IP)`` by exact match to the physical server (Node
Controller) hosting the VM. Backed by the pooled dual-stack exact table
so IPv6 keys are digest-compressed exactly as on XGW-H.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from .pooled import PooledExactTable


#: An enumerated binding: (vni, vm_ip, version, NcBinding).
VmItem = Tuple[int, int, int, "NcBinding"]


@dataclass(frozen=True)
class NcBinding:
    """Where a VM lives: the NC's underlay IP (and its family)."""

    nc_ip: int
    nc_version: int = 4

    def __post_init__(self):
        if self.nc_version not in (4, 6):
            raise ValueError(f"bad NC IP version {self.nc_version}")


class VmNcTable:
    """Exact-match (VNI, VM IP) -> NC binding.

    >>> table = VmNcTable()
    >>> table.insert(10, 0xC0A80A02, 4, NcBinding(nc_ip=0x0A010101))
    >>> table.lookup(10, 0xC0A80A02, 4).nc_ip == 0x0A010101
    True
    """

    def __init__(self, capacity_entries: Optional[int] = None, name: str = "vm-nc"):
        self.name = name
        self._table: PooledExactTable[NcBinding] = PooledExactTable(
            capacity_entries=capacity_entries, value_bits=32, name=name
        )
        self._per_vni_counts: dict = {}
        #: Monotonic mutation counter consumed by the flow cache's
        #: generation-vector staleness check.
        self.generation = 0

    def insert(self, vni: int, vm_ip: int, version: int, binding: NcBinding, replace: bool = False) -> None:
        """Register the NC hosting VM *vm_ip* in VPC *vni*."""
        existed = self._table.lookup(vni, vm_ip, version) is not None
        self._table.insert(vni, vm_ip, version, binding, replace=replace)
        self.generation += 1
        if not existed:
            self._per_vni_counts[vni] = self._per_vni_counts.get(vni, 0) + 1

    def remove(self, vni: int, vm_ip: int, version: int) -> NcBinding:
        """Remove a VM's binding (VM released or migrated)."""
        binding = self._table.remove(vni, vm_ip, version)
        self.generation += 1
        self._per_vni_counts[vni] -= 1
        if self._per_vni_counts[vni] == 0:
            del self._per_vni_counts[vni]
        return binding

    def lookup(self, vni: int, vm_ip: int, version: int) -> Optional[NcBinding]:
        """Find the NC for a VM, or None if unknown."""
        return self._table.lookup(vni, vm_ip, version)

    def lookup_many(self, queries) -> list:
        """Bindings (or None) for a burst of ``(vni, vm_ip, version)``
        queries — the batch compiler's one-call VM-NC stage.

        >>> table = VmNcTable()
        >>> table.insert(10, 2, 4, NcBinding(nc_ip=0x0A010101))
        >>> [b.nc_ip if b else None for b in table.lookup_many([(10, 2, 4), (10, 3, 4)])]
        [167837953, None]
        """
        lookup = self._table.lookup
        return [lookup(vni, vm_ip, version) for vni, vm_ip, version in queries]

    def __len__(self) -> int:
        return len(self._table)

    def count_for_vni(self, vni: int) -> int:
        """Number of VMs registered under one VNI (the split unit)."""
        return self._per_vni_counts.get(vni, 0)

    def items(self) -> Iterator[VmItem]:
        """Readback of every installed ``(vni, vm_ip, version, binding)``
        (both families), for the audit's intent-vs-installed sweep."""
        yield from self._table.items()

    def conflict_entries(self) -> int:
        """IPv6 digest-conflict entries (paper: "very limited")."""
        return self._table.conflict_entries()

    @property
    def load(self) -> float:
        return self._table.load

    def footprint(self):
        """Physical SRAM footprint (pooled, compressed)."""
        return self._table.footprint()

    @property
    def lookups(self) -> int:
        return self._table.lookups

    @property
    def hits(self) -> int:
        return self._table.hits
