"""Counter table — per-key packet/byte accounting (§3.3 QoS tables)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Tuple

from .geometry import MemoryFootprint, sram_words_for


@dataclass
class CounterCell:
    """One packets/bytes counter pair."""

    packets: int = 0
    bytes: int = 0


class CounterTable:
    """Per-key packet and byte counters, as a P4 indexed counter would be.

    >>> counters = CounterTable()
    >>> counters.count("vni:10", 128)
    >>> counters.read("vni:10").packets
    1
    """

    #: SRAM bits per cell: 64-bit packet + 64-bit byte counter.
    CELL_BITS = 128

    def __init__(self, name: str = "counter"):
        self.name = name
        self._cells: Dict[Hashable, CounterCell] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def count(self, key: Hashable, size: int) -> None:
        """Charge one packet of *size* bytes to *key*."""
        if size < 0:
            raise ValueError("size must be non-negative")
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = CounterCell()
        cell.packets += 1
        cell.bytes += size

    def count_batch(self, key: Hashable, packets: int, total_bytes: int = 0) -> None:
        """Charge a whole interval's traffic to *key* in one update — how
        a simulation interval (not a per-packet pipeline) feeds counters.

        >>> counters = CounterTable()
        >>> counters.count_batch("vip:1", 1000, 128_000)
        >>> counters.read("vip:1").packets
        1000
        """
        if packets < 0 or total_bytes < 0:
            raise ValueError("packets and bytes must be non-negative")
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = CounterCell()
        cell.packets += packets
        cell.bytes += total_bytes

    def count_batch_many(self, charges: Dict[Hashable, Tuple[int, int]]) -> None:
        """Apply per-key ``(packets, bytes)`` charges in iteration order
        — one flush for a whole burst's per-VNI aggregates. Cells are
        created in the dict's order, so a first-touch-ordered dict
        reproduces the per-packet walk's cell-creation order exactly.

        >>> counters = CounterTable()
        >>> counters.count_batch_many({"a": (2, 256), "b": (1, 64)})
        >>> counters.read("a").bytes, counters.read("b").packets
        (256, 1)
        """
        cells = self._cells
        for key, (packets, total_bytes) in charges.items():
            if packets < 0 or total_bytes < 0:
                raise ValueError("packets and bytes must be non-negative")
            cell = cells.get(key)
            if cell is None:
                cell = cells[key] = CounterCell()
            cell.packets += packets
            cell.bytes += total_bytes

    def read(self, key: Hashable) -> CounterCell:
        """Read (a live reference to) the cell for *key*; zeros if unseen."""
        return self._cells.get(key, CounterCell())

    def reset(self, key: Hashable) -> None:
        self._cells.pop(key, None)

    def items(self) -> Iterator[Tuple[Hashable, CounterCell]]:
        return iter(self._cells.items())

    def total_packets(self) -> int:
        return sum(cell.packets for cell in self._cells.values())

    def total_bytes(self) -> int:
        return sum(cell.bytes for cell in self._cells.values())

    def footprint(self) -> MemoryFootprint:
        return MemoryFootprint(sram_words=len(self._cells) * sram_words_for(self.CELL_BITS))
