"""A TCAM model: priority-ordered ternary matching with slice accounting.

Entries are ``(value, mask)`` pairs over an integer key space; lookup
returns the highest-priority entry whose masked bits equal the search
key's. For LPM use, longer prefixes are inserted at higher priority, as a
switch driver would arrange. Slice accounting follows the 44-bit slice
geometry from :mod:`repro.tables.geometry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .errors import DuplicateEntryError, MissingEntryError, TableFullError
from .geometry import MemoryFootprint, tcam_slices_for

V = TypeVar("V")


@dataclass(frozen=True)
class TcamEntry(Generic[V]):
    """One ternary entry: match when ``(key & mask) == (value_bits & mask)``."""

    match: int
    mask: int
    priority: int
    action: V

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.match & self.mask)


class Tcam(Generic[V]):
    """Priority TCAM over a *key_bits*-wide key.

    Lookup scans in descending priority (ties broken by insertion order,
    oldest first — matching hardware where the lowest physical address
    wins).
    """

    def __init__(self, key_bits: int, capacity_slices: Optional[int] = None, name: str = "tcam"):
        if key_bits <= 0:
            raise ValueError("key_bits must be positive")
        self.name = name
        self.key_bits = key_bits
        self.slices_per_entry = tcam_slices_for(key_bits)
        self.capacity_slices = capacity_slices
        self._entries: List[TcamEntry[V]] = []
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def used_slices(self) -> int:
        return len(self._entries) * self.slices_per_entry

    def insert(self, match: int, mask: int, priority: int, action: V) -> None:
        """Add an entry; raises :class:`TableFullError` when out of slices."""
        limit = 1 << self.key_bits
        if not 0 <= match < limit or not 0 <= mask < limit:
            raise ValueError("match/mask wider than key_bits")
        if any(e.match == match and e.mask == mask and e.priority == priority for e in self._entries):
            raise DuplicateEntryError(f"{match:#x}/{mask:#x} prio={priority}")
        if (
            self.capacity_slices is not None
            and self.used_slices() + self.slices_per_entry > self.capacity_slices
        ):
            raise TableFullError(f"{self.name}: out of TCAM slices")
        self._entries.append(TcamEntry(match, mask, priority, action))
        # Keep sorted by descending priority; stable sort preserves age order.
        self._entries.sort(key=lambda e: -e.priority)

    def remove(self, match: int, mask: int, priority: int) -> V:
        """Remove the entry identified by (match, mask, priority)."""
        for i, entry in enumerate(self._entries):
            if entry.match == match and entry.mask == mask and entry.priority == priority:
                del self._entries[i]
                return entry.action
        raise MissingEntryError(f"{match:#x}/{mask:#x} prio={priority}")

    def lookup(self, key: int) -> Optional[TcamEntry[V]]:
        """Highest-priority matching entry for *key*, or None."""
        self.lookups += 1
        for entry in self._entries:
            if entry.matches(key):
                self.hits += 1
                return entry
        return None

    def entries(self) -> Iterator[TcamEntry[V]]:
        return iter(self._entries)

    def shadowed_entries(self) -> List[Tuple[TcamEntry[V], TcamEntry[V]]]:
        """Every entry that can never win a lookup, with its killer.

        Entry B is *shadowed* by an earlier-scanned entry A when A's
        care-bits are a subset of B's and they agree on those bits —
        then every key matching B matches A too, and A wins first.
        Returned as ``(shadowed, shadowing)`` pairs in scan order; an
        entry shadowed by several predecessors reports only the first.

        >>> t = Tcam(key_bits=8)
        >>> t.insert(0x10, 0xF0, priority=10, action="wide")
        >>> t.insert(0x12, 0xFF, priority=5, action="narrow")
        >>> [(s.match, by.match) for s, by in t.shadowed_entries()]
        [(18, 16)]
        """
        shadowed: List[Tuple[TcamEntry[V], TcamEntry[V]]] = []
        for i, entry in enumerate(self._entries):
            for earlier in self._entries[:i]:
                if (
                    (earlier.mask & entry.mask) == earlier.mask
                    and (earlier.match & earlier.mask) == (entry.match & earlier.mask)
                ):
                    shadowed.append((entry, earlier))
                    break
        return shadowed

    def footprint(self) -> MemoryFootprint:
        return MemoryFootprint(tcam_slices=self.used_slices())


def prefix_to_match_mask(network: int, prefix_len: int, addr_bits: int, extra_bits: int = 0, extra_value: int = 0) -> Tuple[int, int]:
    """Encode an IP prefix (optionally concatenated after an exact field
    such as a VNI) into TCAM (match, mask).

    The key layout is ``extra_value || address``: *extra_bits* exact-match
    bits in front of *addr_bits* of ternary address.
    """
    if prefix_len < 0 or prefix_len > addr_bits:
        raise ValueError("bad prefix length")
    addr_mask = (((1 << prefix_len) - 1) << (addr_bits - prefix_len)) if prefix_len else 0
    extra_mask = ((1 << extra_bits) - 1) << addr_bits if extra_bits else 0
    match = (extra_value << addr_bits) | (network & addr_mask)
    return match, extra_mask | addr_mask
