"""The VXLAN routing table (§2.1, Fig. 2).

Maps ``(VNI, inner dst IP)`` by longest-prefix match to a *scope*:

* ``LOCAL`` — the destination VM is in this VPC; continue to the VM-NC
  mapping table.
* ``PEER`` — the destination belongs to a peer VPC; re-lookup with the
  next-hop VNI until a LOCAL entry is found (Fig. 2's VM-VM across VPCs).
* ``INTERNET`` / ``IDC`` / ``CROSS_REGION`` — leave the region through
  the corresponding uplink.
* ``SERVICE`` — traffic requiring a service the hardware does not run
  (e.g. SNAT); the gateway redirects it to XGW-x86.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.addr import Prefix
from .errors import MissingEntryError, TableError
from .geometry import IPV6_BITS, VNI_BITS
from .lpm import LpmTrie


class Scope(Enum):
    """Where a routed packet should go next."""

    LOCAL = "local"
    PEER = "peer"
    INTERNET = "internet"
    IDC = "idc"
    CROSS_REGION = "cross-region"
    SERVICE = "service"


@dataclass(frozen=True)
class RouteAction:
    """The action part of a VXLAN routing entry."""

    scope: Scope
    next_hop_vni: Optional[int] = None  # for PEER
    target: Optional[str] = None  # uplink/service identifier

    def __post_init__(self):
        if self.scope is Scope.PEER and self.next_hop_vni is None:
            raise ValueError("PEER routes require next_hop_vni")
        if self.scope is not Scope.PEER and self.next_hop_vni is not None:
            raise ValueError("next_hop_vni only valid for PEER routes")


@dataclass(frozen=True)
class Resolution:
    """Result of following PEER chains to a terminal route."""

    vni: int  # the VNI whose entry terminated the walk
    prefix: Prefix
    action: RouteAction
    hops: int  # number of PEER indirections followed


class RoutingLoopError(TableError):
    """Raised when PEER next-hops cycle or exceed the hop budget."""


class VxlanRoutingTable:
    """LPM routing table keyed by (VNI, inner destination IP).

    >>> table = VxlanRoutingTable()
    >>> table.insert(10, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    >>> table.lookup(10, int(__import__("ipaddress").ip_address("192.168.10.2")), 4)[1].scope
    <Scope.LOCAL: 'local'>
    """

    def __init__(self, name: str = "vxlan-routing"):
        self.name = name
        self._tries: Dict[Tuple[int, int], LpmTrie[RouteAction]] = {}
        self.lookups = 0
        self.hits = 0
        #: Monotonic mutation counter: bumped on every insert/remove so
        #: flow-cache entries that captured an older generation go stale
        #: (see :mod:`repro.dataplane.flowcache`).
        self.generation = 0

    def _trie(self, vni: int, version: int, create: bool) -> Optional[LpmTrie[RouteAction]]:
        if not 0 <= vni < (1 << VNI_BITS):
            raise ValueError(f"VNI {vni} out of 24-bit range")
        key = (vni, version)
        trie = self._tries.get(key)
        if trie is None and create:
            trie = self._tries[key] = LpmTrie(version)
        return trie

    def insert(self, vni: int, prefix: Prefix, action: RouteAction, replace: bool = False) -> None:
        """Install a route for *vni*."""
        self._trie(vni, prefix.version, create=True).insert(prefix, action, replace)
        self.generation += 1

    def remove(self, vni: int, prefix: Prefix) -> RouteAction:
        """Withdraw a route."""
        trie = self._trie(vni, prefix.version, create=False)
        if trie is None:
            raise MissingEntryError(f"vni={vni} {prefix}")
        action = trie.remove(prefix)
        if len(trie) == 0:
            del self._tries[(vni, prefix.version)]
        self.generation += 1
        return action

    def lookup(self, vni: int, address: int, version: int) -> Optional[Tuple[Prefix, RouteAction]]:
        """One longest-prefix match step (no PEER chasing)."""
        self.lookups += 1
        trie = self._trie(vni, version, create=False)
        if trie is None:
            return None
        hit = trie.lookup(address)
        if hit is not None:
            self.hits += 1
        return hit

    def resolve(self, vni: int, address: int, version: int, max_hops: int = 8) -> Resolution:
        """Follow PEER next-hop VNIs until a terminal scope (Fig. 2).

        Raises :class:`RoutingLoopError` on cycles or missing routes along
        the chain raise :class:`MissingEntryError`.
        """
        seen = set()
        current = vni
        hops = 0
        while True:
            if current in seen or hops > max_hops:
                raise RoutingLoopError(
                    f"PEER chain loop/overflow from vni={vni} at vni={current}"
                )
            seen.add(current)
            hit = self.lookup(current, address, version)
            if hit is None:
                raise MissingEntryError(f"no route for vni={current} addr={address:#x}")
            prefix, action = hit
            if action.scope is not Scope.PEER:
                return Resolution(vni=current, prefix=prefix, action=action, hops=hops)
            current = action.next_hop_vni
            hops += 1

    def resolve_many(self, queries, max_hops: int = 8) -> list:
        """Resolve each ``(vni, address, version)`` query, returning
        :class:`Resolution` objects with failures returned *in place* as
        the exception instances :meth:`resolve` would raise — the batch
        compiler memoizes negative decisions too, so a missing route
        must not abort the rest of the burst.

        >>> table = VxlanRoutingTable()
        >>> table.insert(10, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        >>> done = table.resolve_many([(10, 0x0A000001, 4), (11, 0x0A000001, 4)])
        >>> done[0].action.scope.value, type(done[1]).__name__
        ('local', 'MissingEntryError')
        """
        resolve = self.resolve
        out = []
        append = out.append
        for vni, address, version in queries:
            try:
                append(resolve(vni, address, version, max_hops))
            except (MissingEntryError, RoutingLoopError) as exc:
                append(exc)
        return out

    # -- bulk access ------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(trie) for trie in self._tries.values())

    def count(self, version: int) -> int:
        """Route count for one address family."""
        return sum(len(t) for (_vni, ver), t in self._tries.items() if ver == version)

    def vnis(self) -> List[int]:
        """All VNIs with at least one route."""
        return sorted({vni for vni, _ver in self._tries})

    def items(self) -> Iterator[Tuple[int, Prefix, RouteAction]]:
        """All (vni, prefix, action) routes."""
        for (vni, _version), trie in self._tries.items():
            for prefix, action in trie.items():
                yield vni, prefix, action

    def entries_for_vni(self, vni: int) -> List[Tuple[Prefix, RouteAction]]:
        """Routes belonging to one VNI (both families) — the split unit."""
        out: List[Tuple[Prefix, RouteAction]] = []
        for version in (4, 6):
            trie = self._tries.get((vni, version))
            if trie is not None:
                out.extend(trie.items())
        return out

    def to_composite_routes(self, expand_v4: bool = True) -> List[Tuple[int, int, RouteAction]]:
        """Flatten to (network, length, action) in the pooled composite
        key space ``VNI(24) || AF(1) || address(128)``.

        IPv4 addresses are left-aligned in the 128-bit field (the paper's
        "expand to 128-bit" pooling), so prefix lengths carry over.
        """
        width_addr = 1 + IPV6_BITS
        out: List[Tuple[int, int, RouteAction]] = []
        for vni, prefix, action in self.items():
            af = 0 if prefix.version == 4 else 1
            if prefix.version == 4:
                addr_part = prefix.network << (IPV6_BITS - 32)
            else:
                addr_part = prefix.network
            network = (vni << width_addr) | (af << IPV6_BITS) | addr_part
            length = VNI_BITS + 1 + prefix.prefix_len
            out.append((network, length, action))
        return out

    @staticmethod
    def composite_key(vni: int, address: int, version: int) -> int:
        """The lookup key matching :meth:`to_composite_routes` layout."""
        af = 0 if version == 4 else 1
        addr_part = address << (IPV6_BITS - 32) if version == 4 else address
        return (vni << (1 + IPV6_BITS)) | (af << IPV6_BITS) | addr_part

    @staticmethod
    def composite_width() -> int:
        return VNI_BITS + 1 + IPV6_BITS
