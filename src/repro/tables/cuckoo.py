"""A d-way cuckoo hash table — the physical exact-match structure.

Tofino's exact-match tables are multi-way cuckoo hashes; the capacity
model in :class:`repro.tables.exact.ExactTable` charges a fill-factor
slack for exactly this structure's insertion limits. This module
implements the real thing so the slack can be *measured*: 4-way cuckoo
tables sustain ~95%+ load before insertion fails, 2-way only ~50%.

Keys and values are arbitrary hashables; buckets hold one entry per way
(way-per-slot variant, matching the SRAM-block-per-way layout).
"""

from __future__ import annotations

import hashlib
from typing import Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

from .errors import DuplicateEntryError, MissingEntryError, TableFullError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Give up and declare the table full after this many displacement hops.
MAX_KICKS = 256


def _way_hash(key: Hashable, way: int, buckets: int) -> int:
    digest = hashlib.sha256(repr((way, key)).encode()).digest()
    return int.from_bytes(digest[:8], "big") % buckets


class CuckooTable(Generic[K, V]):
    """A d-way cuckoo hash with displacement insertion.

    >>> t = CuckooTable(num_buckets=64, ways=4)
    >>> t.insert("vm-1", "nc-9")
    >>> t.lookup("vm-1")
    'nc-9'
    """

    def __init__(self, num_buckets: int, ways: int = 4):
        if num_buckets <= 0 or ways <= 0:
            raise ValueError("num_buckets and ways must be positive")
        self.num_buckets = num_buckets
        self.ways = ways
        # slots[way][bucket] -> (key, value) or None
        self._slots: List[List[Optional[Tuple[K, V]]]] = [
            [None] * num_buckets for _ in range(ways)
        ]
        self._count = 0
        self.displacements = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self.num_buckets * self.ways

    @property
    def load_factor(self) -> float:
        return self._count / self.capacity

    def _find(self, key: K) -> Optional[Tuple[int, int]]:
        for way in range(self.ways):
            bucket = _way_hash(key, way, self.num_buckets)
            slot = self._slots[way][bucket]
            if slot is not None and slot[0] == key:
                return way, bucket
        return None

    def lookup(self, key: K) -> Optional[V]:
        """O(ways) exact lookup — the hardware does all ways in parallel."""
        where = self._find(key)
        if where is None:
            return None
        way, bucket = where
        return self._slots[way][bucket][1]

    def __contains__(self, key: K) -> bool:
        return self._find(key) is not None

    def insert(self, key: K, value: V, replace: bool = False) -> None:
        """Insert with cuckoo displacement.

        Raises :class:`TableFullError` when a displacement chain exceeds
        ``MAX_KICKS`` — the practical "table full" condition that defines
        the achievable fill factor.
        """
        where = self._find(key)
        if where is not None:
            if not replace:
                raise DuplicateEntryError(repr(key))
            way, bucket = where
            self._slots[way][bucket] = (key, value)
            return
        entry: Tuple[K, V] = (key, value)
        way = 0
        for _kick in range(MAX_KICKS):
            bucket = _way_hash(entry[0], way, self.num_buckets)
            evicted = self._slots[way][bucket]
            self._slots[way][bucket] = entry
            if evicted is None:
                self._count += 1
                return
            self.displacements += 1
            entry = evicted
            # Move the evicted entry to its next way (round robin).
            current_way = way
            way = (current_way + 1) % self.ways
        # Undo is unnecessary for the simulator: the displaced chain is
        # still fully stored except the final homeless entry.
        raise TableFullError(
            f"cuckoo insertion failed at load {self.load_factor:.2f}"
        )

    def remove(self, key: K) -> V:
        where = self._find(key)
        if where is None:
            raise MissingEntryError(repr(key))
        way, bucket = where
        _key, value = self._slots[way][bucket]
        self._slots[way][bucket] = None
        self._count -= 1
        return value

    def items(self) -> Iterator[Tuple[K, V]]:
        for way_slots in self._slots:
            for slot in way_slots:
                if slot is not None:
                    yield slot


def achievable_load_factor(ways: int, num_buckets: int = 512, seed: int = 1) -> float:
    """Measure the load factor at first insertion failure.

    This is the experiment behind the fill-factor constants: 4-way
    tables reach ~0.95+, 2-way ~0.9, 1-way (plain hashing) far less.
    """
    import random

    rng = random.Random(seed)
    table: CuckooTable[int, int] = CuckooTable(num_buckets=num_buckets, ways=ways)
    while True:
        key = rng.randrange(1 << 48)
        try:
            table.insert(key, 0, replace=True)
        except TableFullError:
            return table.load_factor
