"""Token-bucket meters — QoS rate limiting per SLA (§3.3, §4.2).

Used both for tenant bandwidth SLAs and for the mandatory rate limiting
of traffic redirected from XGW-H to XGW-x86 ("overload protection").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, Optional

from .geometry import MemoryFootprint, sram_words_for


class MeterColor(Enum):
    """srTCM-style result colors: green passes, red drops."""

    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"


@dataclass
class TokenBucket:
    """A two-rate token bucket (committed + peak)."""

    committed_rate: float  # tokens (bytes) per second
    committed_burst: float
    peak_rate: Optional[float] = None
    peak_burst: Optional[float] = None

    def __post_init__(self):
        if self.committed_rate <= 0 or self.committed_burst <= 0:
            raise ValueError("committed rate/burst must be positive")
        self._c_tokens = self.committed_burst
        self._p_tokens = self.peak_burst if self.peak_burst is not None else 0.0
        self._last = 0.0

    def update(self, now: float, size: float) -> MeterColor:
        """Charge *size* bytes at time *now*, returning the packet color."""
        if now < self._last:
            raise ValueError("meter time went backwards")
        elapsed = now - self._last
        self._last = now
        self._c_tokens = min(self.committed_burst, self._c_tokens + elapsed * self.committed_rate)
        if self.peak_rate is not None:
            self._p_tokens = min(self.peak_burst, self._p_tokens + elapsed * self.peak_rate)
            if size > self._p_tokens:
                return MeterColor.RED
        if size <= self._c_tokens:
            self._c_tokens -= size
            if self.peak_rate is not None:
                self._p_tokens -= size
            return MeterColor.GREEN
        if self.peak_rate is not None:
            self._p_tokens -= size
            return MeterColor.YELLOW
        return MeterColor.RED


class MeterTable:
    """Keyed meters (per tenant / per redirect path).

    >>> meters = MeterTable()
    >>> meters.configure("tenant-1", TokenBucket(committed_rate=100.0, committed_burst=200.0))
    >>> meters.charge("tenant-1", now=0.0, size=100.0)
    <MeterColor.GREEN: 'green'>
    """

    #: SRAM bits per meter cell: two token counters + config.
    CELL_BITS = 128

    def __init__(self, name: str = "meter"):
        self.name = name
        self._meters: Dict[Hashable, TokenBucket] = {}
        self.green = 0
        self.yellow = 0
        self.red = 0

    def __len__(self) -> int:
        return len(self._meters)

    def configure(self, key: Hashable, bucket: TokenBucket) -> None:
        """Install or replace the meter for *key*."""
        self._meters[key] = bucket

    def charge(self, key: Hashable, now: float, size: float) -> MeterColor:
        """Meter a packet; unmetered keys pass GREEN."""
        bucket = self._meters.get(key)
        if bucket is None:
            self.green += 1
            return MeterColor.GREEN
        color = bucket.update(now, size)
        if color is MeterColor.GREEN:
            self.green += 1
        elif color is MeterColor.YELLOW:
            self.yellow += 1
        else:
            self.red += 1
        return color

    def has_meter(self, key: Hashable) -> bool:
        """True when *key* has a configured bucket (a charge on any
        other key is a dict miss passing GREEN — batch callers settle
        those in bulk via :meth:`pass_unmetered`)."""
        return key in self._meters

    def charge_run(self, key: Hashable, now: float, sizes) -> Optional[list]:
        """Charge a run of packet *sizes* against one key, in order.

        Bucket state after the run is identical to the same sequence of
        :meth:`charge` calls (token-bucket state depends only on its own
        ordered charge sequence). Returns the per-packet colors, or
        ``None`` when *key* has no bucket (every packet passed GREEN).

        >>> meters = MeterTable()
        >>> meters.configure("t", TokenBucket(committed_rate=1.0, committed_burst=150.0))
        >>> [c.value for c in meters.charge_run("t", 0.0, [100, 100])]
        ['green', 'red']
        >>> meters.charge_run("other", 0.0, [100]) is None
        True
        >>> meters.green, meters.red
        (2, 1)
        """
        bucket = self._meters.get(key)
        if bucket is None:
            self.green += len(sizes)
            return None
        update = bucket.update
        colors = []
        append = colors.append
        green = yellow = red = 0
        green_color = MeterColor.GREEN
        yellow_color = MeterColor.YELLOW
        for size in sizes:
            color = update(now, size)
            if color is green_color:
                green += 1
            elif color is yellow_color:
                yellow += 1
            else:
                red += 1
            append(color)
        self.green += green
        self.yellow += yellow
        self.red += red
        return colors

    def pass_unmetered(self, count: int = 1) -> None:
        """Record *count* packets that passed with no meter configured.

        Batch bookkeeping: when the table holds no meters at all, a batch
        caller may skip the per-packet :meth:`charge` calls (each would
        be a dict miss passing GREEN) and settle the GREEN tally in one
        update. Final state is identical to *count* charges.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self.green += count

    def footprint(self) -> MemoryFootprint:
        return MemoryFootprint(
            sram_words=len(self._meters) * sram_words_for(self.CELL_BITS)
        )
