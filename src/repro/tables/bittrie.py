"""Generic-width binary trie for longest-prefix matching.

The gateway's interesting keys are *composite*: a 24-bit VNI concatenated
with a 32- or 128-bit address (and, pooled, an address-family bit). This
trie works over any fixed key width; :mod:`repro.tables.lpm` wraps it
with IP :class:`~repro.net.addr.Prefix` types, and
:mod:`repro.tables.alpm` partitions it.

Keys are ``(network, length)`` pairs where *network* is left-aligned in
the *width*-bit key space with host bits zero.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .errors import DuplicateEntryError, MissingEntryError

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self):
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


def _check_key(network: int, length: int, width: int) -> None:
    if not 0 <= length <= width:
        raise ValueError(f"prefix length {length} out of range for width {width}")
    if not 0 <= network < (1 << width):
        raise ValueError("network out of key range")
    host_mask = (1 << (width - length)) - 1 if length < width else 0
    if network & host_mask:
        raise ValueError("host bits set in prefix network")


class GenericLpmTrie(Generic[V]):
    """Binary trie over a *width*-bit key space.

    >>> t = GenericLpmTrie(8)
    >>> t.insert(0b10000000, 1, "top-half")
    >>> t.insert(0b10100000, 3, "narrow")
    >>> t.lookup(0b10111111)[2]
    'narrow'
    """

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._root: _Node[V] = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _path_bits(self, network: int, length: int) -> Iterator[int]:
        for depth in range(length):
            yield (network >> (self.width - 1 - depth)) & 1

    # -- mutation ---------------------------------------------------------

    def insert(self, network: int, length: int, value: V, replace: bool = False) -> None:
        """Insert ``network/length`` -> *value*."""
        _check_key(network, length, self.width)
        node = self._root
        for bit in self._path_bits(network, length):
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if node.has_value and not replace:
            raise DuplicateEntryError(f"{network:#x}/{length}")
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def remove(self, network: int, length: int) -> V:
        """Remove ``network/length``, pruning empty branches."""
        _check_key(network, length, self.width)
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for bit in self._path_bits(network, length):
            child = node.children[bit]
            if child is None:
                raise MissingEntryError(f"{network:#x}/{length}")
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise MissingEntryError(f"{network:#x}/{length}")
        value = node.value
        node.value = None
        node.has_value = False
        self._count -= 1
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.has_value or child.children[0] is not None or child.children[1] is not None:
                break
            parent.children[bit] = None
        return value

    # -- queries ----------------------------------------------------------

    def get(self, network: int, length: int) -> V:
        """Exact fetch of ``network/length``."""
        _check_key(network, length, self.width)
        node = self._root
        for bit in self._path_bits(network, length):
            node = node.children[bit]
            if node is None:
                raise MissingEntryError(f"{network:#x}/{length}")
        if not node.has_value:
            raise MissingEntryError(f"{network:#x}/{length}")
        return node.value

    def contains(self, network: int, length: int) -> bool:
        try:
            self.get(network, length)
            return True
        except MissingEntryError:
            return False

    def lookup(self, key: int) -> Optional[Tuple[int, int, V]]:
        """Longest-prefix match of full-width *key*.

        Returns ``(network, length, value)`` or None.
        """
        node = self._root
        best: Optional[Tuple[int, V]] = None
        depth = 0
        if node.has_value:
            best = (0, node.value)
        while depth < self.width:
            bit = (key >> (self.width - 1 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            depth += 1
            if node.has_value:
                best = (depth, node.value)
        if best is None:
            return None
        length, value = best
        mask = ((1 << length) - 1) << (self.width - length) if length else 0
        return key & mask, length, value

    def items(self) -> Iterator[Tuple[int, int, V]]:
        """All ``(network, length, value)`` triples in trie order."""

        def walk(node: _Node[V], path: int, depth: int):
            if node.has_value:
                network = path << (self.width - depth) if depth < self.width else path
                yield network, depth, node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, (path << 1) | bit, depth + 1)

        yield from walk(self._root, 0, 0)

    def covering_entries(self, network: int, length: int) -> List[Tuple[int, int, V]]:
        """Stored prefixes on the root path down to (and including)
        ``network/length`` — shortest first."""
        _check_key(network, length, self.width)
        out: List[Tuple[int, int, V]] = []
        node = self._root
        depth = 0
        if node.has_value:
            out.append((0, 0, node.value))
        for bit in self._path_bits(network, length):
            node = node.children[bit]
            if node is None:
                return out
            depth += 1
            if node.has_value:
                net = (network >> (self.width - depth)) << (self.width - depth)
                out.append((net, depth, node.value))
        return out
