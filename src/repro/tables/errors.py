"""Exceptions shared by the forwarding-table implementations."""

from __future__ import annotations


class TableError(Exception):
    """Base class for forwarding-table failures."""


class TableFullError(TableError):
    """Raised when an insert would exceed the table's modelled capacity.

    This is the signal the Sailfish controller reacts to by splitting
    tenants to another cluster or spilling a table across pipelines.
    """


class DuplicateEntryError(TableError):
    """Raised when inserting a key that is already present."""


class MissingEntryError(TableError, KeyError):
    """Raised when deleting or fetching a key that is not present."""
