"""Algorithmic LPM (ALPM) — the paper's "TCAM conservation for large FIBs".

Plain LPM puts every route in TCAM. ALPM (§4.4, after US patent
10,511,532) partitions the route trie into subtrees of at most
``bucket_capacity`` routes; only each subtree's **pivot** prefix goes
into TCAM, while the subtree's routes live in an SRAM bucket. Lookup is
two-level: longest pivot match in TCAM selects a bucket, then the bucket
is searched for the longest matching route.

Correctness argument (tested against the trie oracle): subtrees are
carved disjointly bottom-up, so for any key the longest matching pivot's
bucket contains *every* route matching the key with length >= the pivot
length (a longer route carved elsewhere would sit under a longer
matching pivot — contradiction). Routes shorter than the pivot that
could still match are, by the prefix property, prefixes of the pivot
itself, so the single best of them is replicated into the partition as
its *default route*.

The table works over any key width, so composite keys (VNI || address)
partition across tenants exactly as on the real switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from .bittrie import GenericLpmTrie, _Node
from .errors import TableFullError
from .geometry import MemoryFootprint, sram_words_for, tcam_slices_for

V = TypeVar("V")

#: Default routes per SRAM bucket; the paper tunes "the depth of the first
#: level" — larger buckets mean fewer TCAM pivots but more SRAM slack.
DEFAULT_BUCKET_CAPACITY = 16


def _mask(length: int, width: int) -> int:
    return ((1 << length) - 1) << (width - length) if length else 0


def oracle_lookup(
    routes: Sequence[Tuple[int, int, V]], key: int, width: int
) -> Optional[Tuple[int, int, V]]:
    """Brute-force longest-prefix match over a flat route list.

    The differential oracle the audit (and the ALPM test suite) compare
    the two-level structure against: O(n) per lookup, no partitioning,
    no room for carving bugs.

    >>> oracle_lookup([(0b10000000, 1, "a"), (0b10100000, 3, "b")], 0b10111111, 8)
    (160, 3, 'b')
    """
    best: Optional[Tuple[int, int, V]] = None
    for network, length, value in routes:
        if (key & _mask(length, width)) == network:
            if best is None or length > best[1]:
                best = (network, length, value)
    return best


@dataclass
class Partition(Generic[V]):
    """One carved subtree: a TCAM pivot plus its SRAM route bucket."""

    pivot_network: int
    pivot_length: int
    width: int
    routes: List[Tuple[int, int, V]]
    default: Optional[Tuple[int, int, V]] = None

    def pivot_matches(self, key: int) -> bool:
        return (key & _mask(self.pivot_length, self.width)) == self.pivot_network

    def lookup(self, key: int) -> Optional[Tuple[int, int, V]]:
        """Longest matching route in the bucket, else the default route."""
        best: Optional[Tuple[int, int, V]] = None
        for network, length, value in self.routes:
            if (key & _mask(length, self.width)) == network:
                if best is None or length > best[1]:
                    best = (network, length, value)
        if best is not None:
            return best
        return self.default


@dataclass
class AlpmStats:
    """Build statistics reported by the compression benchmarks."""

    routes: int = 0
    partitions: int = 0
    bucket_capacity: int = 0
    replicated_defaults: int = 0
    occupancy_histogram: List[int] = field(default_factory=list)

    @property
    def mean_bucket_occupancy(self) -> float:
        """Mean fill of allocated buckets — the SRAM slack driver."""
        if not self.partitions:
            return 0.0
        return self.routes / (self.partitions * self.bucket_capacity)


class AlpmTable(Generic[V]):
    """A two-level LPM over a *width*-bit key space.

    Built from a route list; rebuilds on churn are the controller's job —
    the paper pre-downloads tables rather than updating in place.

    >>> table = AlpmTable.build(8, [(0b10000000, 1, "a"), (0b10100000, 3, "b")],
    ...                         bucket_capacity=1)
    >>> table.lookup(0b10111111)[2]
    'b'
    """

    def __init__(self, width: int, bucket_capacity: int = DEFAULT_BUCKET_CAPACITY):
        if bucket_capacity <= 0:
            raise ValueError("bucket_capacity must be positive")
        self.width = width
        self.trie: GenericLpmTrie[V] = GenericLpmTrie(width)
        self.bucket_capacity = bucket_capacity
        self.partitions: List[Partition[V]] = []
        self._pivot_order: List[Partition[V]] = []
        self.lookups = 0

    @classmethod
    def build(
        cls,
        width: int,
        routes: Sequence[Tuple[int, int, V]],
        bucket_capacity: int = DEFAULT_BUCKET_CAPACITY,
    ) -> "AlpmTable[V]":
        """Construct the two-level structure from ``(network, length, value)``."""
        table = cls(width, bucket_capacity)
        for network, length, value in routes:
            table.trie.insert(network, length, value, replace=True)
        table.rebuild()
        return table

    # -- construction ----------------------------------------------------

    def rebuild(self) -> None:
        """(Re-)partition the trie bottom-up into <=capacity subtrees."""
        self.partitions = []
        width = self.width

        def recurse(node: _Node, path: int, depth: int) -> List[Tuple[int, int, V]]:
            remaining: List[List[Tuple[int, int, V]]] = [[], []]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    remaining[bit] = recurse(child, (path << 1) | bit, depth + 1)
            own: List[Tuple[int, int, V]] = []
            if node.has_value:
                network = path << (width - depth) if depth < width else path
                own.append((network, depth, node.value))
            total = len(remaining[0]) + len(remaining[1]) + len(own)
            while total > self.bucket_capacity:
                heavy = 0 if len(remaining[0]) >= len(remaining[1]) else 1
                if not remaining[heavy]:
                    break
                child_path = (path << 1) | heavy
                child_depth = depth + 1
                network = (
                    child_path << (width - child_depth) if child_depth < width else child_path
                )
                self._make_partition(network, child_depth, remaining[heavy])
                remaining[heavy] = []
                total = len(remaining[0]) + len(remaining[1]) + len(own)
            return remaining[0] + remaining[1] + own

        leftovers = recurse(self.trie._root, 0, 0)
        if leftovers or not self.partitions:
            self._make_partition(0, 0, leftovers)
        # Longest pivot first for the priority lookup.
        self._pivot_order = sorted(self.partitions, key=lambda p: -p.pivot_length)

    def _make_partition(self, network: int, length: int, routes: List[Tuple[int, int, V]]) -> None:
        if len(routes) > self.bucket_capacity:
            raise TableFullError(
                f"partition at {network:#x}/{length} holds "
                f"{len(routes)} > {self.bucket_capacity} routes"
            )
        covering = [
            entry
            for entry in self.trie.covering_entries(network, length)
            if entry[1] < length
        ]
        default = covering[-1] if covering else None
        self.partitions.append(Partition(network, length, self.width, list(routes), default))

    # -- incremental updates ----------------------------------------------

    def _partition_for(self, network: int, length: int) -> Partition[V]:
        """The partition whose pivot is the longest prefix of this route.

        For a route shorter than every matching pivot this is still
        correct: such a route is a *covering* route for deeper pivots and
        is handled by the default-refresh in :meth:`insert`/:meth:`remove`.
        """
        best: Optional[Partition[V]] = None
        for partition in self.partitions:
            if partition.pivot_length <= length and (
                network & _mask(partition.pivot_length, self.width)
            ) == partition.pivot_network:
                if best is None or partition.pivot_length > best.pivot_length:
                    best = partition
        if best is None:  # pragma: no cover - root partition always exists
            raise TableFullError("no partition covers the route")
        return best

    def _refresh_defaults(self) -> None:
        """Recompute every partition's replicated default route."""
        for partition in self.partitions:
            covering = [
                entry
                for entry in self.trie.covering_entries(
                    partition.pivot_network, partition.pivot_length
                )
                if entry[1] < partition.pivot_length
            ]
            partition.default = covering[-1] if covering else None

    def insert(self, network: int, length: int, value: V, replace: bool = False) -> None:
        """Add one route incrementally.

        The route joins the deepest covering partition; if that bucket
        overflows, the partition's subtree is re-carved locally (split
        into smaller partitions) without touching the rest of the table.
        """
        existed = self.trie.contains(network, length)
        self.trie.insert(network, length, value, replace=replace)
        if not self.partitions:
            # First route into a constructor-fresh table: carve the root
            # partition rather than assuming build()/rebuild() ran.
            self.rebuild()
            return
        if existed:
            # Value update in place.
            target = self._partition_for(network, length)
            target.routes = [
                (network, length, value) if (n, l) == (network, length) else (n, l, v)
                for n, l, v in target.routes
            ]
            self._refresh_defaults()
            return
        target = self._partition_for(network, length)
        target.routes.append((network, length, value))
        if len(target.routes) > self.bucket_capacity:
            # Overflow: re-carve. The controller treats this as a slow-path
            # table download (§6.1's pre-downloaded updates); steady-state
            # inserts stay O(bucket).
            self.rebuild()
        self._refresh_defaults()

    def remove(self, network: int, length: int) -> V:
        """Withdraw one route incrementally (partitions are not merged;
        periodic :meth:`rebuild` reclaims fragmentation, mirroring the
        paper's pre-download update style)."""
        value = self.trie.remove(network, length)
        for partition in self.partitions:
            for i, (n, l, _v) in enumerate(partition.routes):
                if (n, l) == (network, length):
                    del partition.routes[i]
                    self._refresh_defaults()
                    return value
        # The route was only present as some partition's default.
        self._refresh_defaults()
        return value

    # -- lookup ----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(p.routes) for p in self.partitions)

    def lookup(self, key: int) -> Optional[Tuple[int, int, V]]:
        """Two-level longest-prefix match for full-width *key*."""
        self.lookups += 1
        for partition in self._pivot_order:
            if partition.pivot_matches(key):
                return partition.lookup(key)
        return None

    # -- accounting -------------------------------------------------------

    def stats(self) -> AlpmStats:
        hist = [0] * (self.bucket_capacity + 1)
        for partition in self.partitions:
            hist[len(partition.routes)] += 1
        return AlpmStats(
            routes=len(self),
            partitions=len(self.partitions),
            bucket_capacity=self.bucket_capacity,
            replicated_defaults=sum(1 for p in self.partitions if p.default is not None),
            occupancy_histogram=hist,
        )

    def footprint(self, key_bits: Optional[int] = None) -> MemoryFootprint:
        """TCAM slices for pivots + SRAM words for fixed-size buckets.

        *key_bits* overrides the key width carried per entry (for models
        where the stored key is wider/narrower than the partition space).
        """
        kb = key_bits if key_bits is not None else self.width
        tcam = len(self.partitions) * tcam_slices_for(kb)
        # Bucket entries store key + length (8b) + action (32b), padded.
        entry_words = sram_words_for(kb + 8 + 32)
        sram = len(self.partitions) * self.bucket_capacity * entry_words
        return MemoryFootprint(sram_words=sram, tcam_slices=tcam)
