"""Memory geometry shared by the table models and the Tofino simulator.

All occupancy numbers in the paper reduce to counts of two physical
units (see DESIGN.md §2 for the calibration):

* **SRAM words** of 128 bits — exact-match and ALPM-bucket storage.
* **TCAM slices** of 44 bits — ternary (LPM / ACL) storage.

A key of ``k`` bits occupies ``ceil(k / unit)`` units; exact-match SRAM
entries additionally round to whole cuckoo ways, which is why an IPv6
exact entry costs 4 words rather than 2 (`EXACT_WAY_WORDS`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SRAM_WORD_BITS = 128
TCAM_SLICE_BITS = 44

VNI_BITS = 24
IPV4_BITS = 32
IPV6_BITS = 128

#: Exact-match entries are packed into power-of-two cuckoo ways: an entry
#: wider than one word is rounded up to the next power-of-two word count.
EXACT_WAY_WORDS = (1, 2, 4, 8)


def tcam_slices_for(key_bits: int) -> int:
    """TCAM slices consumed by one ternary entry with *key_bits* of key."""
    if key_bits <= 0:
        raise ValueError("key_bits must be positive")
    return math.ceil(key_bits / TCAM_SLICE_BITS)


def sram_words_for(entry_bits: int) -> int:
    """Plain (non-hashed) SRAM words for *entry_bits* of data."""
    if entry_bits <= 0:
        raise ValueError("entry_bits must be positive")
    return math.ceil(entry_bits / SRAM_WORD_BITS)


def exact_entry_words(key_bits: int, value_bits: int = 0) -> int:
    """SRAM words for one exact-match entry, rounded to a cuckoo way size."""
    words = sram_words_for(max(1, key_bits + value_bits))
    for way in EXACT_WAY_WORDS:
        if words <= way:
            return way
    raise ValueError(f"entry of {key_bits + value_bits} bits exceeds maximum way size")


@dataclass(frozen=True)
class MemoryFootprint:
    """A table's physical memory demand, in SRAM words and TCAM slices."""

    sram_words: int = 0
    tcam_slices: int = 0

    def __add__(self, other: "MemoryFootprint") -> "MemoryFootprint":
        return MemoryFootprint(
            self.sram_words + other.sram_words,
            self.tcam_slices + other.tcam_slices,
        )

    def scaled(self, factor: float) -> "MemoryFootprint":
        """Footprint scaled by *factor* (e.g. halved after entry splitting)."""
        return MemoryFootprint(
            int(math.ceil(self.sram_words * factor)),
            int(math.ceil(self.tcam_slices * factor)),
        )

    @staticmethod
    def zero() -> "MemoryFootprint":
        return MemoryFootprint(0, 0)
