"""Deployment economics: the CapEx/OpEx arithmetic of §2.3 and §4.2.

The paper's region sizing: 15 Tbps of traffic, gateways provisioned at a
50% water level, 1:1 disaster-recovery backup — "150 gateways ... the
number will be further doubled to 600!" at O($10K) each, versus "ten
XGW-Hs for major traffic processing and four XGW-x86s" after Sailfish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: §2.3's example region load.
REGION_TRAFFIC_BPS = 15e12
#: Both box kinds cost roughly the same (§3.1: "the Tofino-based switch
#: has roughly the same unit price as XGW-x86").
UNIT_PRICE_USD = 10_000.0


@dataclass(frozen=True)
class GatewayKind:
    """A deployable gateway model."""

    name: str
    throughput_bps: float
    unit_price_usd: float = UNIT_PRICE_USD


XGW_X86 = GatewayKind("XGW-x86", throughput_bps=100e9)
XGW_H = GatewayKind("XGW-H", throughput_bps=3.2e12)
#: The middle tier (Gryphon's hierarchical co-offloading): a SmartNIC/DPU
#: carries ~4x an x86 box at a fraction of its price — tables far larger
#: than the chip's SRAM/TCAM, per-packet cost far below a CPU core.
XGW_DPU = GatewayKind("XGW-DPU", throughput_bps=400e9, unit_price_usd=2_500.0)


@dataclass(frozen=True)
class TierCostModel:
    """Relative per-packet serving cost of the three offload tiers.

    Normalised to USD per million packets served: the switch ASIC
    forwards at line rate for watts, the DPU burns embedded cores, the
    x86 box burns Xeon cores — the ordering (chip « dpu « x86) is what
    makes hierarchical co-offloading pay, and the frontier bench prices
    each tier's served traffic with exactly these constants.

    >>> m = TierCostModel()
    >>> m.usd_per_mpkt("chip") < m.usd_per_mpkt("dpu") < m.usd_per_mpkt("x86")
    True
    >>> m.cost_usd("x86", 2_000_000)
    2.0
    """

    chip_usd_per_mpkt: float = 0.02
    dpu_usd_per_mpkt: float = 0.12
    x86_usd_per_mpkt: float = 1.00

    def usd_per_mpkt(self, tier: str) -> float:
        try:
            return {"chip": self.chip_usd_per_mpkt,
                    "dpu": self.dpu_usd_per_mpkt,
                    "x86": self.x86_usd_per_mpkt}[tier]
        except KeyError:
            raise ValueError(f"unknown tier {tier!r}") from None

    def cost_usd(self, tier: str, packets: float) -> float:
        """Price *packets* served on *tier*."""
        return self.usd_per_mpkt(tier) * packets / 1e6


@dataclass(frozen=True)
class FleetPlan:
    """How many boxes a region needs and what they cost."""

    kind: GatewayKind
    nodes: int
    water_level: float
    backup_factor: int

    @property
    def capex_usd(self) -> float:
        return self.nodes * self.kind.unit_price_usd

    @property
    def usable_capacity_bps(self) -> float:
        return (
            self.nodes / self.backup_factor * self.kind.throughput_bps * self.water_level
        )


def size_fleet(
    kind: GatewayKind,
    region_traffic_bps: float = REGION_TRAFFIC_BPS,
    water_level: float = 0.5,
    backup_factor: int = 2,
) -> FleetPlan:
    """Boxes needed to carry *region_traffic_bps* with headroom and backup.

    >>> size_fleet(XGW_X86).nodes
    600
    >>> size_fleet(XGW_H).nodes
    20
    """
    if not 0 < water_level <= 1:
        raise ValueError("water_level must be in (0, 1]")
    if backup_factor < 1:
        raise ValueError("backup_factor must be >= 1")
    per_node = kind.throughput_bps * water_level
    nodes = math.ceil(region_traffic_bps / per_node) * backup_factor
    return FleetPlan(kind=kind, nodes=nodes, water_level=water_level,
                     backup_factor=backup_factor)


@dataclass(frozen=True)
class CostComparison:
    """Sailfish vs all-software for one region."""

    software: FleetPlan
    sailfish_hw: FleetPlan
    sailfish_sw_nodes: int

    @property
    def sailfish_capex_usd(self) -> float:
        return self.sailfish_hw.capex_usd + self.sailfish_sw_nodes * XGW_X86.unit_price_usd

    @property
    def capex_reduction(self) -> float:
        """Fraction of hardware-acquisition cost saved (paper: > 90%)."""
        return 1.0 - self.sailfish_capex_usd / self.software.capex_usd

    @property
    def node_reduction(self) -> float:
        total = self.sailfish_hw.nodes + self.sailfish_sw_nodes
        return 1.0 - total / self.software.nodes


@dataclass(frozen=True)
class ConsolidationComparison:
    """Fig. 3 / §2.2: per-service ad hoc clusters vs one unified gateway."""

    dedicated_nodes: int
    consolidated_nodes: int
    codebases_before: int
    codebases_after: int = 1

    @property
    def node_savings(self) -> float:
        if self.dedicated_nodes == 0:
            return 0.0
        return 1.0 - self.consolidated_nodes / self.dedicated_nodes


def consolidation_savings(
    service_loads_bps,
    kind: GatewayKind = XGW_X86,
    water_level: float = 0.5,
    backup_factor: int = 2,
    min_cluster_nodes: int = 2,
) -> ConsolidationComparison:
    """Quantify §2.2's service integration.

    Ad hoc mode sizes one cluster per service — each with its own
    rounding waste, safety margin and 1:1 backup ("some clusters expanded
    rapidly while other clusters were underutilized"). The unified
    gateway pools the same loads into one fleet, so rounding and
    headroom are paid once.

    >>> comparison = consolidation_savings([20e9, 5e9, 3e9, 1e9])
    >>> comparison.node_savings > 0
    True
    """
    loads = list(service_loads_bps)
    if not loads or any(load < 0 for load in loads):
        raise ValueError("service loads must be non-empty and non-negative")
    per_node = kind.throughput_bps * water_level
    dedicated = sum(
        max(min_cluster_nodes, math.ceil(load / per_node)) * backup_factor
        for load in loads
    )
    consolidated = max(
        min_cluster_nodes, math.ceil(sum(loads) / per_node)
    ) * backup_factor
    return ConsolidationComparison(
        dedicated_nodes=dedicated,
        consolidated_nodes=consolidated,
        codebases_before=len(loads),
    )


def compare_region(
    region_traffic_bps: float = REGION_TRAFFIC_BPS,
    water_level: float = 0.5,
    software_traffic_share: float = 0.0002,
) -> CostComparison:
    """The paper's comparison: an all-x86 region vs Sailfish.

    Sailfish's x86 tail is sized for the redirected slice (Fig. 22's
    < 0.02% of traffic) with generous headroom, floor of 4 boxes ("four
    XGW-x86s for fallback traffic processing").
    """
    software = size_fleet(XGW_X86, region_traffic_bps, water_level)
    hw = size_fleet(XGW_H, region_traffic_bps, water_level)
    sw_traffic = region_traffic_bps * software_traffic_share
    sw_nodes = max(4, math.ceil(sw_traffic / (XGW_X86.throughput_bps * water_level)) * 2)
    return CostComparison(software=software, sailfish_hw=hw, sailfish_sw_nodes=sw_nodes)
