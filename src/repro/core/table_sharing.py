"""Hardware/software co-design: the table-sharing policy (§4.2).

The paper's principles, verbatim and encoded here:

* XGW-H is the default gateway and absorbs the majority of traffic;
* XGW-H stores a few key tables frequently hit by the majority of
  traffic; it guides the rest to XGW-x86;
* XGW-x86 keeps volatile tables, huge stateful tables (SNAT), and
  unstable newborn services;
* all sharing decisions are predetermined by the central controller;
* traffic redirected to XGW-x86 is rate-limited for overload protection.

Traffic obeys the 80/20 rule the paper measured: "5% of the table
entries carry 95% of the traffic".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ServiceProfile:
    """One cloud service as the controller sees it."""

    name: str
    traffic_share: float  # fraction of region traffic
    entries: int  # forwarding entries the service needs
    stateful: bool = False  # per-session state (SNAT-like)
    volatile: bool = False  # tables churn rapidly (festival LB etc.)
    maturity: float = 1.0  # 0 = newborn, 1 = battle-tested

    def __post_init__(self):
        if not 0.0 <= self.traffic_share <= 1.0:
            raise ValueError("traffic_share must be in [0, 1]")
        if not 0.0 <= self.maturity <= 1.0:
            raise ValueError("maturity must be in [0, 1]")
        if self.entries < 0:
            raise ValueError("entries must be non-negative")


@dataclass
class SharingDecision:
    """The controller's placement verdict."""

    hardware: List[ServiceProfile] = field(default_factory=list)
    software: List[ServiceProfile] = field(default_factory=list)
    redirect_rate_limit_bps: float = 0.0

    @property
    def software_traffic_share(self) -> float:
        """Predicted fraction of traffic that will hit XGW-x86 (Fig. 22)."""
        return sum(s.traffic_share for s in self.software)

    @property
    def hardware_traffic_share(self) -> float:
        return sum(s.traffic_share for s in self.hardware)

    def placed_in_hardware(self, name: str) -> bool:
        return any(s.name == name for s in self.hardware)


class SharingPolicy:
    """Decides which services (and hence tables) live on XGW-H.

    >>> policy = SharingPolicy(hardware_entry_budget=1_000_000)
    >>> decision = policy.decide([
    ...     ServiceProfile("vpc-routing", 0.95, 800_000),
    ...     ServiceProfile("snat", 0.04, 100_000_000, stateful=True),
    ... ])
    >>> decision.placed_in_hardware("vpc-routing")
    True
    """

    def __init__(
        self,
        hardware_entry_budget: int,
        maturity_threshold: float = 0.5,
        redirect_headroom: float = 2.0,
    ):
        if hardware_entry_budget <= 0:
            raise ValueError("hardware_entry_budget must be positive")
        self.hardware_entry_budget = hardware_entry_budget
        self.maturity_threshold = maturity_threshold
        self.redirect_headroom = redirect_headroom

    def decide(
        self,
        services: Sequence[ServiceProfile],
        region_traffic_bps: float = 0.0,
    ) -> SharingDecision:
        """Apply the §4.2 principles to a service mix."""
        decision = SharingDecision()
        budget = self.hardware_entry_budget
        # Mature, stateless, stable services first, heaviest traffic first:
        # they are the "few key tables frequently hit by the majority".
        candidates = sorted(services, key=lambda s: -s.traffic_share)
        for service in candidates:
            must_stay_soft = (
                service.stateful
                or service.volatile
                or service.maturity < self.maturity_threshold
                or service.entries > budget
            )
            if must_stay_soft:
                decision.software.append(service)
            else:
                decision.hardware.append(service)
                budget -= service.entries
        # Rate-limit the redirect path with headroom over its expected load.
        decision.redirect_rate_limit_bps = (
            decision.software_traffic_share * region_traffic_bps * self.redirect_headroom
        )
        return decision


def eighty_twenty_entries(
    total_entries: int,
    hot_entry_fraction: float = 0.05,
    hot_traffic_fraction: float = 0.95,
) -> Tuple[int, float, float]:
    """The paper's measured skew: (hot entries, their traffic, cold traffic).

    >>> eighty_twenty_entries(1000)
    (50, 0.95, 0.05)
    """
    if not 0 < hot_entry_fraction < 1 or not 0 < hot_traffic_fraction <= 1:
        raise ValueError("fractions must be in (0, 1)")
    hot = max(1, round(total_entries * hot_entry_fraction))
    return hot, hot_traffic_fraction, 1.0 - hot_traffic_fraction
