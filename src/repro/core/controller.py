"""The central controller (§4.2-4.3, §6.1).

Owns the desired table state, drives placement (via the splitter and the
VNI-steered balancer), downloads tables to gateways before they go
online, runs periodic consistency checks ("table entry inconsistency
between the controller and the gateways may occur ... due to
software/hardware bugs, misconfiguration or insufficient gateway
memory"), and generates probe packets before admitting user traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cluster.cluster import GatewayCluster, NodeState
from ..cluster.ecmp import VniSteeredBalancer
from ..dataplane.gateway_logic import ForwardAction
from ..net.addr import Prefix
from ..net.headers import Ethernet, IPv4, UDP, ETHERTYPE_IPV4, PROTO_UDP
from ..net.packet import InnerFrame, Packet
from ..sim.engine import Engine, PeriodicTask
from ..tables.errors import TableError
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction, Scope
from ..telemetry.stats import CounterSet
from ..telemetry.timeseries import SeriesBundle
from .splitting import SplitPlan, TableSplitter, TenantProfile
from .xgw_h import XgwH


@dataclass(frozen=True)
class RouteEntry:
    vni: int
    prefix: Prefix
    action: RouteAction


@dataclass(frozen=True)
class VmEntry:
    vni: int
    vm_ip: int
    version: int
    binding: NcBinding


@dataclass
class Inconsistency:
    """One divergence found by a consistency check.

    *key* is the structured table key — ``(vni, prefix)`` for routes,
    ``(vni, vm_ip, version)`` for VM bindings — so repairs can re-push
    exactly the divergent entry instead of the whole table.
    """

    cluster_id: str
    node: str
    kind: str  # "missing-route" | "corrupt-route" | "extra-route" | "missing-vm" | "corrupt-vm"
    detail: str
    key: Optional[tuple] = None


@dataclass
class ProbeReport:
    """Outcome of a probe sweep over installed state."""

    sent: int = 0
    passed: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.sent > 0 and not self.failures


class Controller:
    """Central control plane over the region's clusters.

    >>> # assembled by repro.core.sailfish.Sailfish; unit tests drive it
    >>> # directly in tests/core/test_controller.py.
    """

    def __init__(
        self,
        splitter: TableSplitter,
        balancer: VniSteeredBalancer,
        clusters: Optional[Dict[str, GatewayCluster[XgwH]]] = None,
    ):
        self.splitter = splitter
        self.balancer = balancer
        self.clusters: Dict[str, GatewayCluster[XgwH]] = dict(clusters or {})
        self.plan = SplitPlan(assignments={}, usage={})
        # Desired state per cluster.
        self._routes: Dict[str, Dict[Tuple[int, Prefix], RouteAction]] = {}
        self._vms: Dict[str, Dict[Tuple[int, int, int], NcBinding]] = {}
        self.version = 0
        self.table_size_series = SeriesBundle()
        self._cluster_factory = None
        self._profiles: Dict[int, TenantProfile] = {}
        #: Reconciliation telemetry: inconsistencies_found, repairs_applied,
        #: probes_failed, retries_exhausted, reconcile_ticks, repair_cycles,
        #: repair_retries, readmissions.
        self.counters = CounterSet()
        #: Clusters found divergent and not yet probe-cleared for traffic.
        self.quarantined: Set[str] = set()

    # -- cluster lifecycle -----------------------------------------------

    def set_cluster_factory(self, factory) -> None:
        """Install a callable ``factory(cluster_id) -> GatewayCluster`` used
        when placement allocates a new cluster."""
        self._cluster_factory = factory

    def _ensure_cluster(self, cluster_id: str) -> GatewayCluster[XgwH]:
        if cluster_id not in self.clusters:
            if self._cluster_factory is None:
                raise TableError(f"no cluster {cluster_id} and no factory configured")
            cluster = self._cluster_factory(cluster_id)
            self.clusters[cluster_id] = cluster
            self.balancer.register_cluster(
                cluster_id, [m.name for m in cluster.active_members()]
            )
        self._routes.setdefault(cluster_id, {})
        self._vms.setdefault(cluster_id, {})
        return self.clusters[cluster_id]

    # -- tenant onboarding --------------------------------------------------

    def add_tenant(
        self,
        profile: TenantProfile,
        routes: Iterable[RouteEntry],
        vms: Iterable[VmEntry],
        time: float = 0.0,
    ) -> str:
        """Place a tenant, install its entries, and steer its VNI."""
        cluster_id = self.splitter.place(self.plan, profile)
        cluster = self._ensure_cluster(cluster_id)
        self._profiles[profile.vni] = profile
        self.balancer.assign_vni(profile.vni, cluster_id)
        for route in routes:
            self.install_route(cluster_id, route, time=time)
        for vm in vms:
            self.install_vm(cluster_id, vm, time=time)
        self.version += 1
        return cluster_id

    def install_route(self, cluster_id: str, route: RouteEntry, time: float = 0.0) -> None:
        cluster = self._ensure_cluster(cluster_id)
        self._routes[cluster_id][(route.vni, route.prefix)] = route.action
        cluster.for_each_gateway(
            lambda gw: gw.install_route(route.vni, route.prefix, route.action, replace=True)
        )
        self._record_size(cluster_id, time)

    def install_vm(self, cluster_id: str, vm: VmEntry, time: float = 0.0) -> None:
        cluster = self._ensure_cluster(cluster_id)
        self._vms[cluster_id][(vm.vni, vm.vm_ip, vm.version)] = vm.binding
        cluster.for_each_gateway(
            lambda gw: gw.install_vm(vm.vni, vm.vm_ip, vm.version, vm.binding, replace=True)
        )
        self._record_size(cluster_id, time)

    def remove_route(self, cluster_id: str, vni: int, prefix: Prefix,
                     time: float = 0.0) -> None:
        """Withdraw one route from desired state and every gateway."""
        cluster = self.clusters[cluster_id]
        if (vni, prefix) not in self._routes.get(cluster_id, {}):
            raise TableError(f"route vni={vni} {prefix} not in desired state")
        del self._routes[cluster_id][(vni, prefix)]
        cluster.for_each_gateway(lambda gw: gw.remove_route(vni, prefix))
        self._record_size(cluster_id, time)

    def remove_vm(self, cluster_id: str, vni: int, vm_ip: int, version: int,
                  time: float = 0.0) -> None:
        """Remove a VM binding from desired state and every gateway."""
        cluster = self.clusters[cluster_id]
        key = (vni, vm_ip, version)
        if key not in self._vms.get(cluster_id, {}):
            raise TableError(f"vm ({vni}, {vm_ip:#x}) not in desired state")
        del self._vms[cluster_id][key]
        cluster.for_each_gateway(
            lambda gw: gw.split_vm_nc.half_for_ip(vm_ip).remove(vni, vm_ip, version)
        )
        self._record_size(cluster_id, time)

    def remove_tenant(self, vni: int, time: float = 0.0) -> int:
        """Offboard a tenant completely; returns the entries removed."""
        cluster_id = self.plan.assignments.get(vni)
        if cluster_id is None:
            raise TableError(f"VNI {vni} is not placed")
        removed = 0
        for (route_vni, prefix) in [k for k in self._routes.get(cluster_id, {})
                                    if k[0] == vni]:
            self.remove_route(cluster_id, route_vni, prefix, time=time)
            removed += 1
        for (vm_vni, vm_ip, version) in [k for k in self._vms.get(cluster_id, {})
                                         if k[0] == vni]:
            self.remove_vm(cluster_id, vm_vni, vm_ip, version, time=time)
            removed += 1
        # Release the placement reservation and the steering entry.
        profile = self._profiles.pop(vni, None)
        if profile is not None:
            self.plan.usage[cluster_id].remove(profile)
        else:
            self.plan.usage[cluster_id].tenants.remove(vni)
        del self.plan.assignments[vni]
        self.balancer.release_vni(vni)
        self.version += 1
        return removed

    def _record_size(self, cluster_id: str, time: float) -> None:
        size = len(self._routes[cluster_id]) + len(self._vms[cluster_id])
        self.table_size_series.record(cluster_id, time, size)

    def route_count(self, cluster_id: str) -> int:
        return len(self._routes.get(cluster_id, {}))

    # -- consistency ------------------------------------------------------------

    def consistency_check(self, cluster_id: str) -> List[Inconsistency]:
        """Compare desired state against every gateway of one cluster —
        including the hot backup, which must hold identical tables."""
        cluster = self.clusters[cluster_id]
        findings: List[Inconsistency] = []
        desired_routes = self._routes.get(cluster_id, {})
        desired_vms = self._vms.get(cluster_id, {})
        for member in cluster.all_members():
            gw = member.gateway
            installed = {
                (vni, prefix): action for vni, prefix, action in gw.tables.routing.items()
            }
            for key, action in desired_routes.items():
                have = installed.get(key)
                if have != action:
                    kind = "missing-route" if have is None else "corrupt-route"
                    findings.append(
                        Inconsistency(cluster_id, member.name, kind, f"{key}", key=key)
                    )
            for key in installed:
                if key not in desired_routes:
                    findings.append(
                        Inconsistency(cluster_id, member.name, "extra-route", f"{key}",
                                      key=key)
                    )
            for (vni, vm_ip, version), binding in desired_vms.items():
                have_binding = gw.split_vm_nc.lookup(vni, vm_ip, version)
                if have_binding != binding:
                    kind = "missing-vm" if have_binding is None else "corrupt-vm"
                    findings.append(
                        Inconsistency(
                            cluster_id, member.name, kind, f"({vni}, {vm_ip:#x})",
                            key=(vni, vm_ip, version),
                        )
                    )
        return findings

    def repair(self, cluster_id: str) -> int:
        """Re-push desired state to a divergent cluster; returns fixes."""
        findings = self.consistency_check(cluster_id)
        if not findings:
            return 0
        cluster = self.clusters[cluster_id]
        for (vni, prefix), action in self._routes.get(cluster_id, {}).items():
            cluster.for_each_gateway(
                lambda gw, v=vni, p=prefix, a=action: gw.install_route(v, p, a, replace=True)
            )
        for (vni, vm_ip, version), binding in self._vms.get(cluster_id, {}).items():
            cluster.for_each_gateway(
                lambda gw, v=vni, ip=vm_ip, ver=version, b=binding: gw.install_vm(
                    v, ip, ver, b, replace=True
                )
            )
        return len(findings)

    # -- targeted repair + reconciliation loop -----------------------------

    def _repair_one(self, cluster_id: str, finding: Inconsistency) -> None:
        """Re-push exactly one divergent entry to exactly one member."""
        if finding.key is None:
            raise TableError(f"finding has no structured key: {finding}")
        gw = self.clusters[cluster_id].find_member(finding.node).gateway
        if finding.kind in ("missing-route", "corrupt-route"):
            vni, prefix = finding.key
            gw.install_route(vni, prefix, self._routes[cluster_id][finding.key],
                             replace=True)
        elif finding.kind == "extra-route":
            vni, prefix = finding.key
            gw.remove_route(vni, prefix)
        elif finding.kind in ("missing-vm", "corrupt-vm"):
            vni, vm_ip, version = finding.key
            gw.install_vm(vni, vm_ip, version, self._vms[cluster_id][finding.key],
                          replace=True)
        else:  # pragma: no cover - kinds are produced by consistency_check
            raise TableError(f"unknown inconsistency kind {finding.kind}")

    def targeted_repair(
        self, cluster_id: str, findings: Optional[List[Inconsistency]] = None
    ) -> Tuple[int, List[Inconsistency]]:
        """Repair only the divergent keys on only the divergent members.

        Unlike :meth:`repair` (full table re-push), this touches nothing
        that already agrees with desired state. Returns ``(applied,
        failed)`` where *failed* holds the findings whose push raised a
        :class:`TableError` (e.g. insufficient gateway memory) — the
        reconcile loop retries those with backoff.
        """
        if findings is None:
            findings = self.consistency_check(cluster_id)
        applied = 0
        failed: List[Inconsistency] = []
        for finding in findings:
            try:
                self._repair_one(cluster_id, finding)
            except TableError:
                failed.append(finding)
            else:
                applied += 1
                self.counters.add("repairs_applied")
        return applied, failed

    def _schedule_repair_retry(self, engine: Engine, cluster_id: str,
                               findings: List[Inconsistency], attempt: int,
                               max_retries: int, backoff: float) -> None:
        if attempt > max_retries:
            self.counters.add("retries_exhausted", len(findings))
            return
        delay = backoff * (2 ** (attempt - 1))

        def retry() -> None:
            self.counters.add("repair_retries")
            still_failed: List[Inconsistency] = []
            for finding in findings:
                try:
                    self._repair_one(cluster_id, finding)
                except TableError:
                    still_failed.append(finding)
                else:
                    self.counters.add("repairs_applied")
            if still_failed:
                self._schedule_repair_retry(engine, cluster_id, still_failed,
                                            attempt + 1, max_retries, backoff)

        engine.schedule_in(delay, retry)

    def _probe_gate(self, cluster_id: str) -> bool:
        """Probe-before-readmit: a quarantined cluster returns to service
        only once it is consistent *and* its probes pass."""
        if cluster_id not in self.quarantined:
            return True
        if self.consistency_check(cluster_id):
            return False  # still divergent (repairs pending/retrying)
        report = self.probe(cluster_id)
        if report.failures:
            self.counters.add("probes_failed")
            return False
        self.quarantined.discard(cluster_id)
        self.counters.add("readmissions")
        return True

    def is_admitted(self, cluster_id: str) -> bool:
        """Whether user traffic may be admitted to *cluster_id*."""
        return cluster_id not in self.quarantined

    def _reconcile_cluster(self, engine: Engine, cluster_id: str,
                           max_retries: int, backoff: float) -> None:
        findings = self.consistency_check(cluster_id)
        if findings:
            self.counters.add("inconsistencies_found", len(findings))
            self.counters.add("repair_cycles")
            self.quarantined.add(cluster_id)
            _applied, failed = self.targeted_repair(cluster_id, findings)
            if failed:
                self._schedule_repair_retry(engine, cluster_id, failed,
                                            attempt=1, max_retries=max_retries,
                                            backoff=backoff)
        self._probe_gate(cluster_id)

    def reconcile_loop(
        self,
        engine: Engine,
        interval: float,
        cluster_ids: Optional[Iterable[str]] = None,
        max_retries: int = 3,
        backoff: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """Register the §6.1 cycle — consistency-check → targeted repair →
        probe-before-readmit — every *interval* on *engine*.

        Failed installs are retried with exponential backoff (*backoff*,
        ``2**attempt`` growth, default ``interval / 4``) up to
        *max_retries* times; exhaustion is counted in
        ``counters["retries_exhausted"]``. Returns the cancellation
        handle of the periodic series.
        """
        if backoff is None:
            backoff = interval / 4.0

        def tick() -> None:
            self.counters.add("reconcile_ticks")
            ids = sorted(cluster_ids) if cluster_ids is not None else sorted(self.clusters)
            for cid in ids:
                self._reconcile_cluster(engine, cid, max_retries, backoff)

        return engine.schedule_every(interval, tick, until=until)

    # -- probing --------------------------------------------------------------------

    def probe(self, cluster_id: str, limit: int = 64) -> ProbeReport:
        """Send synthetic probes for installed LOCAL VMs ("deploy probe
        generators ... covering as many test scenarios as possible").

        Every ACTIVE member is swept — including the hot backup's, which
        must answer identically — so per-member divergence (one node's
        corrupted table) cannot hide behind a healthy sibling.
        """
        report = ProbeReport()
        cluster = self.clusters[cluster_id]
        desired_vms = self._vms.get(cluster_id, {})
        desired_routes = self._routes.get(cluster_id, {})
        local_vnis = {
            vni for (vni, _prefix), action in desired_routes.items()
            if action.scope is Scope.LOCAL
        }
        targets = [m for m in cluster.all_members() if m.state is NodeState.ACTIVE]
        for (vni, vm_ip, version), binding in list(desired_vms.items())[:limit]:
            if version != 4 or vni not in local_vnis:
                continue
            packet = build_probe_packet(vni, vm_ip)
            for member in targets:
                report.sent += 1
                result = member.gateway.forward(packet)
                if result.action is ForwardAction.DELIVER_NC and result.nc_ip == binding.nc_ip:
                    report.passed += 1
                else:
                    report.failures.append(
                        f"{member.name}: vni={vni} vm={vm_ip:#x}: "
                        f"{result.action.value} ({result.detail})"
                    )
        return report


def build_probe_packet(vni: int, vm_ip: int, src_ip: int = 0x0A0A0A0A) -> Packet:
    """A minimal IPv4-in-VXLAN probe towards *vm_ip* in *vni*."""
    inner = InnerFrame(
        eth=Ethernet(dst=0x0000DEADBEEF, src=0x0000CAFEBABE, ethertype=ETHERTYPE_IPV4),
        ip=IPv4(src=src_ip, dst=vm_ip, proto=PROTO_UDP),
        l4=UDP(src_port=49152, dst_port=7),
        payload=b"probe",
    )
    return Packet.vxlan_encap(
        inner,
        outer_eth=Ethernet(dst=0x0000AAAAAAAA, src=0x0000BBBBBBBB, ethertype=ETHERTYPE_IPV4),
        outer_src=0x0A000001,
        outer_dst=0x0A0000FE,
        vni=vni,
    )
