"""The central controller (§4.2-4.3, §6.1).

Owns the desired table state, drives placement (via the splitter and the
VNI-steered balancer), downloads tables to gateways before they go
online, runs periodic consistency checks ("table entry inconsistency
between the controller and the gateways may occur ... due to
software/hardware bugs, misconfiguration or insufficient gateway
memory"), and generates probe packets before admitting user traffic.

Crash safety: when constructed with a :class:`~repro.core.journal.Journal`,
every mutation is journalled *before* it is pushed to any gateway, so a
controller that dies mid-update (``FaultKind.CONTROLLER_CRASH``) can be
rebuilt with :meth:`Controller.recover` — replaying snapshot + tail and
re-syncing the surviving gateways back to the journalled intent.
Batched updates go through :meth:`Controller.transaction`, a two-phase
(prepare-all / commit) push that rolls back already-prepared members on
a mid-batch fault, so no member — including the hot backup — is ever
left half-updated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..cluster.cluster import GatewayCluster, Member, NodeState
from ..cluster.ecmp import VniSteeredBalancer
from ..dataplane.gateway_logic import ForwardAction
from ..net.addr import Prefix
from ..net.headers import Ethernet, IPv4, UDP, ETHERTYPE_IPV4, PROTO_UDP
from ..net.packet import InnerFrame, Packet
from ..sim.engine import Engine, PeriodicTask
from ..tables.errors import TableError
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction, Scope
from ..telemetry.stats import CounterSet
from ..telemetry.timeseries import SeriesBundle
from .journal import (
    Journal,
    decode_action,
    decode_binding,
    decode_profile,
    encode_action,
    encode_binding,
    encode_profile,
    parse_route_key,
    parse_vm_key,
    route_key,
    vm_key,
)
from .splitting import ClusterUsage, SplitPlan, TableSplitter, TenantProfile
from .xgw_h import XgwH


@dataclass(frozen=True)
class RouteEntry:
    vni: int
    prefix: Prefix
    action: RouteAction


@dataclass(frozen=True)
class VmEntry:
    vni: int
    vm_ip: int
    version: int
    binding: NcBinding


@dataclass
class Inconsistency:
    """One divergence found by a consistency check.

    *key* is the structured table key — ``(vni, prefix)`` for routes,
    ``(vni, vm_ip, version)`` for VM bindings — so repairs can re-push
    exactly the divergent entry instead of the whole table.
    """

    cluster_id: str
    node: str
    kind: str  # "missing-route" | "corrupt-route" | "extra-route" | "missing-vm" | "corrupt-vm"
    detail: str
    key: Optional[tuple] = None


@dataclass
class ProbeReport:
    """Outcome of a probe sweep over installed state."""

    sent: int = 0
    passed: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.sent > 0 and not self.failures


class TransactionAborted(TableError):
    """A two-phase push failed on some member; every already-prepared
    member was rolled back, so no entry of the batch is visible anywhere."""


@dataclass
class Transaction:
    """A staged batch of table mutations against one cluster.

    Ops are recorded in call order and pushed atomically when the
    ``with ctl.transaction(...)`` block exits cleanly; raising inside the
    block discards the batch without touching any gateway.
    """

    cluster_id: str
    ops: List[dict] = field(default_factory=list)
    side_effects: List[tuple] = field(default_factory=list)

    def stage_side_effect(self, label: str, apply: Callable[[], None],
                          undo: Callable[[], None]) -> None:
        """Stage a non-journalled dataplane side effect (e.g. a SNAT
        session rewrite) that commits with the batch: *apply* runs once
        every member has prepared, *undo* runs (reverse order) when the
        transaction aborts. Side effects are dataplane state, not
        intent, so they are deliberately not journalled — a
        crash-recovered controller simply never ran them."""
        self.side_effects.append((label, apply, undo))

    def install_route(self, route: "RouteEntry") -> None:
        self.ops.append({"op": "install-route", "cluster": self.cluster_id,
                         "vni": route.vni, "prefix": str(route.prefix),
                         "action": encode_action(route.action)})

    def remove_route(self, vni: int, prefix: Prefix) -> None:
        self.ops.append({"op": "remove-route", "cluster": self.cluster_id,
                         "vni": vni, "prefix": str(prefix)})

    def install_vm(self, vm: "VmEntry") -> None:
        self.ops.append({"op": "install-vm", "cluster": self.cluster_id,
                         "vni": vm.vni, "vm_ip": vm.vm_ip,
                         "vm_version": vm.version,
                         "binding": encode_binding(vm.binding)})

    def remove_vm(self, vni: int, vm_ip: int, version: int) -> None:
        self.ops.append({"op": "remove-vm", "cluster": self.cluster_id,
                         "vni": vni, "vm_ip": vm_ip, "vm_version": version})


class Controller:
    """Central control plane over the region's clusters.

    >>> # assembled by repro.core.sailfish.Sailfish; unit tests drive it
    >>> # directly in tests/core/test_controller.py.
    """

    def __init__(
        self,
        splitter: TableSplitter,
        balancer: VniSteeredBalancer,
        clusters: Optional[Dict[str, GatewayCluster[XgwH]]] = None,
        journal: Optional[Journal] = None,
    ):
        self.splitter = splitter
        self.balancer = balancer
        self.clusters: Dict[str, GatewayCluster[XgwH]] = dict(clusters or {})
        self.plan = SplitPlan(assignments={}, usage={})
        # Desired state per cluster.
        self._routes: Dict[str, Dict[Tuple[int, Prefix], RouteAction]] = {}
        self._vms: Dict[str, Dict[Tuple[int, int, int], NcBinding]] = {}
        # Per-tenant key index over the desired state, so offboarding a
        # tenant is O(its entries) instead of a scan over the cluster's
        # whole route/VM maps.
        self._route_index: Dict[str, Dict[int, Set[Prefix]]] = {}
        self._vm_index: Dict[str, Dict[int, Set[Tuple[int, int]]]] = {}
        self.version = 0
        self.table_size_series = SeriesBundle()
        self._cluster_factory = None
        self._profiles: Dict[int, TenantProfile] = {}
        #: Reconciliation telemetry: inconsistencies_found, repairs_applied,
        #: probes_failed, retries_exhausted, reconcile_ticks, repair_cycles,
        #: repair_retries, readmissions — plus crash-safety counters:
        #: journal_appends, journal_snapshots, recoveries, txns_committed,
        #: txns_aborted, txn_rollback_failures, member_resyncs.
        self.counters = CounterSet()
        #: Clusters found divergent and not yet probe-cleared for traffic.
        self.quarantined: Set[str] = set()
        #: Write-ahead journal; None runs the pre-PR2 non-durable mode.
        self.journal = journal
        #: Fault hook called between journal append and cluster push; the
        #: injector arms it to raise :class:`~repro.core.journal.ControllerCrash`.
        self.crash_gate: Optional[Callable[[str, str], None]] = None
        #: Migration ids currently owned by a live EndpointMigrator. Not
        #: journalled on purpose: a crash-recovered controller starts
        #: with an empty set, so any freeze/shadow state surviving on
        #: gateways becomes detectable ``MigrationResidue``.
        self.active_migrations: Set[str] = set()

    # -- crash safety ------------------------------------------------------

    def _journal_append(self, op: str, payload: dict):
        """Write-ahead: record intent before any gateway sees the write."""
        if self.journal is None:
            return None
        record = self.journal.append(op, payload)
        self.counters.add("journal_appends")
        return record

    def _crash_point(self, op: str, cluster_id: str) -> None:
        """The injectable instant between durability and visibility."""
        if self.crash_gate is not None:
            self.crash_gate(op, cluster_id)

    def snapshot(self) -> None:
        """Checkpoint the intent store into the journal (prunes covered
        segments); recovery then replays snapshot + tail."""
        if self.journal is None:
            raise TableError("controller has no journal to snapshot into")
        self.journal.snapshot(self._intent_state())
        self.counters.add("journal_snapshots")

    def _intent_state(self) -> dict:
        """The journal-format view of the desired state."""
        state = {"tenants": {}, "routes": {}, "vms": {}, "version": self.version}
        for vni, profile in self._profiles.items():
            state["tenants"][str(vni)] = {
                "cluster": self.plan.assignments[vni],
                "profile": encode_profile(profile),
            }
        for cluster_id, routes in self._routes.items():
            state["routes"][cluster_id] = {
                route_key(vni, prefix): encode_action(action)
                for (vni, prefix), action in routes.items()
            }
        for cluster_id, vms in self._vms.items():
            state["vms"][cluster_id] = {
                vm_key(vni, vm_ip, version): encode_binding(binding)
                for (vni, vm_ip, version), binding in vms.items()
            }
        return state

    def intent_snapshot(self) -> dict:
        """The journal-format view of the desired state, for independent
        checkers (``repro.audit`` diffs this against what each member
        actually installed, and against ``journal.materialize()``).

        Same shape as :meth:`~repro.core.journal.Journal.materialize`:
        ``{"tenants", "routes", "vms", "version"}`` with string keys, so
        the two intent sources are directly comparable.
        """
        return self._intent_state()

    def recover(self, journal: Journal) -> int:
        """Rebuild this (fresh or wiped) controller from *journal* and
        re-sync every cluster's gateways to the recovered intent.

        Returns the number of gateway writes the sync needed. After
        recovery, ``consistency_check`` is empty for every cluster: the
        journalled intent *is* the cluster state again.
        """
        state = journal.materialize()
        self.journal = journal
        self._routes.clear()
        self._vms.clear()
        self._route_index.clear()
        self._vm_index.clear()
        self._profiles.clear()
        self.plan = SplitPlan(assignments={}, usage={})
        for vni_text in sorted(state["tenants"], key=int):
            info = state["tenants"][vni_text]
            vni, cluster_id = int(vni_text), info["cluster"]
            profile = decode_profile(info["profile"])
            cluster = self._ensure_cluster(cluster_id)
            if cluster_id not in self.balancer.clusters():
                # Clusters that survived the crash were handed to the new
                # controller directly; (re)register their steering group.
                self.balancer.register_cluster(
                    cluster_id, [m.name for m in cluster.active_members()]
                )
            self._profiles[vni] = profile
            self.plan.assignments[vni] = cluster_id
            self.plan.usage.setdefault(cluster_id, ClusterUsage()).add(profile)
            self.balancer.assign_vni(vni, cluster_id)
        for cluster_id, routes in state["routes"].items():
            self._ensure_cluster(cluster_id)
            self._routes[cluster_id] = {
                parse_route_key(key): decode_action(payload)
                for key, payload in routes.items()
            }
            index = self._route_index.setdefault(cluster_id, {})
            for (vni, prefix) in self._routes[cluster_id]:
                index.setdefault(vni, set()).add(prefix)
        for cluster_id, vms in state["vms"].items():
            self._ensure_cluster(cluster_id)
            self._vms[cluster_id] = {
                parse_vm_key(key): decode_binding(payload)
                for key, payload in vms.items()
            }
            index = self._vm_index.setdefault(cluster_id, {})
            for (vni, vm_ip, version) in self._vms[cluster_id]:
                index.setdefault(vni, set()).add((vm_ip, version))
        self.version = state["version"]
        writes = 0
        for cluster_id in sorted(self.clusters):
            cluster = self.clusters[cluster_id]
            for member in cluster.all_members():
                writes += self._sync_gateway(
                    member.gateway,
                    self._routes.get(cluster_id, {}),
                    self._vms.get(cluster_id, {}),
                )
        self.counters.add("recoveries")
        return writes

    def _sync_gateway(self, gw, routes: Dict[Tuple[int, Prefix], RouteAction],
                      vms: Dict[Tuple[int, int, int], NcBinding]) -> int:
        """Converge one gateway onto the given intent: push divergent or
        missing entries, withdraw extra routes. (Extra VM bindings are
        not enumerable from the digest-compressed table, matching
        ``consistency_check``'s one-way VM comparison.)"""
        writes = 0
        installed = {(vni, prefix): action
                     for vni, prefix, action in gw.tables.routing.items()}
        for (vni, prefix), action in routes.items():
            if installed.get((vni, prefix)) != action:
                gw.install_route(vni, prefix, action, replace=True)
                writes += 1
        for (vni, prefix) in installed:
            if (vni, prefix) not in routes:
                gw.remove_route(vni, prefix)
                writes += 1
        for (vni, vm_ip, version), binding in vms.items():
            if self._vm_lookup(gw, vni, vm_ip, version) != binding:
                gw.install_vm(vni, vm_ip, version, binding, replace=True)
                writes += 1
        return writes

    def resync_member(self, cluster_id: str, name: str) -> int:
        """Converge one member onto the latest snapshot + journal tail
        (or the in-memory intent when no journal is attached). Used by the
        drain/upgrade path before a member is probed and readmitted."""
        member = self.clusters[cluster_id].find_member(name)
        if self.journal is not None:
            state = self.journal.materialize()
            routes = {parse_route_key(key): decode_action(payload)
                      for key, payload in state["routes"].get(cluster_id, {}).items()}
            vms = {parse_vm_key(key): decode_binding(payload)
                   for key, payload in state["vms"].get(cluster_id, {}).items()}
        else:
            routes = dict(self._routes.get(cluster_id, {}))
            vms = dict(self._vms.get(cluster_id, {}))
        writes = self._sync_gateway(member.gateway, routes, vms)
        self.counters.add("member_resyncs")
        return writes

    # -- cluster lifecycle -----------------------------------------------

    def set_cluster_factory(self, factory) -> None:
        """Install a callable ``factory(cluster_id) -> GatewayCluster`` used
        when placement allocates a new cluster."""
        self._cluster_factory = factory

    def _ensure_cluster(self, cluster_id: str) -> GatewayCluster[XgwH]:
        if cluster_id not in self.clusters:
            if self._cluster_factory is None:
                raise TableError(f"no cluster {cluster_id} and no factory configured")
            cluster = self._cluster_factory(cluster_id)
            self.clusters[cluster_id] = cluster
            self.balancer.register_cluster(
                cluster_id, [m.name for m in cluster.active_members()]
            )
        self._routes.setdefault(cluster_id, {})
        self._vms.setdefault(cluster_id, {})
        self._route_index.setdefault(cluster_id, {})
        self._vm_index.setdefault(cluster_id, {})
        return self.clusters[cluster_id]

    def adopt_cluster(self, cluster_id: str,
                      cluster: GatewayCluster) -> GatewayCluster:
        """Register an externally assembled cluster under this controller.

        The placement path allocates clusters through the factory; tiers
        whose membership is fixed by hardware inventory — one
        single-device cluster per DPU, in the three-tier offload layout —
        are built by their owner and adopted here instead. The cluster
        gets a steering group, empty desired state, and from then on the
        full transaction/consistency/repair machinery applies to it.
        """
        if cluster_id in self.clusters:
            raise TableError(f"cluster {cluster_id} already registered")
        self.clusters[cluster_id] = cluster
        self.balancer.register_cluster(
            cluster_id, [m.name for m in cluster.active_members()]
        )
        self._routes.setdefault(cluster_id, {})
        self._vms.setdefault(cluster_id, {})
        self._route_index.setdefault(cluster_id, {})
        self._vm_index.setdefault(cluster_id, {})
        return cluster

    def desired_routes(self, cluster_id: str) -> Dict[Tuple[int, Prefix], RouteAction]:
        """A copy of one cluster's desired routing state (committed
        transactions only) — what a tier planner rebuilds its placement
        map from after a controller recovery."""
        return dict(self._routes.get(cluster_id, {}))

    # -- tenant onboarding --------------------------------------------------

    def add_tenant(
        self,
        profile: TenantProfile,
        routes: Iterable[RouteEntry],
        vms: Iterable[VmEntry],
        time: float = 0.0,
    ) -> str:
        """Place a tenant, install its entries, and steer its VNI."""
        cluster_id = self.splitter.place(self.plan, profile)
        cluster = self._ensure_cluster(cluster_id)
        self._profiles[profile.vni] = profile
        self._journal_append("add-tenant", {
            "vni": profile.vni, "cluster": cluster_id,
            "profile": encode_profile(profile),
        })
        self._crash_point("add-tenant", cluster_id)
        self.balancer.assign_vni(profile.vni, cluster_id)
        for route in routes:
            self.install_route(cluster_id, route, time=time)
        for vm in vms:
            self.install_vm(cluster_id, vm, time=time)
        self.version += 1
        return cluster_id

    def install_route(self, cluster_id: str, route: RouteEntry, time: float = 0.0) -> None:
        cluster = self._ensure_cluster(cluster_id)
        self._journal_append("install-route", {
            "cluster": cluster_id, "vni": route.vni,
            "prefix": str(route.prefix), "action": encode_action(route.action),
        })
        self._crash_point("install-route", cluster_id)
        self._routes[cluster_id][(route.vni, route.prefix)] = route.action
        self._route_index[cluster_id].setdefault(route.vni, set()).add(route.prefix)
        cluster.for_each_gateway(
            lambda gw: gw.install_route(route.vni, route.prefix, route.action, replace=True)
        )
        self._record_size(cluster_id, time)

    def install_vm(self, cluster_id: str, vm: VmEntry, time: float = 0.0) -> None:
        cluster = self._ensure_cluster(cluster_id)
        self._journal_append("install-vm", {
            "cluster": cluster_id, "vni": vm.vni, "vm_ip": vm.vm_ip,
            "vm_version": vm.version, "binding": encode_binding(vm.binding),
        })
        self._crash_point("install-vm", cluster_id)
        self._vms[cluster_id][(vm.vni, vm.vm_ip, vm.version)] = vm.binding
        self._vm_index[cluster_id].setdefault(vm.vni, set()).add((vm.vm_ip, vm.version))
        cluster.for_each_gateway(
            lambda gw: gw.install_vm(vm.vni, vm.vm_ip, vm.version, vm.binding, replace=True)
        )
        self._record_size(cluster_id, time)

    def remove_route(self, cluster_id: str, vni: int, prefix: Prefix,
                     time: float = 0.0) -> None:
        """Withdraw one route from desired state and every gateway."""
        cluster = self.clusters[cluster_id]
        if (vni, prefix) not in self._routes.get(cluster_id, {}):
            raise TableError(f"route vni={vni} {prefix} not in desired state")
        self._journal_append("remove-route", {
            "cluster": cluster_id, "vni": vni, "prefix": str(prefix),
        })
        self._crash_point("remove-route", cluster_id)
        del self._routes[cluster_id][(vni, prefix)]
        self._index_discard(self._route_index, cluster_id, vni, prefix)
        cluster.for_each_gateway(lambda gw: gw.remove_route(vni, prefix))
        self._record_size(cluster_id, time)

    def remove_vm(self, cluster_id: str, vni: int, vm_ip: int, version: int,
                  time: float = 0.0) -> None:
        """Remove a VM binding from desired state and every gateway."""
        cluster = self.clusters[cluster_id]
        key = (vni, vm_ip, version)
        if key not in self._vms.get(cluster_id, {}):
            raise TableError(f"vm ({vni}, {vm_ip:#x}) not in desired state")
        self._journal_append("remove-vm", {
            "cluster": cluster_id, "vni": vni, "vm_ip": vm_ip,
            "vm_version": version,
        })
        self._crash_point("remove-vm", cluster_id)
        del self._vms[cluster_id][key]
        self._index_discard(self._vm_index, cluster_id, vni, (vm_ip, version))
        cluster.for_each_gateway(lambda gw: gw.remove_vm(vni, vm_ip, version))
        self._record_size(cluster_id, time)

    def remove_tenant(self, vni: int, time: float = 0.0) -> int:
        """Offboard a tenant completely; returns the entries removed."""
        cluster_id = self.plan.assignments.get(vni)
        if cluster_id is None:
            raise TableError(f"VNI {vni} is not placed")
        # Journalled first: its replay drops the tenant AND all its
        # entries, so the per-entry remove records below replay as no-ops.
        self._journal_append("remove-tenant", {"vni": vni, "cluster": cluster_id})
        self._crash_point("remove-tenant", cluster_id)
        # The owning cluster's per-tenant index gives exactly this VNI's
        # keys — O(tenant), not a scan of the cluster's whole route map.
        removed = 0
        for prefix in sorted(
                self._route_index.get(cluster_id, {}).get(vni, ()), key=str):
            self.remove_route(cluster_id, vni, prefix, time=time)
            removed += 1
        for (vm_ip, version) in sorted(
                self._vm_index.get(cluster_id, {}).get(vni, ())):
            self.remove_vm(cluster_id, vni, vm_ip, version, time=time)
            removed += 1
        # Release the placement reservation and the steering entry.
        profile = self._profiles.pop(vni, None)
        if profile is not None:
            self.plan.usage[cluster_id].remove(profile)
        else:
            self.plan.usage[cluster_id].tenants.remove(vni)
        del self.plan.assignments[vni]
        self.balancer.release_vni(vni)
        self.version += 1
        return removed

    def _record_size(self, cluster_id: str, time: float) -> None:
        size = len(self._routes[cluster_id]) + len(self._vms[cluster_id])
        self.table_size_series.record(cluster_id, time, size)

    def route_count(self, cluster_id: str) -> int:
        return len(self._routes.get(cluster_id, {}))

    def vm_entries(self, cluster_id: str) -> List[VmEntry]:
        """Desired-state VM bindings of one cluster, key-ordered — the
        endpoint migrator's NC-drain enumeration."""
        return [VmEntry(vni, vm_ip, version, binding)
                for (vni, vm_ip, version), binding
                in sorted(self._vms.get(cluster_id, {}).items())]

    # -- transactions -----------------------------------------------------

    @contextmanager
    def transaction(self, cluster_id: str, time: float = 0.0) -> Iterator[Transaction]:
        """Stage a batch and push it two-phase on clean exit.

        ``with ctl.transaction(cid) as txn:`` collects
        ``txn.install_route/install_vm/remove_route/remove_vm`` calls;
        on exit the batch is *prepared* on every member (including the
        hot backup) and only then committed to the desired state. A
        member fault mid-prepare rolls back every already-prepared
        member and raises :class:`TransactionAborted` — no member is
        ever left with a partial batch.
        """
        txn = Transaction(cluster_id)
        yield txn
        self._commit_transaction(cluster_id, txn, time)

    @staticmethod
    def _index_discard(index: Dict[str, Dict[int, set]], cluster_id: str,
                       vni: int, key) -> None:
        """Drop one key from the per-tenant index, pruning empty buckets."""
        bucket = index.get(cluster_id, {}).get(vni)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del index[cluster_id][vni]

    def _apply_committed_op(self, cluster_id: str, op: dict) -> None:
        """Fold one prepared transaction op into the desired state (and
        the per-tenant key index). Called once the op is safely on every
        member — by the single-cluster commit path and by the cross-shard
        completion path (``repro.shard``)."""
        if op["op"] == "install-route":
            vni, prefix = op["vni"], Prefix.parse(op["prefix"])
            self._routes[cluster_id][(vni, prefix)] = decode_action(op["action"])
            self._route_index[cluster_id].setdefault(vni, set()).add(prefix)
        elif op["op"] == "remove-route":
            vni, prefix = op["vni"], Prefix.parse(op["prefix"])
            del self._routes[cluster_id][(vni, prefix)]
            self._index_discard(self._route_index, cluster_id, vni, prefix)
        elif op["op"] == "install-vm":
            vni, vm_ip, version = op["vni"], op["vm_ip"], op["vm_version"]
            self._vms[cluster_id][(vni, vm_ip, version)] = \
                decode_binding(op["binding"])
            self._vm_index[cluster_id].setdefault(vni, set()).add((vm_ip, version))
        elif op["op"] == "remove-vm":
            vni, vm_ip, version = op["vni"], op["vm_ip"], op["vm_version"]
            del self._vms[cluster_id][(vni, vm_ip, version)]
            self._index_discard(self._vm_index, cluster_id, vni, (vm_ip, version))
        else:  # pragma: no cover - Transaction only stages the four ops
            raise TableError(f"unknown transaction op {op['op']!r}")

    def _stage_prev(self, cluster_id: str, op: dict):
        """The desired-state value an op will overwrite/remove (for
        validation; per-member undo uses each gateway's own state)."""
        if op["op"].endswith("-route"):
            key = (op["vni"], Prefix.parse(op["prefix"]))
            return self._routes.get(cluster_id, {}).get(key)
        key = (op["vni"], op["vm_ip"], op["vm_version"])
        return self._vms.get(cluster_id, {}).get(key)

    @staticmethod
    def _vm_lookup(gw, vni: int, vm_ip: int, version: int):
        """A member's current VM binding. XGW-H keeps bindings in the
        pipeline-split table; XGW-x86 members (hybrid clusters) keep them
        in the flat DRAM table."""
        table = getattr(gw, "split_vm_nc", None)
        if table is None:
            table = gw.tables.vm_nc
        return table.lookup(vni, vm_ip, version)

    def _apply_op_to_gateway(self, gw, op: dict, undo: List[Callable[[], None]]) -> None:
        """Prepare one op on one gateway, pushing its inverse onto *undo*."""
        if op["op"] == "install-route":
            vni, prefix = op["vni"], Prefix.parse(op["prefix"])
            action = decode_action(op["action"])
            prev = next((a for v, p, a in gw.tables.routing.items()
                         if v == vni and p == prefix), None)
            gw.install_route(vni, prefix, action, replace=True)
            if prev is None:
                undo.append(lambda: gw.remove_route(vni, prefix))
            else:
                undo.append(lambda: gw.install_route(vni, prefix, prev, replace=True))
        elif op["op"] == "remove-route":
            vni, prefix = op["vni"], Prefix.parse(op["prefix"])
            prev = self._routes[op["cluster"]][(vni, prefix)]
            gw.remove_route(vni, prefix)
            undo.append(lambda: gw.install_route(vni, prefix, prev, replace=True))
        elif op["op"] == "install-vm":
            vni, vm_ip, version = op["vni"], op["vm_ip"], op["vm_version"]
            binding = decode_binding(op["binding"])
            prev = self._vm_lookup(gw, vni, vm_ip, version)
            gw.install_vm(vni, vm_ip, version, binding, replace=True)
            if prev is None:
                undo.append(lambda: gw.remove_vm(vni, vm_ip, version))
            else:
                undo.append(lambda: gw.install_vm(vni, vm_ip, version, prev, replace=True))
        elif op["op"] == "remove-vm":
            vni, vm_ip, version = op["vni"], op["vm_ip"], op["vm_version"]
            prev = self._vms[op["cluster"]][(vni, vm_ip, version)]
            gw.remove_vm(vni, vm_ip, version)
            undo.append(lambda: gw.install_vm(vni, vm_ip, version, prev, replace=True))
        else:  # pragma: no cover - Transaction only stages the four ops
            raise TableError(f"unknown transaction op {op['op']!r}")

    def _commit_transaction(self, cluster_id: str, txn: Transaction,
                            time: float) -> None:
        cluster = self._ensure_cluster(cluster_id)
        if not txn.ops and not txn.side_effects:
            return
        # Validate removals against desired state up front, before any
        # journalling or gateway write.
        for op in txn.ops:
            if op["op"].startswith("remove-") and self._stage_prev(cluster_id, op) is None:
                raise TableError(f"transaction removes unknown entry: {op}")
        record = None
        if txn.ops:
            record = self._journal_append("txn", {"cluster": cluster_id,
                                                  "ops": list(txn.ops)})
            self._crash_point("txn", cluster_id)
        # Phase 1 — prepare: apply the whole batch member by member,
        # keeping per-member undo logs.
        prepared: List[Tuple[Member, List[Callable[[], None]]]] = []
        failure: Optional[TableError] = None
        for member in cluster.all_members():
            if not txn.ops:
                break
            undo: List[Callable[[], None]] = []
            prepared.append((member, undo))
            try:
                for op in txn.ops:
                    self._apply_op_to_gateway(member.gateway, op, undo)
            except TableError as exc:
                failure = exc
                break
        # Side effects run once every member holds the batch, still
        # inside the abort envelope: a failing effect unwinds the
        # already-applied effects and every prepared member.
        applied_effects: List[Tuple[str, Callable[[], None]]] = []
        if failure is None:
            for label, apply_effect, undo_effect in txn.side_effects:
                try:
                    apply_effect()
                except TableError as exc:
                    failure = exc
                    break
                applied_effects.append((label, undo_effect))
        if failure is not None:
            # Abort: unwind every effect and member that saw any part of
            # the batch.
            for _label, undo_effect in reversed(applied_effects):
                try:
                    undo_effect()
                except TableError:
                    self.counters.add("txn_rollback_failures")
            for member, undo in reversed(prepared):
                for action in reversed(undo):
                    try:
                        action()
                    except TableError:
                        # Best effort — residue is visible to the
                        # reconcile loop, which will repair it.
                        self.counters.add("txn_rollback_failures")
            if record is not None:
                self._journal_append("txn-abort", {"txn_seq": record.seq})
            self.counters.add("txns_aborted")
            raise TransactionAborted(
                f"transaction on {cluster_id} aborted: {failure}"
            ) from failure
        # Phase 2 — commit: the batch is on every member; make it the
        # desired state and mark the journal record committed.
        for op in txn.ops:
            self._apply_committed_op(cluster_id, op)
        if record is not None:
            self._journal_append("txn-commit", {"txn_seq": record.seq})
        self.counters.add("txns_committed")
        self.version += 1
        self._record_size(cluster_id, time)

    # -- consistency ------------------------------------------------------------

    def consistency_check(self, cluster_id: str) -> List[Inconsistency]:
        """Compare desired state against every gateway of one cluster —
        including the hot backup, which must hold identical tables."""
        cluster = self.clusters[cluster_id]
        findings: List[Inconsistency] = []
        desired_routes = self._routes.get(cluster_id, {})
        desired_vms = self._vms.get(cluster_id, {})
        for member in cluster.all_members():
            gw = member.gateway
            installed = {
                (vni, prefix): action for vni, prefix, action in gw.tables.routing.items()
            }
            for key, action in desired_routes.items():
                have = installed.get(key)
                if have != action:
                    kind = "missing-route" if have is None else "corrupt-route"
                    findings.append(
                        Inconsistency(cluster_id, member.name, kind, f"{key}", key=key)
                    )
            for key in installed:
                if key not in desired_routes:
                    findings.append(
                        Inconsistency(cluster_id, member.name, "extra-route", f"{key}",
                                      key=key)
                    )
            for (vni, vm_ip, version), binding in desired_vms.items():
                have_binding = self._vm_lookup(gw, vni, vm_ip, version)
                if have_binding != binding:
                    kind = "missing-vm" if have_binding is None else "corrupt-vm"
                    findings.append(
                        Inconsistency(
                            cluster_id, member.name, kind, f"({vni}, {vm_ip:#x})",
                            key=(vni, vm_ip, version),
                        )
                    )
        return findings

    def repair(self, cluster_id: str) -> int:
        """Re-push desired state to a divergent cluster; returns fixes."""
        findings = self.consistency_check(cluster_id)
        if not findings:
            return 0
        cluster = self.clusters[cluster_id]
        for (vni, prefix), action in self._routes.get(cluster_id, {}).items():
            cluster.for_each_gateway(
                lambda gw, v=vni, p=prefix, a=action: gw.install_route(v, p, a, replace=True)
            )
        for (vni, vm_ip, version), binding in self._vms.get(cluster_id, {}).items():
            cluster.for_each_gateway(
                lambda gw, v=vni, ip=vm_ip, ver=version, b=binding: gw.install_vm(
                    v, ip, ver, b, replace=True
                )
            )
        return len(findings)

    # -- targeted repair + reconciliation loop -----------------------------

    def _repair_one(self, cluster_id: str, finding: Inconsistency) -> None:
        """Re-push exactly one divergent entry to exactly one member."""
        if finding.key is None:
            raise TableError(f"finding has no structured key: {finding}")
        gw = self.clusters[cluster_id].find_member(finding.node).gateway
        if finding.kind in ("missing-route", "corrupt-route"):
            vni, prefix = finding.key
            gw.install_route(vni, prefix, self._routes[cluster_id][finding.key],
                             replace=True)
        elif finding.kind == "extra-route":
            vni, prefix = finding.key
            gw.remove_route(vni, prefix)
        elif finding.kind in ("missing-vm", "corrupt-vm"):
            vni, vm_ip, version = finding.key
            gw.install_vm(vni, vm_ip, version, self._vms[cluster_id][finding.key],
                          replace=True)
        elif finding.kind == "extra-vm":
            # Produced by the audit's intent-vs-installed sweep (the
            # consistency_check VM comparison stays one-way); withdrawing
            # the surviving binding closes the PR-2 dropped-remove_vm
            # blind spot.
            vni, vm_ip, version = finding.key
            gw.remove_vm(vni, vm_ip, version)
        else:  # pragma: no cover - kinds are produced by consistency_check
            raise TableError(f"unknown inconsistency kind {finding.kind}")

    def targeted_repair(
        self, cluster_id: str, findings: Optional[List[Inconsistency]] = None
    ) -> Tuple[int, List[Inconsistency]]:
        """Repair only the divergent keys on only the divergent members.

        Unlike :meth:`repair` (full table re-push), this touches nothing
        that already agrees with desired state. Returns ``(applied,
        failed)`` where *failed* holds the findings whose push raised a
        :class:`TableError` (e.g. insufficient gateway memory) — the
        reconcile loop retries those with backoff.
        """
        if findings is None:
            findings = self.consistency_check(cluster_id)
        applied = 0
        failed: List[Inconsistency] = []
        for finding in findings:
            try:
                self._repair_one(cluster_id, finding)
            except TableError:
                failed.append(finding)
            else:
                applied += 1
                self.counters.add("repairs_applied")
        return applied, failed

    def _schedule_repair_retry(self, engine: Engine, cluster_id: str,
                               findings: List[Inconsistency], attempt: int,
                               max_retries: int, backoff: float) -> None:
        if attempt > max_retries:
            self.counters.add("retries_exhausted", len(findings))
            return
        delay = backoff * (2 ** (attempt - 1))

        def retry() -> None:
            self.counters.add("repair_retries")
            still_failed: List[Inconsistency] = []
            for finding in findings:
                try:
                    self._repair_one(cluster_id, finding)
                except TableError:
                    still_failed.append(finding)
                else:
                    self.counters.add("repairs_applied")
            if still_failed:
                self._schedule_repair_retry(engine, cluster_id, still_failed,
                                            attempt + 1, max_retries, backoff)

        engine.schedule_in(delay, retry)

    def _probe_gate(self, cluster_id: str) -> bool:
        """Probe-before-readmit: a quarantined cluster returns to service
        only once it is consistent *and* its probes pass."""
        if cluster_id not in self.quarantined:
            return True
        if self.consistency_check(cluster_id):
            return False  # still divergent (repairs pending/retrying)
        report = self.probe(cluster_id)
        if report.failures:
            self.counters.add("probes_failed")
            return False
        self.quarantined.discard(cluster_id)
        self.counters.add("readmissions")
        return True

    def is_admitted(self, cluster_id: str) -> bool:
        """Whether user traffic may be admitted to *cluster_id*."""
        return cluster_id not in self.quarantined

    def _reconcile_cluster(self, engine: Engine, cluster_id: str,
                           max_retries: int, backoff: float) -> None:
        findings = self.consistency_check(cluster_id)
        if findings:
            self.counters.add("inconsistencies_found", len(findings))
            self.counters.add("repair_cycles")
            self.quarantined.add(cluster_id)
            _applied, failed = self.targeted_repair(cluster_id, findings)
            if failed:
                self._schedule_repair_retry(engine, cluster_id, failed,
                                            attempt=1, max_retries=max_retries,
                                            backoff=backoff)
        self._probe_gate(cluster_id)

    def reconcile_loop(
        self,
        engine: Engine,
        interval: float,
        cluster_ids: Optional[Iterable[str]] = None,
        max_retries: int = 3,
        backoff: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """Register the §6.1 cycle — consistency-check → targeted repair →
        probe-before-readmit — every *interval* on *engine*.

        Failed installs are retried with exponential backoff (*backoff*,
        ``2**attempt`` growth, default ``interval / 4``) up to
        *max_retries* times; exhaustion is counted in
        ``counters["retries_exhausted"]``. Returns the cancellation
        handle of the periodic series.
        """
        if backoff is None:
            backoff = interval / 4.0

        def tick() -> None:
            self.counters.add("reconcile_ticks")
            ids = sorted(cluster_ids) if cluster_ids is not None else sorted(self.clusters)
            for cid in ids:
                self._reconcile_cluster(engine, cid, max_retries, backoff)

        return engine.schedule_every(interval, tick, until=until)

    # -- probing --------------------------------------------------------------------

    def probe(self, cluster_id: str, limit: int = 64,
              members: Optional[Iterable[str]] = None) -> ProbeReport:
        """Send synthetic probes for installed LOCAL VMs ("deploy probe
        generators ... covering as many test scenarios as possible").

        Every ACTIVE member is swept — including the hot backup's, which
        must answer identically — so per-member divergence (one node's
        corrupted table) cannot hide behind a healthy sibling. Passing
        *members* probes exactly those names regardless of state (the
        drain/upgrade path probes a still-offline member before
        readmitting it).
        """
        report = ProbeReport()
        cluster = self.clusters[cluster_id]
        desired_vms = self._vms.get(cluster_id, {})
        desired_routes = self._routes.get(cluster_id, {})
        local_vnis = {
            vni for (vni, _prefix), action in desired_routes.items()
            if action.scope is Scope.LOCAL
        }
        if members is None:
            targets = [m for m in cluster.all_members() if m.state is NodeState.ACTIVE]
        else:
            wanted = set(members)
            targets = [m for m in cluster.all_members() if m.name in wanted]
        for (vni, vm_ip, version), binding in list(desired_vms.items())[:limit]:
            if version != 4 or vni not in local_vnis:
                continue
            packet = build_probe_packet(vni, vm_ip)
            for member in targets:
                report.sent += 1
                result = member.gateway.forward(packet)
                if result.action is ForwardAction.DELIVER_NC and result.nc_ip == binding.nc_ip:
                    report.passed += 1
                else:
                    report.failures.append(
                        f"{member.name}: vni={vni} vm={vm_ip:#x}: "
                        f"{result.action.value} ({result.detail})"
                    )
        return report


def build_probe_packet(vni: int, vm_ip: int, src_ip: int = 0x0A0A0A0A) -> Packet:
    """A minimal IPv4-in-VXLAN probe towards *vm_ip* in *vni*."""
    inner = InnerFrame(
        eth=Ethernet(dst=0x0000DEADBEEF, src=0x0000CAFEBABE, ethertype=ETHERTYPE_IPV4),
        ip=IPv4(src=src_ip, dst=vm_ip, proto=PROTO_UDP),
        l4=UDP(src_port=49152, dst_port=7),
        payload=b"probe",
    )
    return Packet.vxlan_encap(
        inner,
        outer_eth=Ethernet(dst=0x0000AAAAAAAA, src=0x0000BBBBBBBB, ethertype=ETHERTYPE_IPV4),
        outer_src=0x0A000001,
        outer_dst=0x0A0000FE,
        vni=vni,
    )
