"""XGW-H: the hardware gateway — a folded chip running the gateway program.

Ties together the Tofino simulator, the pipeline-split gateway program
and the compressed tables. One XGW-H carries a cluster's table shard at
3.2 Tbps (folded) with ~2 µs latency; it redirects SERVICE-scope traffic
to XGW-x86.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dataplane.columnar import BatchCompiler, PacketBatch
from ..dataplane.gateway_logic import (
    ForwardAction,
    ForwardResult,
    GatewayTables,
    count_drop,
    count_drops,
)
from ..dataplane.migration import MigrationState
from ..dataplane.pipeline_program import SplitVmNc, XgwHProgram, parity_pipeline
from ..net.addr import Prefix
from ..net.packet import Packet
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction
from ..telemetry.stats import CounterSet
from ..tofino.chip import Chip
from ..tofino.pipeline import Verdict

_VERDICT_TO_ACTION = {
    Verdict.DROP: ForwardAction.DROP,
    Verdict.REDIRECT_X86: ForwardAction.REDIRECT_X86,
}


@dataclass
class XgwHStats:
    """Forwarding counters of one hardware gateway."""

    packets: int = 0
    delivered: int = 0
    uplinked: int = 0
    redirected: int = 0
    dropped: int = 0
    buffered: int = 0
    bridged_bytes: int = 0

    @property
    def mean_bridge_bytes(self) -> float:
        """Average metadata bytes bridged per packet (§4.4's wire cost)."""
        return self.bridged_bytes / self.packets if self.packets else 0.0

    def bridge_throughput_loss(self, packet_bytes: int) -> float:
        """Measured line-rate fraction lost to bridging at one packet size."""
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        mean = self.mean_bridge_bytes
        return mean / (packet_bytes + mean)


class XgwH:
    """One hardware gateway node.

    >>> gw = XgwH(gateway_ip=0x0A0000FE)
    >>> gw.chip.folded
    True
    """

    def __init__(self, gateway_ip: int, tables: Optional[GatewayTables] = None,
                 folded: bool = True, columnar: bool = True):
        self.gateway_ip = gateway_ip
        self.tables = tables if tables is not None else GatewayTables()
        self.split_vm_nc = SplitVmNc.empty()
        self.chip = Chip(folded=folded)
        self.clock = 0.0
        self.program = XgwHProgram(self.tables, self.split_vm_nc, gateway_ip,
                                   clock=lambda: self.clock)
        self.chip.attach_symmetric(self.program.programs())
        self.stats = XgwHStats()
        self.counters = CounterSet()
        #: Columnar batch path (DESIGN §13): ``forward_batch`` executes a
        #: compiled program over struct-of-arrays bursts instead of
        #: simulating every fabric traversal, reproducing the per-packet
        #: stats/pipe/bridge bookkeeping in aggregate. Only the folded
        #: layout is compiled (it is the deployed one).
        self._batch_compiler: Optional[BatchCompiler] = (
            BatchCompiler(self.tables, gateway_ip, split_vm_nc=self.split_vm_nc)
            if columnar and folded else None
        )
        self._compiled = None
        self._last_traversal = None
        #: Live-migration freeze state, attached lazily by
        #: :func:`repro.dataplane.migration.ensure_migration_state`.
        self.migration: Optional[MigrationState] = None

    def set_redirect_rate_limit(self, rate_bps: float, burst_bytes: Optional[float] = None) -> None:
        """Install the §4.2 overload-protection meter on the redirect path.

        *rate_bps* is the allowed redirect bandwidth; internally meters
        run in bytes.
        """
        from ..tables.meter import TokenBucket

        rate_bytes = rate_bps / 8.0
        self.tables.meters.configure(
            "redirect-x86",
            TokenBucket(
                committed_rate=rate_bytes,
                committed_burst=burst_bytes if burst_bytes is not None else rate_bytes * 0.01,
            ),
        )

    # -- table management (driven by the controller) -----------------------

    def install_route(self, vni: int, prefix: Prefix, action: RouteAction,
                      replace: bool = False) -> None:
        self.tables.routing.insert(vni, prefix, action, replace=replace)

    def remove_route(self, vni: int, prefix: Prefix) -> RouteAction:
        return self.tables.routing.remove(vni, prefix)

    def install_vm(self, vni: int, vm_ip: int, version: int, binding: NcBinding,
                   replace: bool = False) -> None:
        """VM-NC entries land in the parity half of the split table."""
        self.split_vm_nc.insert(vni, vm_ip, version, binding, replace=replace)

    def remove_vm(self, vni: int, vm_ip: int, version: int) -> NcBinding:
        """Withdraw a VM binding from the parity half that holds it."""
        return self.split_vm_nc.remove(vni, vm_ip, version)

    def route_count(self) -> int:
        return len(self.tables.routing)

    def vm_count(self) -> int:
        return len(self.split_vm_nc)

    # -- forwarding ---------------------------------------------------------

    def forward_traced(self, packet: Packet, now: Optional[float] = None):
        """Like :meth:`forward` but also returns the chip traversal, for
        VTrace-style path diagnostics."""
        result = self.forward(packet, now)
        return result, self._last_traversal

    def forward(self, packet: Packet, now: Optional[float] = None) -> ForwardResult:
        """Forward one packet through the folded pipelines.

        *now* advances the gateway's data-plane clock (used by meters).
        """
        if now is not None:
            self.clock = now
        self.stats.packets += 1
        if self.migration is not None:
            intercepted = self.migration.intercept(packet, self.clock)
            if intercepted is not None:
                self._last_traversal = None
                if intercepted.action is ForwardAction.DROP:
                    self.stats.dropped += 1
                    count_drop(self.counters, intercepted.detail)
                else:
                    self.stats.buffered += 1
                return intercepted
        entry = parity_pipeline(packet.inner_dst) if packet.is_vxlan else 0
        traversal = self.chip.process(packet, entry_pipeline=entry)
        self._last_traversal = traversal
        self.stats.bridged_bytes += traversal.bridged_bytes
        verdict = traversal.verdict
        if verdict is Verdict.DROP:
            self.stats.dropped += 1
            count_drop(self.counters, traversal.drop_reason)
            return ForwardResult(ForwardAction.DROP, traversal.packet,
                                 detail=traversal.drop_reason)
        if verdict is Verdict.REDIRECT_X86:
            self.stats.redirected += 1
            return ForwardResult(ForwardAction.REDIRECT_X86, traversal.packet,
                                 detail=traversal.drop_reason)
        # FORWARD: an early exit (1 pipe) is uplink traffic; the full folded
        # path (4 pipes) ends with the NC rewrite.
        if traversal.pipes_traversed >= 4 or not self.chip.folded:
            self.stats.delivered += 1
            return ForwardResult(
                ForwardAction.DELIVER_NC,
                traversal.packet,
                detail="local",
                nc_ip=traversal.packet.ip.dst,
            )
        self.stats.uplinked += 1
        return ForwardResult(ForwardAction.UPLINK, traversal.packet,
                             detail=traversal.drop_reason)

    def forward_batch(self, packets: Sequence[Packet],
                      now: Optional[float] = None) -> List[ForwardResult]:
        """Forward a burst through the columnar compiled program.

        Results and every observable side effect — stats, drop counters,
        chip packet counts, per-pipe tallies, bridge bytes, table
        counters/meters — are identical to per-packet :meth:`forward`
        calls (differentially tested). The program recompiles whenever
        the table generation vector moves; freeze windows and unfolded
        chips fall back to the per-packet loop. *now* advances the
        data-plane clock once for the whole burst.
        """
        if now is not None:
            self.clock = now
        compiler = self._batch_compiler
        if compiler is None or (self.migration is not None and self.migration.frozen):
            fwd = self.forward
            return [fwd(packet) for packet in packets]
        program = self._compiled
        if program is None or program.generations != compiler.generations():
            program = self._compiled = compiler.compile()
        batch = (packets if isinstance(packets, PacketBatch)
                 else PacketBatch.from_packets(packets))
        results, tally = program.execute(batch, self.clock)
        actions = tally.actions
        stats = self.stats
        stats.packets += batch.n
        stats.delivered += actions.get(ForwardAction.DELIVER_NC, 0)
        stats.uplinked += actions.get(ForwardAction.UPLINK, 0)
        stats.redirected += actions.get(ForwardAction.REDIRECT_X86, 0)
        dropped = actions.get(ForwardAction.DROP, 0)
        stats.dropped += dropped
        stats.bridged_bytes += tally.bridged_bytes
        if tally.drop_details:
            count_drops(self.counters, tally.drop_details)
        chip = self.chip
        chip.packets_in += batch.n
        chip.packets_dropped += dropped
        if tally.pipe_packets:
            pipe_packets = chip.fabric.pipe_packets
            for ref, count in tally.pipe_packets.items():
                pipe_packets[ref] = pipe_packets.get(ref, 0) + count
        self._last_traversal = None
        return results

    # -- performance ---------------------------------------------------------

    def latency_us(self) -> float:
        return self.chip.forwarding_latency_us()

    def throughput_bps(self) -> float:
        return self.chip.max_throughput_bps()

    def max_pps(self) -> float:
        return self.chip.max_pps()

    def egress_pipe_share(self):
        """Per-egress-pipe packet counts (Fig. 20/21)."""
        return self.chip.fabric.egress_pipe_share()
