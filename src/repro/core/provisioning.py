"""Table installation timing: the controller's update problem (§2.3, §6.1).

"It takes more than ten minutes to install all the tables into one
XGW-x86 gateway and it is time-consuming to update hundreds of gateways
even though some degree of multi-threading is enabled at the
controller." Fewer, denser gateways shrink both the install time and the
inconsistency window during which some gateways have new state and
others do not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Entries installed per second into one gateway. Calibrated to the
#: paper: ~2M entries (routes + VMs) in "more than ten minutes" on an
#: XGW-x86 -> ~3,000 entries/s. The switch driver batches gRPC table
#: programming at a similar order.
X86_INSTALL_RATE = 3_000.0
XGWH_INSTALL_RATE = 5_000.0


@dataclass(frozen=True)
class InstallJob:
    """Push *entries* to *gateways*, *threads* gateways at a time."""

    entries: int
    gateways: int
    install_rate: float
    controller_threads: int = 8

    def __post_init__(self):
        if self.entries < 0 or self.gateways <= 0:
            raise ValueError("need entries >= 0 and gateways > 0")
        if self.install_rate <= 0 or self.controller_threads <= 0:
            raise ValueError("rates and threads must be positive")

    @property
    def per_gateway_seconds(self) -> float:
        """Wall time to fill one gateway."""
        return self.entries / self.install_rate

    @property
    def total_seconds(self) -> float:
        """Wall time to fill the whole fleet with a bounded thread pool."""
        waves = math.ceil(self.gateways / self.controller_threads)
        return waves * self.per_gateway_seconds

    @property
    def inconsistency_window_seconds(self) -> float:
        """Time during which gateway states diverge mid-rollout: from the
        first gateway finishing to the last one finishing."""
        if self.gateways == 1:
            return 0.0
        return self.total_seconds - self.per_gateway_seconds


def full_region_install_x86(entries: int = 2_000_000, gateways: int = 600,
                            threads: int = 8) -> InstallJob:
    """§2.3's pain: a full table download to an all-x86 region."""
    return InstallJob(entries=entries, gateways=gateways,
                      install_rate=X86_INSTALL_RATE, controller_threads=threads)


def full_region_install_sailfish(entries_per_cluster: int = 500_000,
                                 gateways: int = 14, threads: int = 8) -> InstallJob:
    """The same region after Sailfish: ten XGW-H (each holding only its
    cluster's shard, thanks to horizontal splitting) + four XGW-x86."""
    return InstallJob(entries=entries_per_cluster, gateways=gateways,
                      install_rate=XGWH_INSTALL_RATE, controller_threads=threads)


@dataclass(frozen=True)
class UpdatePropagation:
    """One incremental update fanned out to a cluster."""

    gateways: int
    per_update_seconds: float = 0.002  # one RPC + table write

    @property
    def propagation_seconds(self) -> float:
        """Sequential worst case (a cautious controller updates one
        gateway at a time and verifies)."""
        return self.gateways * self.per_update_seconds
