"""Write-ahead journal for the controller (§6.1, made crash-safe).

The paper's controller is the single source of truth for table intent;
losing it mid-update is how regions end up half-configured. This module
makes every controller mutation durable-before-visible: a mutation is
first appended to the journal as a checksummed record, and only then
pushed to the gateways. A controller that dies between the append and
the push can be rebuilt by replaying the journal — the rebuilt intent
store is byte-for-byte the pre-crash one, and a full sync against it
leaves ``consistency_check() == []``.

Three durability mechanisms, mirroring production WAL designs:

* **Checksummed records** — each record is one framed line
  ``seq|op|payload|crc32``; decoding verifies the CRC so torn or
  bit-rotten records surface as :class:`JournalCorruption` instead of
  silently corrupt intent.
* **Segment rotation** — records land in bounded segments (default 16
  KiB) so pruning after a snapshot is O(segments), not O(records).
* **Snapshots** — :meth:`Journal.snapshot` captures the materialised
  intent at the current sequence number and prunes every segment wholly
  covered by it; recovery replays snapshot + tail, which is equivalent
  to replaying from genesis (tested invariant).

Replay is deterministic and idempotent: records are upserts/deletes
over the intent store, so replaying a tail twice — or replaying on top
of a snapshot that already contains part of it — converges to the same
state.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.addr import Prefix
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction, Scope
from .splitting import TenantProfile


class JournalError(RuntimeError):
    """Raised on journal misuse (unknown ops, out-of-order appends)."""


class JournalCorruption(JournalError):
    """A record failed its checksum or framing during decode."""


class ControllerCrash(RuntimeError):
    """An injected controller crash (``FaultKind.CONTROLLER_CRASH``).

    Raised between the journal append and the cluster push; whatever the
    controller had not journalled is legitimately lost, everything
    journalled must survive :meth:`~repro.core.controller.Controller.recover`.
    """


def canonical_json(payload: dict) -> str:
    """The one true serialisation — sorted keys, no whitespace — so the
    same intent always produces the same bytes (byte-identical replays)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JournalRecord:
    """One journalled mutation: monotonic *seq*, an *op* name, and a
    JSON-serialisable *payload*."""

    seq: int
    op: str
    payload: dict

    def encode(self) -> bytes:
        """Frame the record as ``seq|op|payload|crc32`` + newline."""
        body = f"{self.seq}|{self.op}|{canonical_json(self.payload)}"
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        return f"{body}|{crc:08x}\n".encode("utf-8")

    @classmethod
    def decode(cls, line: bytes) -> "JournalRecord":
        """Parse and checksum-verify one framed line.

        >>> rec = JournalRecord(3, "install-route", {"vni": 7})
        >>> JournalRecord.decode(rec.encode()) == rec
        True
        """
        text = line.decode("utf-8").rstrip("\n")
        try:
            body, crc_text = text.rsplit("|", 1)
            seq_text, op, payload_text = body.split("|", 2)
            crc = int(crc_text, 16)
        except ValueError as exc:
            raise JournalCorruption(f"unparseable record: {text!r}") from exc
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
            raise JournalCorruption(f"checksum mismatch on record seq={seq_text}")
        return cls(int(seq_text), op, json.loads(payload_text))


@dataclass
class Segment:
    """One bounded run of encoded records."""

    index: int
    data: bytearray = field(default_factory=bytearray)
    first_seq: int = -1
    last_seq: int = -1

    def add(self, record: JournalRecord, encoded: bytes) -> None:
        if self.first_seq < 0:
            self.first_seq = record.seq
        self.last_seq = record.seq
        self.data += encoded

    def decode(self) -> List[JournalRecord]:
        """Decode (and checksum-verify) every record in the segment."""
        return [JournalRecord.decode(line + b"\n")
                for line in bytes(self.data).split(b"\n") if line]


# -- intent-state codecs ----------------------------------------------------
#
# The journal stores plain JSON; these helpers translate between the
# controller's rich types and the journalled payloads. Keys are flat
# strings ("vni|prefix", "vni|ip|version") so the state dict itself is
# JSON-round-trippable.


def encode_action(action: RouteAction) -> dict:
    return {"scope": action.scope.value, "next_hop_vni": action.next_hop_vni,
            "target": action.target}


def decode_action(payload: dict) -> RouteAction:
    return RouteAction(Scope(payload["scope"]), payload.get("next_hop_vni"),
                       payload.get("target"))


def encode_binding(binding: NcBinding) -> dict:
    return {"nc_ip": binding.nc_ip, "nc_version": binding.nc_version}


def decode_binding(payload: dict) -> NcBinding:
    return NcBinding(nc_ip=payload["nc_ip"], nc_version=payload["nc_version"])


def encode_profile(profile: TenantProfile) -> dict:
    return {"vni": profile.vni, "routes": profile.routes, "vms": profile.vms,
            "traffic_bps": profile.traffic_bps}


def decode_profile(payload: dict) -> TenantProfile:
    return TenantProfile(payload["vni"], payload["routes"], payload["vms"],
                         payload["traffic_bps"])


def route_key(vni: int, prefix: Prefix) -> str:
    return f"{vni}|{prefix}"


def parse_route_key(key: str) -> Tuple[int, Prefix]:
    vni_text, prefix_text = key.split("|", 1)
    return int(vni_text), Prefix.parse(prefix_text)


def vm_key(vni: int, vm_ip: int, version: int) -> str:
    return f"{vni}|{vm_ip}|{version}"


def parse_vm_key(key: str) -> Tuple[int, int, int]:
    vni_text, ip_text, version_text = key.split("|")
    return int(vni_text), int(ip_text), int(version_text)


def empty_state() -> dict:
    """The genesis intent store: no tenants, no entries."""
    return {"tenants": {}, "routes": {}, "vms": {}, "version": 0}


def _apply(state: dict, record: JournalRecord) -> None:
    """Apply one committed record to the intent store (upsert/delete
    semantics, so replay is idempotent)."""
    op, p = record.op, record.payload
    if op == "add-tenant":
        state["tenants"][str(p["vni"])] = {
            "cluster": p["cluster"], "profile": p["profile"],
        }
        state["version"] += 1
    elif op == "remove-tenant":
        state["tenants"].pop(str(p["vni"]), None)
        prefix_key = f"{p['vni']}|"
        for table in ("routes", "vms"):
            entries = state[table].get(p["cluster"], {})
            for key in [k for k in entries if k.startswith(prefix_key)]:
                del entries[key]
        state["version"] += 1
    elif op == "install-route":
        state["routes"].setdefault(p["cluster"], {})[
            route_key(p["vni"], Prefix.parse(p["prefix"]))] = p["action"]
    elif op == "remove-route":
        state["routes"].get(p["cluster"], {}).pop(
            route_key(p["vni"], Prefix.parse(p["prefix"])), None)
    elif op == "install-vm":
        state["vms"].setdefault(p["cluster"], {})[
            vm_key(p["vni"], p["vm_ip"], p["vm_version"])] = p["binding"]
    elif op == "remove-vm":
        state["vms"].get(p["cluster"], {}).pop(
            vm_key(p["vni"], p["vm_ip"], p["vm_version"]), None)
    else:
        raise JournalError(f"unknown journal op {op!r} at seq {record.seq}")


class Journal:
    """An in-memory write-ahead journal with rotation and snapshots.

    >>> j = Journal()
    >>> _ = j.append("install-route", {"cluster": "A", "vni": 7,
    ...     "prefix": "10.0.0.0/8",
    ...     "action": {"scope": "local", "next_hop_vni": None, "target": None}})
    >>> j.materialize()["routes"]["A"]["7|10.0.0.0/8"]["scope"]
    'local'
    """

    #: Records staged inside an uncommitted transaction never reach
    #: ``materialize`` — only the ops of a txn followed by txn-commit do.
    TXN_OPS = ("txn", "txn-commit", "txn-abort")

    #: Cross-shard transaction markers (``repro.shard``): the coordinator
    #: shard journals the begin/decision records, participants journal
    #: ordinary ``txn`` records tagged with the same ``xid``. The markers
    #: carry no intent of their own — they exist so a recovering region
    #: can resolve another shard's in-doubt transactions.
    XTXN_OPS = ("xtxn-begin", "xtxn-commit", "xtxn-abort")

    def __init__(self, segment_bytes: int = 16384):
        if segment_bytes <= 0:
            raise JournalError("segment_bytes must be positive")
        self.segment_bytes = segment_bytes
        self.segments: List[Segment] = [Segment(0)]
        self.next_seq = 0
        self.snapshot_seq = -1
        self.snapshot_state: Optional[dict] = None
        self.appends = 0
        self.rotations = 0
        self.snapshots = 0
        #: Records the most recent :meth:`materialize` replayed (tail
        #: records after the snapshot floor) — the operator-facing
        #: "how much work would a recovery do right now" number.
        self.last_replay_records = 0

    # -- writing ----------------------------------------------------------

    def append(self, op: str, payload: dict) -> JournalRecord:
        """Durably record one mutation; rotates segments as needed."""
        record = JournalRecord(self.next_seq, op, dict(payload))
        encoded = record.encode()
        segment = self.segments[-1]
        if segment.data and len(segment.data) + len(encoded) > self.segment_bytes:
            segment = Segment(segment.index + 1)
            self.segments.append(segment)
            self.rotations += 1
        segment.add(record, encoded)
        self.next_seq += 1
        self.appends += 1
        return record

    def snapshot(self, state: dict) -> None:
        """Record the materialised intent at the current seq and prune
        every segment wholly covered by it (snapshot + tail stays
        equivalent to a genesis replay)."""
        # Round-trip through JSON so the snapshot is a deep, canonical copy.
        self.snapshot_state = json.loads(canonical_json(state))
        self.snapshot_seq = self.next_seq - 1
        kept = [s for s in self.segments if s.last_seq > self.snapshot_seq]
        if not kept:
            kept = [Segment(self.segments[-1].index + 1)]
        self.segments = kept
        self.snapshots += 1

    # -- reading ----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self.next_seq - 1

    def records(self, after_seq: Optional[int] = None) -> List[JournalRecord]:
        """Decode the records with ``seq > after_seq`` (default: the tail
        after the latest snapshot). Checksums are verified on the way out."""
        floor = self.snapshot_seq if after_seq is None else after_seq
        out: List[JournalRecord] = []
        for segment in self.segments:
            for record in segment.decode():
                if record.seq > floor:
                    out.append(record)
        return out

    def materialize(self) -> dict:
        """Replay snapshot + tail into a fresh intent store.

        Transactions are all-or-nothing: a ``txn`` record's staged ops are
        applied only when its ``txn-commit`` marker is also journalled;
        aborted or unterminated (crashed mid-push) transactions are
        skipped entirely.
        """
        state = (json.loads(canonical_json(self.snapshot_state))
                 if self.snapshot_state is not None else empty_state())
        staged: Dict[int, JournalRecord] = {}
        replayed = 0
        for record in self.records():
            replayed += 1
            if record.op == "txn":
                staged[record.seq] = record
            elif record.op == "txn-commit":
                txn = staged.pop(record.payload["txn_seq"], None)
                if txn is None:
                    raise JournalError(
                        f"txn-commit at seq {record.seq} references unknown "
                        f"txn {record.payload['txn_seq']}")
                for op_payload in txn.payload["ops"]:
                    _apply(state, JournalRecord(txn.seq, op_payload["op"],
                                                op_payload))
                state["version"] += 1
            elif record.op == "txn-abort":
                staged.pop(record.payload["txn_seq"], None)
            elif record.op in self.XTXN_OPS:
                # Cross-shard protocol markers: no intent of their own.
                continue
            else:
                _apply(state, record)
        self.last_replay_records = replayed
        return state

    def verify(self) -> int:
        """Integrity-check the whole journal; returns records verified.

        Re-decodes every segment (each record's CRC is checked on the
        way), then asserts the structural invariants an auditor cares
        about: strictly increasing sequence numbers, every ``txn-commit``
        / ``txn-abort`` marker resolving to a journalled ``txn`` record,
        and a final :meth:`materialize` pass proving the tail replays
        cleanly. Raises :class:`JournalCorruption` / :class:`JournalError`
        on any violation.
        """
        verified = 0
        prev_seq = self.snapshot_seq
        txn_seqs = set()
        for segment in self.segments:
            for record in segment.decode():
                if record.seq <= prev_seq:
                    raise JournalCorruption(
                        f"sequence regression: {record.seq} after {prev_seq}")
                prev_seq = record.seq
                if record.op == "txn":
                    txn_seqs.add(record.seq)
                elif record.op in ("txn-commit", "txn-abort"):
                    if record.payload["txn_seq"] not in txn_seqs:
                        raise JournalError(
                            f"{record.op} at seq {record.seq} references "
                            f"unknown txn {record.payload['txn_seq']}")
                verified += 1
        self.materialize()
        return verified

    # -- telemetry --------------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Live (unpruned) segments — what compaction must keep bounded."""
        return len(self.segments)

    @property
    def tail_bytes(self) -> int:
        """Encoded bytes in the live segments (the replay tail)."""
        return sum(len(s.data) for s in self.segments)

    def tail_records(self) -> int:
        """Records a recovery would replay on top of the snapshot."""
        return sum(1 for _ in self.records())

    @property
    def snapshot_bytes(self) -> int:
        """Canonical size of the latest snapshot (0 before the first one)
        — the bytes a snapshot "covers" in place of pruned segments."""
        if self.snapshot_state is None:
            return 0
        return len(canonical_json(self.snapshot_state).encode("utf-8"))

    def telemetry(self) -> dict:
        """The compaction counters an operator (or the shard bench)
        watches: sustained churn with periodic snapshots must keep
        ``segments``/``tail_records``/``tail_bytes`` bounded while
        ``appends`` grows without bound.

        >>> j = Journal(segment_bytes=64)
        >>> for i in range(4):
        ...     _ = j.append("install-route", {"cluster": "A", "vni": i,
        ...         "prefix": "10.0.0.0/8",
        ...         "action": {"scope": "local", "next_hop_vni": None,
        ...                    "target": None}})
        >>> j.snapshot(j.materialize())
        >>> j.telemetry()["segments"]
        1
        >>> j.telemetry()["tail_records"]
        0
        """
        return {
            "appends": self.appends,
            "rotations": self.rotations,
            "snapshots": self.snapshots,
            "segments": self.segment_count,
            "tail_records": self.tail_records(),
            "tail_bytes": self.tail_bytes,
            "snapshot_seq": self.snapshot_seq,
            "snapshot_bytes": self.snapshot_bytes,
            "last_replay_records": self.last_replay_records,
        }

    # -- cross-shard resolution -------------------------------------------

    def in_doubt(self) -> List[JournalRecord]:
        """The prepared-but-unterminated ``txn`` records in the tail —
        transactions whose outcome this journal alone cannot decide.

        For single-shard transactions an unterminated record simply means
        the controller died mid-push and the batch never committed
        (``materialize`` skips it). Cross-shard prepares carry an ``xid``;
        the sharded recovery resolves those against the coordinator
        shard's :meth:`decisions` before replaying.
        """
        staged: Dict[int, JournalRecord] = {}
        for record in self.records():
            if record.op == "txn":
                staged[record.seq] = record
            elif record.op in ("txn-commit", "txn-abort"):
                staged.pop(record.payload["txn_seq"], None)
        return [staged[seq] for seq in sorted(staged)]

    def decisions(self) -> Dict[str, str]:
        """Cross-shard outcomes this journal has decided, ``xid`` ->
        ``"commit"`` | ``"abort"``. Only ``xtxn-commit`` is a durable
        commit; everything else is presumed abort."""
        out: Dict[str, str] = {}
        for record in self.records():
            if record.op == "xtxn-commit":
                out[record.payload["xid"]] = "commit"
            elif record.op == "xtxn-abort":
                out[record.payload["xid"]] = "abort"
        return out

    # -- serialisation ----------------------------------------------------

    def dump(self) -> bytes:
        """Serialise the whole journal to canonical bytes — equal seeds
        and equal operation sequences produce equal dumps."""
        out = bytearray()
        snap = (canonical_json(self.snapshot_state)
                if self.snapshot_state is not None else "")
        header = f"SNAP|{self.snapshot_seq}|{snap}"
        crc = zlib.crc32(header.encode("utf-8")) & 0xFFFFFFFF
        out += f"{header}|{crc:08x}\n".encode("utf-8")
        for segment in self.segments:
            out += f"SEG|{segment.index}\n".encode("utf-8")
            out += segment.data
        return bytes(out)

    @classmethod
    def load(cls, data: bytes, segment_bytes: int = 16384) -> "Journal":
        """Rebuild a journal from :meth:`dump` bytes, verifying every
        checksum; corruption raises :class:`JournalCorruption`."""
        journal = cls(segment_bytes=segment_bytes)
        journal.segments = []
        lines = data.split(b"\n")
        if not lines or not lines[0].startswith(b"SNAP|"):
            raise JournalCorruption("missing SNAP header")
        header_text = lines[0].decode("utf-8")
        try:
            body, crc_text = header_text.rsplit("|", 1)
            crc = int(crc_text, 16)
        except ValueError as exc:
            raise JournalCorruption("unparseable SNAP header") from exc
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
            raise JournalCorruption("SNAP header checksum mismatch")
        _tag, seq_text, snap_text = body.split("|", 2)
        journal.snapshot_seq = int(seq_text)
        journal.snapshot_state = json.loads(snap_text) if snap_text else None
        segment: Optional[Segment] = None
        top_seq = journal.snapshot_seq
        for raw in lines[1:]:
            if not raw:
                continue
            if raw.startswith(b"SEG|"):
                segment = Segment(int(raw.split(b"|", 1)[1]))
                journal.segments.append(segment)
                continue
            if segment is None:
                raise JournalCorruption("record outside any segment")
            record = JournalRecord.decode(raw + b"\n")
            segment.add(record, record.encode())
            top_seq = max(top_seq, record.seq)
        if not journal.segments:
            journal.segments = [Segment(0)]
        journal.next_seq = top_seq + 1
        return journal
