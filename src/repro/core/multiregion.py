"""Cross-region forwarding over the CEN (Fig. 1, Table 1).

"CEN is a dedicated leased line network between cloud regions and IDCs,
providing high-speed IDC/cross-region communication." A VM in one region
reaches a VM in another through: source region gateway (CROSS_REGION
route) → CEN link → destination region gateway → destination NC.

The CEN performs VNI translation at the region boundary: the tenant's
VPC in region A and its peered VPC in region B have independent VNIs,
related by the mapping the central controller installs when the
cross-region connection is sold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dataplane.gateway_logic import ForwardAction, ForwardResult
from ..net.packet import Packet
from ..tables.vxlan_routing import RouteAction, Scope
from .sailfish import Sailfish

#: One-way latency per CEN link (the leased line), in microseconds.
DEFAULT_LINK_LATENCY_US = 30_000.0  # ~30 ms: a long-haul leased line


@dataclass(frozen=True)
class CenLink:
    """A leased line between two regions."""

    a: str
    b: str
    latency_us: float = DEFAULT_LINK_LATENCY_US
    bandwidth_bps: float = 1e12

    def connects(self, src: str, dst: str) -> bool:
        return {self.a, self.b} == {src, dst}


@dataclass
class CrossRegionResult:
    """Outcome of a cross-region forward, with the full hop list."""

    result: ForwardResult
    hops: List[str] = field(default_factory=list)
    latency_us: float = 0.0


class Cen:
    """The inter-region network plus its VNI-translation table."""

    def __init__(self):
        self.regions: Dict[str, Sailfish] = {}
        self.links: List[CenLink] = []
        # (src_region, src_vni) -> (dst_region, dst_vni)
        self._vni_map: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.packets_carried = 0

    def attach(self, name: str, region: Sailfish) -> None:
        self.regions[name] = region

    def add_link(self, a: str, b: str,
                 latency_us: float = DEFAULT_LINK_LATENCY_US) -> None:
        if a not in self.regions or b not in self.regions:
            raise KeyError("both regions must be attached before linking")
        self.links.append(CenLink(a, b, latency_us))

    def link_latency(self, src: str, dst: str) -> Optional[float]:
        for link in self.links:
            if link.connects(src, dst):
                return link.latency_us
        return None

    # -- provisioning -------------------------------------------------------

    def connect_vpcs(self, src: Tuple[str, int], dst: Tuple[str, int]) -> None:
        """Provision a cross-region VPC connection (both directions).

        Installs CROSS_REGION routes in each region's clusters covering
        the remote VPC's subnets, and the CEN's VNI translation entries.
        """
        for (from_region, from_vni), (to_region, to_vni) in (
            (src, dst), (dst, src),
        ):
            if self.link_latency(from_region, to_region) is None:
                raise KeyError(f"no CEN link between {from_region} and {to_region}")
            self._vni_map[(from_region, from_vni)] = (to_region, to_vni)
            region = self.regions[from_region]
            remote = self.regions[to_region]
            remote_vpc = remote.topology.vpcs[to_vni]
            cluster_id = region.balancer.cluster_for_vni(from_vni)
            if cluster_id is None:
                raise KeyError(f"VNI {from_vni} not hosted in region {from_region}")
            cluster = region.controller.clusters[cluster_id]
            for subnet in remote_vpc.subnets:
                action = RouteAction(Scope.CROSS_REGION, target=f"region:{to_region}")
                from .controller import RouteEntry

                region.controller.install_route(
                    cluster_id, RouteEntry(from_vni, subnet, action)
                )
                # The x86 fleet mirrors the full table.
                for x86 in region.x86_fleet:
                    x86.tables.routing.insert(from_vni, subnet, action, replace=True)

    # -- data path --------------------------------------------------------------

    def forward(self, from_region: str, packet: Packet) -> CrossRegionResult:
        """End-to-end forward, following at most one CEN crossing."""
        region = self.regions[from_region]
        out = CrossRegionResult(result=None, hops=[f"region:{from_region}"])
        result = region.forward(packet)
        out.result = result
        if result.action is not ForwardAction.UPLINK or not (
            result.detail or ""
        ).startswith("region:"):
            return out
        target_name = result.detail.split(":", 1)[1]
        mapping = self._vni_map.get((from_region, packet.vni))
        if mapping is None or mapping[0] != target_name:
            out.result = ForwardResult(ForwardAction.DROP, packet,
                                       detail="cen-no-mapping")
            out.hops.append("cen:unmapped")
            return out
        to_region, to_vni = mapping
        latency = self.link_latency(from_region, to_region)
        out.latency_us += latency if latency is not None else 0.0
        out.hops.append(f"cen:{from_region}->{to_region}")
        self.packets_carried += 1
        translated = result.packet.with_vni(to_vni)
        out.hops.append(f"region:{to_region}")
        out.result = self.regions[to_region].forward(translated)
        return out
