"""Placement planning: mapping large tables across pipelines (§4.4, Fig. 15).

The Tofino compiler splits tables across stages *within* a pipeline but
never across pipelines. Sailfish's planner does the cross-pipeline part:
tables are assigned a preferred pipe on the folded path; when the
preferred pipeline is out of memory the remainder spills to a later pipe
with free space — Table D in Fig. 15 sits partly in Ingress 1/3 and
partly in Egress 0/2.

The module also defines the **representative service-table set** used to
reproduce Table 4's overall occupancy (sizes documented in DESIGN.md):
besides the two major tables, a region's gateway carries an underlay
FIB, per-tenant ACLs, meters/counters and service-redirect state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..tables.geometry import MemoryFootprint
from ..tofino.compiler import (
    Compiler,
    PlacementError,
    PlacementReport,
    Segment,
    TableSpec,
    _short_resource,
)
from ..tofino.memory import (
    SRAM_WORDS_PER_BLOCK,
    SRAM_WORDS_PER_PIPELINE,
    TCAM_SLICES_PER_BLOCK,
    TCAM_SLICES_PER_PIPELINE,
    blocks_for_footprint,
)
from ..tofino.pipeline import Gress, PipelineFabric, PipeRef, folded_path
from .occupancy import ALL_STEPS, OccupancyModel


@dataclass(frozen=True)
class LogicalTable:
    """A table the planner must place, with its preferred pipe.

    *metadata_bits* is the width of the lookup result this table produces
    for its dependents; when a dependent sits in a later pipe, those bits
    must be **bridged** — appended to the packet across each gress
    boundary in between (§4.4).
    """

    name: str
    footprint: MemoryFootprint
    preferred_pipe: PipeRef
    depends_on: Tuple[str, ...] = ()
    spillable: bool = True
    metadata_bits: int = 0


@dataclass(frozen=True)
class BridgeCost:
    """Wire overhead of a placement's metadata bridging."""

    crossings: int  # total gress-boundary crossings of metadata
    bytes_per_packet: int  # bytes appended to each packet on the wire

    def throughput_loss(self, packet_bytes: int) -> float:
        """Fraction of line rate lost to the bridged bytes."""
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        return self.bytes_per_packet / (packet_bytes + self.bytes_per_packet)


def max_possible_bridges(folded: bool) -> int:
    """§4.4: folding raises the possible bridge points from 1 to 3."""
    return 3 if folded else 1


def bridge_cost(tables: Sequence[LogicalTable], entry_pipeline: int = 0) -> BridgeCost:
    """Bridging implied by the tables' preferred pipes on the folded path.

    Metadata produced by table A and consumed by a dependent B placed
    *n* pipes later crosses *n* gress boundaries, costing
    ``ceil(bits / 8)`` bytes at each crossing.
    """
    path = folded_path(entry_pipeline)
    order = {pipe: i for i, pipe in enumerate(path)}
    position = {t.name: order[t.preferred_pipe] for t in tables}
    producers = {t.name: t for t in tables}
    crossings = 0
    bytes_per_packet = 0
    for table in tables:
        for dep in table.depends_on:
            producer = producers[dep]
            if producer.metadata_bits <= 0:
                continue
            span = position[table.name] - position[dep]
            if span > 0:
                crossings += span
                bytes_per_packet += span * ((producer.metadata_bits + 7) // 8)
    return BridgeCost(crossings=crossings, bytes_per_packet=bytes_per_packet)


class PlacementPlanner:
    """Places logical tables with cross-pipeline spilling.

    >>> fabric = PipelineFabric(folded=True)
    >>> planner = PlacementPlanner(fabric)
    >>> # see tests/core/test_planner.py for spill scenarios
    """

    def __init__(self, fabric: PipelineFabric):
        if not fabric.folded:
            raise ValueError("the planner targets the folded layout")
        self.fabric = fabric
        self.compiler = Compiler(fabric)

    def _free_blocks(self, pipeline: int) -> Tuple[int, int]:
        memory = self.fabric.memory[pipeline]
        sram = sum(stage.sram_blocks_free for stage in memory.stages)
        tcam = sum(stage.tcam_blocks_free for stage in memory.stages)
        return sram, tcam

    def plan(self, tables: Sequence[LogicalTable], entry_pipeline: int = 0) -> PlacementReport:
        """Compute segments (with spills) and place them; all-or-nothing."""
        path = folded_path(entry_pipeline)
        segments: List[Segment] = []
        # Track planned blocks so later tables see earlier reservations.
        planned: Dict[int, Tuple[int, int]] = {}

        def free_after_planned(pipeline: int) -> Tuple[int, int]:
            sram, tcam = self._free_blocks(pipeline)
            used_s, used_t = planned.get(pipeline, (0, 0))
            return sram - used_s, tcam - used_t

        for table in tables:
            if table.preferred_pipe not in path:
                raise PlacementError(
                    f"{table.name}: preferred pipe {table.preferred_pipe} not on path",
                    stage="plan-input",
                    table=table.name,
                )
            need_sram, need_tcam = blocks_for_footprint(table.footprint)
            start = path.index(table.preferred_pipe)
            for pipe in path[start:]:
                if need_sram == 0 and need_tcam == 0:
                    break
                pipeline = pipe[0]
                avail_sram, avail_tcam = free_after_planned(pipeline)
                take_sram = min(need_sram, avail_sram)
                take_tcam = min(need_tcam, avail_tcam)
                if take_sram == 0 and take_tcam == 0:
                    continue
                segments.append(
                    Segment(
                        table=table.name,
                        pipe=pipe,
                        footprint=MemoryFootprint(
                            sram_words=take_sram * SRAM_WORDS_PER_BLOCK,
                            tcam_slices=take_tcam * TCAM_SLICES_PER_BLOCK,
                        ),
                    )
                )
                used_s, used_t = planned.get(pipeline, (0, 0))
                planned[pipeline] = (used_s + take_sram, used_t + take_tcam)
                need_sram -= take_sram
                need_tcam -= take_tcam
                if not table.spillable:
                    break
            if need_sram > 0 or need_tcam > 0:
                raise PlacementError(
                    f"{table.name}: {need_sram} SRAM / {need_tcam} TCAM blocks do not fit "
                    f"anywhere on the path",
                    stage="plan-capacity",
                    table=table.name,
                    resource=_short_resource(need_sram, need_tcam),
                )
        specs = [
            TableSpec(name=t.name, footprint=t.footprint, depends_on=t.depends_on)
            for t in tables
        ]
        return self.compiler.place(specs, segments)


# -- Table 4: the representative full table set -------------------------------


def _fraction_footprint(sram_frac: float = 0.0, tcam_frac: float = 0.0) -> MemoryFootprint:
    return MemoryFootprint(
        sram_words=int(round(sram_frac * SRAM_WORDS_PER_PIPELINE)),
        tcam_slices=int(round(tcam_frac * TCAM_SLICES_PER_PIPELINE)),
    )


def sailfish_table_layout(model: Optional[OccupancyModel] = None) -> List[LogicalTable]:
    """The full XGW-H table set for one role pipe-pair (entry pipeline 0).

    Major tables are sized by the occupancy model (per physical pipeline:
    the pool occupancy times two, since each parity half owns one
    pipe-pair). Service tables use the representative region set from
    DESIGN.md: an underlay FIB (~14 K prefixes), per-tenant ACLs (~10.8 K
    rules), and region-scale meters/counters/redirect state.
    """
    model = model or OccupancyModel.paper_scale()
    steps = set(ALL_STEPS)
    routing = model.routing_occupancy(steps)
    vm_nc = model.vm_nc_occupancy(steps)
    return [
        LogicalTable(
            name="vxlan-routing-alpm",
            footprint=_fraction_footprint(routing.sram * 2, routing.tcam * 2),
            preferred_pipe=(0, Gress.INGRESS),
            metadata_bits=27,  # resolved VNI (24) + scope (3)
        ),
        LogicalTable(
            name="vm-nc-pooled",
            footprint=_fraction_footprint(vm_nc.sram * 2, 0.0),
            preferred_pipe=(1, Gress.EGRESS),
            depends_on=("vxlan-routing-alpm",),
            metadata_bits=32,  # NC IP for the final rewrite
        ),
        LogicalTable(
            name="tenant-acl",
            footprint=_fraction_footprint(0.011, 0.22),  # ~10.8K 128-bit rules
            preferred_pipe=(1, Gress.INGRESS),
            depends_on=("vm-nc-pooled",),
        ),
        LogicalTable(
            name="service-redirect",
            footprint=_fraction_footprint(0.318, 0.0),  # SNAT tags, LB state
            preferred_pipe=(1, Gress.INGRESS),
            depends_on=("vm-nc-pooled",),
        ),
        LogicalTable(
            name="underlay-fib",
            footprint=_fraction_footprint(0.007, 0.19),  # ~14K NC prefixes
            preferred_pipe=(0, Gress.EGRESS),
            depends_on=("tenant-acl",),
        ),
        LogicalTable(
            name="qos-meters-counters",
            footprint=_fraction_footprint(0.33, 0.0),  # region-scale stats
            preferred_pipe=(0, Gress.EGRESS),
            depends_on=("tenant-acl",),
        ),
    ]


def table4_occupancy(model: Optional[OccupancyModel] = None) -> Dict[str, Tuple[float, float]]:
    """Analytic Table 4: (SRAM, TCAM) occupancy per pipe pair."""
    tables = sailfish_table_layout(model)
    by_pipeline: Dict[int, MemoryFootprint] = {0: MemoryFootprint.zero(), 1: MemoryFootprint.zero()}
    for table in tables:
        by_pipeline[table.preferred_pipe[0]] = (
            by_pipeline[table.preferred_pipe[0]] + table.footprint
        )
    def frac(fp: MemoryFootprint) -> Tuple[float, float]:
        return (
            fp.sram_words / SRAM_WORDS_PER_PIPELINE,
            fp.tcam_slices / TCAM_SLICES_PER_PIPELINE,
        )
    p02 = frac(by_pipeline[0])
    p13 = frac(by_pipeline[1])
    total = frac(by_pipeline[0] + by_pipeline[1])
    return {
        "pipeline_0_2": p02,
        "pipeline_1_3": p13,
        "sum": (total[0] / 2, total[1] / 2),  # averaged over the two pools
    }
