"""Analytic memory-occupancy model, calibrated to the paper (DESIGN.md §2).

Reproduces Table 2 (naive placement), Fig. 17 (step-by-step compression)
and Table 3 (final occupancy) from first principles: entry counts ×
per-entry memory cost ÷ pipeline capacity. The per-entry costs are the
physical key geometry (44-bit TCAM slices, 128-bit SRAM words); two
coefficients are calibrated against the paper's own numbers and
cross-checked by the executable structures:

* ``compress_overhead`` = 1.21 — conflict table + hash fill slack after
  key compression (Fig. 17: 26 % -> 18 %), cf.
  :class:`repro.tables.pooled.PooledExactTable`;
* ``alpm_bucket_utilization`` = 0.643 — mean fill of carved ALPM buckets
  (Fig. 17: TCAM 11 %, SRAM +18 %), cf. the measured
  :meth:`repro.tables.alpm.AlpmTable.stats`.

All percentages are demand over the capacity of the pipeline *pool*
serving the traffic: pipeline folding doubles the pool, entry splitting
halves the demand — each step therefore halves the reported occupancy,
exactly as the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Optional, Set, Tuple

from ..tofino.memory import SRAM_WORDS_PER_PIPELINE, TCAM_SLICES_PER_PIPELINE


class Step(Enum):
    """The single-node compression steps of §4.4 / Fig. 17."""

    FOLDING = "a"  # pipeline folding
    SPLIT = "b"  # table splitting between pipelines
    POOLING = "c"  # IPv4/IPv6 table pooling
    COMPRESSION = "d"  # compressing longer table entries
    ALPM = "e"  # TCAM conservation for large FIBs


ALL_STEPS = (Step.FOLDING, Step.SPLIT, Step.POOLING, Step.COMPRESSION, Step.ALPM)


@dataclass(frozen=True)
class WorkloadScale:
    """Entry counts for one cluster's share of a region."""

    routes: int
    vms: int
    ipv6_fraction: float = 0.25

    def __post_init__(self):
        if not 0.0 <= self.ipv6_fraction <= 1.0:
            raise ValueError("ipv6_fraction must be in [0, 1]")
        if self.routes < 0 or self.vms < 0:
            raise ValueError("counts must be non-negative")

    @classmethod
    def paper_scale(cls, ipv6_fraction: float = 0.25) -> "WorkloadScale":
        """The scale implied by Table 2 (O(1M) VPCs/VMs per region):

        311 % TCAM at 2 slices/route -> 229,306 routes;
        58 % SRAM at 1 word/VM -> 570,163 VMs.
        """
        return cls(routes=229_306, vms=570_163, ipv6_fraction=ipv6_fraction)

    def routes_by_family(self) -> Tuple[int, int]:
        v6 = round(self.routes * self.ipv6_fraction)
        return self.routes - v6, v6

    def vms_by_family(self) -> Tuple[int, int]:
        v6 = round(self.vms * self.ipv6_fraction)
        return self.vms - v6, v6


@dataclass(frozen=True)
class CostModel:
    """Per-entry memory costs (see module docstring for calibration)."""

    v4_lpm_slices: int = 2  # 56-bit composite key / 44-bit slices
    v6_lpm_slices: int = 4  # 152-bit composite key
    pooled_lpm_slices: int = 4  # every key expanded to 152 bits
    v4_exact_words: int = 1  # 88-bit entry in a 1-word way
    v6_exact_words: int = 4  # Table 2: 233 % ≈ 4 × 58 %
    pooled_exact_words: int = 1  # every key compressed to 32 bits
    compress_overhead: float = 1.21  # conflict table + fill slack
    alpm_bucket_capacity: int = 22  # routes per SRAM bucket
    alpm_bucket_utilization: float = 0.643  # measured mean bucket fill
    alpm_bucket_entry_words: int = 2  # 152-bit key + len + action
    alpm_pivot_slices: int = 4  # pivots carry the pooled key width

    @property
    def alpm_routes_per_pivot(self) -> float:
        return self.alpm_bucket_capacity * self.alpm_bucket_utilization

    @property
    def alpm_bucket_words(self) -> int:
        return self.alpm_bucket_capacity * self.alpm_bucket_entry_words


@dataclass(frozen=True)
class Occupancy:
    """SRAM/TCAM demand as a fraction of one pipeline pool."""

    sram: float = 0.0
    tcam: float = 0.0

    def __add__(self, other: "Occupancy") -> "Occupancy":
        return Occupancy(self.sram + other.sram, self.tcam + other.tcam)

    @property
    def sram_percent(self) -> float:
        return self.sram * 100.0

    @property
    def tcam_percent(self) -> float:
        return self.tcam * 100.0

    def fits(self) -> bool:
        return self.sram <= 1.0 and self.tcam <= 1.0


class OccupancyModel:
    """Computes table occupancy under any subset of compression steps.

    >>> model = OccupancyModel.paper_scale()
    >>> round(model.total(frozenset()).tcam_percent)  # Table 2 "sum" row
    389
    >>> round(model.total(frozenset(ALL_STEPS)).tcam_percent)  # Table 3
    11
    """

    def __init__(
        self,
        scale: WorkloadScale,
        costs: CostModel = CostModel(),
        sram_capacity: int = SRAM_WORDS_PER_PIPELINE,
        tcam_capacity: int = TCAM_SLICES_PER_PIPELINE,
    ):
        self.scale = scale
        self.costs = costs
        self.sram_capacity = sram_capacity
        self.tcam_capacity = tcam_capacity

    @classmethod
    def paper_scale(cls, ipv6_fraction: float = 0.25) -> "OccupancyModel":
        return cls(WorkloadScale.paper_scale(ipv6_fraction))

    # -- demand ----------------------------------------------------------

    def _pool_factor(self, steps: Set[Step]) -> float:
        """Capacity multiplier: folding x2, entry splitting x2."""
        factor = 1.0
        if Step.FOLDING in steps:
            factor *= 2.0
        if Step.SPLIT in steps:
            factor *= 2.0
        return factor

    def routing_occupancy(self, steps: Set[Step]) -> Occupancy:
        """The VXLAN routing table (LPM)."""
        c = self.costs
        v4, v6 = self.scale.routes_by_family()
        pooled = Step.POOLING in steps
        if Step.ALPM in steps:
            if pooled:
                pivots = self.scale.routes / c.alpm_routes_per_pivot
                tcam_slices = pivots * c.alpm_pivot_slices
                sram_words = pivots * c.alpm_bucket_words
            else:
                # Dedicated per-family ALPMs: pivots at native key widths,
                # bucket entries sized per family.
                pivots4 = v4 / c.alpm_routes_per_pivot
                pivots6 = v6 / c.alpm_routes_per_pivot
                tcam_slices = pivots4 * c.v4_lpm_slices + pivots6 * c.v6_lpm_slices
                sram_words = (
                    pivots4 * c.alpm_bucket_capacity * 1
                    + pivots6 * c.alpm_bucket_capacity * c.alpm_bucket_entry_words
                )
        elif pooled:
            tcam_slices = self.scale.routes * c.pooled_lpm_slices
            sram_words = 0.0
        else:
            tcam_slices = v4 * c.v4_lpm_slices + v6 * c.v6_lpm_slices
            sram_words = 0.0
        factor = self._pool_factor(steps)
        return Occupancy(
            sram=sram_words / (self.sram_capacity * factor),
            tcam=tcam_slices / (self.tcam_capacity * factor),
        )

    def vm_nc_occupancy(self, steps: Set[Step]) -> Occupancy:
        """The VM-NC mapping table (exact match)."""
        c = self.costs
        v4, v6 = self.scale.vms_by_family()
        if Step.COMPRESSION in steps:
            sram_words = self.scale.vms * c.pooled_exact_words * c.compress_overhead
        else:
            sram_words = v4 * c.v4_exact_words + v6 * c.v6_exact_words
        factor = self._pool_factor(steps)
        return Occupancy(sram=sram_words / (self.sram_capacity * factor), tcam=0.0)

    def total(self, steps: Iterable[Step]) -> Occupancy:
        """Both major tables under the given steps."""
        step_set = set(steps)
        return self.routing_occupancy(step_set) + self.vm_nc_occupancy(step_set)

    # -- the paper's artefacts --------------------------------------------

    def table2(self) -> Dict[str, Dict[str, Occupancy]]:
        """Table 2: naive per-family occupancy plus the 75/25 sum."""
        v4_only = OccupancyModel(
            WorkloadScale(self.scale.routes, self.scale.vms, 0.0), self.costs,
            self.sram_capacity, self.tcam_capacity,
        )
        v6_only = OccupancyModel(
            WorkloadScale(self.scale.routes, self.scale.vms, 1.0), self.costs,
            self.sram_capacity, self.tcam_capacity,
        )
        empty: Set[Step] = set()
        return {
            "vxlan_routing": {
                "ipv4": v4_only.routing_occupancy(empty),
                "ipv6": v6_only.routing_occupancy(empty),
            },
            "vm_nc": {
                "ipv4": v4_only.vm_nc_occupancy(empty),
                "ipv6": v6_only.vm_nc_occupancy(empty),
            },
            "sum": {"mixed": self.total(empty)},
        }

    def figure17(self) -> "list[tuple[str, Occupancy]]":
        """Fig. 17: occupancy after each cumulative optimization step."""
        cumulative: "list[tuple[str, Set[Step]]]" = [
            ("Initial", set()),
            ("a", {Step.FOLDING}),
            ("a+b", {Step.FOLDING, Step.SPLIT}),
            ("a+b+c+d", {Step.FOLDING, Step.SPLIT, Step.POOLING, Step.COMPRESSION}),
            ("a+b+c+d+e", set(ALL_STEPS)),
        ]
        return [(label, self.total(steps)) for label, steps in cumulative]

    def table3(self) -> Dict[str, Occupancy]:
        """Table 3: per-table occupancy with every optimization applied."""
        steps = set(ALL_STEPS)
        return {
            "vxlan_routing": self.routing_occupancy(steps),
            "vm_nc": self.vm_nc_occupancy(steps),
            "sum": self.total(steps),
        }

    def reduction_vs_naive(self, ipv6_fraction: Optional[float] = None) -> Tuple[float, float]:
        """(SRAM, TCAM) relative reduction of optimized vs naive — the
        headline "reduces SRAM by 38% / TCAM by 96% (IPv4)" claims.
        """
        scale = self.scale
        if ipv6_fraction is not None:
            scale = WorkloadScale(scale.routes, scale.vms, ipv6_fraction)
        model = OccupancyModel(scale, self.costs, self.sram_capacity, self.tcam_capacity)
        naive = model.total(set())
        optimized = model.total(set(ALL_STEPS))
        sram_red = 1.0 - optimized.sram / naive.sram if naive.sram else 0.0
        tcam_red = 1.0 - optimized.tcam / naive.tcam if naive.tcam else 0.0
        return sram_red, tcam_red

    def provisioned_occupancy(
        self,
        steps: Iterable[Step],
        mix_range: Tuple[float, float] = (0.0, 1.0),
    ) -> Occupancy:
        """Memory that must be *provisioned* to serve any IPv6 fraction in
        *mix_range* — pooling's real contribution (§4.4: "the traffic
        ratio of IPv4/IPv6 is changing constantly; separate tables may
        cause memory waste or insufficient memory").

        Pooled tables serve any mix from one budget. Dedicated tables
        must each be provisioned for their own peak: IPv4 at the low end
        of the range, IPv6 at the high end — and the peaks add up.
        """
        step_set = set(steps)
        lo, hi = mix_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("mix_range must satisfy 0 <= lo <= hi <= 1")
        if Step.POOLING in step_set:
            # Pooled cost is mix-independent; any point of the range works.
            return self.total(step_set)
        v4_peak = WorkloadScale(
            routes=round(self.scale.routes * (1 - lo)),
            vms=round(self.scale.vms * (1 - lo)),
            ipv6_fraction=0.0,
        )
        v6_peak = WorkloadScale(
            routes=round(self.scale.routes * hi),
            vms=round(self.scale.vms * hi),
            ipv6_fraction=1.0,
        )
        make = lambda scale: OccupancyModel(
            scale, self.costs, self.sram_capacity, self.tcam_capacity
        ).total(step_set)
        return make(v4_peak) + make(v6_peak)

    def capacity_under_mix(
        self,
        steps: Iterable[Step],
        provisioned_mix: float,
        actual_mix: float,
    ) -> float:
        """Sustainable workload multiplier when the IPv6 mix drifts.

        Tables were provisioned (sized to exactly fit the chip) for an
        IPv6 fraction of *provisioned_mix*; the live mix is *actual_mix*.
        Returns the largest multiple of the base workload that still
        fits. Pooled tables are mix-blind; dedicated per-family tables
        strand capacity as the mix drifts ("memory waste or insufficient
        memory", §4.4).
        """
        step_set = set(steps)

        def family_demand(fraction: float, family: int) -> Occupancy:
            """Demand of one family's dedicated table at a given mix."""
            only = 0.0 if family == 4 else 1.0
            share = (1 - fraction) if family == 4 else fraction
            scale = WorkloadScale(
                routes=max(0, round(self.scale.routes * share)),
                vms=max(0, round(self.scale.vms * share)),
                ipv6_fraction=only,
            )
            model = OccupancyModel(scale, self.costs, self.sram_capacity, self.tcam_capacity)
            return model.total(step_set)

        if Step.POOLING in step_set:
            # Pooled cost is mix-invariant: the provisioning always fits.
            return 1.0

        limit = math.inf
        for family in (4, 6):
            budget = family_demand(provisioned_mix, family)
            demand = family_demand(actual_mix, family)
            for attr in ("sram", "tcam"):
                b = getattr(budget, attr)
                d = getattr(demand, attr)
                if d > 0:
                    limit = min(limit, b / d)
        return min(1.0, limit) if limit is not math.inf else 1.0

    def max_entries_that_fit(self, steps: Iterable[Step], vm_per_route: float) -> WorkloadScale:
        """Largest workload (preserving vms = vm_per_route x routes and the
        v6 mix) that fits under the given steps — the controller's cluster
        sizing primitive.
        """
        step_set = set(steps)
        lo, hi = 0, 1 << 28
        while lo < hi:
            mid = (lo + hi + 1) // 2
            scale = WorkloadScale(mid, int(mid * vm_per_route), self.scale.ipv6_fraction)
            occ = OccupancyModel(
                scale, self.costs, self.sram_capacity, self.tcam_capacity
            ).total(step_set)
            if occ.fits():
                lo = mid
            else:
                hi = mid - 1
        return WorkloadScale(lo, int(lo * vm_per_route), self.scale.ipv6_fraction)
