"""The "N+1" hierarchical clusters from the paper's future work (§8).

"We plan to build the N+1 hierarchical XGW-H clusters with N cache
clusters at the front serving only active entries and 1 backup cluster
storing entries of all tenants to handle the cache miss traffic. ...
if only 25% of the tenants' entries are active, we can build 4 cache
clusters ... and 1 backup cluster ... to provide 4x performance at the
cost of only 2x the number of XGW-H nodes."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class HierarchyPlan:
    """Sizing of an N+1 deployment.

    A "full" cluster needs ``nodes_for_full_tables`` gateways to hold
    every tenant's entries; a cache cluster holds only the active
    fraction, so it needs proportionally fewer nodes. Memory, not
    throughput, is the binding constraint — which is exactly why the
    trade works.
    """

    cache_clusters: int
    active_fraction: float
    nodes_for_full_tables: int = 4

    def __post_init__(self):
        if not 0 < self.active_fraction <= 1:
            raise ValueError("active_fraction must be in (0, 1]")
        if self.cache_clusters <= 0 or self.nodes_for_full_tables <= 0:
            raise ValueError("cluster/node counts must be positive")

    @property
    def nodes_per_cache_cluster(self) -> int:
        return max(1, round(self.nodes_for_full_tables * self.active_fraction))

    @property
    def total_nodes(self) -> int:
        """N cache clusters + the one full backup cluster."""
        return self.cache_clusters * self.nodes_per_cache_cluster + self.nodes_for_full_tables

    @property
    def performance_multiplier(self) -> float:
        """Full-table serving capacity relative to one flat cluster: each
        cache cluster independently serves (active) traffic at cluster
        rate."""
        return float(self.cache_clusters)

    @property
    def node_cost_multiplier(self) -> float:
        """Nodes relative to one flat full cluster. The paper's example:
        4 x 0.25 + 1 = 2x nodes for 4x performance."""
        return self.total_nodes / self.nodes_for_full_tables

    @property
    def flat_nodes_for_same_performance(self) -> int:
        """Nodes a flat deployment needs for the same throughput: each
        flat cluster holds all entries and contributes 1x, so matching N
        cache clusters takes N full clusters of nodes."""
        return self.cache_clusters * self.nodes_for_full_tables

    @classmethod
    def paper_example(cls) -> "HierarchyPlan":
        """4 cache clusters at 25% active entries -> 4x perf, 2x nodes."""
        return cls(cache_clusters=4, active_fraction=0.25, nodes_for_full_tables=4)


class ActiveEntryCache:
    """The cache-cluster entry selector: which tenants' entries are active.

    Tracks per-entry hit counts over a sliding epoch; the top
    ``active_fraction`` of entries form the cache working set, the rest
    fall through to the backup cluster (the "cache miss traffic").
    """

    def __init__(self, active_fraction: float = 0.25):
        if not 0 < active_fraction <= 1:
            raise ValueError("active_fraction must be in (0, 1]")
        self.active_fraction = active_fraction
        self._hits: Dict[object, int] = {}
        self._active: Set[object] = set()
        self.cache_hits = 0
        self.cache_misses = 0

    def record_hit(self, entry_key) -> None:
        self._hits[entry_key] = self._hits.get(entry_key, 0) + 1

    def refresh(self) -> None:
        """Recompute the active set from the epoch's hit counts
        ("identified through data mining")."""
        if not self._hits:
            self._active = set()
            return
        ordered = sorted(self._hits, key=lambda k: -self._hits[k])
        keep = max(1, round(len(ordered) * self.active_fraction))
        self._active = set(ordered[:keep])
        self._hits.clear()

    def lookup(self, entry_key) -> bool:
        """True on cache hit (served by a cache cluster)."""
        if entry_key in self._active:
            self.cache_hits += 1
            return True
        self.cache_misses += 1
        return False

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def active_entries(self) -> Set[object]:
        return set(self._active)
