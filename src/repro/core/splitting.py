"""Horizontal table splitting among XGW-H clusters (§4.3).

Each cluster keeps *all* the tables but only some tenants' entries; the
VPC (VNI) is the smallest split unit. The controller packs tenants into
clusters under entry- and traffic-capacity constraints, adds clusters
when an insert would overflow, and can enumerate the blast radius of a
faulty entry (exactly one cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TenantProfile:
    """One VPC's demand as the controller tracks it."""

    vni: int
    routes: int
    vms: int
    traffic_bps: float = 0.0


@dataclass(frozen=True)
class ClusterCapacity:
    """What one XGW-H cluster can hold/carry after compression."""

    routes: int
    vms: int
    traffic_bps: float

    def can_fit(self, used: "ClusterUsage", tenant: TenantProfile) -> bool:
        return (
            used.routes + tenant.routes <= self.routes
            and used.vms + tenant.vms <= self.vms
            and used.traffic_bps + tenant.traffic_bps <= self.traffic_bps
        )


@dataclass
class ClusterUsage:
    routes: int = 0
    vms: int = 0
    traffic_bps: float = 0.0
    tenants: List[int] = field(default_factory=list)

    def add(self, tenant: TenantProfile) -> None:
        self.routes += tenant.routes
        self.vms += tenant.vms
        self.traffic_bps += tenant.traffic_bps
        self.tenants.append(tenant.vni)

    def remove(self, tenant: TenantProfile) -> None:
        self.routes -= tenant.routes
        self.vms -= tenant.vms
        self.traffic_bps -= tenant.traffic_bps
        self.tenants.remove(tenant.vni)


class SplitError(Exception):
    """Raised when a tenant cannot be placed (bigger than a whole cluster)."""


@dataclass
class SplitPlan:
    """The resulting VNI -> cluster assignment."""

    assignments: Dict[int, str]
    usage: Dict[str, ClusterUsage]

    def cluster_of(self, vni: int) -> str:
        return self.assignments[vni]

    def clusters(self) -> List[str]:
        return sorted(self.usage)

    def blast_radius(self, vni: int) -> List[int]:
        """Tenants affected if *vni*'s entries are faulty: exactly the
        co-residents of its cluster (fault isolation, §4.3)."""
        cluster = self.assignments[vni]
        return sorted(self.usage[cluster].tenants)


class TableSplitter:
    """Greedy first-fit tenant packing with on-demand cluster creation.

    >>> splitter = TableSplitter(ClusterCapacity(routes=100, vms=100, traffic_bps=1e12))
    >>> plan = splitter.assign([TenantProfile(1, 10, 10), TenantProfile(2, 95, 10)])
    >>> len(plan.clusters())
    2
    """

    def __init__(self, capacity: ClusterCapacity, cluster_prefix: str = "cluster"):
        self.capacity = capacity
        self.cluster_prefix = cluster_prefix

    def _new_cluster_id(self, count: int) -> str:
        return f"{self.cluster_prefix}-{chr(ord('A') + count) if count < 26 else count}"

    def assign(self, tenants: Sequence[TenantProfile]) -> SplitPlan:
        """Pack *tenants* (heaviest-traffic first) into clusters."""
        plan = SplitPlan(assignments={}, usage={})
        order = sorted(tenants, key=lambda t: (-t.traffic_bps, -t.routes, t.vni))
        for tenant in order:
            self.place(plan, tenant)
        return plan

    def place(self, plan: SplitPlan, tenant: TenantProfile) -> str:
        """Place one (possibly new) tenant into the plan, growing it if
        needed — "insert new table entries into one cluster or allocate a
        new cluster if the original cluster is out of memory"."""
        if tenant.vni in plan.assignments:
            raise SplitError(f"VNI {tenant.vni} already placed")
        if (
            tenant.routes > self.capacity.routes
            or tenant.vms > self.capacity.vms
            or tenant.traffic_bps > self.capacity.traffic_bps
        ):
            raise SplitError(
                f"tenant VNI {tenant.vni} exceeds a whole cluster's capacity"
            )
        for cluster_id in sorted(plan.usage):
            if self.capacity.can_fit(plan.usage[cluster_id], tenant):
                plan.usage[cluster_id].add(tenant)
                plan.assignments[tenant.vni] = cluster_id
                return cluster_id
        cluster_id = self._new_cluster_id(len(plan.usage))
        plan.usage[cluster_id] = ClusterUsage()
        plan.usage[cluster_id].add(tenant)
        plan.assignments[tenant.vni] = cluster_id
        return cluster_id

    def rebalance_tenant(self, plan: SplitPlan, tenant: TenantProfile, to_cluster: str) -> None:
        """Move a tenant between clusters ("tractable traffic load
        balancing ... simply by adding or deleting the corresponding
        entries")."""
        current = plan.assignments.get(tenant.vni)
        if current is None:
            raise SplitError(f"VNI {tenant.vni} is not placed")
        if to_cluster not in plan.usage:
            raise SplitError(f"unknown cluster {to_cluster}")
        if current == to_cluster:
            return
        if not self.capacity.can_fit(plan.usage[to_cluster], tenant):
            raise SplitError(f"cluster {to_cluster} cannot fit VNI {tenant.vni}")
        plan.usage[current].remove(tenant)
        plan.usage[to_cluster].add(tenant)
        plan.assignments[tenant.vni] = to_cluster


def vertical_split_blast_radius(num_tenants: int) -> int:
    """The comparison point from §4.3: with *vertical* splitting (tables,
    not tenants, split across clusters), a faulty table's failure touches
    every tenant — the whole region."""
    return num_tenants
