"""Single-node table compression (§4.4): the step pipeline of Fig. 17.

Wraps the analytic :class:`~repro.core.occupancy.OccupancyModel` in an
ordered, composable plan, and provides the *executable* counterparts —
building a real ALPM over a routing table's composite key space and
measuring what the carve actually achieves, so the calibrated constants
can be cross-checked rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..tables.alpm import AlpmStats, AlpmTable
from ..tables.vxlan_routing import RouteAction, VxlanRoutingTable
from .occupancy import ALL_STEPS, Occupancy, OccupancyModel, Step

_DESCRIPTIONS = {
    Step.FOLDING: "Pipeline folding: loop Egress 1/3 back into Ingress 1/3; "
                  "half the throughput, double the memory pool",
    Step.SPLIT: "Table splitting between pipelines: parity-hash entries over "
                "the pipe pairs",
    Step.POOLING: "IPv4/IPv6 table pooling: one table, one budget, any family mix",
    Step.COMPRESSION: "Compressing longer table entries: 128-to-32-bit digests "
                      "with a conflict table",
    Step.ALPM: "TCAM conservation for large FIBs: algorithmic LPM pivots in "
               "TCAM, route buckets in SRAM",
}


@dataclass(frozen=True)
class CompressionStep:
    """One optimization step with its paper description."""

    step: Step

    @property
    def label(self) -> str:
        return self.step.value

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self.step]


@dataclass
class CompressionReport:
    """Occupancy trajectory over cumulative steps (Fig. 17's bars)."""

    rows: List[Tuple[str, Occupancy]]

    @property
    def initial(self) -> Occupancy:
        return self.rows[0][1]

    @property
    def final(self) -> Occupancy:
        return self.rows[-1][1]

    def fits_after(self, max_utilization: float = 1.0) -> Optional[str]:
        """Label of the first cumulative step where both memories fit
        under *max_utilization* (production keeps a safe water level —
        §6.1 — so 1.0 means "technically fits", ~0.5 means "deployable").
        """
        for label, occupancy in self.rows:
            if occupancy.sram <= max_utilization and occupancy.tcam <= max_utilization:
                return label
        return None

    def as_percent_table(self) -> List[Tuple[str, float, float]]:
        return [
            (label, occ.sram_percent, occ.tcam_percent) for label, occ in self.rows
        ]


class CompressionPlan:
    """An ordered list of compression steps applied cumulatively.

    >>> plan = CompressionPlan.full()
    >>> report = plan.apply(OccupancyModel.paper_scale())
    >>> report.final.fits()
    True
    """

    def __init__(self, steps: Sequence[Step]):
        seen: Set[Step] = set()
        for step in steps:
            if step in seen:
                raise ValueError(f"duplicate step {step}")
            seen.add(step)
        self.steps = [CompressionStep(s) for s in steps]

    @classmethod
    def full(cls) -> "CompressionPlan":
        """All five steps in the paper's order a-e."""
        return cls(list(ALL_STEPS))

    @classmethod
    def none(cls) -> "CompressionPlan":
        return cls([])

    def without(self, step: Step) -> "CompressionPlan":
        """Ablation helper: the plan minus one step."""
        return CompressionPlan([s.step for s in self.steps if s.step is not step])

    def apply(self, model: OccupancyModel) -> CompressionReport:
        """Cumulative occupancy after each step (first row = no steps)."""
        rows: List[Tuple[str, Occupancy]] = [("Initial", model.total(set()))]
        active: Set[Step] = set()
        label_parts: List[str] = []
        for comp_step in self.steps:
            active.add(comp_step.step)
            label_parts.append(comp_step.label)
            rows.append(("+".join(label_parts), model.total(active)))
        return CompressionReport(rows=rows)


# -- executable cross-checks -------------------------------------------------


def build_composite_alpm(
    routing: VxlanRoutingTable, bucket_capacity: int = 22
) -> AlpmTable[RouteAction]:
    """Build a real ALPM over the routing table's pooled composite keys.

    The key space is ``VNI(24) || AF(1) || address(128)`` — the pooled
    layout — so partitions form across tenants exactly as on the switch.
    """
    routes = routing.to_composite_routes()
    return AlpmTable.build(
        VxlanRoutingTable.composite_width(), routes, bucket_capacity=bucket_capacity
    )


@dataclass
class AlpmCalibration:
    """Measured-vs-calibrated ALPM parameters for one routing table."""

    stats: AlpmStats
    measured_utilization: float
    calibrated_utilization: float

    @property
    def utilization_error(self) -> float:
        return abs(self.measured_utilization - self.calibrated_utilization)


def calibrate_alpm(
    routing: VxlanRoutingTable,
    model: OccupancyModel,
    bucket_capacity: Optional[int] = None,
) -> AlpmCalibration:
    """Carve a real ALPM and compare its bucket utilisation with the
    model's calibrated constant."""
    capacity = bucket_capacity or model.costs.alpm_bucket_capacity
    table = build_composite_alpm(routing, bucket_capacity=capacity)
    stats = table.stats()
    return AlpmCalibration(
        stats=stats,
        measured_utilization=stats.mean_bucket_occupancy,
        calibrated_utilization=model.costs.alpm_bucket_utilization,
    )


def split_routing_by_parity(
    routing: VxlanRoutingTable,
) -> Dict[int, VxlanRoutingTable]:
    """Step b, executable: split a routing table into parity halves."""
    halves = {0: VxlanRoutingTable(name="routing-even"), 1: VxlanRoutingTable(name="routing-odd")}
    for vni, prefix, action in routing.items():
        halves[vni % 2].insert(vni, prefix, action)
    return halves
