"""Sailfish: the full region-scale gateway system (§4, Fig. 10).

Assembles everything: XGW-H clusters (folded chips running the split
gateway program) fed by a VNI-steered balancer, an XGW-x86 fleet holding
the complete tables plus stateful services, the central controller that
places tenants and keeps tables consistent, and disaster recovery.

Also carries the region's *capacity model* used by the longitudinal
benchmarks: hardware loss is dominated by a tiny residual (micro-burst /
link-level) floor — calibrated to Fig. 19's 1e-11..1e-10 — because the
Tofino's headroom makes queueing loss essentially impossible at the
paper's operating point, while the x86 fleet's loss emerges from the
RSS/core model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.cluster import GatewayCluster
from ..cluster.ecmp import VniSteeredBalancer
from ..cluster.failover import DisasterRecovery
from ..cluster.health import HealthMonitor, Signal
from ..dataplane.gateway_logic import (
    DropReason,
    ForwardAction,
    ForwardResult,
    GatewayTables,
)
from ..net.flow import FlowKey, toeplitz_hash
from ..net.packet import Packet
from ..sim.rand import derive
from ..tables.snat import SnatTable
from ..telemetry.stats import CounterSet, loss_rate
from ..telemetry.timeseries import SeriesBundle
from ..workloads.topology import RegionTopology, generate_topology
from ..workloads.traffic import RegionTrafficGenerator, TrafficSample, inner_flow
from ..x86.gateway import XgwX86
from .controller import Controller, RouteEntry, VmEntry
from .splitting import ClusterCapacity, TableSplitter, TenantProfile
from .xgw_h import XgwH

#: Residual per-packet drop probability of a healthy XGW-H (Fig. 19).
HW_RESIDUAL_DROP_RATE = 3e-11


@dataclass(frozen=True)
class RegionSpec:
    """Parameters of a synthetic region."""

    num_vpcs: int = 20
    total_vms: int = 400
    nodes_per_cluster: int = 2
    x86_nodes: int = 2
    ipv6_fraction: float = 0.25
    peering_fraction: float = 0.3
    cluster_route_capacity: int = 100_000
    cluster_vm_capacity: int = 250_000
    cluster_traffic_bps: float = 2 * 3.2e12  # two folded XGW-H per cluster
    snat_public_ips: int = 4
    #: Offset of the tenant address plan; give each region of a
    #: multi-region deployment a distinct base for disjoint CIDRs.
    subnet_base_index: int = 0

    @classmethod
    def small(cls) -> "RegionSpec":
        """A laptop-scale region for tests and the quickstart."""
        return cls(num_vpcs=8, total_vms=64, nodes_per_cluster=2, x86_nodes=1)

    @classmethod
    def medium(cls) -> "RegionSpec":
        """A benchmark-scale region."""
        return cls(num_vpcs=60, total_vms=2_000, nodes_per_cluster=2, x86_nodes=2)


@dataclass
class ForwardingReport:
    """Aggregate outcome of a traffic sample through the region."""

    packets: int = 0
    hardware_packets: int = 0
    software_packets: int = 0
    delivered: int = 0
    uplinked: int = 0
    dropped: int = 0
    drop_details: Dict[str, int] = field(default_factory=dict)

    @property
    def software_ratio(self) -> float:
        """Fraction of packets that needed XGW-x86 (Fig. 22's metric)."""
        return self.software_packets / self.packets if self.packets else 0.0


class Sailfish:
    """The assembled region.

    >>> region = Sailfish.build(RegionSpec.small(), seed=7)
    >>> report = region.forward_sample(packets=200)
    >>> report.dropped
    0
    """

    def __init__(
        self,
        spec: RegionSpec,
        topology: RegionTopology,
        controller: Controller,
        balancer: VniSteeredBalancer,
        x86_fleet: List[XgwX86],
        recovery: DisasterRecovery,
        monitor: HealthMonitor,
        seed,
    ):
        self.spec = spec
        self.topology = topology
        self.controller = controller
        self.balancer = balancer
        self.x86_fleet = x86_fleet
        self.recovery = recovery
        self.monitor = monitor
        self.seed = seed
        self.counters = CounterSet()
        self.series = SeriesBundle()
        self._public_ip_owner: Dict[int, XgwX86] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, spec: RegionSpec, seed) -> "Sailfish":
        """Generate a topology and bring the whole region online."""
        topology = generate_topology(
            num_vpcs=spec.num_vpcs,
            total_vms=spec.total_vms,
            seed=seed,
            peering_fraction=spec.peering_fraction,
            ipv6_fraction=spec.ipv6_fraction,
            subnet_base_index=spec.subnet_base_index,
        )
        balancer = VniSteeredBalancer()
        splitter = TableSplitter(
            ClusterCapacity(
                routes=spec.cluster_route_capacity,
                vms=spec.cluster_vm_capacity,
                traffic_bps=spec.cluster_traffic_bps,
            )
        )
        controller = Controller(splitter, balancer)
        ip_counter = [0]

        def next_gateway_ip() -> int:
            ip_counter[0] += 1
            return (10 << 24) | (255 << 16) | ip_counter[0]

        def cluster_factory(cluster_id: str) -> GatewayCluster[XgwH]:
            nodes = [
                (f"{cluster_id}-gw{i}", XgwH(gateway_ip=next_gateway_ip()))
                for i in range(spec.nodes_per_cluster)
            ]
            backup_nodes = [
                (f"{cluster_id}-bk{i}", XgwH(gateway_ip=next_gateway_ip()))
                for i in range(spec.nodes_per_cluster)
            ]
            backup = GatewayCluster(f"{cluster_id}-backup", backup_nodes)
            return GatewayCluster(cluster_id, nodes, backup=backup)

        controller.set_cluster_factory(cluster_factory)

        # The x86 fleet holds the complete region tables + SNAT state.
        # Each box owns a disjoint public-IP slice so Internet responses
        # route back to the box holding the session.
        x86_fleet: List[XgwX86] = []
        public_ip_owner: Dict[int, XgwX86] = {}
        for i in range(spec.x86_nodes):
            tables = GatewayTables()
            owned_ips = [
                (203 << 24) | (113 << 8) | (i * spec.snat_public_ips + j + 1)
                for j in range(spec.snat_public_ips)
            ]
            snat = SnatTable(public_ips=owned_ips)
            box = XgwX86(gateway_ip=(10 << 24) | (254 << 16) | (i + 1),
                         tables=tables, snat=snat)
            x86_fleet.append(box)
            for ip_addr in owned_ips:
                public_ip_owner[ip_addr] = box

        # Onboard every tenant through the controller.
        rng = derive(seed, "tenant-traffic")
        for vni in topology.vnis():
            vpc = topology.vpcs[vni]
            routes = [
                RouteEntry(v, prefix, action) for v, prefix, action in topology.route_entries(vni)
            ]
            vms = [
                VmEntry(vm.vni, vm.ip, vm.version, vm.binding())
                for vm in topology.vm_entries(vni)
            ]
            profile = TenantProfile(
                vni=vni,
                routes=len(routes),
                vms=len(vms),
                traffic_bps=len(vms) * 1e9 * (0.5 + rng.random()),
            )
            controller.add_tenant(profile, routes, vms)
            for x86 in x86_fleet:
                for route in routes:
                    x86.tables.routing.insert(route.vni, route.prefix, route.action, replace=True)
                for vm in vms:
                    x86.tables.vm_nc.insert(vm.vni, vm.vm_ip, vm.version, vm.binding, replace=True)

        recovery = DisasterRecovery(
            balancer,
            controller.clusters,
            cold_standby=[XgwH(gateway_ip=next_gateway_ip())],
        )
        monitor = HealthMonitor()
        monitor.set_level(Signal.TABLE_WATER_LEVEL, threshold=0.85)
        monitor.set_level(Signal.PACKET_LOSS, threshold=1e-6, festival_threshold=1e-5)
        monitor.on_alert(recovery.alert_handler())
        region = cls(spec, topology, controller, balancer, x86_fleet, recovery, monitor, seed)
        region._public_ip_owner = public_ip_owner
        return region

    # -- data path ---------------------------------------------------------------

    def _pick_x86(self, flow: FlowKey) -> XgwX86:
        index = toeplitz_hash(flow.to_rss_input()) % len(self.x86_fleet)
        return self.x86_fleet[index]

    def forward(self, packet: Packet, now: float = 0.0) -> ForwardResult:
        """One packet through LB -> XGW-H cluster (-> XGW-x86 if needed)."""
        self.counters.add("packets")
        if not packet.is_vxlan:
            # Internet-side return traffic is routed by its destination
            # public IP to the box that owns that SNAT slice.
            self.counters.add("software_packets")
            owner = self._public_ip_owner.get(packet.ip.dst)
            if owner is None:
                flow = FlowKey(packet.ip.src, packet.ip.dst, packet.ip.proto,
                               getattr(packet.l4, "src_port", 0),
                               getattr(packet.l4, "dst_port", 0))
                owner = self._pick_x86(flow)
            return owner.forward_response(packet, now)
        vni = packet.vni
        cluster_id = self.balancer.cluster_for_vni(vni)
        src, dst, proto, sport, dport = packet.inner.five_tuple()
        flow = FlowKey(src, dst, proto, sport, dport, version=packet.inner_version)
        if cluster_id is None:
            self.counters.add(DropReason.UNASSIGNED_VNI.counter)
            return ForwardResult(ForwardAction.DROP, packet,
                                 detail=DropReason.UNASSIGNED_VNI.value)
        cluster = self.recovery.serving_cluster(cluster_id)
        result = cluster.forward(flow, packet)
        self.counters.add("hardware_packets")
        if result.action is ForwardAction.REDIRECT_X86:
            self.counters.add("software_packets")
            result = self._pick_x86(flow).forward(packet, now)
        return result

    def trace(self, packet: Packet, now: float = 0.0):
        """VTrace-style diagnostic forwarding: returns (result, PathTrace).

        Follows the same path as :meth:`forward` while recording every
        decision point — the balancer's VNI steering, the cluster and
        gateway chosen, each pipe the chip traversed, and the exact drop
        location if the packet died (§3.1's loss-diagnosis use case).
        """
        from ..telemetry.trace import PathTrace

        trace = PathTrace()
        if not packet.is_vxlan:
            owner = self._public_ip_owner.get(packet.ip.dst)
            if owner is None:
                trace.add("balancer", "region", "unknown public IP")
                trace.outcome = "drop"
                trace.drop_reason = DropReason.NO_OWNER.value
                return ForwardResult(ForwardAction.DROP, packet,
                                     DropReason.NO_OWNER.value), trace
            trace.add("x86", f"{owner.gateway_ip:#010x}", "snat-response")
            result = owner.forward_response(packet, now)
            trace.outcome = "drop" if result.action is ForwardAction.DROP else result.action.value
            trace.drop_reason = result.detail if result.action is ForwardAction.DROP else ""
            return result, trace

        vni = packet.vni
        cluster_id = self.balancer.cluster_for_vni(vni)
        if cluster_id is None:
            trace.add("balancer", "region", f"VNI {vni} unassigned")
            trace.outcome = "drop"
            trace.drop_reason = DropReason.UNASSIGNED_VNI.value
            return ForwardResult(ForwardAction.DROP, packet,
                                 DropReason.UNASSIGNED_VNI.value), trace
        trace.add("balancer", "region", f"VNI {vni} -> {cluster_id}")
        cluster = self.recovery.serving_cluster(cluster_id)
        src, dst, proto, sport, dport = packet.inner.five_tuple()
        flow = FlowKey(src, dst, proto, sport, dport, version=packet.inner_version)
        member = cluster.pick_member(flow)
        trace.add("cluster", cluster.cluster_id, f"flow-hash -> {member.name}")
        result, traversal = member.gateway.forward_traced(packet, now)
        for pipeline, gress in traversal.path:
            trace.add("pipe", f"{member.name}/pipeline{pipeline}", gress.value)
        if result.action is ForwardAction.REDIRECT_X86:
            box = self._pick_x86(flow)
            trace.add("x86", f"{box.gateway_ip:#010x}", result.detail)
            result = box.forward(packet, now)
        trace.outcome = "drop" if result.action is ForwardAction.DROP else result.action.value
        trace.drop_reason = result.detail if result.action is ForwardAction.DROP else ""
        return result, trace

    def forward_sample(self, packets: int, generator: Optional[RegionTrafficGenerator] = None,
                       seed=None) -> ForwardingReport:
        """Generate and forward *packets*, aggregating outcomes."""
        generator = generator or RegionTrafficGenerator(self.topology, seed or self.seed)
        report = ForwardingReport()
        hw_before = self.counters["hardware_packets"]
        sw_before = self.counters["software_packets"]
        for sample in generator.packets(packets):
            report.packets += 1
            result = self.forward(sample.packet)
            if result.action is ForwardAction.DROP:
                report.dropped += 1
                report.drop_details[result.detail] = (
                    report.drop_details.get(result.detail, 0) + 1
                )
            elif result.action is ForwardAction.DELIVER_NC:
                report.delivered += 1
            else:
                report.uplinked += 1
        report.hardware_packets = self.counters["hardware_packets"] - hw_before
        report.software_packets = self.counters["software_packets"] - sw_before
        return report

    # -- capacity model (Figs. 19-22) ------------------------------------------------

    def hardware_capacity_pps(self, packet_bytes: int = 512) -> float:
        """Aggregate XGW-H forwarding budget across active main clusters."""
        total = 0.0
        for cluster_id in sorted(self.controller.clusters):
            cluster = self.recovery.serving_cluster(cluster_id)
            for member in cluster.active_members():
                total += member.gateway.chip.rate_at(packet_bytes).packet_rate_pps
        return total

    def expected_hw_loss(self, offered_pps: float, packet_bytes: int = 512) -> float:
        """Loss rate of the hardware path at *offered_pps*: queueing loss
        beyond capacity plus the residual floor."""
        capacity = self.hardware_capacity_pps(packet_bytes)
        overload = max(0.0, offered_pps - capacity) / offered_pps if offered_pps else 0.0
        return overload + HW_RESIDUAL_DROP_RATE

    def record_festival_sample(self, time_days: float, offered_pps: float) -> Tuple[float, float]:
        """Record one (rate, loss) sample into the region's time series."""
        loss = self.expected_hw_loss(offered_pps)
        self.series.record("offered_pps", time_days, offered_pps)
        self.series.record("loss_rate", time_days, loss)
        self.monitor.observe("region", Signal.PACKET_LOSS, loss, time_days)
        return offered_pps, loss
