"""The cluster-management control loop (§6.1), on the event engine.

"During the runtime of gateway clusters, we periodically monitor the
table water level, traffic rate and packet loss rate. We have to deploy
new clusters in two cases: (1) the table size exceeds the available
memory, and (2) the traffic volume exceeds the available processing
power. ... When the water level is close to the safe threshold, we will
temporarily close the sale of the cluster's resources and consider
putting new users in another cluster or constructing a new cluster."

:class:`ClusterManager` runs that loop: tenant-arrival and update events
flow in on a discrete-event clock; the manager places tenants through
the controller, watches per-cluster water levels, closes sales on hot
clusters, and opens new ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.health import HealthMonitor, Signal
from ..sim.engine import Engine
from ..telemetry.timeseries import SeriesBundle
from .controller import Controller
from .splitting import SplitError, TenantProfile


@dataclass
class ManagementEvent:
    """One audit-log entry of the control loop."""

    time: float
    action: str  # "placed", "sales-closed", "sales-reopened", "rejected"
    subject: str
    detail: str = ""


class ClusterManager:
    """Periodic water-level management over a controller's clusters.

    >>> # assembled in tests/core/test_management.py
    """

    def __init__(
        self,
        controller: Controller,
        engine: Engine,
        monitor: Optional[HealthMonitor] = None,
        safe_water_level: float = 0.85,
        reopen_water_level: float = 0.7,
        check_interval: float = 1.0,
    ):
        if not 0 < reopen_water_level <= safe_water_level <= 1:
            raise ValueError("need 0 < reopen <= safe <= 1")
        self.controller = controller
        self.engine = engine
        self.monitor = monitor or HealthMonitor()
        self.monitor.set_level(Signal.TABLE_WATER_LEVEL, threshold=safe_water_level)
        self.safe_water_level = safe_water_level
        self.reopen_water_level = reopen_water_level
        self.check_interval = check_interval
        self.closed_for_sale: set = set()
        self.events: List[ManagementEvent] = []
        self.water_levels = SeriesBundle()
        self.rejected_tenants: List[TenantProfile] = []

    # -- water levels -------------------------------------------------------

    def cluster_water_level(self, cluster_id: str) -> float:
        """Entry occupancy of a cluster against the splitter's capacity."""
        usage = self.controller.plan.usage.get(cluster_id)
        if usage is None:
            return 0.0
        capacity = self.controller.splitter.capacity
        return max(
            usage.routes / capacity.routes if capacity.routes else 0.0,
            usage.vms / capacity.vms if capacity.vms else 0.0,
        )

    def check_water_levels(self) -> None:
        """One periodic sweep: record levels, close/reopen sales."""
        now = self.engine.now
        for cluster_id in sorted(self.controller.clusters):
            level = self.cluster_water_level(cluster_id)
            self.water_levels.record(cluster_id, now, level)
            self.monitor.observe(cluster_id, Signal.TABLE_WATER_LEVEL, level, now)
            if level >= self.safe_water_level and cluster_id not in self.closed_for_sale:
                self.closed_for_sale.add(cluster_id)
                self.events.append(
                    ManagementEvent(now, "sales-closed", cluster_id, f"level={level:.2f}")
                )
            elif level <= self.reopen_water_level and cluster_id in self.closed_for_sale:
                self.closed_for_sale.discard(cluster_id)
                self.events.append(
                    ManagementEvent(now, "sales-reopened", cluster_id, f"level={level:.2f}")
                )

    def start(self, until: Optional[float] = None) -> None:
        """Arm the periodic check on the engine."""
        self.engine.schedule_every(self.check_interval, self.check_water_levels,
                                   until=until)

    # -- tenant arrivals --------------------------------------------------------

    def admit_tenant(self, profile: TenantProfile, routes, vms) -> Optional[str]:
        """Place an arriving tenant, honouring closed-for-sale clusters.

        The splitter would happily fill a hot cluster to 100%; the
        manager instead steers new tenants to open clusters, creating a
        new one if every open cluster is full.
        """
        now = self.engine.now
        plan = self.controller.plan
        capacity = self.controller.splitter.capacity
        if (
            profile.routes > capacity.routes
            or profile.vms > capacity.vms
            or profile.traffic_bps > capacity.traffic_bps
        ):
            self.rejected_tenants.append(profile)
            self.events.append(ManagementEvent(
                now, "rejected", str(profile.vni), "exceeds whole-cluster capacity"
            ))
            return None
        cluster_id = None
        for candidate in sorted(plan.usage):
            if candidate in self.closed_for_sale:
                continue
            if capacity.can_fit(plan.usage[candidate], profile):
                cluster_id = candidate
                break
        if cluster_id is None:
            # Every open cluster is full (or closed): construct a new one
            # rather than topping up a hot cluster.
            from .splitting import ClusterUsage

            cluster_id = self.controller.splitter._new_cluster_id(len(plan.usage))
            plan.usage[cluster_id] = ClusterUsage()
            self.events.append(
                ManagementEvent(now, "cluster-built", cluster_id, "")
            )
        plan.usage[cluster_id].add(profile)
        plan.assignments[profile.vni] = cluster_id
        self.controller._ensure_cluster(cluster_id)
        self.controller.balancer.assign_vni(profile.vni, cluster_id)
        for route in routes:
            self.controller.install_route(cluster_id, route, time=now)
        for vm in vms:
            self.controller.install_vm(cluster_id, vm, time=now)
        self.controller.version += 1
        self.events.append(
            ManagementEvent(now, "placed", str(profile.vni), f"-> {cluster_id}")
        )
        return cluster_id

    # -- reporting -----------------------------------------------------------------

    def actions(self, kind: str) -> List[ManagementEvent]:
        return [e for e in self.events if e.action == kind]
