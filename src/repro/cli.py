"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compression`` — print Tables 2-4 and the Fig. 17 trajectory from the
  calibrated occupancy model.
* ``region`` — build a synthetic region, run a traffic sample, print the
  forwarding report.
* ``trace`` — build a region and print a VTrace-style path for one
  generated packet of each outcome class.
* ``economics`` — the §2.3 fleet-sizing and CapEx comparison.
* ``export-pcap`` — write a synthetic traffic sample to a pcap file.
* ``audit`` — build a region, run the cross-layer invariant audit, and
  (optionally) inject a corruption first to watch detection + repair.
* ``fuzz`` — differential placement-compiler fuzzing: a bounded corpus
  by default, an unbounded soak with ``--soak SECONDS``.
* ``shard-status`` — build a sharded control plane, drive cross-shard
  transactions (optionally crashing mid-protocol and recovering), and
  print the per-shard topology/journal status table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_compression(args: argparse.Namespace) -> int:
    from .core.compression import CompressionPlan
    from .core.occupancy import OccupancyModel
    from .core.planner import table4_occupancy

    model = OccupancyModel.paper_scale(ipv6_fraction=args.ipv6)
    print(f"workload: {model.scale.routes:,} routes, {model.scale.vms:,} VMs, "
          f"{model.scale.ipv6_fraction:.0%} IPv6")
    print(f"\n{'step':12s} {'SRAM':>8s} {'TCAM':>8s}")
    for label, occ in CompressionPlan.full().apply(model).rows:
        print(f"{label:12s} {occ.sram_percent:7.1f}% {occ.tcam_percent:7.1f}%")
    print("\nTable 4 (all tables):")
    for key, (sram, tcam) in table4_occupancy(model).items():
        print(f"  {key:16s} SRAM {sram * 100:5.1f}%  TCAM {tcam * 100:5.1f}%")
    return 0


def _cmd_region(args: argparse.Namespace) -> int:
    from .core.sailfish import RegionSpec, Sailfish
    from .workloads.traffic import RegionTrafficGenerator

    spec = RegionSpec.medium() if args.size == "medium" else RegionSpec.small()
    region = Sailfish.build(spec, seed=args.seed)
    print(f"region: {len(region.topology.vpcs)} VPCs, {region.topology.total_vms} VMs, "
          f"clusters {sorted(region.controller.clusters)}")
    generator = RegionTrafficGenerator(region.topology, seed=args.seed,
                                       internet_share=args.internet_share)
    report = region.forward_sample(packets=args.packets, generator=generator)
    print(f"packets {report.packets}: delivered {report.delivered}, "
          f"uplinked {report.uplinked}, dropped {report.dropped}")
    print(f"software share: {report.software_ratio:.3%}")
    return 1 if report.dropped else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.sailfish import RegionSpec, Sailfish
    from .workloads.traffic import RegionTrafficGenerator

    region = Sailfish.build(RegionSpec.small(), seed=args.seed)
    generator = RegionTrafficGenerator(region.topology, seed=args.seed,
                                       internet_share=0.2)
    seen = set()
    for sample in generator.packets(200):
        result, trace = region.trace(sample.packet)
        if result.action.value in seen:
            continue
        seen.add(result.action.value)
        print(f"\n--- {sample.route} -> {result.action.value} ---")
        print(trace.describe())
        if len(seen) >= 3:
            break
    return 0


def _cmd_economics(args: argparse.Namespace) -> int:
    from .core.economics import compare_region
    from .core.provisioning import (
        full_region_install_sailfish,
        full_region_install_x86,
    )

    comparison = compare_region(region_traffic_bps=args.tbps * 1e12)
    print(f"region traffic: {args.tbps:.0f} Tbps, 50% water level, 1:1 backup")
    print(f"all-x86 fleet:   {comparison.software.nodes} boxes "
          f"(${comparison.software.capex_usd / 1e6:.1f}M)")
    print(f"Sailfish fleet:  {comparison.sailfish_hw.nodes} XGW-H + "
          f"{comparison.sailfish_sw_nodes} XGW-x86 "
          f"(${comparison.sailfish_capex_usd / 1e6:.2f}M)")
    print(f"CapEx reduction: {comparison.capex_reduction:.0%}")
    x86 = full_region_install_x86()
    sailfish = full_region_install_sailfish()
    print(f"full table install: {x86.total_seconds / 3600:.1f} h (x86 fleet) vs "
          f"{sailfish.total_seconds / 60:.1f} min (Sailfish)")
    return 0


def _cmd_export_pcap(args: argparse.Namespace) -> int:
    from .workloads.pcap import export_sample
    from .workloads.topology import generate_topology
    from .workloads.traffic import RegionTrafficGenerator

    topology = generate_topology(num_vpcs=8, total_vms=64, seed=args.seed)
    generator = RegionTrafficGenerator(topology, seed=args.seed)
    count = export_sample(args.path, generator.packets(args.packets))
    print(f"wrote {count} packets to {args.path}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .audit import AuditConfig, AuditScanner, RepairBridge
    from .core.sailfish import RegionSpec, Sailfish
    from .tables.vm_nc import NcBinding

    region = Sailfish.build(RegionSpec.small(), seed=args.seed)
    controller = region.controller
    scanner = AuditScanner(controller, AuditConfig(seed=args.seed,
                                                   budget=args.budget))
    bridge = RepairBridge(controller).attach(scanner)
    units = len(scanner._build_units())
    print(f"audit sweep: {units} work units, budget {args.budget}/tick, "
          f"cycle length {scanner.cycle_length()} ticks")

    if args.corrupt:
        cluster_id = sorted(controller.clusters)[0]
        member = controller.clusters[cluster_id].members()[0]
        member.gateway.install_vm(4096, 0x0A0A0A0A, 4, NcBinding(0x0A0A0A0B))
        print(f"injected: orphan VM binding on {member.name}")

    findings = scanner.full_scan()
    for f in findings:
        print(f"  [{f.severity}] {f.invariant}/{f.kind} {f.node}: {f.detail}")
    print(f"scan 1: {len(findings)} finding(s), "
          f"{bridge.counters['repairs_applied']} repaired, "
          f"{bridge.counters['repairs_skipped']} operator-facing")

    if findings:
        rescan = scanner.full_scan()
        print(f"scan 2 (post-repair): {len(rescan)} finding(s)")
        return 1 if rescan else 0
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import DEFAULT_SEEDS, run_bounded, run_soak

    if args.soak is not None:
        report = run_soak(budget_seconds=args.soak, flows=args.flows,
                          start_seed=args.start_seed,
                          artifact_dir=args.artifact_dir)
    else:
        seeds = (tuple(int(s) for s in args.seeds.split(","))
                 if args.seeds else DEFAULT_SEEDS)
        report = run_bounded(seeds=seeds, cases_per_seed=args.cases,
                             flows=args.flows, artifact_dir=args.artifact_dir)
    print(report.describe())
    if report.counterexamples:
        for ce in report.counterexamples:
            where = f"seed {ce.config.seed} index {ce.config.index}"
            outcome = f"{ce.outcome.status}/{ce.outcome.reason}"
            ops = len(ce.minimized.config.ops) if ce.minimized else "?"
            print(f"counterexample: {where}: {outcome} "
                  f"(minimized to {ops} ops): {ce.outcome.detail}")
        for path in report.artifacts:
            print(f"artifact: {path}")
        return 1
    return 0


def _cmd_shard_status(args: argparse.Namespace) -> int:
    from .cluster.cluster import GatewayCluster
    from .core.controller import RouteEntry, VmEntry
    from .core.journal import ControllerCrash
    from .core.splitting import ClusterCapacity, TenantProfile
    from .core.xgw_h import XgwH
    from .faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
    from .net.addr import Prefix
    from .shard import ShardedAuditDriver, ShardedController
    from .tables.vm_nc import NcBinding
    from .tables.vxlan_routing import RouteAction, Scope

    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=counter[0] * 10 + i))
                 for i in range(2)]
        return GatewayCluster(cluster_id, nodes)

    sharded = ShardedController.build(
        args.shards,
        ClusterCapacity(routes=10_000, vms=10_000, traffic_bps=1e15),
        cluster_factory=factory)
    space = sharded.router.vni_space
    vnis = [i * space // args.tenants for i in range(args.tenants)]
    for vni in vnis:
        subnet = Prefix.parse(f"10.{vni % 200}.0.0/16")
        sharded.add_tenant(
            TenantProfile(vni, 1, 1, 1e9),
            [RouteEntry(vni, subnet, RouteAction(Scope.LOCAL))],
            [VmEntry(vni, 0xC0A80A02, 4, NcBinding(0x0A010101))])

    if args.crash:
        stage = {"begin": "xtxn-begin", "prepare": "xtxn-prepare",
                 "decide": "xtxn-decide", "complete": "xtxn-complete"}[args.crash]
        plan = FaultPlan(seed=args.seed, specs=[
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_op=stage, max_fires=1)])
        FaultInjector(plan).arm_sharded(sharded)

    a, b = vnis[0], vnis[-1]
    sub_a = Prefix.parse(f"10.{a % 200}.0.0/16")
    sub_b = Prefix.parse(f"10.{b % 200}.0.0/16")
    try:
        with sharded.cross_transaction() as xtxn:
            xtxn.install_route(RouteEntry(
                a, sub_b, RouteAction(Scope.PEER, next_hop_vni=b)))
            xtxn.install_route(RouteEntry(b, sub_b, RouteAction(Scope.LOCAL)),
                               owner=a)
            xtxn.install_route(RouteEntry(
                b, sub_a, RouteAction(Scope.PEER, next_hop_vni=a)))
            xtxn.install_route(RouteEntry(a, sub_a, RouteAction(Scope.LOCAL)),
                               owner=b)
    except ControllerCrash as exc:
        print(f"crash injected: {exc}")
        in_doubt = {sid: len(records)
                    for sid, records in sharded.in_doubt().items()}
        print(f"in doubt before recovery: {in_doubt or '{}'}")
        sharded, writes = ShardedController.recover_from(sharded)
        print(f"recovered: {writes} gateway writes, "
              f"{sharded.counters['xtxn_resolved_commit']} resolved commit, "
              f"{sharded.counters['xtxn_resolved_abort']} resolved abort")
        driver = ShardedAuditDriver(sharded)
        driver.full_scan()
        rescan = driver.full_scan()
        print(f"audit: {driver.repairs_applied()} repairs, "
              f"rescan {'clean' if not rescan else rescan}")

    print(f"\n{'shard':6s} {'vni range':>21s} {'tenants':>8s} {'clusters':>8s} "
          f"{'routes':>7s} {'vms':>5s} {'appends':>8s} {'segs':>5s} "
          f"{'tail':>5s} {'snap seq':>8s}")
    for row in sharded.shard_status():
        rng = f"[{row['vni_lo']}, {row['vni_hi']})"
        print(f"{row['shard']:6s} {rng:>21s} {row['tenants']:8d} "
              f"{row['clusters']:8d} {row['routes']:7d} {row['vms']:5d} "
              f"{row['appends']:8d} {row['segments']:5d} "
              f"{row['tail_records']:5d} {row['snapshot_seq']:8d}")
    print(f"\nxtxns committed {sharded.counters['xtxns_committed']}, "
          f"aborted {sharded.counters['xtxns_aborted']}")
    bad = sharded.consistency_check()
    print(f"consistency: {'clean' if not bad else bad}")
    return 1 if bad or sharded.in_doubt() else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sailfish (SIGCOMM 2021) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compression = sub.add_parser("compression", help="Tables 2-4 + Fig. 17")
    compression.add_argument("--ipv6", type=float, default=0.25,
                             help="IPv6 fraction of the workload")
    compression.set_defaults(func=_cmd_compression)

    region = sub.add_parser("region", help="build a region and forward traffic")
    region.add_argument("--size", choices=("small", "medium"), default="small")
    region.add_argument("--packets", type=int, default=1000)
    region.add_argument("--seed", type=int, default=7)
    region.add_argument("--internet-share", type=float, default=0.02)
    region.set_defaults(func=_cmd_region)

    trace = sub.add_parser("trace", help="VTrace-style path traces")
    trace.add_argument("--seed", type=int, default=7)
    trace.set_defaults(func=_cmd_trace)

    economics = sub.add_parser("economics", help="fleet sizing and CapEx")
    economics.add_argument("--tbps", type=float, default=15.0)
    economics.set_defaults(func=_cmd_economics)

    export = sub.add_parser("export-pcap", help="write synthetic traffic to pcap")
    export.add_argument("path")
    export.add_argument("--packets", type=int, default=100)
    export.add_argument("--seed", type=int, default=7)
    export.set_defaults(func=_cmd_export_pcap)

    audit = sub.add_parser("audit", help="cross-layer invariant audit")
    audit.add_argument("--seed", type=int, default=7)
    audit.add_argument("--budget", type=int, default=8,
                       help="work units per scanner tick")
    audit.add_argument("--corrupt", action="store_true",
                       help="inject a corruption before scanning")
    audit.set_defaults(func=_cmd_audit)

    fuzz = sub.add_parser("fuzz", help="differential placement-compiler fuzzing")
    fuzz.add_argument("--seeds", default=None,
                      help="comma-separated corpus seeds (default: the CI set)")
    fuzz.add_argument("--cases", type=int, default=40,
                      help="configs per seed in bounded mode")
    fuzz.add_argument("--flows", type=int, default=50,
                      help="sampled flows per placed config")
    fuzz.add_argument("--soak", type=float, default=None, metavar="SECONDS",
                      help="run an unbounded soak for this many seconds")
    fuzz.add_argument("--start-seed", type=int, default=1000,
                      help="first seed of the soak sequence")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="directory for minimized counterexample JSON")
    fuzz.set_defaults(func=_cmd_fuzz)

    shard = sub.add_parser("shard-status",
                           help="sharded control plane status / 2PC demo")
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--tenants", type=int, default=32)
    shard.add_argument("--seed", type=int, default=7)
    shard.add_argument("--crash", choices=("begin", "prepare", "decide",
                                           "complete"), default=None,
                       help="inject a controller crash at this 2PC stage, "
                            "then recover")
    shard.set_defaults(func=_cmd_shard_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
