"""Intent snapshots: the audit's two independent sources of truth.

The auditor never trusts a single view of the desired state. It captures
the journal-format intent twice — once from the live controller
(:meth:`IntentSnapshot.from_controller`) and once by materialising the
write-ahead journal (:meth:`IntentSnapshot.from_journal`) — and the
``intent-divergence`` invariant diffs the two before any gateway is even
looked at. Both views share the journal's canonical encoding
(:func:`~repro.core.journal.canonical_json` over string keys), so "the
same intent" literally means "the same bytes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.journal import (
    canonical_json,
    decode_action,
    decode_binding,
    parse_route_key,
    parse_vm_key,
)
from ..net.addr import Prefix
from ..tables.vm_nc import NcBinding
from ..tables.vxlan_routing import RouteAction, Scope


@dataclass(frozen=True)
class IntentSnapshot:
    """One journal-format view of the desired state.

    *state* is the ``{"tenants", "routes", "vms", "version"}`` dict both
    :meth:`~repro.core.controller.Controller.intent_snapshot` and
    :meth:`~repro.core.journal.Journal.materialize` produce; *source*
    records where it came from (``"controller"`` | ``"journal"``).
    """

    state: dict
    source: str

    @classmethod
    def from_controller(cls, controller) -> "IntentSnapshot":
        return cls(state=controller.intent_snapshot(), source="controller")

    @classmethod
    def from_journal(cls, journal) -> "IntentSnapshot":
        return cls(state=journal.materialize(), source="journal")

    def canonical(self) -> str:
        """The snapshot's canonical-JSON bytes (identity for diffs)."""
        return canonical_json(self.state)

    # -- structured accessors ---------------------------------------------

    def cluster_ids(self) -> List[str]:
        ids: Set[str] = set(self.state.get("routes", {}))
        ids.update(self.state.get("vms", {}))
        for info in self.state.get("tenants", {}).values():
            ids.add(info["cluster"])
        return sorted(ids)

    def routes_for(self, cluster_id: str) -> Dict[Tuple[int, Prefix], RouteAction]:
        """Decoded desired routes of one cluster."""
        encoded = self.state.get("routes", {}).get(cluster_id, {})
        return {parse_route_key(key): decode_action(payload)
                for key, payload in encoded.items()}

    def vms_for(self, cluster_id: str) -> Dict[Tuple[int, int, int], NcBinding]:
        """Decoded desired VM bindings of one cluster."""
        encoded = self.state.get("vms", {}).get(cluster_id, {})
        return {parse_vm_key(key): decode_binding(payload)
                for key, payload in encoded.items()}

    def tenant_clusters(self) -> Dict[int, str]:
        """VNI → owning cluster, from the tenant registry."""
        return {int(vni): info["cluster"]
                for vni, info in self.state.get("tenants", {}).items()}

    def peer_reachability(self) -> Dict[int, Set[int]]:
        """Transitive closure of the intent's PEER edges: which VNIs each
        VNI may legitimately resolve through. Tenant isolation treats any
        resolution ending outside this set as a leak."""
        edges: Dict[int, Set[int]] = {}
        for cluster_id in self.cluster_ids():
            for (vni, _prefix), action in self.routes_for(cluster_id).items():
                if action.scope is Scope.PEER:
                    edges.setdefault(vni, set()).add(action.next_hop_vni)
        closure: Dict[int, Set[int]] = {}
        for start in edges:
            seen: Set[int] = set()
            stack = [start]
            while stack:
                current = stack.pop()
                for nxt in edges.get(current, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            closure[start] = seen
        return closure


def diff_snapshots(a: IntentSnapshot, b: IntentSnapshot) -> List[str]:
    """Human-readable differences between two intent snapshots, in
    deterministic order; empty when the two agree byte-for-byte.

    >>> empty = {"tenants": {}, "routes": {}, "vms": {}, "version": 0}
    >>> diff_snapshots(IntentSnapshot(empty, "controller"),
    ...                IntentSnapshot(empty, "journal"))
    []
    """
    if a.canonical() == b.canonical():
        return []
    diffs: List[str] = []
    if a.state.get("version") != b.state.get("version"):
        diffs.append(f"version: {a.source}={a.state.get('version')} "
                     f"{b.source}={b.state.get('version')}")
    for section in ("tenants", "routes", "vms"):
        left = a.state.get(section, {})
        right = b.state.get(section, {})
        for key in sorted(set(left) | set(right)):
            if key not in right:
                diffs.append(f"{section}[{key}]: only in {a.source}")
            elif key not in left:
                diffs.append(f"{section}[{key}]: only in {b.source}")
            elif canonical_json(_as_dict(left[key])) != canonical_json(_as_dict(right[key])):
                diffs.append(f"{section}[{key}]: differs")
    return diffs


def _as_dict(value) -> dict:
    return value if isinstance(value, dict) else {"value": value}
