"""Audit findings and the byte-stable findings log.

A :class:`Finding` is one observed invariant violation, carrying both a
human-readable detail and — for the repairable kinds — the structured
table key the repair bridge needs to re-push exactly the divergent
entry. The :class:`FindingsLog` frames findings the same way the WAL
journal frames mutations (``seq|cycle|invariant|payload|crc32`` lines
over canonical JSON), so two audit runs with the same seed over the same
cluster history produce byte-identical logs — the property the
acceptance tests pin.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.journal import canonical_json

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One invariant violation on one member (or cluster/region scope).

    *key* keeps the structured table key — ``(vni, Prefix)`` for routes,
    ``(vni, vm_ip, version)`` for VM bindings, the cache key for
    flow-cache findings — so repairs address exactly one entry. The
    serialised payload stringifies non-scalar parts deterministically.

    >>> f = Finding("route-equivalence", "missing-route", "A", "gw0", "x")
    >>> f.severity
    'error'
    """

    invariant: str
    kind: str
    cluster_id: str
    node: str
    detail: str
    severity: str = SEVERITY_ERROR
    key: Optional[tuple] = None

    def to_payload(self) -> dict:
        """The canonical-JSON-safe view of this finding."""
        return {
            "invariant": self.invariant,
            "kind": self.kind,
            "cluster": self.cluster_id,
            "node": self.node,
            "severity": self.severity,
            "detail": self.detail,
            "key": None if self.key is None else [_canon(part) for part in self.key],
        }

    def sort_key(self) -> tuple:
        """Deterministic ordering within one audit unit's output."""
        return (self.cluster_id, self.node, self.invariant, self.kind,
                canonical_json(self.to_payload()))


def _canon(part):
    """A JSON-stable projection of one key component."""
    if part is None or isinstance(part, (int, str, bool)):
        return part
    return str(part)  # Prefix (and friends) stringify deterministically


class FindingsLog:
    """Append-only, checksummed record of everything the audit found.

    >>> log = FindingsLog()
    >>> log.append(0, Finding("route-equivalence", "missing-route",
    ...                       "A", "gw0", "(5, 10.0.0.0/24)"))
    >>> len(log)
    1
    >>> FindingsLog.parse(log.dump())[0]["kind"]
    'missing-route'
    """

    def __init__(self):
        self._records: List[Tuple[int, Finding]] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, cycle: int, finding: Finding) -> None:
        self._records.append((cycle, finding))

    def extend(self, cycle: int, findings: Iterable[Finding]) -> None:
        for finding in findings:
            self.append(cycle, finding)

    def findings(self) -> List[Finding]:
        return [finding for _cycle, finding in self._records]

    def by_kind(self) -> Dict[str, int]:
        """Finding counts per kind (for summaries and CLI output)."""
        counts: Dict[str, int] = {}
        for _cycle, finding in self._records:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return counts

    def for_cycle(self, cycle: int) -> List[Finding]:
        return [f for c, f in self._records if c == cycle]

    # -- framing -----------------------------------------------------------

    def dump(self) -> bytes:
        """Serialise as journal-style checksummed lines. Byte-stable:
        the same findings in the same order always produce the same
        bytes."""
        lines = []
        for seq, (cycle, finding) in enumerate(self._records):
            body = (f"{seq}|{cycle}|{finding.invariant}|"
                    f"{canonical_json(finding.to_payload())}")
            crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
            lines.append(f"{body}|{crc:08x}\n")
        return "".join(lines).encode("utf-8")

    @staticmethod
    def parse(data: bytes) -> List[dict]:
        """Decode a dumped log back into payload dicts, verifying every
        checksum (raises ``ValueError`` on a torn or bit-rotten line)."""
        import json

        out: List[dict] = []
        for lineno, raw in enumerate(data.decode("utf-8").splitlines()):
            body, _, crc_text = raw.rpartition("|")
            if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != int(crc_text, 16):
                raise ValueError(f"findings log checksum mismatch at line {lineno}")
            _seq, _cycle, _invariant, payload = body.split("|", 3)
            record = json.loads(payload)
            record["cycle"] = int(_cycle)
            out.append(record)
        return out
