"""The invariant library: what "this region is healthy" actually means.

Each invariant inspects one member against the intent snapshot (or
against its own internal structure) and returns :class:`Finding`\\ s.
They are deliberately independent of the controller's
``consistency_check``: route/VM equivalence re-derive the comparison
from the journal-format intent, the lookup invariants cross-check data
structures against brute-force oracles, and the remaining ones check
properties no intent diff can see (shadowed rules, broken chains,
tenant leaks, counter identities, poisoned cache entries).

Every invariant is read-only on control state: table generations are
never bumped, so a sweep can run concurrently with the flow cache and
no cached entry is invalidated by the audit itself. (Telemetry counters
— lookup/hit tallies — do advance; they carry no semantics.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..dataplane.gateway_logic import ForwardAction
from ..net.addr import Prefix
from ..tables.alpm import AlpmTable, oracle_lookup
from ..tables.errors import MissingEntryError
from ..tables.vxlan_routing import RoutingLoopError, Scope, VxlanRoutingTable
from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .intent import IntentSnapshot
from .sampling import sample_route_keys


@dataclass(frozen=True)
class AuditContext:
    """Everything one invariant check needs besides the member itself."""

    intent: IntentSnapshot
    cluster_id: str
    seed: int = 0
    samples_per_prefix: int = 2
    #: Migration ids a live EndpointMigrator currently owns; freeze or
    #: shadow state for any *other* id is residue of a dead migration.
    active_migrations: FrozenSet[str] = frozenset()


class Invariant:
    """One auditable property; subclasses define ``name`` and ``check``."""

    name = "invariant"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        raise NotImplementedError


def _vm_items(gw) -> Dict[Tuple[int, int, int], object]:
    """A member's installed VM bindings, fully enumerated. XGW-H keeps
    them in the pipeline-split table, XGW-x86 in the flat DRAM table;
    both expose control-plane readback via ``items()``."""
    table = getattr(gw, "split_vm_nc", None)
    if table is None:
        table = gw.tables.vm_nc
    return {(vni, address, version): binding
            for vni, address, version, binding in table.items()}


class RouteEquivalence(Invariant):
    """Intent routes vs the member's installed routing table, both ways:
    ``missing-route`` / ``corrupt-route`` / ``extra-route``."""

    name = "route-equivalence"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        desired = ctx.intent.routes_for(ctx.cluster_id)
        installed = {(vni, prefix): action
                     for vni, prefix, action in member.gateway.tables.routing.items()}
        findings: List[Finding] = []
        for key, action in desired.items():
            have = installed.get(key)
            if have != action:
                kind = "missing-route" if have is None else "corrupt-route"
                findings.append(Finding(self.name, kind, ctx.cluster_id,
                                        member.name, f"{key}", key=key))
        for key in installed:
            if key not in desired:
                findings.append(Finding(self.name, "extra-route", ctx.cluster_id,
                                        member.name, f"{key}", key=key))
        return findings


class VmEquivalence(Invariant):
    """Intent VM bindings vs the member's installed bindings — **both
    ways**, unlike ``consistency_check``'s one-way comparison. The
    reverse direction is what catches a dropped ``remove_vm`` (the PR-2
    blind spot): the binding survives on the gateway as ``extra-vm``."""

    name = "vm-equivalence"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        desired = ctx.intent.vms_for(ctx.cluster_id)
        installed = _vm_items(member.gateway)
        findings: List[Finding] = []
        for key, binding in desired.items():
            have = installed.get(key)
            if have != binding:
                kind = "missing-vm" if have is None else "corrupt-vm"
                findings.append(Finding(
                    self.name, kind, ctx.cluster_id, member.name,
                    f"({key[0]}, {key[1]:#x})", key=key))
        for key in installed:
            if key not in desired:
                findings.append(Finding(
                    self.name, "extra-vm", ctx.cluster_id, member.name,
                    f"({key[0]}, {key[1]:#x})", key=key))
        return findings


class LpmOracleEquivalence(Invariant):
    """The member's lookup structures vs a brute-force LPM oracle.

    On deterministically sampled keys (seeded per prefix), the per-VNI
    trie lookup and an ALPM built from the member's own composite routes
    must both agree with :func:`~repro.tables.alpm.oracle_lookup` over
    the same flat route list. This is structural integrity — a carving
    or trie bug diverges here even when intent and installed entries
    match perfectly."""

    name = "lpm-oracle"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        routing = member.gateway.tables.routing
        installed = {(vni, prefix): action
                     for vni, prefix, action in routing.items()}
        if not installed:
            return []
        composite = routing.to_composite_routes()
        width = VxlanRoutingTable.composite_width()
        alpm = AlpmTable.build(width, composite)
        findings: List[Finding] = []
        keys = sample_route_keys(installed, ctx.seed,
                                 per_prefix=ctx.samples_per_prefix)
        for vni, address, version in keys:
            ckey = VxlanRoutingTable.composite_key(vni, address, version)
            expect = oracle_lookup(composite, ckey, width)
            trie_hit = routing.lookup(vni, address, version)
            trie_action = trie_hit[1] if trie_hit is not None else None
            oracle_action = expect[2] if expect is not None else None
            if trie_action != oracle_action:
                findings.append(Finding(
                    self.name, "lpm-divergence", ctx.cluster_id, member.name,
                    f"trie vni={vni} addr={address:#x}/v{version}: "
                    f"{trie_action} != {oracle_action}",
                    key=(vni, address, version)))
            alpm_hit = alpm.lookup(ckey)
            if alpm_hit != expect:
                findings.append(Finding(
                    self.name, "alpm-divergence", ctx.cluster_id, member.name,
                    f"alpm vni={vni} addr={address:#x}/v{version}: "
                    f"{alpm_hit} != {expect}",
                    key=(vni, address, version)))
        return findings


def tcam_shadow_findings(tcam, cluster_id: str = "-", node: str = "-") -> List[Finding]:
    """Shadow analysis for a standalone TCAM: every ``(shadowed,
    shadowing)`` pair from :meth:`~repro.tables.tcam.Tcam.shadowed_entries`
    becomes a finding — ``shadowed-rule`` when the verdict-relevant value
    differs (the dead rule would have acted differently), ``dead-rule``
    when it is pure dead weight."""
    findings: List[Finding] = []
    for shadowed, shadowing in tcam.shadowed_entries():
        hazardous = shadowed.action != shadowing.action
        findings.append(Finding(
            "shadow-rules",
            "shadowed-rule" if hazardous else "dead-rule",
            cluster_id, node,
            f"prio={shadowed.priority} shadowed by prio={shadowing.priority}",
            severity=SEVERITY_ERROR if hazardous else SEVERITY_WARNING,
            key=(shadowed.priority, shadowing.priority)))
    return findings


class ShadowRules(Invariant):
    """Dead and policy-inverting ACL rules on the member.

    A rule fully covered by an earlier-matching rule never fires. Same
    verdict → dead weight (warning); different verdict → the written
    policy silently differs from the enforced one (error)."""

    name = "shadow-rules"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        findings: List[Finding] = []
        for shadowed, shadowing in member.gateway.tables.acl.shadowed_rules():
            hazardous = shadowed.verdict is not shadowing.verdict
            findings.append(Finding(
                self.name,
                "shadowed-rule" if hazardous else "dead-rule",
                ctx.cluster_id, member.name,
                f"vni={shadowed.vni} prio={shadowed.priority} "
                f"({shadowed.verdict.value}) shadowed by "
                f"prio={shadowing.priority} ({shadowing.verdict.value})",
                severity=SEVERITY_ERROR if hazardous else SEVERITY_WARNING,
                key=(shadowed.vni, shadowed.priority, shadowing.priority)))
        return findings


class ChainTermination(Invariant):
    """Every installed PEER route must resolve to a terminal scope:
    chains are acyclic (``peer-loop``) and complete (``broken-chain``)."""

    name = "chain-termination"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        routing = member.gateway.tables.routing
        findings: List[Finding] = []
        for vni, prefix, action in sorted(
                routing.items(), key=lambda r: (r[0], str(r[1]))):
            if action.scope is not Scope.PEER:
                continue
            try:
                routing.resolve(vni, prefix.network, prefix.version)
            except RoutingLoopError as exc:
                findings.append(Finding(
                    self.name, "peer-loop", ctx.cluster_id, member.name,
                    f"vni={vni} {prefix}: {exc}", key=(vni, prefix)))
            except MissingEntryError as exc:
                findings.append(Finding(
                    self.name, "broken-chain", ctx.cluster_id, member.name,
                    f"vni={vni} {prefix}: {exc}", key=(vni, prefix)))
        return findings


class TenantIsolation(Invariant):
    """No sampled key of tenant A may resolve through tenant B's entries
    unless the *intent* authorises that peering.

    The authorised set is the transitive closure of the intent's PEER
    edges; a resolution terminating in a VNI outside it means a
    misinstalled route is leaking one tenant's traffic into another's
    VPC — the §2.1 isolation property."""

    name = "tenant-isolation"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        routing = member.gateway.tables.routing
        desired = ctx.intent.routes_for(ctx.cluster_id)
        if not desired:
            return []
        allowed = ctx.intent.peer_reachability()
        findings: List[Finding] = []
        keys = sample_route_keys(desired, ctx.seed,
                                 per_prefix=ctx.samples_per_prefix)
        for vni, address, version in keys:
            try:
                resolution = routing.resolve(vni, address, version)
            except (MissingEntryError, RoutingLoopError):
                continue  # equivalence / chain invariants own those
            if resolution.vni == vni:
                continue
            if resolution.vni not in allowed.get(vni, set()):
                findings.append(Finding(
                    self.name, "tenant-isolation", ctx.cluster_id, member.name,
                    f"vni={vni} addr={address:#x}/v{version} resolved "
                    f"through unauthorised vni={resolution.vni}",
                    key=(vni, address, version, resolution.vni)))
        return findings


class CounterConservation(Invariant):
    """Per-member counter identities: offered = processed + dropped.

    XGW-H: ``stats.packets == delivered + uplinked + redirected +
    dropped`` and the per-reason ``drop_*`` counters sum to
    ``stats.dropped``. XGW-x86: ``rx_packets == Σ action_*`` and
    ``action_drop == Σ drop_*``. A violation means a packet was charged
    inconsistently — the canary for miscounting bugs and for torn
    counter state after a crash."""

    name = "counter-conservation"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        gw = member.gateway
        findings: List[Finding] = []
        counts = gw.counters.snapshot()
        drops = sum(v for k, v in counts.items() if k.startswith("drop_"))
        stats = getattr(gw, "stats", None)
        if stats is not None:
            outcomes = (stats.delivered + stats.uplinked + stats.redirected
                        + stats.dropped + getattr(stats, "buffered", 0))
            if stats.packets != outcomes:
                findings.append(Finding(
                    self.name, "counter-mismatch", ctx.cluster_id, member.name,
                    f"packets={stats.packets} != outcomes={outcomes}"))
            if drops != stats.dropped:
                findings.append(Finding(
                    self.name, "counter-mismatch", ctx.cluster_id, member.name,
                    f"sum(drop_*)={drops} != dropped={stats.dropped}"))
        else:
            actions = sum(v for k, v in counts.items() if k.startswith("action_"))
            rx = counts.get("rx_packets", 0)
            if rx != actions:
                findings.append(Finding(
                    self.name, "counter-mismatch", ctx.cluster_id, member.name,
                    f"rx_packets={rx} != sum(action_*)={actions}"))
            if drops != counts.get("action_drop", 0):
                findings.append(Finding(
                    self.name, "counter-mismatch", ctx.cluster_id, member.name,
                    f"sum(drop_*)={drops} != "
                    f"action_drop={counts.get('action_drop', 0)}"))
        return findings


class FlowCacheCoherence(Invariant):
    """Every *current-generation* cache entry must equal a fresh
    recompute against the live tables.

    Stale-generation entries are skipped — the cache's own guard lazily
    drops those. What this invariant catches is the opposite: an entry
    whose generation vector is current but whose cached decision is not
    what the tables say (bit-rot, ``POISON_FLOW_CACHE``). The cache's
    staleness machinery *cannot* see that class; only a recompute can."""

    name = "flow-cache-coherence"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        gw = member.gateway
        cache = getattr(gw, "flow_cache", None)
        if cache is None:
            return []
        tables = gw.tables
        generations = (tables.routing.generation, tables.vm_nc.generation,
                       tables.acl.generation)
        findings: List[Finding] = []
        for key, entry in cache.items():
            if entry.generations != generations:
                continue
            vni, address, version = key
            expect = _recompute(tables, vni, address, version)
            have = (entry.action, entry.detail, entry.resolved_vni, entry.nc_ip)
            if have != expect:
                findings.append(Finding(
                    self.name, "stale-cache-entry", ctx.cluster_id, member.name,
                    f"key={key}: cached={have} recomputed={expect}", key=key))
        return findings


def _recompute(tables, vni: int, address: int, version: int):
    """The terminal decision the slow path would cache for this key,
    derived read-only (no counters, meters or ACLs — those are per-packet
    and never cached)."""
    try:
        resolution = tables.routing.resolve(vni, address, version)
    except MissingEntryError:
        return (ForwardAction.DROP, "no-route", None, None)
    except RoutingLoopError:
        return (ForwardAction.DROP, "peer-loop", None, None)
    scope = resolution.action.scope
    if scope is Scope.LOCAL:
        binding = tables.vm_nc.lookup(resolution.vni, address, version)
        if binding is None:
            return (ForwardAction.DROP, "no-vm", resolution.vni, None)
        return (ForwardAction.DELIVER_NC, "local", resolution.vni, binding.nc_ip)
    if scope is Scope.SERVICE:
        return (ForwardAction.REDIRECT_X86,
                resolution.action.target or "service", resolution.vni, None)
    return (ForwardAction.UPLINK,
            resolution.action.target or scope.value, resolution.vni, None)


class MigrationResidue(Invariant):
    """No trace of a dead migration may survive on any member.

    A crashed :class:`~repro.migration.EndpointMigrator` leaves frozen
    endpoint keys, shadow bindings and buffered packets on the gateways
    with nobody left to tear them down — the frozen flows would
    black-hole forever. ``Controller.active_migrations`` is deliberately
    not journalled, so after recovery it is empty and every surviving
    freeze/shadow shows up here:

    * ``orphaned-freeze`` — a frozen endpoint whose migration id is not
      active (its buffered packets are stranded with it);
    * ``shadow-binding`` — a pre-copied destination binding whose
      migration id is not active;
    * ``orphaned-session`` — a SNAT session whose inner source IP has no
      VM binding in the intent (warning: sessions are dataplane state
      the controller cannot re-derive, so this is operator-facing).
    """

    name = "migration-residue"

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        gw = member.gateway
        findings: List[Finding] = []
        state = getattr(gw, "migration", None)
        if state is not None:
            for key in sorted(state.frozen):
                entry = state.frozen[key]
                if entry.migration_id in ctx.active_migrations:
                    continue
                vni, vm_ip, version = key
                findings.append(Finding(
                    self.name, "orphaned-freeze", ctx.cluster_id, member.name,
                    f"vni={vni} vm={vm_ip:#x}/v{version} frozen by dead "
                    f"{entry.migration_id}",
                    key=(vni, vm_ip, version, entry.migration_id)))
            for key in sorted(state.shadows):
                shadow = state.shadows[key]
                if shadow.migration_id in ctx.active_migrations:
                    continue
                vni, vm_ip, version = key
                findings.append(Finding(
                    self.name, "shadow-binding", ctx.cluster_id, member.name,
                    f"vni={vni} vm={vm_ip:#x}/v{version} shadow "
                    f"nc={shadow.nc_ip:#x} from dead {shadow.migration_id}",
                    key=(vni, vm_ip, version, shadow.migration_id)))
        service = getattr(gw, "snat_service", None)
        if service is not None:
            desired = ctx.intent.vms_for(ctx.cluster_id)
            bound_ips = {vm_ip for (_vni, vm_ip, _version) in desired}
            for flow, session in service.snat.items():
                if flow.src_ip not in bound_ips:
                    findings.append(Finding(
                        self.name, "orphaned-session", ctx.cluster_id,
                        member.name,
                        f"src={flow.src_ip:#x} public="
                        f"{session.public_ip:#x}:{session.public_port} has "
                        f"no intent VM binding",
                        severity=SEVERITY_WARNING,
                        key=(flow.src_ip, session.public_ip,
                             session.public_port)))
        return findings


class TierResidue(Invariant):
    """Three-tier placement residue: every tier holds exactly what the
    intent steers to it, and no VIP is steered to two tiers at once.

    The :class:`~repro.dpu.planner.TierPlanner` moves a VIP with two
    transactions (withdraw source, install target) and reaps the source
    DPU's session contexts only after both commit. Sessions are
    dataplane state with no journal copy — a ``CONTROLLER_CRASH``
    between the withdraw and the reap strands them with nobody left to
    tear them down:

    * ``orphaned-dpu-session`` — a DPU member holds session contexts for
      a VIP the intent no longer steers to that device; the repair
      bridge reaps them;
    * ``multi-tier-steering`` — a steering route installed on this
      member is *also* steered by another cluster's intent, i.e. one VIP
      is claimed by two tiers — packets would be double-served or the
      colder copy would silently shadow the hotter one.
    """

    name = "tier-residue"

    STEERING_TARGETS = ("offload", "dpu")

    def check(self, ctx: AuditContext, member) -> List[Finding]:
        gw = member.gateway
        findings: List[Finding] = []
        sessions = getattr(gw, "sessions", None)
        if sessions is not None and hasattr(sessions, "vips"):
            desired = ctx.intent.routes_for(ctx.cluster_id)
            steered = {key for key, action in desired.items()
                       if action.target == "dpu"}
            for vip in sessions.vips():
                vni, dst_ip, version = vip
                bits = 32 if version == 4 else 128
                if (vni, Prefix.of(dst_ip, bits, version)) not in steered:
                    findings.append(Finding(
                        self.name, "orphaned-dpu-session", ctx.cluster_id,
                        member.name,
                        f"vni={vni} vip={dst_ip:#x}/v{version} holds "
                        f"{sessions.count_for(vip)} sessions with no dpu "
                        f"steering intent", key=vip))
        installed = {(vni, prefix)
                     for vni, prefix, action in gw.tables.routing.items()
                     if action.target in self.STEERING_TARGETS}
        if installed:
            for other_cid in ctx.intent.cluster_ids():
                if other_cid == ctx.cluster_id:
                    continue
                other = ctx.intent.routes_for(other_cid)
                for key in sorted(installed,
                                  key=lambda k: (k[0], k[1].network)):
                    action = other.get(key)
                    if action is not None and action.target in self.STEERING_TARGETS:
                        findings.append(Finding(
                            self.name, "multi-tier-steering", ctx.cluster_id,
                            member.name,
                            f"vni={key[0]} {key[1]} steered here and in "
                            f"{other_cid}'s intent", key=(key[0], key[1], other_cid)))
        return findings


#: The full sweep, in the order the scanner schedules per member.
ALL_INVARIANTS: Tuple[Invariant, ...] = (
    RouteEquivalence(),
    VmEquivalence(),
    LpmOracleEquivalence(),
    ShadowRules(),
    ChainTermination(),
    TenantIsolation(),
    CounterConservation(),
    FlowCacheCoherence(),
    MigrationResidue(),
    TierResidue(),
)
