"""The budgeted incremental audit scanner.

A full sweep over every (cluster, member, invariant) triple is the unit
of *coverage*; a tick is the unit of *cost*. The scanner materialises
the sweep as a deterministic work-unit list — intent-vs-journal first,
then clusters in sorted order, members in cluster order, invariants in
library order — and each :meth:`AuditScanner.tick` runs at most
``budget`` units, so an operator can bound the per-tick control-plane
work while still guaranteeing that any divergence is found within one
full cycle (``cycle_length()`` ticks).

Findings stream into a byte-stable :class:`~repro.audit.findings
.FindingsLog`; cycle-completion hooks hand each cycle's findings to the
:class:`~repro.audit.repair.RepairBridge`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..sim.engine import Engine, PeriodicTask
from ..telemetry.stats import CounterSet
from .findings import Finding, FindingsLog
from .intent import IntentSnapshot, diff_snapshots
from .invariants import ALL_INVARIANTS, AuditContext, Invariant


@dataclass(frozen=True)
class AuditConfig:
    """Scanner knobs: determinism seed, per-tick budget, sample density.

    >>> AuditConfig(seed=7).budget
    4
    """

    seed: int = 0
    budget: int = 4
    samples_per_prefix: int = 2
    include_backup: bool = True

    def __post_init__(self):
        if self.budget <= 0:
            raise ValueError("budget must be positive")


#: One schedulable audit step: (label, thunk) where thunk() -> findings.
AuditUnit = Tuple[str, Callable[[], List[Finding]]]


class AuditScanner:
    """Budgeted, deterministic sweep of the invariant library.

    >>> # assembled in tests/audit/helpers.py; see examples/audit_repair.py
    """

    def __init__(
        self,
        controller,
        config: Optional[AuditConfig] = None,
        journal=None,
        invariants: Optional[Sequence[Invariant]] = None,
    ):
        self.controller = controller
        self.config = config if config is not None else AuditConfig()
        #: The independent intent source; defaults to the controller's
        #: own journal so divergence between store and WAL is caught.
        self.journal = journal if journal is not None else controller.journal
        self.invariants: List[Invariant] = (
            list(invariants) if invariants is not None else list(ALL_INVARIANTS)
        )
        self.log = FindingsLog()
        #: audit_units, audit_findings, audit_cycles.
        self.counters = CounterSet()
        self.cycles_completed = 0
        self._pending: List[AuditUnit] = []
        self._cycle_findings: List[Finding] = []
        self._cycle_index = 0
        self._on_cycle: List[Callable[[List[Finding]], None]] = []

    # -- unit construction -------------------------------------------------

    def _build_units(self) -> List[AuditUnit]:
        """The full sweep for the *current* cluster topology and intent.

        Rebuilt at every cycle start, so clusters and tenants added
        mid-flight join the next cycle; the intent snapshot is captured
        once per cycle so every unit of a cycle audits against the same
        desired state."""
        units: List[AuditUnit] = []
        intent = IntentSnapshot.from_controller(self.controller)
        if self.journal is not None:
            units.append(("intent/journal",
                          lambda intent=intent: self._intent_vs_journal(intent)))
        for cluster_id in sorted(self.controller.clusters):
            cluster = self.controller.clusters[cluster_id]
            ctx = AuditContext(
                intent=intent,
                cluster_id=cluster_id,
                seed=self.config.seed,
                samples_per_prefix=self.config.samples_per_prefix,
                active_migrations=frozenset(
                    getattr(self.controller, "active_migrations", ())),
            )
            members = cluster.all_members(include_backup=self.config.include_backup)
            for member in members:
                for invariant in self.invariants:
                    units.append((
                        f"{cluster_id}/{member.name}/{invariant.name}",
                        lambda inv=invariant, c=ctx, m=member: inv.check(c, m),
                    ))
        return units

    def _intent_vs_journal(self, intent: IntentSnapshot) -> List[Finding]:
        journal_view = IntentSnapshot.from_journal(self.journal)
        return [
            Finding("intent-journal", "intent-divergence", "-", "-", diff)
            for diff in diff_snapshots(intent, journal_view)
        ]

    def cycle_length(self) -> int:
        """Ticks needed to cover one full sweep at the current budget —
        the detection-latency bound the acceptance tests pin."""
        return max(1, math.ceil(len(self._build_units()) / self.config.budget))

    # -- execution ---------------------------------------------------------

    def _run_unit(self, unit: AuditUnit) -> List[Finding]:
        _label, thunk = unit
        findings = sorted(thunk(), key=lambda f: f.sort_key())
        self.log.extend(self._cycle_index, findings)
        self._cycle_findings.extend(findings)
        self.counters.add("audit_units")
        if findings:
            self.counters.add("audit_findings", len(findings))
        return findings

    def _finish_cycle(self) -> None:
        self.cycles_completed += 1
        self.counters.add("audit_cycles")
        findings = list(self._cycle_findings)
        self._cycle_findings = []
        for hook in self._on_cycle:
            hook(findings)

    def tick(self) -> int:
        """Run up to ``budget`` units; returns how many ran. Starts a new
        cycle when the previous one is exhausted and fires the cycle
        hooks on the tick that completes a cycle."""
        if not self._pending:
            self._pending = self._build_units()
            self._cycle_findings = []
            self._cycle_index = self.cycles_completed
        ran = 0
        while self._pending and ran < self.config.budget:
            self._run_unit(self._pending.pop(0))
            ran += 1
        if not self._pending:
            self._finish_cycle()
        return ran

    def full_scan(self) -> List[Finding]:
        """Run one complete cycle immediately (budget ignored); any
        partially scanned incremental cycle is abandoned first."""
        self._pending = []
        self._cycle_findings = []
        self._cycle_index = self.cycles_completed
        for unit in self._build_units():
            self._run_unit(unit)
        findings = list(self._cycle_findings)
        self._finish_cycle()
        return findings

    # -- wiring ------------------------------------------------------------

    def on_cycle(self, hook: Callable[[List[Finding]], None]) -> None:
        """Register *hook(findings)* to fire when a cycle completes."""
        self._on_cycle.append(hook)

    def attach(self, engine: Engine, interval: float,
               until: Optional[float] = None) -> PeriodicTask:
        """Schedule :meth:`tick` every *interval* on *engine*; returns
        the cancellation handle."""
        return engine.schedule_every(interval, self.tick, until=until)
