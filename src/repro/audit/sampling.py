"""Seeded key sampling for the lookup-equivalence invariants.

Full route-table sweeps are affordable in the simulator but the paper's
production auditor cannot read back every key — it samples. The sampler
here is deterministic: each (vni, prefix) owns one child RNG derived via
:func:`repro.sim.rand.derive` from ``(seed, "audit", "sample", vni,
prefix)``, so the sampled key set depends only on the seed and the
prefix — never on scan order or on unrelated prefixes — and audit runs
replay bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..net.addr import Prefix
from ..sim.rand import derive


def sample_addresses(prefix: Prefix, rng, count: int = 2) -> List[int]:
    """Deterministic probe addresses inside *prefix*: the network
    address, the last address, and *count* seeded interior offsets.

    >>> from repro.sim.rand import derive
    >>> p = Prefix.parse("10.0.0.0/24")
    >>> addrs = sample_addresses(p, derive(7, "doc"), count=2)
    >>> len(addrs) == 4 and all(p.contains_ip(a) for a in addrs)
    True
    >>> addrs == sample_addresses(p, derive(7, "doc"), count=2)
    True
    """
    host_bits = prefix.bits - prefix.prefix_len
    span = 1 << host_bits
    picks = {prefix.network, prefix.network | (span - 1)}
    for _ in range(count):
        picks.add(prefix.network | rng.randrange(span))
    return sorted(picks)


def sample_route_keys(
    routes: Dict[Tuple[int, Prefix], object],
    seed: int,
    per_prefix: int = 2,
) -> List[Tuple[int, int, int]]:
    """Sampled ``(vni, address, version)`` probe keys covering every
    desired prefix, in deterministic (vni, prefix) order."""
    keys: List[Tuple[int, int, int]] = []
    for vni, prefix in sorted(routes, key=lambda k: (k[0], str(k[1]))):
        rng = derive(seed, "audit", "sample", vni, str(prefix))
        for address in sample_addresses(prefix, rng, count=per_prefix):
            keys.append((vni, address, prefix.version))
    return keys
