"""The repair bridge: audit findings → the controller's repair path.

Findings with a structured table key and a repairable kind are converted
to :class:`~repro.core.controller.Inconsistency` objects and pushed
through the same machinery the §6.1 reconcile loop uses — quarantine the
cluster, :meth:`~repro.core.controller.Controller.targeted_repair` the
divergent keys, probe before readmitting. That includes ``extra-vm``,
which the controller's own ``consistency_check`` can never produce (its
VM comparison is one-way); the audit is the only producer, and
``_repair_one`` withdraws the surviving binding.

Poisoned flow-cache entries are not table state, so they take a
different repair: the member's cache is flushed and the next packets
re-resolve against the (by then repaired) tables.

Non-repairable findings — shadowed rules, tenant leaks, counter
mismatches, intent/journal divergence — are operator-facing: they are
counted and left in the findings log.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.controller import Inconsistency
from ..telemetry.stats import CounterSet
from .findings import Finding

#: Kinds with a structured key that targeted repair can re-push/withdraw.
REPAIRABLE_KINDS = frozenset({
    "missing-route", "corrupt-route", "extra-route",
    "missing-vm", "corrupt-vm", "extra-vm",
})

#: Kinds repaired by flushing the member's flow cache.
CACHE_KINDS = frozenset({"stale-cache-entry"})

#: Kinds repaired by tearing down a dead migration's freeze/shadow state
#: and replaying its stranded packets through the surviving (source)
#: binding. ``orphaned-session`` is deliberately absent: SNAT sessions
#: are dataplane state the controller cannot re-derive, so those stay
#: operator-facing.
MIGRATION_KINDS = frozenset({"orphaned-freeze", "shadow-binding"})

#: Tier-placement residue (see :class:`~repro.audit.invariants.TierResidue`).
#: ``orphaned-dpu-session`` is repaired by reaping the stranded contexts
#: on the device — the crash happened after the steering withdrew, so no
#: traffic references them; ``multi-tier-steering`` by withdrawing the
#: duplicate claim (intent first, installed-only second).
DPU_KINDS = frozenset({"orphaned-dpu-session", "multi-tier-steering"})


class RepairBridge:
    """Subscribes to an :class:`~repro.audit.scanner.AuditScanner`'s
    cycle hook and repairs what each completed cycle found.

    >>> # wired via bridge.attach(scanner); see examples/audit_repair.py
    """

    def __init__(self, controller, quarantine: bool = True):
        self.controller = controller
        #: Whether divergent clusters are quarantined until probes pass
        #: (mirrors the reconcile loop; disable for advisory-only runs).
        self.quarantine = quarantine
        #: repairs_applied, repairs_failed, repairs_skipped, caches_cleared,
        #: residue_cleared, residue_replayed.
        self.counters = CounterSet()

    def attach(self, scanner) -> "RepairBridge":
        scanner.on_cycle(self.handle)
        return self

    def handle(self, findings: List[Finding]) -> int:
        """Repair one cycle's findings; returns how many were applied."""
        per_cluster: Dict[str, List[Inconsistency]] = {}
        cache_flushes: Set[Tuple[str, str]] = set()
        residue_aborts: Set[Tuple[str, str, str]] = set()
        session_reaps: Set[Tuple[str, str, Tuple[int, int, int]]] = set()
        steer_dupes: Set[Tuple[str, str, Tuple]] = set()
        for finding in findings:
            if (finding.kind in REPAIRABLE_KINDS
                    and finding.key is not None
                    and finding.cluster_id in self.controller.clusters):
                per_cluster.setdefault(finding.cluster_id, []).append(
                    Inconsistency(finding.cluster_id, finding.node,
                                  finding.kind, finding.detail,
                                  key=finding.key))
            elif (finding.kind in CACHE_KINDS
                    and finding.cluster_id in self.controller.clusters):
                cache_flushes.add((finding.cluster_id, finding.node))
            elif (finding.kind in MIGRATION_KINDS
                    and finding.key is not None
                    and finding.cluster_id in self.controller.clusters):
                residue_aborts.add((finding.cluster_id, finding.node,
                                    finding.key[-1]))
            elif (finding.kind in DPU_KINDS
                    and finding.key is not None
                    and finding.cluster_id in self.controller.clusters):
                if finding.kind == "orphaned-dpu-session":
                    session_reaps.add((finding.cluster_id, finding.node,
                                       finding.key))
                else:
                    steer_dupes.add((finding.cluster_id, finding.node,
                                     finding.key))
            else:
                self.counters.add("repairs_skipped")
        applied_total = 0
        for cluster_id in sorted(per_cluster):
            if self.quarantine:
                self.controller.quarantined.add(cluster_id)
            applied, failed = self.controller.targeted_repair(
                cluster_id, per_cluster[cluster_id])
            applied_total += applied
            self.counters.add("repairs_applied", applied)
            if failed:
                self.counters.add("repairs_failed", len(failed))
        for cluster_id, node in sorted(cache_flushes):
            member = self.controller.clusters[cluster_id].find_member(node)
            cache = getattr(member.gateway, "flow_cache", None)
            if cache is not None:
                cache.clear()
                self.counters.add("caches_cleared")
                applied_total += 1
        for cluster_id, node, migration_id in sorted(residue_aborts):
            member = self.controller.clusters[cluster_id].find_member(node)
            state = getattr(member.gateway, "migration", None)
            if state is None:
                continue
            # Tear down the dead migration on this member and push its
            # stranded packets back through the surviving tables: the
            # crash happened before commit, so they still hold the
            # source binding and no connection is lost.
            stranded = state.abort(migration_id)
            for item in stranded:
                member.gateway.forward(item.packet)
            self.counters.add("residue_cleared")
            if stranded:
                self.counters.add("residue_replayed", len(stranded))
            applied_total += 1
        for cluster_id, node, vip in sorted(session_reaps):
            member = self.controller.clusters[cluster_id].find_member(node)
            sessions = getattr(member.gateway, "sessions", None)
            if sessions is None:
                continue
            reaped = sessions.drop_vip(vip)
            self.counters.add("dpu_sessions_cleared", reaped)
            applied_total += 1
        cleared: Set[Tuple[str, int, object]] = set()
        for cluster_id, _node, key in sorted(
                steer_dupes, key=lambda item: (item[0], item[1], str(item[2]))):
            vni, prefix = key[0], key[1]
            if (cluster_id, vni, prefix) in cleared:
                continue  # an earlier finding already withdrew cluster-wide
            cleared.add((cluster_id, vni, prefix))
            if (vni, prefix) in self.controller.desired_routes(cluster_id):
                # The withdraw must not step the table-size series
                # backwards: reuse the cluster's last recorded instant.
                sizes = self.controller.table_size_series.series(cluster_id)
                last = sizes.times[-1] if len(sizes) else 0.0
                self.controller.remove_route(cluster_id, vni, prefix, time=last)
            else:
                # Installed on the member but not in this cluster's
                # intent: withdraw the stray copy directly.
                member = self.controller.clusters[cluster_id].find_member(_node)
                member.gateway.remove_route(vni, prefix)
            self.counters.add("tier_duplicates_cleared")
            applied_total += 1
        # Probe-before-readmit for every cluster the cycle touched.
        for cluster_id in sorted(set(per_cluster)
                                 | {c for c, _n in cache_flushes}
                                 | {c for c, _n, _m in residue_aborts}
                                 | {c for c, _n, _v in session_reaps}
                                 | {c for c, _n, _k in steer_dupes}):
            self.controller._probe_gate(cluster_id)
        return applied_total
