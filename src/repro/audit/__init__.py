"""Cross-layer invariant auditor (§6.1, taken past consistency checks).

The controller's ``consistency_check`` compares its own intent store
against gateway tables — which is blind to everything the intent store
cannot see: bindings that should have been deleted but survived
(``extra-vm``), lookup structures that diverge from their own rule list,
shadowed ACL rules, broken peer chains, cross-tenant leaks, counter
identities, and poisoned flow-cache entries whose generation vector is
still current. ``repro.audit`` closes those blind spots:

* :class:`~repro.audit.intent.IntentSnapshot` captures the desired state
  twice — from the live controller and independently from
  ``journal.materialize()`` — so the auditor never trusts a single
  source of truth;
* :mod:`~repro.audit.invariants` is the invariant library (route/VM
  equivalence, LPM-vs-oracle, shadow rules, chain termination, tenant
  isolation, counter conservation, flow-cache coherence);
* :class:`~repro.audit.scanner.AuditScanner` runs those invariants as a
  budgeted incremental sweep on the simulation engine, with seeded key
  sampling and a byte-stable findings log;
* :class:`~repro.audit.repair.RepairBridge` converts repairable findings
  into the controller's targeted-repair path (quarantine →
  ``targeted_repair`` → probe-before-readmit) and clears poisoned flow
  caches.
"""

from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding, FindingsLog
from .intent import IntentSnapshot, diff_snapshots
from .invariants import (
    ALL_INVARIANTS,
    AuditContext,
    ChainTermination,
    CounterConservation,
    FlowCacheCoherence,
    Invariant,
    LpmOracleEquivalence,
    RouteEquivalence,
    ShadowRules,
    TenantIsolation,
    VmEquivalence,
    tcam_shadow_findings,
)
from .repair import REPAIRABLE_KINDS, RepairBridge
from .sampling import sample_addresses, sample_route_keys
from .scanner import AuditConfig, AuditScanner

__all__ = [
    "Finding",
    "FindingsLog",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "IntentSnapshot",
    "diff_snapshots",
    "Invariant",
    "AuditContext",
    "ALL_INVARIANTS",
    "RouteEquivalence",
    "VmEquivalence",
    "LpmOracleEquivalence",
    "ShadowRules",
    "ChainTermination",
    "TenantIsolation",
    "CounterConservation",
    "FlowCacheCoherence",
    "tcam_shadow_findings",
    "sample_addresses",
    "sample_route_keys",
    "AuditConfig",
    "AuditScanner",
    "RepairBridge",
    "REPAIRABLE_KINDS",
]
