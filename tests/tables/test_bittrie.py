"""Tests for the generic-width LPM trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.bittrie import GenericLpmTrie
from repro.tables.errors import DuplicateEntryError, MissingEntryError


def make_prefix(width):
    """Strategy for a valid (network, length) pair in a width-bit space."""
    return st.integers(min_value=0, max_value=width).flatmap(
        lambda length: st.tuples(
            st.integers(min_value=0, max_value=(1 << length) - 1 if length else 0).map(
                lambda head: head << (width - length) if length else 0
            ),
            st.just(length),
        )
    )


class TestBasics:
    def test_insert_lookup(self):
        trie = GenericLpmTrie(8)
        trie.insert(0b10000000, 1, "wide")
        trie.insert(0b10100000, 3, "narrow")
        assert trie.lookup(0b10111111) == (0b10100000, 3, "narrow")
        assert trie.lookup(0b10011111) == (0b10000000, 1, "wide")
        assert trie.lookup(0b01000000) is None

    def test_default_route(self):
        trie = GenericLpmTrie(8)
        trie.insert(0, 0, "default")
        assert trie.lookup(0xFF) == (0, 0, "default")

    def test_full_length_entry(self):
        trie = GenericLpmTrie(8)
        trie.insert(0xAB, 8, "host")
        assert trie.lookup(0xAB)[2] == "host"
        assert trie.lookup(0xAC) is None

    def test_duplicate_raises(self):
        trie = GenericLpmTrie(8)
        trie.insert(0x80, 1, "a")
        with pytest.raises(DuplicateEntryError):
            trie.insert(0x80, 1, "b")

    def test_replace(self):
        trie = GenericLpmTrie(8)
        trie.insert(0x80, 1, "a")
        trie.insert(0x80, 1, "b", replace=True)
        assert trie.get(0x80, 1) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = GenericLpmTrie(8)
        trie.insert(0x80, 1, "a")
        trie.insert(0xC0, 2, "b")
        assert trie.remove(0xC0, 2) == "b"
        assert trie.lookup(0xC5)[2] == "a"
        assert len(trie) == 1

    def test_remove_missing(self):
        trie = GenericLpmTrie(8)
        with pytest.raises(MissingEntryError):
            trie.remove(0x80, 1)

    def test_remove_intermediate_node_without_value(self):
        trie = GenericLpmTrie(8)
        trie.insert(0xC0, 4, "deep")
        with pytest.raises(MissingEntryError):
            trie.remove(0xC0, 2)

    def test_host_bits_rejected(self):
        trie = GenericLpmTrie(8)
        with pytest.raises(ValueError):
            trie.insert(0x81, 1, "bad")

    def test_out_of_range_length(self):
        trie = GenericLpmTrie(8)
        with pytest.raises(ValueError):
            trie.insert(0, 9, "bad")

    def test_contains(self):
        trie = GenericLpmTrie(8)
        trie.insert(0x80, 1, "a")
        assert trie.contains(0x80, 1)
        assert not trie.contains(0xC0, 2)

    def test_items_sorted_by_trie_order(self):
        trie = GenericLpmTrie(8)
        trie.insert(0xC0, 2, "b")
        trie.insert(0x80, 1, "a")
        trie.insert(0, 0, "root")
        items = list(trie.items())
        assert items[0] == (0, 0, "root")
        assert len(items) == 3

    def test_covering_entries(self):
        trie = GenericLpmTrie(8)
        trie.insert(0, 0, "root")
        trie.insert(0x80, 1, "l1")
        trie.insert(0xC0, 3, "l3")
        covering = trie.covering_entries(0xC0, 4)
        assert [c[2] for c in covering] == ["root", "l1", "l3"]

    def test_covering_stops_at_missing_branch(self):
        trie = GenericLpmTrie(8)
        trie.insert(0, 0, "root")
        covering = trie.covering_entries(0x40, 6)
        assert [c[2] for c in covering] == ["root"]

    def test_pruning_after_remove(self):
        trie = GenericLpmTrie(16)
        trie.insert(0x8000, 12, "x")
        trie.remove(0x8000, 12)
        # Root has no children left.
        assert trie._root.children == [None, None]


class TestPropertyVsLinearScan:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(make_prefix(16), min_size=1, max_size=40, unique=True),
        st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=30),
    )
    def test_lookup_matches_linear_scan(self, prefixes, keys):
        width = 16
        trie = GenericLpmTrie(width)
        table = {}
        for i, (network, length) in enumerate(prefixes):
            trie.insert(network, length, i, replace=True)
            table[(network, length)] = i

        def scan(key):
            best = None
            for (network, length), value in table.items():
                mask = ((1 << length) - 1) << (width - length) if length else 0
                if key & mask == network:
                    if best is None or length > best[1]:
                        best = (network, length, value)
            return best

        for key in keys:
            assert trie.lookup(key) == scan(key)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(make_prefix(12), min_size=1, max_size=30, unique=True))
    def test_insert_remove_roundtrip(self, prefixes):
        trie = GenericLpmTrie(12)
        for i, (network, length) in enumerate(prefixes):
            trie.insert(network, length, i, replace=True)
        inserted = dict(((n, l), v) for n, l, v in trie.items())
        for (network, length), value in inserted.items():
            assert trie.remove(network, length) == value
        assert len(trie) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(make_prefix(12), min_size=1, max_size=30, unique=True))
    def test_items_returns_exactly_inserted(self, prefixes):
        trie = GenericLpmTrie(12)
        expected = {}
        for i, (network, length) in enumerate(prefixes):
            trie.insert(network, length, i, replace=True)
            expected[(network, length)] = i
        got = {(n, l): v for n, l, v in trie.items()}
        assert got == expected
