"""Property test: the SNAT table's allocate/release/rewrite lifecycle
and its ``items()`` readback against a plain dict oracle.

The oracle maps each live flow to its allocated public tuple; every
operation is mirrored onto both, and after each step the table's
readback must agree with the oracle exactly — including the
all-or-nothing collision semantics of ``rewrite_source``."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import FlowKey
from repro.tables.errors import TableError
from repro.tables.snat import SnatTable

PUBLIC_IPS = [0xCB007101, 0xCB007102]
# Small universes force port reuse, rewrite collisions and repeated
# translates of the same flow.
SRC_IPS = [0x0A000001, 0x0A000002, 0x0A000003]
SRC_PORTS = [1000, 1001, 1002]

flows = st.builds(
    FlowKey,
    src_ip=st.sampled_from(SRC_IPS),
    dst_ip=st.just(0x08080808),
    proto=st.just(6),
    src_port=st.sampled_from(SRC_PORTS),
    dst_port=st.just(80),
)

operations = st.one_of(
    st.tuples(st.just("translate"), flows),
    st.tuples(st.just("release"), flows),
    st.tuples(st.just("rewrite"), st.sampled_from(SRC_IPS),
              st.sampled_from(SRC_IPS)),
)


def check_readback(table, oracle):
    """items()/lookup()/reverse() must agree with the oracle exactly."""
    read = {flow: (s.public_ip, s.public_port) for flow, s in table.items()}
    assert read == oracle
    assert len(table) == len(oracle)
    assert [flow for flow, _s in table.items()] == sorted(oracle)
    for flow, (public_ip, public_port) in oracle.items():
        session = table.reverse(public_ip, public_port, flow.dst_ip,
                                flow.dst_port, flow.proto)
        assert session is not None and session.flow == flow
    # Every public tuple is unique — no two flows share an allocation.
    assert len(set(oracle.values())) == len(oracle)


@settings(max_examples=200, deadline=None)
@given(st.lists(operations, max_size=40))
def test_snat_table_matches_dict_oracle(ops):
    table = SnatTable(public_ips=list(PUBLIC_IPS))
    oracle = {}
    for op in ops:
        if op[0] == "translate":
            _verb, flow = op
            session = table.translate(flow, now=0.0)
            if flow in oracle:
                # Idempotent: the existing allocation is reused.
                assert (session.public_ip, session.public_port) == oracle[flow]
            else:
                oracle[flow] = (session.public_ip, session.public_port)
        elif op[0] == "release":
            _verb, flow = op
            table.release(flow)
            oracle.pop(flow, None)
        else:
            _verb, old_ip, new_ip = op
            # A same-address rewrite is a declared no-op.
            moving = (set() if old_ip == new_ip
                      else {f for f in oracle if f.src_ip == old_ip})
            collides = old_ip != new_ip and any(
                replace(f, src_ip=new_ip) in oracle
                and replace(f, src_ip=new_ip) not in moving
                for f in moving)
            if collides:
                try:
                    table.rewrite_source(old_ip, new_ip)
                    raise AssertionError("collision not detected")
                except TableError:
                    pass  # all-or-nothing: oracle unchanged
            else:
                pairs = table.rewrite_source(old_ip, new_ip)
                assert sorted(old for old, _new in pairs) == sorted(moving)
                for old_flow, new_flow in pairs:
                    # The public tuple rides along with the re-key.
                    oracle[new_flow] = oracle.pop(old_flow)
        check_readback(table, oracle)


@settings(max_examples=50, deadline=None)
@given(st.lists(flows, min_size=1, max_size=10, unique=True))
def test_release_returns_every_port(batch):
    table = SnatTable(public_ips=list(PUBLIC_IPS))
    before = table.available_ports()
    for flow in batch:
        table.translate(flow, now=0.0)
    assert table.available_ports() == before - len(batch)
    for flow in batch:
        table.release(flow)
    assert table.available_ports() == before
    assert list(table.items()) == []
