"""Tests for the VM-NC mapping table and the SNAT session table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.flow import FlowKey
from repro.tables.errors import TableFullError
from repro.tables.snat import SnatTable
from repro.tables.vm_nc import NcBinding, VmNcTable


class TestVmNc:
    def test_insert_lookup(self):
        table = VmNcTable()
        table.insert(10, 0xC0A80A02, 4, NcBinding(nc_ip=0x0A010101))
        binding = table.lookup(10, 0xC0A80A02, 4)
        assert binding.nc_ip == 0x0A010101

    def test_fig2_contents(self):
        """The VM-NC rows of the paper's Fig. 2."""
        import ipaddress

        def ip(t):
            return int(ipaddress.ip_address(t))

        table = VmNcTable()
        table.insert(100, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))
        table.insert(100, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
        table.insert(200, ip("192.168.30.5"), 4, NcBinding(ip("10.1.1.15")))
        assert table.lookup(100, ip("192.168.10.3"), 4).nc_ip == ip("10.1.1.12")
        assert table.lookup(200, ip("192.168.30.5"), 4).nc_ip == ip("10.1.1.15")
        # Same IP, wrong VPC -> miss.
        assert table.lookup(200, ip("192.168.10.2"), 4) is None

    def test_dual_stack(self):
        table = VmNcTable()
        table.insert(10, 1 << 100, 6, NcBinding(nc_ip=0x0A010102))
        assert table.lookup(10, 1 << 100, 6).nc_ip == 0x0A010102

    def test_per_vni_counts(self):
        table = VmNcTable()
        table.insert(10, 1, 4, NcBinding(2))
        table.insert(10, 2, 4, NcBinding(2))
        table.insert(11, 3, 4, NcBinding(2))
        assert table.count_for_vni(10) == 2
        table.remove(10, 1, 4)
        assert table.count_for_vni(10) == 1
        table.remove(10, 2, 4)
        assert table.count_for_vni(10) == 0

    def test_capacity(self):
        table = VmNcTable(capacity_entries=1)
        table.insert(10, 1, 4, NcBinding(2))
        with pytest.raises(TableFullError):
            table.insert(10, 2, 4, NcBinding(2))
        assert table.load == 1.0

    def test_bad_nc_version(self):
        with pytest.raises(ValueError):
            NcBinding(nc_ip=1, nc_version=5)

    def test_footprint_grows(self):
        table = VmNcTable()
        before = table.footprint().sram_words
        table.insert(10, 1, 4, NcBinding(2))
        assert table.footprint().sram_words > before


def make_flow(i=0, dst=0x08080808, dport=80):
    return FlowKey(src_ip=0x0A000001 + i, dst_ip=dst, proto=6,
                   src_port=5000 + i, dst_port=dport)


class TestSnat:
    def test_translate_and_reverse(self):
        table = SnatTable(public_ips=[0x01020304])
        flow = make_flow()
        session = table.translate(flow, now=0.0)
        assert session.public_ip == 0x01020304
        reverse = table.reverse(session.public_ip, session.public_port,
                                flow.dst_ip, flow.dst_port, flow.proto)
        assert reverse is session

    def test_same_flow_same_session(self):
        table = SnatTable(public_ips=[1])
        flow = make_flow()
        s1 = table.translate(flow, now=0.0)
        s2 = table.translate(flow, now=5.0)
        assert s1 is s2 and s2.last_active == 5.0
        assert len(table) == 1

    def test_distinct_flows_distinct_ports(self):
        table = SnatTable(public_ips=[1])
        sessions = [table.translate(make_flow(i), now=0.0) for i in range(50)]
        pairs = {(s.public_ip, s.public_port) for s in sessions}
        assert len(pairs) == 50

    def test_spreads_over_public_ips(self):
        table = SnatTable(public_ips=[1, 2, 3, 4])
        used = {table.translate(make_flow(i), now=0.0).public_ip for i in range(80)}
        assert len(used) > 1

    def test_session_capacity(self):
        table = SnatTable(public_ips=[1], capacity_sessions=2)
        table.translate(make_flow(0), now=0.0)
        table.translate(make_flow(1), now=0.0)
        with pytest.raises(TableFullError):
            table.translate(make_flow(2), now=0.0)

    def test_pool_exhaustion(self):
        # One public IP with a tiny port range.
        table = SnatTable(public_ips=[1])
        table._pools[1].free = [1024, 1025]
        table.translate(make_flow(0), now=0.0)
        table.translate(make_flow(1), now=0.0)
        with pytest.raises(TableFullError):
            table.translate(make_flow(2), now=0.0)

    def test_release_returns_port(self):
        table = SnatTable(public_ips=[1])
        table._pools[1].free = [1024]
        flow = make_flow()
        table.translate(flow, now=0.0)
        table.release(flow)
        assert table.available_ports() == 1
        # Port is reusable.
        table.translate(make_flow(9), now=0.0)

    def test_release_unknown_flow_is_noop(self):
        table = SnatTable(public_ips=[1])
        table.release(make_flow())  # does not raise

    def test_expiry(self):
        table = SnatTable(public_ips=[1], idle_timeout=10.0)
        old = make_flow(0)
        fresh = make_flow(1)
        table.translate(old, now=0.0)
        table.translate(fresh, now=95.0)
        expired = table.expire_idle(now=100.0)
        assert expired == 1
        assert table.lookup(old) is None and table.lookup(fresh) is not None
        assert table.expired == 1

    def test_reverse_mismatched_remote_misses(self):
        table = SnatTable(public_ips=[1])
        flow = make_flow()
        session = table.translate(flow, now=0.0)
        assert table.reverse(session.public_ip, session.public_port,
                             0x09090909, flow.dst_port, flow.proto) is None

    def test_needs_public_ip(self):
        with pytest.raises(ValueError):
            SnatTable(public_ips=[])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=100))
    def test_forward_reverse_always_consistent(self, indices):
        table = SnatTable(public_ips=[1, 2])
        for i in indices:
            flow = make_flow(i)
            session = table.translate(flow, now=0.0)
            back = table.reverse(session.public_ip, session.public_port,
                                 flow.dst_ip, flow.dst_port, flow.proto)
            assert back.flow == flow
        # No two sessions share a public (ip, port).
        pairs = [(s.public_ip, s.public_port) for s in table._by_flow.values()]
        assert len(pairs) == len(set(pairs))
