"""Property-based differential test: ``tables.alpm`` against a naive
linear-scan LPM oracle, over seeded random prefix/probe sets (~1k probes
per configuration — deterministic, no hypothesis needed)."""

import pytest

from repro.sim.rand import derive
from repro.tables.alpm import AlpmTable


def _mask(length, width):
    return ((1 << length) - 1) << (width - length) if length else 0


def oracle_lookup(routes, key, width):
    """Longest matching route by brute-force linear scan."""
    best = None
    for network, length, value in routes:
        if key & _mask(length, width) == network:
            if best is None or length > best[1]:
                best = (network, length, value)
    return best


def random_routes(rng, width, count):
    """*count* distinct (network, length, value) routes, seeded."""
    routes = {}
    while len(routes) < count:
        length = rng.randint(0, width)
        network = rng.getrandbits(width) & _mask(length, width)
        routes[(network, length)] = f"r{len(routes)}"
    return [(network, length, value) for (network, length), value in routes.items()]


def probe_keys(rng, routes, width, count):
    """Random keys plus keys derived from route boundaries (the cases
    partitioning gets wrong first: exact pivots, one-past boundaries)."""
    keys = [rng.getrandbits(width) for _ in range(count)]
    for network, length, _value in routes:
        keys.append(network)
        keys.append(network | (~_mask(length, width) & ((1 << width) - 1)))
        keys.append(rng.getrandbits(width) & ~_mask(length, width) | network)
    return keys


@pytest.mark.parametrize("width,n_routes,bucket", [
    (8, 30, 1),
    (8, 60, 4),
    (16, 200, 4),
    (16, 200, 16),
    (32, 400, 8),
    (32, 400, 64),
])
def test_alpm_matches_oracle(width, n_routes, bucket):
    rng = derive(2021, "alpm-diff", width, n_routes, bucket)
    routes = random_routes(rng, width, n_routes)
    table = AlpmTable.build(width, routes, bucket_capacity=bucket)
    assert len(table) == len(routes)
    for key in probe_keys(rng, routes, width, 1000):
        expected = oracle_lookup(routes, key, width)
        got = table.lookup(key)
        assert got == expected, (
            f"key={key:#x}: alpm={got} oracle={expected} "
            f"(width={width}, bucket={bucket})"
        )


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_alpm_matches_oracle_under_churn(seed):
    """Interleaved incremental inserts/removes stay oracle-equal."""
    width, bucket = 16, 4
    rng = derive(seed, "alpm-churn")
    routes = random_routes(rng, width, 80)
    live = dict()
    table = AlpmTable(width, bucket_capacity=bucket)
    pending = list(routes)
    for step in range(200):
        do_insert = not live or (pending and rng.random() < 0.6)
        if do_insert and pending:
            network, length, value = pending.pop()
            table.insert(network, length, value)
            live[(network, length)] = value
        elif live:
            key = rng.choice(sorted(live))
            table.remove(*key)
            del live[key]
        if step % 10 == 0:
            current = [(n, l, v) for (n, l), v in live.items()]
            for probe in probe_keys(rng, current, width, 40):
                assert table.lookup(probe) == oracle_lookup(current, probe, width)
    assert len(table) == len(live)


def test_alpm_full_width_keys_with_vni_prefix():
    """Composite (VNI || IPv4) keys — the switch's actual key layout."""
    width = 56  # 24-bit VNI + 32-bit address
    rng = derive(2021, "alpm-vni")
    routes = []
    for vni in (1, 2, 3):
        for network, length, value in random_routes(rng, 32, 40):
            routes.append(((vni << 32) | network, 24 + length, f"{vni}:{value}"))
    table = AlpmTable.build(width, routes, bucket_capacity=8)
    for _ in range(1000):
        vni = rng.choice((1, 2, 3, 4))
        key = (vni << 32) | rng.getrandbits(32)
        assert table.lookup(key) == oracle_lookup(routes, key, width)
