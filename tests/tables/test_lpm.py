"""Tests for the Prefix-typed LPM wrapper."""

import ipaddress

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addr import Prefix
from repro.tables.errors import DuplicateEntryError, MissingEntryError
from repro.tables.lpm import LpmTrie


def ip(text):
    return int(ipaddress.ip_address(text))


class TestLpmTrie:
    def test_longest_match_wins(self):
        trie = LpmTrie(4)
        trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        trie.insert(Prefix.parse("10.1.0.0/16"), "fine")
        trie.insert(Prefix.parse("10.1.2.0/24"), "finest")
        assert trie.lookup(ip("10.1.2.3"))[1] == "finest"
        assert trie.lookup(ip("10.1.9.9"))[1] == "fine"
        assert trie.lookup(ip("10.9.9.9"))[1] == "coarse"
        assert trie.lookup(ip("11.0.0.1")) is None

    def test_lookup_returns_matched_prefix(self):
        trie = LpmTrie(4)
        trie.insert(Prefix.parse("192.168.10.0/24"), "x")
        prefix, _ = trie.lookup(ip("192.168.10.77"))
        assert str(prefix) == "192.168.10.0/24"

    def test_v6(self):
        trie = LpmTrie(6)
        trie.insert(Prefix.parse("fd00::/8"), "ula")
        trie.insert(Prefix.parse("fd00:1::/32"), "tenant")
        assert trie.lookup(ip("fd00:1::99"))[1] == "tenant"
        assert trie.lookup(ip("fd77::1"))[1] == "ula"

    def test_version_mismatch(self):
        trie = LpmTrie(4)
        with pytest.raises(ValueError):
            trie.insert(Prefix.parse("fd00::/8"), "x")

    def test_contains_cross_version_false(self):
        trie = LpmTrie(4)
        assert Prefix.parse("fd00::/8") not in trie

    def test_duplicate_and_replace(self):
        trie = LpmTrie(4)
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        with pytest.raises(DuplicateEntryError):
            trie.insert(p, "b")
        trie.insert(p, "b", replace=True)
        assert trie.get(p) == "b"

    def test_remove(self):
        trie = LpmTrie(4)
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        assert trie.remove(p) == "a"
        with pytest.raises(MissingEntryError):
            trie.get(p)

    def test_items(self):
        trie = LpmTrie(4)
        entries = {Prefix.parse("10.0.0.0/8"): "a", Prefix.parse("192.168.0.0/16"): "b"}
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        assert dict(trie.items()) == entries

    def test_covering_entries(self):
        trie = LpmTrie(4)
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        trie.insert(Prefix.parse("10.0.0.0/8"), "mid")
        covering = trie.covering_entries(Prefix.parse("10.1.0.0/16"))
        assert [v for _p, v in covering] == ["default", "mid"]

    def test_paper_fig2_vxlan_routes(self):
        """The exact routes from Fig. 2 of the paper."""
        trie = LpmTrie(4)
        trie.insert(Prefix.parse("192.168.10.0/24"), ("local", 0))
        trie.insert(Prefix.parse("192.168.30.0/24"), ("peer", "VPC B"))
        # Same-VPC destination.
        assert trie.lookup(ip("192.168.10.3"))[1] == ("local", 0)
        # Cross-VPC destination.
        assert trie.lookup(ip("192.168.30.5"))[1] == ("peer", "VPC B")


@st.composite
def v4_prefixes(draw):
    plen = draw(st.integers(min_value=0, max_value=32))
    value = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    return Prefix.of(value, plen, 4)


class TestLpmProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(v4_prefixes(), min_size=1, max_size=30, unique=True),
        st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=20),
    )
    def test_matches_ipaddress_module(self, prefixes, keys):
        trie = LpmTrie(4)
        networks = {}
        for i, prefix in enumerate(prefixes):
            trie.insert(prefix, i, replace=True)
            networks[ipaddress.ip_network(str(prefix))] = i

        for key in keys:
            addr = ipaddress.ip_address(key)
            candidates = [
                (net.prefixlen, value)
                for net, value in networks.items()
                if addr in net
            ]
            expected = max(candidates)[1] if candidates else None
            got = trie.lookup(key)
            assert (got[1] if got else None) == expected
