"""Tests for the VXLAN routing table, including Fig. 2's scenarios."""

import ipaddress

import pytest

from repro.net.addr import Prefix
from repro.tables.errors import MissingEntryError
from repro.tables.vxlan_routing import (
    RouteAction,
    RoutingLoopError,
    Scope,
    VxlanRoutingTable,
)

VPC_A, VPC_B = 100, 200


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def fig2_table():
    """The exact table contents of the paper's Fig. 2."""
    table = VxlanRoutingTable()
    table.insert(VPC_A, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    table.insert(VPC_A, Prefix.parse("192.168.30.0/24"),
                 RouteAction(Scope.PEER, next_hop_vni=VPC_B))
    table.insert(VPC_B, Prefix.parse("192.168.30.0/24"), RouteAction(Scope.LOCAL))
    table.insert(VPC_B, Prefix.parse("192.168.10.0/24"),
                 RouteAction(Scope.PEER, next_hop_vni=VPC_A))
    return table


class TestFig2:
    def test_same_vpc_lookup(self, fig2_table):
        prefix, action = fig2_table.lookup(VPC_A, ip("192.168.10.3"), 4)
        assert action.scope is Scope.LOCAL
        assert str(prefix) == "192.168.10.0/24"

    def test_cross_vpc_resolution(self, fig2_table):
        res = fig2_table.resolve(VPC_A, ip("192.168.30.5"), 4)
        assert res.vni == VPC_B
        assert res.action.scope is Scope.LOCAL
        assert res.hops == 1

    def test_reverse_direction(self, fig2_table):
        res = fig2_table.resolve(VPC_B, ip("192.168.10.2"), 4)
        assert res.vni == VPC_A and res.hops == 1

    def test_no_route(self, fig2_table):
        assert fig2_table.lookup(VPC_A, ip("8.8.8.8"), 4) is None
        with pytest.raises(MissingEntryError):
            fig2_table.resolve(VPC_A, ip("8.8.8.8"), 4)


class TestRouteAction:
    def test_peer_requires_next_hop(self):
        with pytest.raises(ValueError):
            RouteAction(Scope.PEER)

    def test_non_peer_rejects_next_hop(self):
        with pytest.raises(ValueError):
            RouteAction(Scope.LOCAL, next_hop_vni=5)


class TestTableMechanics:
    def test_vni_range_check(self):
        table = VxlanRoutingTable()
        with pytest.raises(ValueError):
            table.insert(1 << 24, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))

    def test_remove_prunes_empty_vni(self):
        table = VxlanRoutingTable()
        p = Prefix.parse("10.0.0.0/8")
        table.insert(5, p, RouteAction(Scope.LOCAL))
        table.remove(5, p)
        assert 5 not in table.vnis()
        with pytest.raises(MissingEntryError):
            table.remove(5, p)

    def test_counts_per_family(self):
        table = VxlanRoutingTable()
        table.insert(1, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        table.insert(1, Prefix.parse("fd00::/8"), RouteAction(Scope.LOCAL))
        table.insert(2, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        assert len(table) == 3
        assert table.count(4) == 2 and table.count(6) == 1

    def test_vni_isolation(self):
        """Identical prefixes in different VPCs do not interfere."""
        table = VxlanRoutingTable()
        table.insert(1, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        table.insert(2, Prefix.parse("10.0.0.0/8"),
                     RouteAction(Scope.PEER, next_hop_vni=1))
        assert table.lookup(1, ip("10.1.1.1"), 4)[1].scope is Scope.LOCAL
        assert table.lookup(2, ip("10.1.1.1"), 4)[1].scope is Scope.PEER

    def test_entries_for_vni(self):
        table = VxlanRoutingTable()
        table.insert(7, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        table.insert(7, Prefix.parse("fd00::/8"), RouteAction(Scope.LOCAL))
        table.insert(8, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        assert len(table.entries_for_vni(7)) == 2

    def test_peer_loop_detected(self):
        table = VxlanRoutingTable()
        p = Prefix.parse("10.0.0.0/8")
        table.insert(1, p, RouteAction(Scope.PEER, next_hop_vni=2))
        table.insert(2, p, RouteAction(Scope.PEER, next_hop_vni=1))
        with pytest.raises(RoutingLoopError):
            table.resolve(1, ip("10.1.1.1"), 4)

    def test_long_chain_resolves(self):
        table = VxlanRoutingTable()
        p = Prefix.parse("10.0.0.0/8")
        for i in range(5):
            table.insert(i, p, RouteAction(Scope.PEER, next_hop_vni=i + 1))
        table.insert(5, p, RouteAction(Scope.LOCAL))
        res = table.resolve(0, ip("10.1.1.1"), 4)
        assert res.vni == 5 and res.hops == 5

    def test_service_scope(self):
        table = VxlanRoutingTable()
        table.insert(1, Prefix.parse("0.0.0.0/0"),
                     RouteAction(Scope.SERVICE, target="snat"))
        res = table.resolve(1, ip("8.8.8.8"), 4)
        assert res.action.scope is Scope.SERVICE and res.action.target == "snat"

    def test_hit_stats(self):
        table = VxlanRoutingTable()
        table.insert(1, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        table.lookup(1, ip("10.0.0.1"), 4)
        table.lookup(1, ip("11.0.0.1"), 4)
        table.lookup(9, ip("10.0.0.1"), 4)
        assert table.lookups == 3 and table.hits == 1


class TestCompositeKeys:
    def test_composite_roundtrip_v4(self):
        table = VxlanRoutingTable()
        table.insert(7, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        routes = table.to_composite_routes()
        assert len(routes) == 1
        network, length, action = routes[0]
        assert length == 24 + 1 + 8
        key = VxlanRoutingTable.composite_key(7, ip("10.1.2.3"), 4)
        width = VxlanRoutingTable.composite_width()
        mask = ((1 << length) - 1) << (width - length)
        assert key & mask == network

    def test_composite_v4_v6_disjoint(self):
        """The AF bit keeps a v4 /8 from matching v6 keys."""
        table = VxlanRoutingTable()
        table.insert(7, Prefix.parse("0.0.0.0/0"), RouteAction(Scope.LOCAL))
        network, length, _ = table.to_composite_routes()[0]
        width = VxlanRoutingTable.composite_width()
        v6_key = VxlanRoutingTable.composite_key(7, 1 << 100, 6)
        mask = ((1 << length) - 1) << (width - length)
        assert v6_key & mask != network

    def test_composite_matches_resolve_through_alpm(self):
        """End-to-end: ALPM over composite keys == per-VNI trie lookups."""
        import random
        from repro.tables.alpm import AlpmTable

        rng = random.Random(41)
        table = VxlanRoutingTable()
        for vni in range(20):
            for s in range(5):
                net = (10 << 24) + (rng.randrange(1 << 12) << 12)
                table.insert(vni, Prefix.of(net, 20, 4), RouteAction(Scope.LOCAL), replace=True)
        alpm = AlpmTable.build(
            VxlanRoutingTable.composite_width(), table.to_composite_routes(),
            bucket_capacity=8,
        )
        for _ in range(400):
            vni = rng.randrange(20)
            addr = (10 << 24) + rng.randrange(1 << 24)
            direct = table.lookup(vni, addr, 4)
            via_alpm = alpm.lookup(VxlanRoutingTable.composite_key(vni, addr, 4))
            assert (direct is None) == (via_alpm is None)
            if direct is not None:
                assert via_alpm[2] == direct[1]
