"""Incremental ALPM updates: correctness vs the trie oracle under churn."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.alpm import AlpmTable
from repro.tables.bittrie import GenericLpmTrie
from repro.tables.errors import DuplicateEntryError, MissingEntryError


def random_route(rng, width):
    length = rng.randint(0, width)
    head = rng.randrange(1 << length) if length else 0
    return head << (width - length), length


def assert_equivalent(table, oracle, rng, width, probes=300):
    for _ in range(probes):
        key = rng.randrange(1 << width)
        assert table.lookup(key) == oracle.lookup(key)


class TestIncrementalInsert:
    def test_insert_into_empty(self):
        table = AlpmTable(8, bucket_capacity=4)
        table.rebuild()
        table.insert(0x80, 1, "a")
        assert table.lookup(0xFF)[2] == "a"
        assert len(table) == 1

    def test_insert_value_update(self):
        table = AlpmTable.build(8, [(0x80, 1, "old")])
        with pytest.raises(DuplicateEntryError):
            table.insert(0x80, 1, "new")
        table.insert(0x80, 1, "new", replace=True)
        assert table.lookup(0xFF)[2] == "new"
        assert len(table) == 1

    def test_overflow_triggers_recarve(self):
        table = AlpmTable.build(8, [], bucket_capacity=2)
        for i in range(8):
            table.insert(i << 5, 3, f"r{i}")
        assert all(len(p.routes) <= 2 for p in table.partitions)
        assert len(table) == 8
        for i in range(8):
            assert table.lookup((i << 5) | 3)[2] == f"r{i}"

    def test_insert_shorter_route_becomes_default(self):
        """A covering route added after carving must reach carved buckets."""
        table = AlpmTable.build(
            16, [((i << 8), 8, f"leaf{i}") for i in range(8)], bucket_capacity=2
        )
        table.insert(0, 0, "default")
        # A key matching no leaf must hit the new default.
        assert table.lookup(0xFFFF)[2] == "default"

    def test_remove(self):
        table = AlpmTable.build(8, [(0x80, 1, "a"), (0xC0, 2, "b")])
        assert table.remove(0xC0, 2) == "b"
        assert table.lookup(0xC5)[2] == "a"
        assert len(table) == 1

    def test_remove_missing(self):
        table = AlpmTable.build(8, [(0x80, 1, "a")])
        with pytest.raises(MissingEntryError):
            table.remove(0xC0, 2)

    def test_remove_covering_route_updates_defaults(self):
        table = AlpmTable.build(
            16,
            [(0, 0, "default"), (0x8000, 1, "half")]
            + [((0x80 + i) << 8, 8, f"leaf{i}") for i in range(8)],
            bucket_capacity=2,
        )
        # Keys in the carved half with no leaf hit "half".
        assert table.lookup(0x8FFF)[2] == "half"
        table.remove(0x8000, 1)
        assert table.lookup(0x8FFF)[2] == "default"


class TestChurnEquivalence:
    def test_random_churn_matches_oracle(self):
        width = 16
        rng = random.Random(47)
        table = AlpmTable.build(width, [], bucket_capacity=6)
        oracle = GenericLpmTrie(width)
        live = {}
        for step in range(400):
            if live and rng.random() < 0.35:
                net, length = rng.choice(list(live))
                table.remove(net, length)
                oracle.remove(net, length)
                del live[(net, length)]
            else:
                net, length = random_route(rng, width)
                value = f"v{step}"
                table.insert(net, length, value, replace=True)
                oracle.insert(net, length, value, replace=True)
                live[(net, length)] = value
            if step % 50 == 0:
                assert_equivalent(table, oracle, rng, width, probes=100)
        assert_equivalent(table, oracle, rng, width)
        assert len(table) == len(live)
        assert all(len(p.routes) <= 6 for p in table.partitions)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=1, max_value=8))
    def test_insert_only_equivalence_property(self, seed, capacity):
        width = 10
        rng = random.Random(seed)
        table = AlpmTable.build(width, [], bucket_capacity=capacity)
        oracle = GenericLpmTrie(width)
        for step in range(60):
            net, length = random_route(rng, width)
            table.insert(net, length, step, replace=True)
            oracle.insert(net, length, step, replace=True)
        assert_equivalent(table, oracle, rng, width, probes=150)

    def test_incremental_equals_bulk_build(self):
        width = 12
        rng = random.Random(51)
        routes = {}
        while len(routes) < 120:
            routes[random_route(rng, width)] = len(routes)
        incremental = AlpmTable.build(width, [], bucket_capacity=5)
        for (net, length), value in routes.items():
            incremental.insert(net, length, value)
        bulk = AlpmTable.build(
            width, [(n, l, v) for (n, l), v in routes.items()], bucket_capacity=5
        )
        for _ in range(500):
            key = rng.randrange(1 << width)
            assert incremental.lookup(key) == bulk.lookup(key)
