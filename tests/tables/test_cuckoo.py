"""Tests for the d-way cuckoo hash table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.cuckoo import CuckooTable, achievable_load_factor
from repro.tables.errors import DuplicateEntryError, MissingEntryError, TableFullError


class TestBasics:
    def test_insert_lookup_remove(self):
        t = CuckooTable(num_buckets=16, ways=4)
        t.insert("a", 1)
        t.insert("b", 2)
        assert t.lookup("a") == 1 and t.lookup("b") == 2
        assert t.lookup("c") is None
        assert t.remove("a") == 1
        assert "a" not in t and "b" in t
        assert len(t) == 1

    def test_duplicate_and_replace(self):
        t = CuckooTable(num_buckets=16)
        t.insert("k", 1)
        with pytest.raises(DuplicateEntryError):
            t.insert("k", 2)
        t.insert("k", 2, replace=True)
        assert t.lookup("k") == 2 and len(t) == 1

    def test_remove_missing(self):
        with pytest.raises(MissingEntryError):
            CuckooTable(num_buckets=4).remove("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            CuckooTable(num_buckets=0)
        with pytest.raises(ValueError):
            CuckooTable(num_buckets=4, ways=0)

    def test_displacement_still_correct(self):
        """Entries remain findable after being kicked between ways."""
        t = CuckooTable(num_buckets=16, ways=4)
        inserted = {}
        for i in range(44):  # ~0.69 load forces kicks
            t.insert(i, i * 10)
            inserted[i] = i * 10
        assert t.displacements > 0
        for key, value in inserted.items():
            assert t.lookup(key) == value

    def test_items(self):
        t = CuckooTable(num_buckets=16)
        for i in range(10):
            t.insert(i, -i)
        assert dict(t.items()) == {i: -i for i in range(10)}

    def test_full_raises(self):
        t = CuckooTable(num_buckets=2, ways=1)
        with pytest.raises(TableFullError):
            for i in range(100):
                t.insert(i, i)


class TestLoadFactor:
    def test_four_way_sustains_high_load(self):
        """Grounds ExactTable's 0.95 default fill factor."""
        assert achievable_load_factor(4) > 0.93

    def test_more_ways_more_load(self):
        one = achievable_load_factor(1)
        two = achievable_load_factor(2)
        four = achievable_load_factor(4)
        assert one < two < four

    def test_load_factor_property(self):
        t = CuckooTable(num_buckets=10, ways=2)
        t.insert("x", 1)
        assert t.load_factor == pytest.approx(1 / 20)


class TestPropertyVsDict:
    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.integers(), st.integers(), max_size=60))
    def test_behaves_like_dict(self, entries):
        t = CuckooTable(num_buckets=64, ways=4)
        for key, value in entries.items():
            t.insert(key, value)
        assert len(t) == len(entries)
        for key, value in entries.items():
            assert t.lookup(key) == value
        assert dict(t.items()) == entries

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=40, unique=True))
    def test_insert_remove_all(self, keys):
        t = CuckooTable(num_buckets=64, ways=4)
        for k in keys:
            t.insert(k, k)
        for k in keys:
            assert t.remove(k) == k
        assert len(t) == 0
