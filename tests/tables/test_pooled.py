"""Tests for IPv4/IPv6 table pooling (expand and compress strategies)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addr import Prefix
from repro.tables.errors import DuplicateEntryError, MissingEntryError, TableFullError
from repro.tables.pooled import POOLED_LPM_KEY_BITS, PooledExactTable, PooledLpmTable


class TestPooledLpm:
    def test_dual_stack_lookup(self):
        table = PooledLpmTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "v4-route")
        table.insert(Prefix.parse("fd00::/8"), "v6-route")
        v4 = table.lookup(0x0A010203, 4)
        v6 = table.lookup(0xFD00 << 112 | 5, 6)
        assert v4[1] == "v4-route" and v6[1] == "v6-route"

    def test_shared_budget(self):
        table = PooledLpmTable(capacity_entries=2)
        table.insert(Prefix.parse("10.0.0.0/8"), "a")
        table.insert(Prefix.parse("fd00::/8"), "b")
        with pytest.raises(TableFullError):
            table.insert(Prefix.parse("192.168.0.0/16"), "c")

    def test_ratio_can_shift_arbitrarily(self):
        """The pooling pitch: any v4/v6 mix fits the same budget."""
        for v6_count in (0, 3, 6):
            table = PooledLpmTable(capacity_entries=6)
            for i in range(6 - v6_count):
                table.insert(Prefix((10 << 24) + (i << 16), 16, 4), i)
            for i in range(v6_count):
                table.insert(Prefix((0xFD00 + i) << 112, 16, 6), i)
            assert len(table) == 6
            assert table.count(6) == v6_count

    def test_uniform_slice_cost(self):
        table = PooledLpmTable(extra_key_bits=24)
        table.insert(Prefix.parse("10.0.0.0/8"), "a")
        four_entries_cost = table.slices_per_entry
        # 24 VNI + 1 AF + 128 addr = 153 bits -> 4 slices at 44b.
        assert four_entries_cost == 4
        assert table.footprint().tcam_slices == 4
        table.insert(Prefix.parse("fd00::/8"), "b")
        assert table.footprint().tcam_slices == 8  # same cost per family

    def test_replace_and_remove(self):
        table = PooledLpmTable()
        p = Prefix.parse("10.0.0.0/8")
        table.insert(p, "a")
        table.insert(p, "b", replace=True)
        assert table.lookup(0x0A000001, 4)[1] == "b"
        assert table.remove(p) == "b"
        assert table.lookup(0x0A000001, 4) is None

    def test_load(self):
        table = PooledLpmTable(capacity_entries=4)
        table.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert table.load == 0.25

    def test_pooled_key_bits_constant(self):
        assert POOLED_LPM_KEY_BITS == 129


class TestPooledExact:
    def test_dual_stack(self):
        table = PooledExactTable()
        table.insert(7, 0x0A000001, 4, "v4")
        table.insert(7, 1 << 100, 6, "v6")
        assert table.lookup(7, 0x0A000001, 4) == "v4"
        assert table.lookup(7, 1 << 100, 6) == "v6"
        assert table.lookup(8, 0x0A000001, 4) is None

    def test_v6_no_false_positive_across_vnis(self):
        table = PooledExactTable()
        table.insert(7, 1 << 100, 6, "v6")
        assert table.lookup(8, 1 << 100, 6) is None

    def test_shared_budget(self):
        table = PooledExactTable(capacity_entries=2)
        table.insert(1, 10, 4, "a")
        table.insert(1, 1 << 99, 6, "b")
        with pytest.raises(TableFullError):
            table.insert(1, 11, 4, "c")

    def test_duplicate_v4(self):
        table = PooledExactTable()
        table.insert(1, 10, 4, "a")
        with pytest.raises(DuplicateEntryError):
            table.insert(1, 10, 4, "b")
        table.insert(1, 10, 4, "b", replace=True)
        assert table.lookup(1, 10, 4) == "b"

    def test_remove(self):
        table = PooledExactTable()
        table.insert(1, 10, 4, "a")
        table.insert(1, 1 << 99, 6, "b")
        assert table.remove(1, 10, 4) == "a"
        assert table.remove(1, 1 << 99, 6) == "b"
        with pytest.raises(MissingEntryError):
            table.remove(1, 10, 4)
        with pytest.raises(MissingEntryError):
            table.remove(2, 1 << 99, 6)

    def test_bad_version(self):
        table = PooledExactTable()
        with pytest.raises(ValueError):
            table.insert(1, 10, 5, "a")

    def test_one_word_entries(self):
        table = PooledExactTable(fill_factor=1.0)
        assert table.words_per_entry == 1

    def test_footprint_counts_conflicts_extra(self):
        table = PooledExactTable(fill_factor=1.0)
        for i in range(10):
            table.insert(1, 10 + i, 4, i)
        base = table.footprint().sram_words
        assert base == 10
        assert table.conflict_entries() == 0

    def test_hit_stats(self):
        table = PooledExactTable()
        table.insert(1, 10, 4, "a")
        table.lookup(1, 10, 4)
        table.lookup(1, 11, 4)
        assert table.lookups == 2 and table.hits == 1

    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=2 ** 128 - 1),
                st.sampled_from([4, 6]),
            ),
            st.integers(),
            max_size=40,
        )
    )
    def test_behaves_like_dict(self, entries):
        # Keep v4 addresses in range.
        entries = {
            (vni, addr & 0xFFFFFFFF if ver == 4 else addr, ver): val
            for (vni, addr, ver), val in entries.items()
        }
        table = PooledExactTable()
        for (vni, addr, ver), val in entries.items():
            table.insert(vni, addr, ver, val, replace=True)
        for (vni, addr, ver), val in entries.items():
            assert table.lookup(vni, addr, ver) == val
        assert len(table) == len(entries)
