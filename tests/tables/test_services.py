"""Tests for the ACL, meter and counter service tables."""

import pytest

from repro.net.flow import FlowKey
from repro.tables.acl import AclRule, AclTable, AclVerdict
from repro.tables.counter import CounterTable
from repro.tables.errors import DuplicateEntryError, MissingEntryError, TableFullError
from repro.tables.meter import MeterColor, MeterTable, TokenBucket


def flow(src=0x0A000001, dst=0x0A000002, proto=6, sport=1000, dport=80):
    return FlowKey(src, dst, proto, sport, dport)


class TestAcl:
    def test_default_permit(self):
        acl = AclTable()
        assert acl.evaluate(1, flow()) is AclVerdict.PERMIT

    def test_default_deny(self):
        acl = AclTable(default_verdict=AclVerdict.DENY)
        assert acl.evaluate(1, flow()) is AclVerdict.DENY

    def test_first_match_by_priority(self):
        acl = AclTable()
        acl.insert(AclRule(priority=10, verdict=AclVerdict.DENY, proto=6))
        acl.insert(AclRule(priority=20, verdict=AclVerdict.PERMIT,
                           dst_ports=(80, 80)))
        # Higher priority permit wins even though deny also matches.
        assert acl.evaluate(1, flow()) is AclVerdict.PERMIT
        # Non-80 TCP hits the deny.
        assert acl.evaluate(1, flow(dport=22)) is AclVerdict.DENY

    def test_vni_scoping(self):
        acl = AclTable()
        acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY, vni=7))
        assert acl.evaluate(7, flow()) is AclVerdict.DENY
        assert acl.evaluate(8, flow()) is AclVerdict.PERMIT

    def test_network_masks(self):
        acl = AclTable()
        acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY,
                           src_net=(0x0A000000, 0xFF000000)))
        assert acl.evaluate(1, flow(src=0x0A123456)) is AclVerdict.DENY
        assert acl.evaluate(1, flow(src=0x0B000001)) is AclVerdict.PERMIT

    def test_port_ranges(self):
        acl = AclTable()
        acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY,
                           dst_ports=(1, 1023)))
        assert acl.evaluate(1, flow(dport=22)) is AclVerdict.DENY
        assert acl.evaluate(1, flow(dport=8080)) is AclVerdict.PERMIT

    def test_capacity(self):
        acl = AclTable(capacity_rules=1)
        acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY))
        with pytest.raises(TableFullError):
            acl.insert(AclRule(priority=2, verdict=AclVerdict.DENY))

    def test_duplicate_and_remove(self):
        acl = AclTable()
        rule = AclRule(priority=1, verdict=AclVerdict.DENY)
        acl.insert(rule)
        with pytest.raises(DuplicateEntryError):
            acl.insert(rule)
        acl.remove(rule)
        with pytest.raises(MissingEntryError):
            acl.remove(rule)

    def test_footprint(self):
        acl = AclTable()
        acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY))
        # 128-bit key -> 3 slices of 44 bits.
        assert acl.footprint().tcam_slices == 3


class TestMeter:
    def test_green_under_rate(self):
        bucket = TokenBucket(committed_rate=1000.0, committed_burst=2000.0)
        assert bucket.update(0.0, 500.0) is MeterColor.GREEN

    def test_red_on_burst_exhaustion(self):
        bucket = TokenBucket(committed_rate=100.0, committed_burst=100.0)
        assert bucket.update(0.0, 100.0) is MeterColor.GREEN
        assert bucket.update(0.0, 1.0) is MeterColor.RED

    def test_refill_over_time(self):
        bucket = TokenBucket(committed_rate=100.0, committed_burst=100.0)
        bucket.update(0.0, 100.0)
        assert bucket.update(1.0, 100.0) is MeterColor.GREEN

    def test_two_rate_yellow(self):
        bucket = TokenBucket(committed_rate=100.0, committed_burst=100.0,
                             peak_rate=200.0, peak_burst=200.0)
        assert bucket.update(0.0, 150.0) is MeterColor.YELLOW
        # Peak bucket now at 50; a 100-byte packet exceeds it.
        assert bucket.update(0.0, 100.0) is MeterColor.RED

    def test_time_must_advance(self):
        bucket = TokenBucket(committed_rate=1.0, committed_burst=1.0)
        bucket.update(5.0, 0.5)
        with pytest.raises(ValueError):
            bucket.update(4.0, 0.5)

    def test_bad_config(self):
        with pytest.raises(ValueError):
            TokenBucket(committed_rate=0.0, committed_burst=1.0)

    def test_meter_table_unmetered_passes(self):
        meters = MeterTable()
        assert meters.charge("anything", 0.0, 1e9) is MeterColor.GREEN

    def test_meter_table_counts_colors(self):
        meters = MeterTable()
        meters.configure("t", TokenBucket(committed_rate=10.0, committed_burst=10.0))
        meters.charge("t", 0.0, 10.0)
        meters.charge("t", 0.0, 10.0)
        assert meters.green == 1 and meters.red == 1

    def test_meter_footprint(self):
        meters = MeterTable()
        meters.configure("a", TokenBucket(committed_rate=1.0, committed_burst=1.0))
        assert meters.footprint().sram_words == 1


class TestCounter:
    def test_count_and_read(self):
        counters = CounterTable()
        counters.count("k", 100)
        counters.count("k", 150)
        cell = counters.read("k")
        assert cell.packets == 2 and cell.bytes == 250

    def test_unseen_key_zero(self):
        counters = CounterTable()
        assert counters.read("missing").packets == 0

    def test_reset(self):
        counters = CounterTable()
        counters.count("k", 1)
        counters.reset("k")
        assert counters.read("k").packets == 0

    def test_totals(self):
        counters = CounterTable()
        counters.count("a", 10)
        counters.count("b", 20)
        assert counters.total_packets() == 2 and counters.total_bytes() == 30

    def test_negative_size_rejected(self):
        counters = CounterTable()
        with pytest.raises(ValueError):
            counters.count("k", -1)

    def test_footprint(self):
        counters = CounterTable()
        counters.count("a", 1)
        counters.count("b", 1)
        assert counters.footprint().sram_words == 2
