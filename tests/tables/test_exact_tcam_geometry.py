"""Tests for the exact-match table, the TCAM model and memory geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.errors import DuplicateEntryError, MissingEntryError, TableFullError
from repro.tables.exact import ExactTable
from repro.tables.geometry import (
    MemoryFootprint,
    exact_entry_words,
    sram_words_for,
    tcam_slices_for,
)
from repro.tables.tcam import Tcam, prefix_to_match_mask


class TestGeometry:
    def test_tcam_slices(self):
        assert tcam_slices_for(44) == 1
        assert tcam_slices_for(45) == 2
        assert tcam_slices_for(56) == 2  # VNI + IPv4
        assert tcam_slices_for(152) == 4  # VNI + IPv6

    def test_sram_words(self):
        assert sram_words_for(128) == 1
        assert sram_words_for(129) == 2
        assert sram_words_for(1) == 1

    def test_exact_entry_way_rounding(self):
        assert exact_entry_words(56, 32) == 1  # 88 bits -> 1 word
        assert exact_entry_words(152, 32) == 2  # 184 bits -> 2-word way
        assert exact_entry_words(300, 0) == 4  # 300 bits -> 4-word way

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            tcam_slices_for(0)
        with pytest.raises(ValueError):
            sram_words_for(0)

    def test_footprint_add_and_scale(self):
        a = MemoryFootprint(sram_words=10, tcam_slices=4)
        b = MemoryFootprint(sram_words=1, tcam_slices=1)
        assert (a + b) == MemoryFootprint(11, 5)
        assert a.scaled(0.5) == MemoryFootprint(5, 2)
        assert MemoryFootprint.zero().sram_words == 0


class TestExactTable:
    def test_insert_lookup_remove(self):
        table = ExactTable(key_bits=56, value_bits=32, capacity=4)
        table.insert(("vni", 1), "nc1")
        assert table.lookup(("vni", 1)) == "nc1"
        assert table.lookup(("vni", 2)) is None
        assert table.remove(("vni", 1)) == "nc1"
        assert len(table) == 0

    def test_capacity_enforced(self):
        table = ExactTable(key_bits=56, capacity=2)
        table.insert(1, "a")
        table.insert(2, "b")
        with pytest.raises(TableFullError):
            table.insert(3, "c")

    def test_replace_does_not_grow(self):
        table = ExactTable(key_bits=56, capacity=1)
        table.insert(1, "a")
        table.insert(1, "b", replace=True)
        assert table.get(1) == "b" and len(table) == 1

    def test_duplicate_raises(self):
        table = ExactTable(key_bits=56)
        table.insert(1, "a")
        with pytest.raises(DuplicateEntryError):
            table.insert(1, "b")

    def test_missing_raises(self):
        table = ExactTable(key_bits=56)
        with pytest.raises(MissingEntryError):
            table.remove(9)
        with pytest.raises(MissingEntryError):
            table.get(9)

    def test_unbounded(self):
        table = ExactTable(key_bits=56, capacity=None)
        for i in range(1000):
            table.insert(i, i)
        assert len(table) == 1000

    def test_load_water_level(self):
        table = ExactTable(key_bits=56, capacity=10)
        for i in range(5):
            table.insert(i, i)
        assert table.load == 0.5

    def test_hit_statistics(self):
        table = ExactTable(key_bits=56)
        table.insert(1, "a")
        table.lookup(1)
        table.lookup(2)
        assert table.lookups == 2 and table.hits == 1

    def test_footprint_accounts_fill_factor(self):
        table = ExactTable(key_bits=56, value_bits=32, fill_factor=0.5)
        for i in range(10):
            table.insert(i, i)
        # 10 entries at fill 0.5 -> 20 physical slots x 1 word.
        assert table.footprint().sram_words == 20

    def test_capacity_footprint(self):
        table = ExactTable(key_bits=152, value_bits=32, capacity=100, fill_factor=1.0)
        assert table.capacity_footprint().sram_words == 200  # 2-word ways
        with pytest.raises(ValueError):
            ExactTable(key_bits=56).capacity_footprint()

    def test_bad_fill_factor(self):
        with pytest.raises(ValueError):
            ExactTable(key_bits=56, fill_factor=0.0)

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.integers(), st.integers(), max_size=50))
    def test_behaves_like_dict(self, entries):
        table = ExactTable(key_bits=64)
        for key, value in entries.items():
            table.insert(key, value)
        for key, value in entries.items():
            assert table.lookup(key) == value
        assert dict(table.items()) == entries


class TestTcam:
    def test_priority_order(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0b10000000, 0b10000000, priority=1, action="wide")
        tcam.insert(0b10100000, 0b11100000, priority=3, action="narrow")
        assert tcam.lookup(0b10111111).action == "narrow"
        assert tcam.lookup(0b10011111).action == "wide"
        assert tcam.lookup(0b00000001) is None

    def test_capacity_in_slices(self):
        tcam = Tcam(key_bits=56, capacity_slices=4)  # 2 slices per entry
        tcam.insert(0, 0, 0, "a")
        tcam.insert(1 << 55, 1 << 55, 1, "b")
        with pytest.raises(TableFullError):
            tcam.insert(1 << 54, 1 << 54, 2, "c")

    def test_remove(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0x80, 0x80, 1, "a")
        assert tcam.remove(0x80, 0x80, 1) == "a"
        assert tcam.lookup(0x80) is None
        with pytest.raises(MissingEntryError):
            tcam.remove(0x80, 0x80, 1)

    def test_duplicate(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0x80, 0x80, 1, "a")
        with pytest.raises(DuplicateEntryError):
            tcam.insert(0x80, 0x80, 1, "b")

    def test_out_of_range_match(self):
        tcam = Tcam(key_bits=8)
        with pytest.raises(ValueError):
            tcam.insert(0x100, 0xFF, 1, "x")

    def test_footprint(self):
        tcam = Tcam(key_bits=152)
        tcam.insert(0, 0, 0, "default")
        assert tcam.footprint().tcam_slices == 4

    def test_lpm_emulation_matches_trie(self):
        """TCAM with length-as-priority implements LPM."""
        import random
        from repro.tables.bittrie import GenericLpmTrie

        rng = random.Random(31)
        width = 12
        trie = GenericLpmTrie(width)
        tcam = Tcam(key_bits=width)
        routes = set()
        while len(routes) < 60:
            length = rng.randint(0, width)
            head = rng.randrange(1 << length) if length else 0
            routes.add((head << (width - length), length))
        for i, (network, length) in enumerate(routes):
            trie.insert(network, length, i)
            match, mask = prefix_to_match_mask(network, length, width)
            tcam.insert(match, mask, priority=length, action=i)
        for _ in range(500):
            key = rng.randrange(1 << width)
            trie_hit = trie.lookup(key)
            tcam_hit = tcam.lookup(key)
            assert (trie_hit[2] if trie_hit else None) == (
                tcam_hit.action if tcam_hit else None
            )

    def test_prefix_to_match_mask_with_extra_bits(self):
        # VNI 0xABCDEF in front of an 8-bit address space, prefix 0xC0/2.
        match, mask = prefix_to_match_mask(0xC0, 2, 8, extra_bits=24, extra_value=0xABCDEF)
        assert match == (0xABCDEF << 8) | 0xC0
        assert mask == (0xFFFFFF << 8) | 0xC0

    def test_prefix_to_match_mask_bad_length(self):
        with pytest.raises(ValueError):
            prefix_to_match_mask(0, 9, 8)
