"""Property suite: CuckooTable vs a plain dict oracle.

Random command sequences (insert / replace / remove / lookup) must keep
the cuckoo table observationally identical to a dict right up to the
first :class:`TableFullError`. At that point the table is allowed to
degrade in exactly one documented way: the displacement chain is fully
stored *except one homeless entry* — every other key still answers
correctly and ``len()`` is unchanged. The edge cases the fill-factor
model leans on (1-/2-way eviction loops, genuinely full tables) get
dedicated deterministic tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.cuckoo import MAX_KICKS, CuckooTable, _way_hash
from repro.tables.errors import (
    DuplicateEntryError,
    MissingEntryError,
    TableFullError,
)

# A command is ("insert"|"replace"|"remove"|"lookup", key, value).
_KEYS = st.integers(min_value=0, max_value=400)
_COMMANDS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "replace", "remove",
                         "lookup"]),
        _KEYS,
        st.integers(),
    ),
    max_size=120,
)


def _check_degraded_state(table, oracle, new_key, new_value):
    """The documented post-TableFullError state.

    The failed chain stored everything except one homeless entry, so the
    table holds ``oracle ∪ {new_key}`` minus exactly one key — possibly
    the new key itself when the eviction loop cycles back — and the
    count was never incremented.
    """
    assert len(table) == len(oracle)
    stored = dict(table.items())
    candidates = dict(oracle)
    candidates[new_key] = new_value
    lost = set(candidates) - set(stored)
    assert len(lost) == 1, f"exactly one homeless entry expected, lost={lost}"
    for key, value in stored.items():
        assert candidates[key] == value
        assert table.lookup(key) == value
    (lost_key,) = lost
    assert table.lookup(lost_key) is None
    assert lost_key not in table


class TestCommandSequencesVsDict:
    @settings(max_examples=120, deadline=None)
    @given(commands=_COMMANDS)
    def test_equivalent_until_first_full(self, commands):
        table = CuckooTable(num_buckets=32, ways=4)
        oracle = {}
        for op, key, value in commands:
            if op == "insert":
                if key in oracle:
                    with pytest.raises(DuplicateEntryError):
                        table.insert(key, value)
                    continue
                try:
                    table.insert(key, value)
                except TableFullError:
                    _check_degraded_state(table, oracle, key, value)
                    return
                oracle[key] = value
            elif op == "replace":
                try:
                    table.insert(key, value, replace=True)
                except TableFullError:
                    _check_degraded_state(table, oracle, key, value)
                    return
                oracle[key] = value
            elif op == "remove":
                if key in oracle:
                    assert table.remove(key) == oracle.pop(key)
                else:
                    with pytest.raises(MissingEntryError):
                        table.remove(key)
            else:  # lookup
                assert table.lookup(key) == oracle.get(key)
                assert (key in table) == (key in oracle)
        # Never went full: exact observational equivalence.
        assert len(table) == len(oracle)
        assert dict(table.items()) == oracle
        for key, value in oracle.items():
            assert table.lookup(key) == value

    @settings(max_examples=60, deadline=None)
    @given(
        commands=_COMMANDS,
        num_buckets=st.integers(min_value=1, max_value=8),
        ways=st.integers(min_value=1, max_value=4),
    )
    def test_tiny_geometries_never_crash(self, commands, num_buckets, ways):
        """Cramped tables hit the full path constantly; the only allowed
        signals are the three documented exceptions."""
        table = CuckooTable(num_buckets=num_buckets, ways=ways)
        oracle = {}
        for op, key, value in commands:
            try:
                if op in ("insert", "replace"):
                    table.insert(key, value, replace=(op == "replace"))
                    oracle[key] = value
                elif op == "remove":
                    oracle.pop(key, None)
                    table.remove(key)
                else:
                    table.lookup(key)
            except TableFullError:
                _check_degraded_state(table, oracle, key, value)
                return
            except (DuplicateEntryError, MissingEntryError):
                pass
        assert len(table) <= table.capacity


class TestEvictionLoopEdges:
    def test_one_way_loop_terminates_at_max_kicks(self):
        """ways=1 has no alternate bucket: two colliding keys swap in
        place until MAX_KICKS, and the homeless entry is the *new* key
        (even kick count ends the cycle where it started)."""
        table = CuckooTable(num_buckets=4, ways=1)
        bucket_of = {}
        key = 0
        while True:
            bucket = _way_hash(key, 0, 4)
            if bucket in bucket_of:
                resident = bucket_of[bucket]
                break
            bucket_of[bucket] = key
            table.insert(key, key)
            key += 1
        before = dict(table.items())
        with pytest.raises(TableFullError):
            table.insert(key, -1)
        assert table.displacements == MAX_KICKS
        assert MAX_KICKS % 2 == 0
        assert table.lookup(resident) == resident
        assert table.lookup(key) is None
        assert dict(table.items()) == before

    def test_two_way_single_bucket_loop(self):
        """num_buckets=1, ways=2: both ways map every key to bucket 0,
        so a third key can only cycle through the two slots."""
        table = CuckooTable(num_buckets=1, ways=2)
        table.insert("a", 1)
        table.insert("b", 2)
        assert len(table) == 2 == table.capacity
        with pytest.raises(TableFullError):
            table.insert("c", 3)
        _check_degraded_state(table, {"a": 1, "b": 2}, "c", 3)

    def test_displacements_counter_monotonic(self):
        table = CuckooTable(num_buckets=8, ways=2)
        seen = 0
        for i in range(14):
            try:
                table.insert(i, i)
            except TableFullError:
                break
            assert table.displacements >= seen
            seen = table.displacements


class TestFullTableEdge:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_fill_to_failure_state_is_consistent(self, seed):
        """Drive any table to its first failure; the surviving state
        must satisfy the degraded-state contract exactly."""
        table = CuckooTable(num_buckets=8, ways=2)
        oracle = {}
        key = seed
        for _ in range(table.capacity + MAX_KICKS):
            try:
                table.insert(key, key * 3)
            except TableFullError:
                _check_degraded_state(table, oracle, key, key * 3)
                return
            oracle[key] = key * 3
            key += 1
        pytest.fail("table never filled despite capacity+MAX_KICKS inserts")

    def test_exactly_full_table_still_answers(self):
        table = CuckooTable(num_buckets=1, ways=4)
        for i in range(4):
            table.insert(i, -i)
        assert len(table) == table.capacity
        assert table.load_factor == 1.0
        for i in range(4):
            assert table.lookup(i) == -i
        with pytest.raises(TableFullError):
            table.insert(99, 0)

    def test_remove_reopens_a_full_table(self):
        table = CuckooTable(num_buckets=1, ways=4)
        for i in range(4):
            table.insert(i, i)
        with pytest.raises(TableFullError):
            table.insert(4, 4)
        removed = next(iter(dict(table.items())))
        table.remove(removed)
        table.insert(1000, 1000)
        assert table.lookup(1000) == 1000
        assert len(table) == 4
