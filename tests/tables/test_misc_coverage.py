"""Edge-path coverage for table utilities not hit elsewhere."""

import pytest

from repro.net.addr import Prefix
from repro.tables.exact import ExactTable
from repro.tables.pooled import PooledLpmTable
from repro.tables.tcam import Tcam
from repro.tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable


class TestExactTableMisc:
    def test_clear(self):
        table = ExactTable(key_bits=56)
        for i in range(5):
            table.insert(i, i)
        table.clear()
        assert len(table) == 0
        assert table.lookup(1) is None

    def test_load_unbounded_is_zero(self):
        table = ExactTable(key_bits=56, capacity=None)
        table.insert(1, 1)
        assert table.load == 0.0

    def test_zero_capacity(self):
        from repro.tables.errors import TableFullError

        table = ExactTable(key_bits=56, capacity=0)
        with pytest.raises(TableFullError):
            table.insert(1, 1)
        assert table.load == 0.0


class TestTcamMisc:
    def test_entries_iteration_in_priority_order(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0x00, 0x00, priority=1, action="low")
        tcam.insert(0x80, 0x80, priority=9, action="high")
        priorities = [e.priority for e in tcam.entries()]
        assert priorities == sorted(priorities, reverse=True)

    def test_equal_priority_oldest_wins(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0x00, 0x00, priority=5, action="first")
        tcam.insert(0x80, 0x00, priority=5, action="second")  # also matches all
        assert tcam.lookup(0x42).action == "first"

    def test_hit_counters(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0x80, 0x80, priority=1, action="a")
        tcam.lookup(0xFF)
        tcam.lookup(0x01)
        assert tcam.lookups == 2 and tcam.hits == 1


class TestPooledLpmMisc:
    def test_count_per_family(self):
        table = PooledLpmTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "a")
        table.insert(Prefix.parse("fd00::/8"), "b")
        assert table.count(4) == 1 and table.count(6) == 1

    def test_replace_within_capacity(self):
        table = PooledLpmTable(capacity_entries=1)
        prefix = Prefix.parse("10.0.0.0/8")
        table.insert(prefix, "a")
        # Replacing must not count against the budget.
        table.insert(prefix, "b", replace=True)
        assert table.lookup(0x0A000001, 4)[1] == "b"

    def test_load_unbounded(self):
        table = PooledLpmTable(capacity_entries=None)
        table.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert table.load == 0.0


class TestVxlanRoutingMisc:
    def test_resolve_max_hops(self):
        table = VxlanRoutingTable()
        prefix = Prefix.parse("10.0.0.0/8")
        for i in range(12):
            table.insert(i, prefix, RouteAction(Scope.PEER, next_hop_vni=i + 1))
        table.insert(12, prefix, RouteAction(Scope.LOCAL))
        from repro.tables.vxlan_routing import RoutingLoopError

        with pytest.raises(RoutingLoopError):
            table.resolve(0, 0x0A000001, 4, max_hops=5)
        # A generous budget resolves the same chain.
        res = table.resolve(0, 0x0A000001, 4, max_hops=15)
        assert res.vni == 12

    def test_items_covers_all_families(self):
        table = VxlanRoutingTable()
        table.insert(1, Prefix.parse("10.0.0.0/8"), RouteAction(Scope.LOCAL))
        table.insert(1, Prefix.parse("fd00::/8"), RouteAction(Scope.LOCAL))
        assert len(list(table.items())) == 2

    def test_composite_width_constant(self):
        assert VxlanRoutingTable.composite_width() == 24 + 1 + 128
