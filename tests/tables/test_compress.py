"""Tests for key compression (digest + conflict table)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.compress import CompressedExactMap, digest32
from repro.tables.errors import DuplicateEntryError, MissingEntryError


class TestDigest:
    def test_deterministic(self):
        assert digest32(12345) == digest32(12345)

    def test_range(self):
        assert 0 <= digest32(2 ** 127) < 2 ** 32

    def test_salt_changes_digest(self):
        assert digest32(1, salt=0) != digest32(1, salt=1)

    def test_distribution_roughly_uniform(self):
        buckets = [0] * 16
        for i in range(4096):
            buckets[digest32(i) >> 28] += 1
        assert min(buckets) > 150  # expected 256 each


class ForcedCollisionMap(CompressedExactMap):
    """Subclass with a tiny digest space to force collisions in tests."""

    def _digest(self, key: int) -> int:
        return digest32(key, self.key_bits, self.salt) % 7


class TestCompressedExactMap:
    def test_insert_lookup(self):
        m = CompressedExactMap()
        m.insert(2 ** 100, "a")
        assert m.lookup(2 ** 100) == "a"
        assert m.lookup(2 ** 100 + 1) is None

    def test_duplicate(self):
        m = CompressedExactMap()
        m.insert(5, "a")
        with pytest.raises(DuplicateEntryError):
            m.insert(5, "b")
        m.insert(5, "b", replace=True)
        assert m.lookup(5) == "b"

    def test_remove(self):
        m = CompressedExactMap()
        m.insert(5, "a")
        assert m.remove(5) == "a"
        assert m.lookup(5) is None
        with pytest.raises(MissingEntryError):
            m.remove(5)

    def test_requires_wide_keys(self):
        with pytest.raises(ValueError):
            CompressedExactMap(key_bits=32)

    def test_collisions_diverted_to_conflict_table(self):
        m = ForcedCollisionMap()
        keys = list(range(100, 130))  # 30 keys into 7 digests
        for k in keys:
            m.insert(k, f"v{k}")
        assert m.conflict_entries > 0
        for k in keys:
            assert m.lookup(k) == f"v{k}"

    def test_collision_remove_promotes(self):
        m = ForcedCollisionMap()
        for k in range(100, 130):
            m.insert(k, f"v{k}")
        # Remove every key in arbitrary order; survivors stay correct.
        remaining = set(range(100, 130))
        for k in list(range(100, 130))[::2]:
            m.remove(k)
            remaining.discard(k)
            for other in remaining:
                assert m.lookup(other) == f"v{other}"
        assert len(m) == len(remaining)

    def test_replace_in_conflict_table(self):
        m = ForcedCollisionMap()
        for k in range(100, 115):
            m.insert(k, "old")
        conflicted = [k for k in range(100, 115) if m.lookup(k) == "old"]
        for k in conflicted:
            m.insert(k, "new", replace=True)
            assert m.lookup(k) == "new"

    def test_conflict_ratio_small_for_random_keys(self):
        m = CompressedExactMap()
        for i in range(5000):
            m.insert((i << 64) | (i * 2654435761), i)
        # 5000 keys into 2^32 digests: expected collisions ~ 0.
        assert m.conflict_ratio() < 0.01

    def test_items_yields_everything(self):
        m = ForcedCollisionMap()
        expected = {}
        for k in range(200, 240):
            m.insert(k, k * 7)
            expected[k] = k * 7
        assert dict(m.items()) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=2 ** 128 - 1),
                           st.integers(), min_size=0, max_size=60))
    def test_behaves_like_dict(self, entries):
        m = ForcedCollisionMap()  # forced collisions stress the machinery
        for key, value in entries.items():
            m.insert(key, value)
        assert len(m) == len(entries)
        for key, value in entries.items():
            assert m.lookup(key) == value
        # Negative lookups (stay within the 128-bit key space).
        for probe in list(entries)[:5]:
            other = probe ^ (1 << 127)
            assert m.lookup(other) == entries.get(other)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 128 - 1),
                    min_size=1, max_size=40, unique=True))
    def test_insert_remove_all(self, keys):
        m = ForcedCollisionMap()
        for k in keys:
            m.insert(k, k)
        for k in keys:
            assert m.remove(k) == k
        assert len(m) == 0 and m.conflict_entries == 0
