"""Tests for the algorithmic LPM: correctness vs the trie oracle,
capacity invariants, and memory accounting."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.tables.alpm import AlpmTable, DEFAULT_BUCKET_CAPACITY
from repro.tables.bittrie import GenericLpmTrie
from repro.tables.errors import TableFullError


def random_routes(width, count, seed):
    rng = random.Random(seed)
    routes = {}
    while len(routes) < count:
        length = rng.randint(0, width)
        head = rng.randrange(1 << length) if length else 0
        network = head << (width - length)
        routes[(network, length)] = f"r{len(routes)}"
    return [(n, l, v) for (n, l), v in routes.items()]


class TestConstruction:
    def test_small_table(self):
        table = AlpmTable.build(8, [(0b10000000, 1, "a"), (0b10100000, 3, "b")],
                                bucket_capacity=1)
        assert table.lookup(0b10111111)[2] == "b"
        assert table.lookup(0b10011111)[2] == "a"
        assert table.lookup(0b00000001) is None

    def test_empty_table(self):
        table = AlpmTable.build(8, [])
        assert table.lookup(0x42) is None
        assert len(table.partitions) == 1  # the root partition

    def test_single_default_route(self):
        table = AlpmTable.build(8, [(0, 0, "default")])
        assert table.lookup(0xFF)[2] == "default"

    def test_bucket_capacity_invariant(self):
        routes = random_routes(16, 300, seed=3)
        for capacity in (1, 4, 16):
            table = AlpmTable.build(16, routes, bucket_capacity=capacity)
            assert all(len(p.routes) <= capacity for p in table.partitions)
            assert len(table) == len(routes)

    def test_partitions_disjoint(self):
        routes = random_routes(16, 200, seed=5)
        table = AlpmTable.build(16, routes, bucket_capacity=8)
        seen = set()
        for partition in table.partitions:
            for route in partition.routes:
                key = (route[0], route[1])
                assert key not in seen
                seen.add(key)
        assert len(seen) == len(routes)

    def test_pivots_unique(self):
        routes = random_routes(16, 200, seed=7)
        table = AlpmTable.build(16, routes, bucket_capacity=4)
        pivots = {(p.pivot_network, p.pivot_length) for p in table.partitions}
        assert len(pivots) == len(table.partitions)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AlpmTable(8, bucket_capacity=0)


class TestCorrectness:
    def test_matches_oracle_random(self):
        width = 24
        routes = random_routes(width, 800, seed=11)
        oracle = GenericLpmTrie(width)
        for n, l, v in routes:
            oracle.insert(n, l, v)
        table = AlpmTable.build(width, routes, bucket_capacity=13)
        rng = random.Random(99)
        for _ in range(3000):
            key = rng.randrange(1 << width)
            assert table.lookup(key) == oracle.lookup(key)

    def test_matches_oracle_at_route_boundaries(self):
        """Probe exactly at the edges of each route's range."""
        width = 16
        routes = random_routes(width, 150, seed=13)
        oracle = GenericLpmTrie(width)
        for n, l, v in routes:
            oracle.insert(n, l, v)
        table = AlpmTable.build(width, routes, bucket_capacity=6)
        for network, length, _v in routes:
            size = 1 << (width - length)
            for key in (network, network + size - 1):
                assert table.lookup(key) == oracle.lookup(key)

    def test_default_replication_covers_sparse_subtrees(self):
        # A short covering route and many long routes that force a carve:
        # keys matching only the short route must still resolve inside
        # carved partitions.
        width = 16
        routes = [(0, 0, "default"), (0x8000, 1, "cover")]
        routes += [(i << 4, 12, f"leaf{i}") for i in range(0x800, 0x880)]
        table = AlpmTable.build(width, routes, bucket_capacity=4)
        oracle = GenericLpmTrie(width)
        for n, l, v in routes:
            oracle.insert(n, l, v)
        for key in range(0x8000, 0x9000, 7):
            assert table.lookup(key) == oracle.lookup(key)
        assert table.lookup(0x0001)[2] == "default"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(min_value=1, max_value=24))
    def test_oracle_equivalence_property(self, seed, capacity):
        width = 12
        routes = random_routes(width, 60, seed)
        oracle = GenericLpmTrie(width)
        for n, l, v in routes:
            oracle.insert(n, l, v)
        table = AlpmTable.build(width, routes, bucket_capacity=capacity)
        rng = random.Random(seed ^ 0xABCD)
        for _ in range(200):
            key = rng.randrange(1 << width)
            assert table.lookup(key) == oracle.lookup(key)


class TestAccounting:
    def test_stats(self):
        routes = random_routes(16, 300, seed=17)
        table = AlpmTable.build(16, routes, bucket_capacity=10)
        stats = table.stats()
        assert stats.routes == 300
        assert stats.partitions == len(table.partitions)
        assert sum(stats.occupancy_histogram) == stats.partitions
        assert 0 < stats.mean_bucket_occupancy <= 1.0

    def test_tcam_savings_vs_flat(self):
        """The point of ALPM: far fewer TCAM entries than routes."""
        routes = random_routes(24, 2000, seed=19)
        table = AlpmTable.build(24, routes, bucket_capacity=DEFAULT_BUCKET_CAPACITY)
        assert len(table.partitions) < len(routes) / 4

    def test_footprint_scales_with_partitions(self):
        routes = random_routes(16, 400, seed=23)
        small = AlpmTable.build(16, routes, bucket_capacity=4)
        large = AlpmTable.build(16, routes, bucket_capacity=32)
        assert small.footprint().tcam_slices > large.footprint().tcam_slices

    def test_footprint_key_bits_override(self):
        table = AlpmTable.build(8, [(0x80, 1, "a")])
        narrow = table.footprint()
        wide = table.footprint(key_bits=152)
        assert wide.tcam_slices > narrow.tcam_slices
        assert wide.sram_words > narrow.sram_words

    def test_bigger_buckets_higher_tcam_savings(self):
        routes = random_routes(20, 1000, seed=29)
        partitions = [
            len(AlpmTable.build(20, routes, bucket_capacity=c).partitions)
            for c in (4, 8, 16, 32)
        ]
        assert partitions == sorted(partitions, reverse=True)
