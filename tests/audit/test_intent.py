"""Intent snapshots: controller view vs journal view, and their diff."""

from tests.audit.helpers import ip, make_controller, onboard_region, rich_tenant

from repro.audit import IntentSnapshot, diff_snapshots
from repro.core.controller import VmEntry
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import Scope


class TestSnapshotCapture:
    def test_controller_and_journal_views_agree_after_onboard(self):
        ctrl = make_controller()
        onboard_region(ctrl)
        a = IntentSnapshot.from_controller(ctrl)
        b = IntentSnapshot.from_journal(ctrl.journal)
        assert a.canonical() == b.canonical()
        assert diff_snapshots(a, b) == []

    def test_structured_accessors_decode_journal_format(self):
        ctrl = make_controller()
        cluster_id, routes, vms = onboard_region(ctrl)
        snap = IntentSnapshot.from_controller(ctrl)
        assert snap.cluster_ids() == [cluster_id]
        decoded = snap.routes_for(cluster_id)
        assert decoded[(100, Prefix.parse("192.168.10.0/24"))].scope is Scope.LOCAL
        bindings = snap.vms_for(cluster_id)
        assert bindings[(100, ip("192.168.10.2"), 4)] == NcBinding(ip("10.1.1.11"))
        assert snap.tenant_clusters() == {100: cluster_id, 101: cluster_id}

    def test_peer_reachability_is_transitive(self):
        ctrl = make_controller()
        onboard_region(ctrl)
        snap = IntentSnapshot.from_controller(ctrl)
        closure = snap.peer_reachability()
        assert closure[101] == {100}
        assert 100 not in closure  # tenant 100 has no outgoing peering


class TestDiff:
    def test_unjournalled_mutation_shows_as_divergence(self):
        ctrl = make_controller()
        cluster_id, _routes, _vms = onboard_region(ctrl)
        # Mutate the intent store behind the journal's back (a bug the
        # intent-divergence invariant exists to catch).
        ctrl._vms[cluster_id][(100, ip("192.168.10.9"), 4)] = NcBinding(ip("10.9.9.9"))
        a = IntentSnapshot.from_controller(ctrl)
        b = IntentSnapshot.from_journal(ctrl.journal)
        diffs = diff_snapshots(a, b)
        assert diffs and any("vms" in d for d in diffs)

    def test_diff_names_the_divergent_side(self):
        ctrl = make_controller()
        onboard_region(ctrl)
        a = IntentSnapshot.from_controller(ctrl)
        # A journal that never saw the second tenant.
        ctrl2 = make_controller()
        profile, routes, vms = rich_tenant(
            100, "192.168.10.0/24", "192.168.10.2", "10.1.1.11")
        ctrl2.add_tenant(profile, routes, vms)
        b = IntentSnapshot.from_journal(ctrl2.journal)
        diffs = diff_snapshots(a, b)
        assert any("only in controller" in d for d in diffs)

    def test_diff_is_deterministic(self):
        ctrl = make_controller()
        cluster_id, _routes, _vms = onboard_region(ctrl)
        del ctrl._routes[cluster_id][(100, Prefix.parse("0.0.0.0/0"))]
        a = IntentSnapshot.from_controller(ctrl)
        b = IntentSnapshot.from_journal(ctrl.journal)
        assert diff_snapshots(a, b) == diff_snapshots(a, b)
