"""Property test: after any randomized interleaving of route/VM
mutations, transactions, snapshots, and a controller crash, the live
controller's ``intent_snapshot()`` and the journal's ``materialize()``
are the same state — and the same seed replays to a byte-identical
journal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.audit.helpers import ip, make_controller, onboard_region

from repro.audit import IntentSnapshot, diff_snapshots
from repro.core.controller import (
    Controller,
    RouteEntry,
    TransactionAborted,
    VmEntry,
)
from repro.core.journal import ControllerCrash, canonical_json
from repro.core.splitting import ClusterCapacity, TableSplitter
from repro.cluster.ecmp import VniSteeredBalancer
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope

#: Abstract op alphabet; indices are resolved against live desired state
#: so every drawn sequence is applicable.
OPS = ["install_route", "remove_route", "install_vm", "remove_vm",
       "txn_routes", "snapshot"]

op_sequences = st.lists(
    st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=7)),
    min_size=0, max_size=12,
)


def apply_ops(ctrl, cluster_id, ops):
    """Drive the controller through *ops*, resolving each abstract op
    into a concrete valid mutation (no-op when nothing applies)."""
    txn_serial = [0]
    for kind, idx in ops:
        routes = ctrl._routes.get(cluster_id, {})
        vms = ctrl._vms.get(cluster_id, {})
        if kind == "install_route":
            prefix = Prefix.parse(f"10.{idx}.0.0/16")
            if (100, prefix) not in routes:
                ctrl.install_route(cluster_id, RouteEntry(
                    100, prefix, RouteAction(Scope.LOCAL)))
        elif kind == "remove_route":
            removable = sorted((v, p) for v, p in routes
                               if p.prefix_len == 16)
            if removable:
                vni, prefix = removable[idx % len(removable)]
                ctrl.remove_route(cluster_id, vni, prefix)
        elif kind == "install_vm":
            vm_ip = ip("192.168.10.0") + 10 + idx
            if (100, vm_ip, 4) not in vms:
                ctrl.install_vm(cluster_id, VmEntry(
                    100, vm_ip, 4, NcBinding(ip("10.1.1.11"))))
        elif kind == "remove_vm":
            removable = sorted(vms)
            if removable:
                vni, vm_ip, version = removable[idx % len(removable)]
                ctrl.remove_vm(cluster_id, vni, vm_ip, version)
        elif kind == "txn_routes":
            serial = txn_serial[0]
            txn_serial[0] += 1
            with ctrl.transaction(cluster_id) as txn:
                for j in range(1 + idx % 3):
                    txn.install_route(RouteEntry(
                        100, Prefix.parse(f"10.20{serial % 10}.{j}.0/24"),
                        RouteAction(Scope.LOCAL)))
        elif kind == "snapshot":
            ctrl.snapshot()


def run_scenario(ops, crash_at):
    """Returns (controller, cluster_id, crashed) after applying *ops*
    with a crash armed at mutation *crash_at* (None = no crash)."""
    ctrl = make_controller()
    cluster_id, _routes, _vms = onboard_region(ctrl)
    specs = []
    if crash_at is not None:
        specs.append(FaultSpec(FaultKind.CONTROLLER_CRASH,
                               at_mutations=(crash_at,)))
    FaultInjector(FaultPlan(seed=13, specs=specs)).arm_controller(ctrl)
    crashed = False
    try:
        apply_ops(ctrl, cluster_id, ops)
    except (ControllerCrash, TransactionAborted):
        crashed = True
    return ctrl, cluster_id, crashed


def recover(crashed_ctrl):
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=200, vms=2000, traffic_bps=1e13)),
        VniSteeredBalancer(),
        clusters=crashed_ctrl.clusters,
    )
    ctrl.recover(crashed_ctrl.journal)
    return ctrl


class TestJournalEquivalence:
    @given(op_sequences)
    @settings(max_examples=40, deadline=None)
    def test_live_controller_matches_materialized_journal(self, ops):
        ctrl, _cluster_id, _crashed = run_scenario(ops, crash_at=None)
        live = IntentSnapshot.from_controller(ctrl)
        replayed = IntentSnapshot.from_journal(ctrl.journal)
        assert diff_snapshots(live, replayed) == []
        assert live.canonical() == replayed.canonical()

    @given(op_sequences, st.integers(min_value=0, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_crash_recovery_restores_journal_state(self, ops, crash_at):
        ctrl, cluster_id, crashed = run_scenario(ops, crash_at=crash_at)
        recovered = recover(ctrl) if crashed else ctrl
        live = canonical_json(recovered.intent_snapshot())
        replayed = canonical_json(ctrl.journal.materialize())
        assert live == replayed
        # After recovery the gateways converge back onto the intent.
        assert recovered.consistency_check(cluster_id) == []

    @given(op_sequences, st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_same_ops_same_crash_byte_identical_journal(self, ops, crash_at):
        a = run_scenario(ops, crash_at=crash_at)[0].journal.dump()
        b = run_scenario(ops, crash_at=crash_at)[0].journal.dump()
        assert a == b
