"""The repair bridge: confirmed findings flow into the controller's
targeted-repair path (quarantine → repair → probe → readmit), poisoned
caches are flushed, and operator-facing findings are counted but left
alone."""

import pytest

from tests.audit.helpers import ip, make_controller, onboard_region

from repro.audit import (
    AuditConfig,
    AuditScanner,
    Finding,
    RepairBridge,
    REPAIRABLE_KINDS,
)
from repro.core.controller import build_probe_packet
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


@pytest.fixture
def region():
    ctrl = make_controller()
    cluster_id, _routes, _vms = onboard_region(ctrl)
    scanner = AuditScanner(ctrl, AuditConfig(seed=3, budget=100))
    bridge = RepairBridge(ctrl).attach(scanner)
    return ctrl, cluster_id, scanner, bridge


class TestTableRepairs:
    def test_extra_vm_is_withdrawn(self, region):
        ctrl, cluster_id, scanner, bridge = region
        member = ctrl.clusters[cluster_id].members()[0]
        member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                  NcBinding(ip("10.9.9.9")))
        scanner.full_scan()  # cycle hook drives the bridge
        assert bridge.counters["repairs_applied"] == 1
        assert member.gateway.split_vm_nc.lookup(100, ip("192.168.10.50"), 4) is None
        assert scanner.full_scan() == []

    def test_corrupt_route_is_repushed(self, region):
        ctrl, cluster_id, scanner, bridge = region
        member = ctrl.clusters[cluster_id].members()[0]
        prefix = Prefix.parse("192.168.10.0/24")
        member.gateway.install_route(
            100, prefix, RouteAction(Scope.SERVICE, target="oops"),
            replace=True)
        scanner.full_scan()
        assert bridge.counters["repairs_applied"] >= 1
        hit = member.gateway.tables.routing.lookup(100, ip("192.168.10.2"), 4)
        assert hit is not None and hit[1].scope is Scope.LOCAL
        assert scanner.full_scan() == []

    def test_quarantine_then_probe_readmission(self, region):
        ctrl, cluster_id, scanner, bridge = region
        member = ctrl.clusters[cluster_id].members()[0]
        member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                  NcBinding(ip("10.9.9.9")))
        admitted = []
        scanner.on_cycle(lambda _f: admitted.append(
            ctrl.is_admitted(cluster_id)))
        scanner.full_scan()
        # The bridge's hook ran first: quarantined, repaired, probed,
        # readmitted — all within the cycle.
        assert admitted == [True]
        assert ctrl.is_admitted(cluster_id)
        assert ctrl.counters["readmissions"] >= 1

    def test_advisory_mode_skips_quarantine(self, region):
        ctrl, cluster_id, _scanner, _bridge = region
        scanner = AuditScanner(ctrl, AuditConfig(seed=5, budget=100))
        bridge = RepairBridge(ctrl, quarantine=False).attach(scanner)
        member = ctrl.clusters[cluster_id].members()[0]
        member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                  NcBinding(ip("10.9.9.9")))
        scanner.full_scan()
        assert bridge.counters["repairs_applied"] == 1
        assert ctrl.counters["readmissions"] == 0  # never quarantined


class TestCacheRepairs:
    def test_poisoned_cache_is_flushed_and_forwarding_recovers(self):
        ctrl = make_controller(hybrid=True)
        cluster_id, _routes, _vms = onboard_region(ctrl)
        member = ctrl.clusters[cluster_id].find_member(f"{cluster_id}-x86")
        probe = build_probe_packet(100, ip("192.168.10.2"))
        member.gateway.forward(probe)
        plan = FaultPlan(seed=9, specs=[
            FaultSpec(FaultKind.POISON_FLOW_CACHE, max_fires=1)])
        assert FaultInjector(plan).poison_caches(ctrl.clusters) == 1
        scanner = AuditScanner(ctrl, AuditConfig(seed=3, budget=100))
        bridge = RepairBridge(ctrl).attach(scanner)
        scanner.full_scan()
        assert bridge.counters["caches_cleared"] == 1
        assert len(member.gateway.flow_cache) == 0
        result = member.gateway.forward(probe)
        assert result.nc_ip == ip("10.1.1.11")
        assert scanner.full_scan() == []


class TestSkips:
    def test_operator_facing_kinds_are_counted_not_repaired(self, region):
        ctrl, cluster_id, _scanner, bridge = region
        findings = [
            Finding("acl-shadow", "shadowed-rule", cluster_id,
                    f"{cluster_id}-gw0", "inverted", key=(100, 5, 10)),
            Finding("tenant-isolation", "tenant-isolation", cluster_id,
                    f"{cluster_id}-gw0", "leak", key=(100, 1, 4, 101)),
            Finding("counters", "counter-mismatch", cluster_id,
                    f"{cluster_id}-gw0", "torn"),
            Finding("intent-journal", "intent-divergence", "-", "-", "d"),
        ]
        assert bridge.handle(findings) == 0
        assert bridge.counters["repairs_skipped"] == len(findings)
        assert bridge.counters["repairs_applied"] == 0

    def test_repairable_finding_without_key_is_skipped(self, region):
        ctrl, cluster_id, _scanner, bridge = region
        assert "extra-vm" in REPAIRABLE_KINDS
        finding = Finding("vm-equivalence", "extra-vm", cluster_id,
                          f"{cluster_id}-gw0", "no key", key=None)
        assert bridge.handle([finding]) == 0
        assert bridge.counters["repairs_skipped"] == 1

    def test_unknown_cluster_is_skipped(self, region):
        _ctrl, _cluster_id, _scanner, bridge = region
        finding = Finding("route-equivalence", "missing-route", "ghost",
                          "ghost-gw0", "gone", key=(100, Prefix.parse("10.0.0.0/8")))
        assert bridge.handle([finding]) == 0
        assert bridge.counters["repairs_skipped"] == 1
