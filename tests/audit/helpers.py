"""Shared builders for the audit suite: a journaled three-member cluster
(two XGW-H nodes plus a hot backup; optionally a hybrid XGW-x86 member
with a flow cache) carrying a richer-than-minimal tenant layout — LOCAL
subnets, a default INTERNET route, and a peered second tenant — so every
invariant has something real to chew on."""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.journal import Journal
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.x86.gateway import XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


def make_controller(hybrid=False, journal=True):
    balancer = VniSteeredBalancer()
    splitter = TableSplitter(ClusterCapacity(routes=200, vms=2000, traffic_bps=1e13))
    ctrl = Controller(splitter, balancer,
                      journal=Journal() if journal else None)
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=counter[0] * 10 + i))
                 for i in range(2)]
        if hybrid:
            nodes.append((f"{cluster_id}-x86",
                          XgwX86(gateway_ip=counter[0] * 10 + 9)))
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"{cluster_id}-bk0", XgwH(gateway_ip=counter[0] * 100))],
        )
        return GatewayCluster(cluster_id, nodes, backup=backup)

    ctrl.set_cluster_factory(factory)
    return ctrl


def rich_tenant(vni, subnet, vm, nc, peer_vni=None):
    """One tenant: a LOCAL subnet, a default INTERNET route, optionally a
    PEER route into *peer_vni* (covering the peer's address space)."""
    routes = [
        RouteEntry(vni, Prefix.parse(subnet), RouteAction(Scope.LOCAL)),
        RouteEntry(vni, Prefix.parse("0.0.0.0/0"),
                   RouteAction(Scope.INTERNET, target="inet")),
    ]
    if peer_vni is not None:
        routes.append(RouteEntry(vni, Prefix.parse("192.168.99.0/24"),
                                 RouteAction(Scope.PEER, next_hop_vni=peer_vni)))
    vms = [VmEntry(vni, ip(vm), 4, NcBinding(ip(nc)))]
    return TenantProfile(vni, len(routes), len(vms), 1e9), routes, vms


def onboard_region(ctrl):
    """Two peered tenants on one cluster; returns (cluster_id, routes,
    vms) of the first tenant."""
    profile, routes, vms = rich_tenant(
        100, "192.168.10.0/24", "192.168.10.2", "10.1.1.11")
    cluster_id = ctrl.add_tenant(profile, routes, vms)
    profile2, routes2, vms2 = rich_tenant(
        101, "192.168.20.0/24", "192.168.20.2", "10.1.2.11", peer_vni=100)
    assert ctrl.add_tenant(profile2, routes2, vms2) == cluster_id
    return cluster_id, routes, vms
