"""The budgeted scanner: unit accounting, cycle-bounded detection,
determinism, and the byte-stable findings log."""

import math

from tests.audit.helpers import ip, make_controller, onboard_region

from repro.audit import AuditConfig, AuditScanner
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def build_region(seed=3, budget=4, hybrid=False):
    ctrl = make_controller(hybrid=hybrid)
    cluster_id, routes, vms = onboard_region(ctrl)
    scanner = AuditScanner(ctrl, AuditConfig(seed=seed, budget=budget))
    return ctrl, cluster_id, scanner


class TestUnitAccounting:
    def test_unit_list_covers_every_member_and_invariant(self):
        ctrl, cluster_id, scanner = build_region()
        units = scanner._build_units()
        # 1 intent/journal unit + members (2 active + 1 backup) × 8 invariants.
        members = len(ctrl.clusters[cluster_id].all_members())
        assert len(units) == 1 + members * len(scanner.invariants)
        labels = [label for label, _ in units]
        assert labels[0] == "intent/journal"
        assert labels == sorted(labels, key=lambda l: (l != "intent/journal",))

    def test_cycle_length_is_ceil_units_over_budget(self):
        _ctrl, _cid, scanner = build_region(budget=4)
        units = len(scanner._build_units())
        assert scanner.cycle_length() == math.ceil(units / 4)

    def test_tick_respects_budget_and_completes_cycle(self):
        _ctrl, _cid, scanner = build_region(budget=4)
        length = scanner.cycle_length()
        for i in range(length - 1):
            assert scanner.tick() == 4
            assert scanner.cycles_completed == 0
        scanner.tick()  # the completing tick (possibly partial)
        assert scanner.cycles_completed == 1
        assert scanner.counters["audit_cycles"] == 1
        units = len(scanner._build_units())
        assert scanner.counters["audit_units"] == units

    def test_engine_driven_ticks(self):
        _ctrl, _cid, scanner = build_region(budget=8)
        engine = Engine()
        task = scanner.attach(engine, interval=1.0)
        engine.run(until=scanner.cycle_length() * 1.0 + 0.5)
        assert scanner.cycles_completed >= 1
        task.cancel()


class TestDetectionLatency:
    def test_divergence_found_within_one_full_cycle(self):
        ctrl, cluster_id, scanner = build_region(budget=4)
        # Warm: one clean cycle.
        scanner.full_scan()
        member = ctrl.clusters[cluster_id].members()[0]
        member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                  NcBinding(ip("10.9.9.9")))  # survivor
        ticks = 0
        found = []
        while not found and ticks < scanner.cycle_length():
            scanner.tick()
            ticks += 1
            found = [f for f in scanner.log.findings() if f.kind == "extra-vm"]
        assert found, "extra-vm not detected within one full scan cycle"
        assert ticks <= scanner.cycle_length()


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        def run(seed):
            ctrl, cluster_id, scanner = build_region(seed=seed)
            member = ctrl.clusters[cluster_id].members()[0]
            member.gateway.install_route(
                100, Prefix.parse("192.168.10.0/24"),
                RouteAction(Scope.SERVICE, target="oops"), replace=True)
            member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                      NcBinding(ip("10.9.9.9")))
            scanner.full_scan()
            return scanner.log.dump()

        for seed in (1, 2, 3):
            assert run(seed) == run(seed)

    def test_log_round_trips_with_checksums(self):
        ctrl, cluster_id, scanner = build_region()
        member = ctrl.clusters[cluster_id].members()[0]
        member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                  NcBinding(ip("10.9.9.9")))
        scanner.full_scan()
        from repro.audit import FindingsLog
        records = FindingsLog.parse(scanner.log.dump())
        assert len(records) == len(scanner.log)
        assert records[0]["kind"] == "extra-vm"

    def test_clean_cluster_stays_silent_across_seeds(self):
        for seed in (1, 2, 3):
            _ctrl, _cid, scanner = build_region(seed=seed, hybrid=True)
            assert scanner.full_scan() == []
            assert scanner.log.dump() == b""


class TestCycleHooks:
    def test_hook_fires_with_cycle_findings(self):
        ctrl, cluster_id, scanner = build_region(budget=100)
        member = ctrl.clusters[cluster_id].members()[0]
        member.gateway.install_vm(100, ip("192.168.10.50"), 4,
                                  NcBinding(ip("10.9.9.9")))
        seen = []
        scanner.on_cycle(seen.append)
        scanner.tick()
        assert len(seen) == 1
        assert [f.kind for f in seen[0]] == ["extra-vm"]
