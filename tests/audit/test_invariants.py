"""Each invariant fires on exactly its corruption class and stays silent
on a clean cluster — including the PR-2 blind spot regression: a dropped
``remove_vm`` must surface as ``extra-vm`` even though the controller's
own ``consistency_check`` cannot see it."""

import pytest

from tests.audit.helpers import ip, make_controller, onboard_region

from repro.audit import (
    AuditContext,
    ChainTermination,
    CounterConservation,
    FlowCacheCoherence,
    IntentSnapshot,
    LpmOracleEquivalence,
    RouteEquivalence,
    ShadowRules,
    TenantIsolation,
    VmEquivalence,
    tcam_shadow_findings,
)
from repro.core.controller import build_probe_packet
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.net.flow import FlowKey
from repro.tables.acl import AclRule, AclVerdict
from repro.tables.tcam import Tcam
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


@pytest.fixture
def region():
    ctrl = make_controller()
    cluster_id, routes, vms = onboard_region(ctrl)
    ctx = AuditContext(intent=IntentSnapshot.from_controller(ctrl),
                       cluster_id=cluster_id, seed=3)
    return ctrl, cluster_id, ctx


def members_of(ctrl, cluster_id):
    return ctrl.clusters[cluster_id].all_members()


def refresh(ctrl, ctx):
    return AuditContext(intent=IntentSnapshot.from_controller(ctrl),
                        cluster_id=ctx.cluster_id, seed=ctx.seed,
                        samples_per_prefix=ctx.samples_per_prefix)


class TestRouteEquivalence:
    def test_clean_cluster_is_silent(self, region):
        ctrl, cluster_id, ctx = region
        for member in members_of(ctrl, cluster_id):
            assert RouteEquivalence().check(ctx, member) == []

    def test_surviving_deleted_route_is_extra_route(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        prefix = Prefix.parse("0.0.0.0/0")
        ctrl.remove_route(cluster_id, 100, prefix)
        # The delete was "lost" on one member: reinstall behind the
        # controller's back.
        member.gateway.install_route(100, prefix,
                                     RouteAction(Scope.INTERNET, target="inet"))
        ctx = refresh(ctrl, ctx)
        findings = RouteEquivalence().check(ctx, member)
        assert [f.kind for f in findings] == ["extra-route"]
        assert findings[0].key == (100, prefix)
        other = members_of(ctrl, cluster_id)[1]
        assert RouteEquivalence().check(ctx, other) == []

    def test_corrupt_route_detected(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        member.gateway.install_route(
            100, Prefix.parse("192.168.10.0/24"),
            RouteAction(Scope.SERVICE, target="oops"), replace=True)
        assert [f.kind for f in RouteEquivalence().check(ctx, member)] == \
            ["corrupt-route"]


class TestVmEquivalenceBlindSpot:
    def test_dropped_remove_vm_flagged_as_extra_vm(self, region):
        """Regression for the PR-2 blind spot: FaultyGateway drops the
        remove_vm, consistency_check sees nothing, the audit does."""
        ctrl, cluster_id, ctx = region
        plan = FaultPlan(seed=7, specs=[
            FaultSpec(FaultKind.DROP_VM_WRITE, node="*-gw0", max_fires=1)])
        FaultInjector(plan).arm_controller(ctrl)
        ctrl.remove_vm(cluster_id, 100, ip("192.168.10.2"), 4)
        assert plan.injected(FaultKind.DROP_VM_WRITE) == 1
        # The controller's own check is blind to the survivor ...
        assert ctrl.consistency_check(cluster_id) == []
        # ... the audit is not.
        ctx = refresh(ctrl, ctx)
        flagged = {m.name: [f.kind for f in VmEquivalence().check(ctx, m)]
                   for m in members_of(ctrl, cluster_id)}
        assert flagged[f"{cluster_id}-gw0"] == ["extra-vm"]
        assert all(kinds == [] for name, kinds in flagged.items()
                   if name != f"{cluster_id}-gw0")

    def test_corrupt_binding_detected(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        member.gateway.install_vm(100, ip("192.168.10.2"), 4,
                                  NcBinding(ip("10.9.9.9")), replace=True)
        assert [f.kind for f in VmEquivalence().check(ctx, member)] == \
            ["corrupt-vm"]


class TestLpmOracle:
    def test_clean_structures_agree_with_oracle(self, region):
        ctrl, cluster_id, ctx = region
        for member in members_of(ctrl, cluster_id):
            assert LpmOracleEquivalence().check(ctx, member) == []

    def test_sampling_is_deterministic(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        inv = LpmOracleEquivalence()
        assert inv.check(ctx, member) == inv.check(ctx, member)


class TestShadowRules:
    def test_policy_inverting_shadow_is_an_error(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        acl = member.gateway.tables.acl
        acl.insert(AclRule(priority=10, verdict=AclVerdict.PERMIT, vni=100))
        acl.insert(AclRule(priority=5, verdict=AclVerdict.DENY, vni=100,
                           proto=6))
        findings = ShadowRules().check(ctx, member)
        assert [f.kind for f in findings] == ["shadowed-rule"]
        assert findings[0].severity == "error"

    def test_dead_weight_shadow_is_a_warning(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        acl = member.gateway.tables.acl
        acl.insert(AclRule(priority=10, verdict=AclVerdict.DENY, vni=100))
        acl.insert(AclRule(priority=5, verdict=AclVerdict.DENY, vni=100,
                           proto=17))
        findings = ShadowRules().check(ctx, member)
        assert [(f.kind, f.severity) for f in findings] == \
            [("dead-rule", "warning")]

    def test_tcam_helper_reports_pairs(self):
        tcam = Tcam(key_bits=8)
        tcam.insert(0x10, 0xF0, priority=10, action="a")
        tcam.insert(0x12, 0xFF, priority=5, action="b")
        findings = tcam_shadow_findings(tcam, "A", "gw0")
        assert [f.kind for f in findings] == ["shadowed-rule"]
        assert findings[0].key == (5, 10)


class TestChainTermination:
    def test_clean_peering_terminates(self, region):
        ctrl, cluster_id, ctx = region
        for member in members_of(ctrl, cluster_id):
            assert ChainTermination().check(ctx, member) == []

    def test_broken_chain_detected(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        # Peer into a VNI with no routes at all.
        member.gateway.install_route(100, Prefix.parse("10.50.0.0/16"),
                                     RouteAction(Scope.PEER, next_hop_vni=999))
        findings = ChainTermination().check(ctx, member)
        assert [f.kind for f in findings] == ["broken-chain"]

    def test_peer_loop_detected(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        member.gateway.install_route(200, Prefix.parse("10.60.0.0/16"),
                                     RouteAction(Scope.PEER, next_hop_vni=201))
        member.gateway.install_route(201, Prefix.parse("10.60.0.0/16"),
                                     RouteAction(Scope.PEER, next_hop_vni=200))
        kinds = {f.kind for f in ChainTermination().check(ctx, member)}
        assert kinds == {"peer-loop"}


class TestTenantIsolation:
    def test_authorised_peering_is_silent(self, region):
        ctrl, cluster_id, ctx = region
        for member in members_of(ctrl, cluster_id):
            assert TenantIsolation().check(ctx, member) == []

    def test_unauthorised_cross_tenant_route_detected(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        # A misinstalled route leaks tenant 100's subnet into tenant 101.
        member.gateway.install_route(
            100, Prefix.parse("192.168.10.0/24"),
            RouteAction(Scope.PEER, next_hop_vni=101), replace=True)
        findings = TenantIsolation().check(ctx, member)
        assert findings and {f.kind for f in findings} == {"tenant-isolation"}
        assert all(f.key[-1] == 101 for f in findings)


class TestCounterConservation:
    def test_identities_hold_after_traffic(self, region):
        ctrl, cluster_id, ctx = region
        probe = build_probe_packet(100, ip("192.168.10.2"))
        miss = build_probe_packet(100, ip("192.168.10.77"))
        for member in members_of(ctrl, cluster_id):
            for _ in range(3):
                member.gateway.forward(probe)
            member.gateway.forward(miss)
            assert CounterConservation().check(ctx, member) == []

    def test_torn_counter_state_detected(self, region):
        ctrl, cluster_id, ctx = region
        member = members_of(ctrl, cluster_id)[0]
        member.gateway.forward(build_probe_packet(100, ip("192.168.10.2")))
        member.gateway.stats.packets += 5  # torn write
        findings = CounterConservation().check(ctx, member)
        assert [f.kind for f in findings] == ["counter-mismatch"]


class TestFlowCacheCoherence:
    def test_hybrid_member_with_clean_cache_is_silent(self):
        ctrl = make_controller(hybrid=True)
        cluster_id, _routes, _vms = onboard_region(ctrl)
        member = ctrl.clusters[cluster_id].find_member(f"{cluster_id}-x86")
        member.gateway.forward(build_probe_packet(100, ip("192.168.10.2")))
        assert len(member.gateway.flow_cache) == 1
        ctx = AuditContext(intent=IntentSnapshot.from_controller(ctrl),
                           cluster_id=cluster_id, seed=3)
        assert FlowCacheCoherence().check(ctx, member) == []

    def test_poisoned_entry_with_current_generation_detected(self):
        ctrl = make_controller(hybrid=True)
        cluster_id, _routes, _vms = onboard_region(ctrl)
        member = ctrl.clusters[cluster_id].find_member(f"{cluster_id}-x86")
        member.gateway.forward(build_probe_packet(100, ip("192.168.10.2")))
        plan = FaultPlan(seed=9, specs=[
            FaultSpec(FaultKind.POISON_FLOW_CACHE, max_fires=1)])
        assert FaultInjector(plan).poison_caches(ctrl.clusters) == 1
        ctx = AuditContext(intent=IntentSnapshot.from_controller(ctrl),
                           cluster_id=cluster_id, seed=3)
        findings = FlowCacheCoherence().check(ctx, member)
        assert [f.kind for f in findings] == ["stale-cache-entry"]

    def test_stale_generation_entries_are_not_findings(self):
        ctrl = make_controller(hybrid=True)
        cluster_id, _routes, _vms = onboard_region(ctrl)
        member = ctrl.clusters[cluster_id].find_member(f"{cluster_id}-x86")
        member.gateway.forward(build_probe_packet(100, ip("192.168.10.2")))
        # A table mutation bumps the generation: the cached entry is now
        # stale, and the cache's own guard will drop it lazily.
        member.gateway.tables.routing.generation += 1
        ctx = AuditContext(intent=IntentSnapshot.from_controller(ctrl),
                           cluster_id=cluster_id, seed=3)
        assert FlowCacheCoherence().check(ctx, member) == []
