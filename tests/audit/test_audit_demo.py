"""End-to-end acceptance: every corruption class ``repro.faults`` can
inject is (a) detected by the budgeted scanner within one full scan
cycle of engine ticks, (b) repaired through the controller's
reconcile/targeted-repair path by the bridge, and (c) gone on the next
full scan — while a clean cluster produces zero findings across seeds
with a byte-identical findings log per seed."""

import os

import pytest

from tests.audit.helpers import ip, make_controller, onboard_region

from repro.audit import AuditConfig, AuditScanner, RepairBridge
from repro.core.controller import RouteEntry, TransactionAborted, build_probe_packet
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.tables.vxlan_routing import RouteAction, Scope


def save_findings_log(name, scanner):
    """Drop the findings log where CI can upload it on failure."""
    art_dir = os.environ.get("AUDIT_ARTIFACT_DIR")
    if not art_dir:
        return
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, f"{name}.findings"), "wb") as fh:
        fh.write(scanner.log.dump())


def arm(ctrl, *specs, seed=7):
    plan = FaultPlan(seed=seed, specs=list(specs))
    FaultInjector(plan).arm_controller(ctrl)
    return plan


def detect_within_one_cycle(ctrl, kinds, seed=3):
    """Tick a freshly attached scanner for exactly one cycle of engine
    time; return (scanner, bridge, findings-of-interest)."""
    scanner = AuditScanner(ctrl, AuditConfig(seed=seed, budget=4))
    bridge = RepairBridge(ctrl).attach(scanner)
    engine = Engine()
    scanner.attach(engine, interval=1.0, until=scanner.cycle_length() * 1.0)
    engine.run()
    assert scanner.cycles_completed >= 1
    found = [f for f in scanner.log.findings() if f.kind in kinds]
    return scanner, bridge, found


class TestCorruptionClasses:
    def test_dropped_route_delete(self):
        ctrl = make_controller()
        cluster_id, _routes, _vms = onboard_region(ctrl)
        scratch = Prefix.parse("10.50.0.0/16")
        ctrl.install_route(cluster_id, RouteEntry(100, scratch,
                                                  RouteAction(Scope.LOCAL)))
        arm(ctrl, FaultSpec(FaultKind.DROP_ROUTE_WRITE, node="*-gw0",
                            max_fires=1))
        ctrl.remove_route(cluster_id, 100, scratch)

        scanner, bridge, found = detect_within_one_cycle(ctrl, {"extra-route"})
        save_findings_log("dropped-route-delete", scanner)
        assert found and found[0].node.endswith("-gw0")
        assert bridge.counters["repairs_applied"] >= 1
        assert ctrl.is_admitted(cluster_id)
        assert scanner.full_scan() == []

    def test_dropped_vm_remove(self):
        ctrl = make_controller()
        cluster_id, _routes, _vms = onboard_region(ctrl)
        arm(ctrl, FaultSpec(FaultKind.DROP_VM_WRITE, node="*-gw0",
                            max_fires=1))
        ctrl.remove_vm(cluster_id, 100, ip("192.168.10.2"), 4)
        assert ctrl.consistency_check(cluster_id) == []

        scanner, bridge, found = detect_within_one_cycle(ctrl, {"extra-vm"})
        save_findings_log("dropped-vm-remove", scanner)
        assert found and found[0].node.endswith("-gw0")
        assert bridge.counters["repairs_applied"] >= 1
        member = ctrl.clusters[cluster_id].find_member(f"{cluster_id}-gw0")
        assert member.gateway.split_vm_nc.lookup(100, ip("192.168.10.2"), 4) is None
        assert scanner.full_scan() == []

    def test_aborted_transaction_residue(self):
        ctrl = make_controller()
        cluster_id, _routes, _vms = onboard_region(ctrl)
        # Write 1 (gw0's second prepare) raises → abort; write 2 (the
        # rollback's remove of the already-installed route) is dropped →
        # silent residue on gw0.
        arm(ctrl,
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, at_writes=(1,)),
            FaultSpec(FaultKind.DROP_ROUTE_WRITE, at_writes=(2,)))
        with pytest.raises(TransactionAborted):
            with ctrl.transaction(cluster_id) as txn:
                txn.install_route(RouteEntry(100, Prefix.parse("10.50.0.0/16"),
                                             RouteAction(Scope.LOCAL)))
                txn.install_route(RouteEntry(100, Prefix.parse("10.51.0.0/16"),
                                             RouteAction(Scope.LOCAL)))
        assert ctrl.counters["txns_aborted"] == 1

        scanner, bridge, found = detect_within_one_cycle(ctrl, {"extra-route"})
        save_findings_log("aborted-txn-residue", scanner)
        assert found and found[0].key == (100, Prefix.parse("10.50.0.0/16"))
        assert bridge.counters["repairs_applied"] >= 1
        assert scanner.full_scan() == []

    def test_stale_flow_cache_entry(self):
        ctrl = make_controller(hybrid=True)
        cluster_id, _routes, _vms = onboard_region(ctrl)
        member = ctrl.clusters[cluster_id].find_member(f"{cluster_id}-x86")
        probe = build_probe_packet(100, ip("192.168.10.2"))
        member.gateway.forward(probe)
        plan = FaultPlan(seed=9, specs=[
            FaultSpec(FaultKind.POISON_FLOW_CACHE, max_fires=1)])
        assert FaultInjector(plan).poison_caches(ctrl.clusters) == 1

        scanner, bridge, found = detect_within_one_cycle(
            ctrl, {"stale-cache-entry"})
        save_findings_log("stale-flow-cache", scanner)
        assert found
        assert bridge.counters["caches_cleared"] == 1
        assert member.gateway.forward(probe).nc_ip == ip("10.1.1.11")
        assert scanner.full_scan() == []


class TestCleanClusterAcrossSeeds:
    def test_zero_findings_and_byte_identical_logs_per_seed(self):
        def run(seed):
            ctrl = make_controller(hybrid=True)
            onboard_region(ctrl)
            scanner = AuditScanner(ctrl, AuditConfig(seed=seed, budget=4))
            engine = Engine()
            scanner.attach(engine, interval=1.0,
                           until=scanner.cycle_length() * 1.0)
            engine.run()
            assert scanner.cycles_completed >= 1
            return scanner.log.dump()

        for seed in (1, 2, 3):
            first, second = run(seed), run(seed)
            assert first == b""  # zero findings on a clean cluster
            assert first == second  # byte-identical per seed

    def test_corrupted_run_log_is_byte_stable_per_seed(self):
        def run(seed):
            ctrl = make_controller()
            cluster_id, _routes, _vms = onboard_region(ctrl)
            arm(ctrl, FaultSpec(FaultKind.DROP_VM_WRITE, node="*-gw0",
                                max_fires=1))
            ctrl.remove_vm(cluster_id, 100, ip("192.168.10.2"), 4)
            scanner = AuditScanner(ctrl, AuditConfig(seed=seed, budget=4))
            scanner.full_scan()
            return scanner.log.dump()

        for seed in (1, 2, 3):
            dump = run(seed)
            assert dump != b""
            assert dump == run(seed)
