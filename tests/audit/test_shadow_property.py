"""Property tests: the structural shadow detectors agree with a
brute-force first-match oracle.

The TCAM key space is kept to 8 bits so the oracle can enumerate every
key; the ACL analogue draws rule fields from small domains and checks
the reported pairs against ``AclRule.matches`` over the cross product of
those domains."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import FlowKey
from repro.tables.acl import AclRule, AclTable, AclVerdict
from repro.tables.tcam import Tcam

KEY_BITS = 8
ALL_KEYS = range(1 << KEY_BITS)


def build_tcam(entries):
    tcam = Tcam(key_bits=KEY_BITS)
    for i, (match, mask, priority) in enumerate(entries):
        tcam.insert(match & mask, mask, priority, action=i)
    return tcam


tcam_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # match (masked on insert)
        st.integers(min_value=0, max_value=255),  # mask
        st.integers(min_value=0, max_value=7),    # priority
    ),
    min_size=0,
    max_size=8,
    unique_by=lambda e: (e[0] & e[1], e[1], e[2]),
)


class TestTcamShadowOracle:
    @given(tcam_entries)
    @settings(max_examples=80, deadline=None)
    def test_reported_pairs_are_sound(self, raw):
        """A reported shadowed entry never wins any of the 256 keys, and
        every key it matches is also matched by its reported killer."""
        tcam = build_tcam(raw)
        scan = list(tcam.entries())
        for shadowed, shadowing in tcam.shadowed_entries():
            assert scan.index(shadowing) < scan.index(shadowed)
            for key in ALL_KEYS:
                if shadowed.matches(key):
                    assert shadowing.matches(key)
                    winner = tcam.lookup(key)
                    assert winner is not None and winner is not shadowed

    @given(tcam_entries)
    @settings(max_examples=80, deadline=None)
    def test_single_cover_shadowing_is_complete(self, raw):
        """If the oracle finds an earlier entry matching every key a
        later entry matches, the detector must report the later one."""
        tcam = build_tcam(raw)
        scan = list(tcam.entries())
        reported = {id(s) for s, _by in tcam.shadowed_entries()}
        for j, entry in enumerate(scan):
            keys = [k for k in ALL_KEYS if entry.matches(k)]
            covered = any(
                all(earlier.matches(k) for k in keys)
                for earlier in scan[:j]
            )
            assert (id(entry) in reported) == covered


# -- ACL analogue ----------------------------------------------------------

VNIS = [None, 100, 101]
PROTOS = [None, 6, 17]
NETS = [
    None,
    (0x0A000000, 0xFF000000),   # 10.0.0.0/8
    (0x0A010000, 0xFFFF0000),   # 10.1.0.0/16
    (0x0B000000, 0xFF000000),   # 11.0.0.0/8
]
RANGES = [None, (0, 65535), (0, 100), (50, 150)]

acl_rules = st.lists(
    st.builds(
        AclRule,
        priority=st.integers(min_value=0, max_value=7),
        verdict=st.sampled_from([AclVerdict.PERMIT, AclVerdict.DENY]),
        vni=st.sampled_from(VNIS),
        src_net=st.sampled_from(NETS),
        dst_net=st.sampled_from(NETS),
        proto=st.sampled_from(PROTOS),
        src_ports=st.sampled_from(RANGES),
        dst_ports=st.sampled_from(RANGES),
    ),
    min_size=0,
    max_size=6,
    unique=True,
)

#: A flow sample hitting every boundary the rule domains can distinguish.
SAMPLE_FLOWS = [
    (vni, FlowKey(src, dst, proto, sport, dport))
    for vni, src, dst, proto, sport, dport in itertools.product(
        [100, 101],
        [0x0A000001, 0x0A010001, 0x0B000001],
        [0x0A000001, 0x0A010001, 0x0B000001],
        [6, 17],
        [0, 50, 100, 151],
        [0, 50, 100, 151],
    )
]


class TestAclShadowOracle:
    @given(acl_rules)
    @settings(max_examples=60, deadline=None)
    def test_reported_pairs_are_sound(self, rules):
        """Every sampled flow matching a reported shadowed rule also
        matches its killer, and first-match never stops at the shadowed
        rule."""
        acl = AclTable()
        for rule in rules:
            acl.insert(rule)
        scan = acl.rules()
        for shadowed, shadowing in acl.shadowed_rules():
            assert scan.index(shadowing) < scan.index(shadowed)
            for vni, flow in SAMPLE_FLOWS:
                if shadowed.matches(vni, flow):
                    assert shadowing.matches(vni, flow)
                    first = next(r for r in scan if r.matches(vni, flow))
                    assert first is not shadowed

    @given(acl_rules)
    @settings(max_examples=60, deadline=None)
    def test_cover_is_sound_against_matches(self, rules):
        """`covers` (the structural relation the detector rests on) never
        claims coverage a sampled flow can refute."""
        for a, b in itertools.permutations(rules, 2):
            if a.covers(b):
                for vni, flow in SAMPLE_FLOWS:
                    if b.matches(vni, flow):
                        assert a.matches(vni, flow)
