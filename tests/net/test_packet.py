"""Tests for the packet model and VXLAN encap/decap."""

import pytest
from hypothesis import given, strategies as st

from repro.net.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    Ethernet,
    HeaderError,
    IPv4,
    IPv6,
    PROTO_UDP,
    TCP,
    UDP,
    VXLAN_PORT,
)
from repro.net.packet import InnerFrame, Packet


def make_inner(src=0xC0A80A02, dst=0xC0A80A03, version=4, payload=b"hello"):
    if version == 4:
        ip = IPv4(src=src, dst=dst, proto=PROTO_UDP)
        ethertype = ETHERTYPE_IPV4
    else:
        ip = IPv6(src=src, dst=dst, next_header=PROTO_UDP)
        ethertype = ETHERTYPE_IPV6
    return InnerFrame(
        eth=Ethernet(dst=0x02, src=0x01, ethertype=ethertype),
        ip=ip,
        l4=UDP(src_port=1111, dst_port=2222),
        payload=payload,
    )


def make_vxlan(vni=42, inner=None):
    return Packet.vxlan_encap(
        inner or make_inner(),
        outer_eth=Ethernet(dst=0x0A, src=0x0B, ethertype=ETHERTYPE_IPV4),
        outer_src=0x0A000001,
        outer_dst=0x0A0000FE,
        vni=vni,
    )


class TestInnerFrame:
    def test_roundtrip(self):
        inner = make_inner()
        assert InnerFrame.unpack(inner.pack()).five_tuple() == inner.five_tuple()

    def test_v6_roundtrip(self):
        inner = make_inner(src=1 << 100, dst=2, version=6)
        decoded = InnerFrame.unpack(inner.pack())
        assert decoded.version == 6 and decoded.ip.dst == 2

    def test_five_tuple_without_l4(self):
        inner = InnerFrame(
            eth=Ethernet(1, 2, ETHERTYPE_IPV4),
            ip=IPv4(src=1, dst=2, proto=99),
            l4=None,
            payload=b"",
        )
        assert inner.five_tuple() == (1, 2, 99, 0, 0)


class TestVxlanPacket:
    def test_encap_fields(self):
        packet = make_vxlan(vni=42)
        assert packet.is_vxlan and packet.vni == 42
        assert packet.l4.dst_port == VXLAN_PORT
        assert packet.inner_dst == 0xC0A80A03 and packet.inner_version == 4

    def test_wire_roundtrip(self):
        packet = make_vxlan(vni=7)
        decoded = Packet.from_bytes(packet.to_bytes())
        assert decoded.is_vxlan and decoded.vni == 7
        assert decoded.inner.five_tuple() == packet.inner.five_tuple()
        assert decoded.to_bytes() == packet.to_bytes()

    def test_wire_roundtrip_v6_inner(self):
        packet = make_vxlan(inner=make_inner(src=5, dst=9, version=6))
        decoded = Packet.from_bytes(packet.to_bytes())
        assert decoded.inner_version == 6 and decoded.inner_dst == 9

    def test_outer_dst_rewrite(self):
        packet = make_vxlan().with_outer_dst(0x0A010101)
        assert packet.ip.dst == 0x0A010101
        # Inner untouched.
        assert packet.inner_dst == 0xC0A80A03

    def test_vni_rewrite(self):
        assert make_vxlan(vni=1).with_vni(9).vni == 9

    def test_vni_rewrite_requires_vxlan(self):
        plain = Packet(eth=Ethernet(1, 2, ETHERTYPE_IPV4),
                       ip=IPv4(src=1, dst=2, proto=PROTO_UDP),
                       l4=UDP(1, 2), payload=b"x")
        with pytest.raises(HeaderError):
            plain.with_vni(3)

    def test_decap(self):
        packet = make_vxlan()
        plain = packet.decap()
        assert not plain.is_vxlan
        assert plain.ip.dst == 0xC0A80A03 and plain.payload == b"hello"

    def test_decap_requires_vxlan(self):
        plain = make_vxlan().decap()
        with pytest.raises(HeaderError):
            plain.decap()

    def test_vxlan_requires_udp(self):
        with pytest.raises(ValueError):
            Packet(
                eth=Ethernet(1, 2, ETHERTYPE_IPV4),
                ip=IPv4(src=1, dst=2, proto=6),
                l4=TCP(1, 2),
                vxlan=make_vxlan().vxlan,
                inner=make_inner(),
            )

    def test_vxlan_and_inner_must_pair(self):
        with pytest.raises(ValueError):
            Packet(
                eth=Ethernet(1, 2, ETHERTYPE_IPV4),
                ip=IPv4(src=1, dst=2, proto=PROTO_UDP),
                l4=UDP(1, VXLAN_PORT),
                vxlan=make_vxlan().vxlan,
                inner=None,
            )

    def test_plain_packet_roundtrip(self):
        plain = Packet(
            eth=Ethernet(1, 2, ETHERTYPE_IPV4),
            ip=IPv4(src=3, dst=4, proto=PROTO_UDP),
            l4=UDP(src_port=53, dst_port=5353),
            payload=b"dns",
        )
        decoded = Packet.from_bytes(plain.to_bytes())
        assert not decoded.is_vxlan
        assert decoded.payload == b"dns" and decoded.l4.dst_port == 5353

    def test_wire_length(self):
        packet = make_vxlan()
        # outer eth 14 + ip 20 + udp 8 + vxlan 8 + inner eth 14 + ip 20 +
        # udp 8 + payload 5
        assert packet.wire_length() == 14 + 20 + 8 + 8 + 14 + 20 + 8 + 5

    @given(
        st.integers(min_value=0, max_value=(1 << 24) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.binary(max_size=64),
    )
    def test_roundtrip_property(self, vni, src, dst, payload):
        packet = make_vxlan(vni=vni, inner=make_inner(src=src, dst=dst, payload=payload))
        decoded = Packet.from_bytes(packet.to_bytes())
        assert decoded.vni == vni
        assert decoded.inner.ip.src == src and decoded.inner.ip.dst == dst
        assert decoded.inner.payload == payload
